package dime_test

import (
	"testing"

	"dime/internal/difftest"
	"dime/internal/obs"
)

// TestDifferentialDIMEVariants is the differential harness: across a corpus
// of seeded random groups (cycling the Scholar, Amazon and DBGen generators
// at 30–150 entities), DIME, sequential DIME+ and parallel DIME+ must agree
// on every partition, pivot, scrollbar level and marked partition — and the
// two DIME+ variants must agree byte-for-byte, stats and witnesses included,
// at every worker count. Failures log the case seed, so any divergence
// reproduces with `-run 'TestDifferentialDIMEVariants/<case-name>'`.
func TestDifferentialDIMEVariants(t *testing.T) {
	n := 210
	if testing.Short() {
		n = 45
	}
	for _, c := range difftest.Corpus(n, 0xD1FE) {
		t.Run(c.Name, func(t *testing.T) {
			difftest.Check(t, c, 2, 4)
		})
	}
}

// TestDifferentialFlightRecorderAttached reruns a slice of the differential
// corpus with the flight recorder (resource attribution on) attached as the
// probe on every variant: instrumentation that is meant to stay always-on in
// production must not perturb a single byte of the results, even on the
// parallel paths whose spans it records concurrently.
func TestDifferentialFlightRecorderAttached(t *testing.T) {
	n := 45
	if testing.Short() {
		n = 15
	}
	fr := obs.NewFlightRecorder(obs.FlightOptions{Resources: true})
	for _, c := range difftest.Corpus(n, 0xF117) {
		c.Probe = fr
		t.Run(c.Name, func(t *testing.T) {
			difftest.Check(t, c, 2, 4)
		})
	}
	if fr.Kept() == 0 {
		t.Fatal("flight recorder observed no runs")
	}
}

// TestCorpusDeterministic pins the generator contract the harness depends
// on: the same (n, seed) pair must reproduce the same case list, so a seed
// logged by a failure is sufficient to replay it.
func TestCorpusDeterministic(t *testing.T) {
	a := difftest.Corpus(9, 7)
	b := difftest.Corpus(9, 7)
	if len(a) != len(b) {
		t.Fatalf("case counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Seed != b[i].Seed {
			t.Fatalf("case %d differs: %s/%d vs %s/%d", i, a[i].Name, a[i].Seed, b[i].Name, b[i].Seed)
		}
		if len(a[i].Group.Entities) != len(b[i].Group.Entities) {
			t.Fatalf("case %d group sizes differ: %d vs %d",
				i, len(a[i].Group.Entities), len(b[i].Group.Entities))
		}
	}
}
