// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI), plus ablations of DIME+'s design choices and micro-benches
// of the hot components. Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benches (BenchmarkExp*) run scaled-down corpora so the
// whole suite finishes in minutes; `go run ./cmd/experiments -full` runs the
// paper-scale sweeps and prints the actual tables.
package dime_test

import (
	"fmt"
	"testing"

	"dime/internal/core"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/experiments"
	"dime/internal/lda"
	"dime/internal/obs"
	"dime/internal/presets"
	"dime/internal/rulegen"
	"dime/internal/rules"
	"dime/internal/signature"
	"dime/internal/sim"
)

// benchOpts is the scaled-down corpus configuration the experiment benches
// share; the printed tables use larger defaults.
var benchOpts = experiments.Options{
	Pages:             8,
	PubsPerPage:       80,
	AmazonPerCategory: 30,
	Seed:              2018,
}

func runExperiment(b *testing.B, fn func(experiments.Options) ([]experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := fn(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkExp1Fig6 regenerates Figure 6 (DIME vs CR vs SVM on both
// datasets, Exp-1/Exp-2).
func BenchmarkExp1Fig6(b *testing.B) { runExperiment(b, experiments.Exp1) }

// BenchmarkExp3Fig7 regenerates Figure 7 (scrollbar levels on both
// datasets, Exp-3).
func BenchmarkExp3Fig7(b *testing.B) { runExperiment(b, experiments.Exp3) }

// BenchmarkExp3Fig8 regenerates Figure 8 (per-page scrollbar results for
// the 20 named Scholar pages).
func BenchmarkExp3Fig8(b *testing.B) { runExperiment(b, experiments.Exp3Detail) }

// BenchmarkExp4TableI regenerates Table I (partition-size statistics after
// the positive rules, Exp-4).
func BenchmarkExp4TableI(b *testing.B) { runExperiment(b, experiments.Exp4) }

// BenchmarkExp6Fig10 regenerates Figure 10 (rule-generation cross
// validation, Exp-6).
func BenchmarkExp6Fig10(b *testing.B) { runExperiment(b, experiments.Exp6) }

// BenchmarkExp5Fig9Scholar regenerates Figure 9(a)'s series: DIME and DIME+
// runtime on Scholar pages of growing size (CR and SVM are timed by
// cmd/experiments -exp 5; here the two core algorithms are the series of
// record).
func BenchmarkExp5Fig9Scholar(b *testing.B) {
	cfg := presets.ScholarConfig()
	rs := presets.ScholarRules(cfg)
	for _, size := range []int{250, 500, 1000} {
		g := datagen.Scholar(datagen.ScholarOptions{
			NumPubs: size, ErrorRate: 0.06, Seed: 11,
		})
		b.Run(fmt.Sprintf("DIME/n=%d", g.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DIME(g, core.Options{Config: cfg, Rules: rs}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DIMEPlus/n=%d", g.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp5Fig9Amazon regenerates Figure 9(b)'s series on an Amazon
// category at 40% error rate.
func BenchmarkExp5Fig9Amazon(b *testing.B) {
	for _, size := range []int{400, 800, 1600} {
		c := datagen.Amazon(datagen.AmazonOptions{
			ProductsPerCategory: int(float64(size) * 0.6),
			ErrorRate:           0.40,
			NearShare:           0.2,
			Seed:                13,
			Categories:          []string{"Router", "Adapter", "Blender", "Puzzle"},
		})
		g := c.Groups[0]
		cfg := presets.AmazonConfig(c.TrueTree, c.TrueMapper())
		rs := presets.AmazonRules(cfg)
		b.Run(fmt.Sprintf("DIME/n=%d", g.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DIME(g, core.Options{Config: cfg, Rules: rs}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DIMEPlus/n=%d", g.Size()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExp5DBGen regenerates the Gen(20k)–Gen(100k) table's comparison
// at bench-friendly sizes (cmd/experiments -exp 5 -large -full runs the
// paper's sizes; naive DIME at 100k runs for tens of minutes by design).
func BenchmarkExp5DBGen(b *testing.B) {
	cfg := presets.DBGenConfig()
	rs := presets.DBGenRules(cfg)
	for _, size := range []int{2000, 5000} {
		g := datagen.DBGen(datagen.DBGenOptions{NumEntities: size, ErrorRate: 0.10, Seed: 17})
		b.Run(fmt.Sprintf("DIME/n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DIME(g, core.Options{Config: cfg, Rules: rs}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("DIMEPlus/n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("DIMEPlus/n=20000", func(b *testing.B) {
		g := datagen.DBGen(datagen.DBGenOptions{NumEntities: 20000, ErrorRate: 0.10, Seed: 17})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations of the design choices DESIGN.md calls out ---

func scholarBenchGroup() (*datagen.ScholarOptions, *core.Options) {
	cfg := presets.ScholarConfig()
	rs := presets.ScholarRules(cfg)
	gopts := &datagen.ScholarOptions{NumPubs: 600, ErrorRate: 0.06, Seed: 23}
	return gopts, &core.Options{Config: cfg, Rules: rs}
}

// BenchmarkDIMEPlus is the primary end-to-end benchmark: one DIME+ run over
// the standard 600-publication Scholar group. The nil-probe variant is the
// production fast path (the observability budget requires it within 2% of an
// uninstrumented build); the traced variant pays for a full recording span
// tree per run; the flight-recorder variant is the always-on production
// configuration (scripts/bench.sh gates it within 5% ns/op of nil-probe via
// cmd/benchjson's overhead check).
func BenchmarkDIMEPlus(b *testing.B) {
	gopts, opts := scholarBenchGroup()
	g := datagen.Scholar(*gopts)
	b.Run("nil-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.DIMEPlus(g, *opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := *opts
			o.Probe = obs.NewTrace()
			res, err := core.DIMEPlus(g, o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
		}
	})
	b.Run("flight-recorder", func(b *testing.B) {
		o := *opts
		o.Probe = obs.NewFlightRecorder(obs.FlightOptions{})
		for i := 0; i < b.N; i++ {
			res, err := core.DIMEPlus(g, o)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
		}
	})
}

// BenchmarkDIMEPlusParallel measures the intra-group worker path on a DBGen
// group, whose eds(Name) positive rule is expensive enough per pair for the
// speculative-evaluation chunks to matter. The sequential variant pins
// IntraWorkers=1 (the historical path, and the baseline any refactor must
// not regress); the parallel variant takes the GOMAXPROCS default. The
// parallel speedup is hardware-dependent — on a single-core machine the two
// variants collapse to the same work — and results are byte-identical either
// way, which the differential harness enforces.
func BenchmarkDIMEPlusParallel(b *testing.B) {
	cfg := presets.DBGenConfig()
	rs := presets.DBGenRules(cfg)
	g := datagen.DBGen(datagen.DBGenOptions{NumEntities: 3000, ErrorRate: 0.10, Seed: 29})
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := core.Options{Config: cfg, Rules: rs, IntraWorkers: v.workers}
			for i := 0; i < b.N; i++ {
				res, err := core.DIMEPlus(g, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
			}
		})
	}
}

// BenchmarkAblationNoSignatures compares DIME+ against the no-filter
// baseline (naive DIME) on the same group.
func BenchmarkAblationNoSignatures(b *testing.B) {
	gopts, opts := scholarBenchGroup()
	g := datagen.Scholar(*gopts)
	b.Run("with-signatures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.DIMEPlus(g, *opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
		}
	})
	b.Run("without-signatures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.DIME(g, *opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
		}
	})
}

// BenchmarkAblationNoTransitivity measures the cost of verifying candidate
// pairs whose partitions are already joined.
func BenchmarkAblationNoTransitivity(b *testing.B) {
	gopts, opts := scholarBenchGroup()
	g := datagen.Scholar(*gopts)
	for _, disable := range []bool{false, true} {
		name := "skip-enabled"
		if disable {
			name = "skip-disabled"
		}
		b.Run(name, func(b *testing.B) {
			o := *opts
			o.DisableTransitivitySkip = disable
			for i := 0; i < b.N; i++ {
				res, err := core.DIMEPlus(g, o)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.PositiveVerified), "verifications/op")
			}
		})
	}
}

// BenchmarkAblationBenefitOrder measures the verification-ordering policy:
// benefit-sorted versus arrival order.
func BenchmarkAblationBenefitOrder(b *testing.B) {
	gopts, opts := scholarBenchGroup()
	g := datagen.Scholar(*gopts)
	for _, disable := range []bool{false, true} {
		name := "benefit-order"
		if disable {
			name = "arrival-order"
		}
		b.Run(name, func(b *testing.B) {
			o := *opts
			o.DisableBenefitOrder = disable
			for i := 0; i < b.N; i++ {
				res, err := core.DIMEPlus(g, o)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.PositiveVerified+res.Stats.NegativeVerified), "verifications/op")
			}
		})
	}
}

// BenchmarkAblationSortLimit measures the global-benefit-sort cutoff: a tiny
// limit forces streaming verification, a huge one forces the full sort.
func BenchmarkAblationSortLimit(b *testing.B) {
	gopts, opts := scholarBenchGroup()
	g := datagen.Scholar(*gopts)
	for _, limit := range []int{1, 1 << 30} {
		name := "stream"
		if limit > 1 {
			name = "global-sort"
		}
		b.Run(name, func(b *testing.B) {
			o := *opts
			o.BenefitSortLimit = limit
			for i := 0; i < b.N; i++ {
				if _, err := core.DIMEPlus(g, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Component micro-benches ---

func BenchmarkSimilarityFunctions(b *testing.B) {
	a1 := []string{"nan tang", "xu chu", "ihab ilyas", "paolo papotti", "mourad ouzzani"}
	a2 := []string{"nan tang", "jeffrey xu yu", "m tamer ozsu"}
	b.Run("Overlap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Overlap(a1, a2)
		}
	})
	b.Run("Jaccard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Jaccard(a1, a2)
		}
	})
	s1, s2 := "hierarchical indexing approach to support xpath queries", "holistic indexing approaches supporting xpath query workloads"
	b.Run("EditDistance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.EditDistance(s1, s2)
		}
	})
	b.Run("EditDistanceBounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.EditDistanceBounded(s1, s2, 4)
		}
	})
}

func BenchmarkSignatureGeneration(b *testing.B) {
	cfg := presets.ScholarConfig()
	rs := presets.ScholarRules(cfg)
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 400, ErrorRate: 0.06, Seed: 31})
	recs, err := cfg.NewRecords(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Context", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			signature.NewContext(cfg, recs, rs)
		}
	})
	ctx := signature.NewContext(cfg, recs, rs)
	b.Run("BuildPositive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			signature.BuildPositive(ctx, rs.Positive[1], recs)
		}
	})
	ix := signature.BuildPositive(ctx, rs.Positive[1], recs)
	b.Run("Candidates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			ix.ForEach(func(signature.Candidate) { n++ })
		}
	})
}

func BenchmarkLDATrain(b *testing.B) {
	c := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: 20, ErrorRate: 0.1, Seed: 3})
	docs := c.Descriptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lda.Train(docs, lda.Options{K: 10, Iterations: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleGeneration(b *testing.B) {
	cfg := presets.ScholarConfig()
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 80, ErrorRate: 0.15, Seed: 5})
	recs, err := cfg.NewRecords(g)
	if err != nil {
		b.Fatal(err)
	}
	var good, bad []*rules.Record
	for _, r := range recs {
		if g.Truth[r.Entity.ID] {
			bad = append(bad, r)
		} else {
			good = append(good, r)
		}
	}
	var exs []rulegen.Example
	for i := 0; i < 150; i++ {
		exs = append(exs, rulegen.Example{A: good[i%len(good)], B: good[(i*7+1)%len(good)], Same: true})
	}
	for i := 0; i < 150; i++ {
		exs = append(exs, rulegen.Example{A: good[i%len(good)], B: bad[i%len(bad)], Same: false})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rulegen.Generate(rulegen.Options{Config: cfg, MaxThresholds: 24}, exs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionAdd measures the incremental path: folding one entity
// into an existing partitioning (vs. re-running DIME+ from scratch).
func BenchmarkSessionAdd(b *testing.B) {
	cfg := presets.ScholarConfig()
	rs := presets.ScholarRules(cfg)
	base := datagen.Scholar(datagen.ScholarOptions{NumPubs: 500, ErrorRate: 0.06, Seed: 41})
	fresh := datagen.Scholar(datagen.ScholarOptions{NumPubs: 500, ErrorRate: 0.06, Seed: 42})
	b.Run("incremental", func(b *testing.B) {
		// Sessions mutate their group: start from a copy, and reset every
		// 2000 adds so the measured cost stays that of a ~500-entity page
		// rather than of an ever-growing one.
		var sess *core.Session
		reset := func() {
			var err error
			sess, err = core.NewSession(entityGroupCopy(base), core.Options{Config: cfg, Rules: rs})
			if err != nil {
				b.Fatal(err)
			}
		}
		reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%2000 == 0 {
				b.StopTimer()
				reset()
				b.StartTimer()
			}
			e := fresh.Entities[i%len(fresh.Entities)].Clone()
			e.ID = fmt.Sprintf("bench-%09d", i)
			if _, err := sess.Add(e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DIMEPlus(base, core.Options{Config: cfg, Rules: rs}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiscoverAll measures corpus fan-out over the worker pool.
func BenchmarkDiscoverAll(b *testing.B) {
	cfg := presets.ScholarConfig()
	opts := core.Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(12, 120, 0.06, 51)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DiscoverAll(groups, opts, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// entityGroupCopy deep-copies a group for benchmarks that mutate it.
func entityGroupCopy(g *entity.Group) *entity.Group {
	out := entity.NewGroup(g.Name, g.Schema)
	for _, e := range g.Entities {
		out.MustAdd(e.Clone())
	}
	for id, bad := range g.Truth {
		if bad {
			out.MarkMisCategorized(id)
		}
	}
	return out
}
