package main

import (
	"os"
	"path/filepath"
	"testing"

	"dime/internal/datagen"
	"dime/internal/entity"
)

func TestWriteCorpus(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.jsonl")
	groups := datagen.ScholarPages(3, 20, 0.1, 1)
	if err := writeCorpus(path, groups); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := entity.ReadGroups(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("groups = %d", len(back))
	}
	for i := range back {
		if back[i].Name != groups[i].Name || back[i].Size() != groups[i].Size() {
			t.Fatalf("group %d mismatch", i)
		}
	}
}

func TestWriteCorpusBadPath(t *testing.T) {
	groups := datagen.ScholarPages(1, 10, 0.1, 1)
	if err := writeCorpus("/nonexistent-dir/x.jsonl", groups); err == nil {
		t.Fatal("unwritable path should fail")
	}
}
