// Command datagen generates the synthetic datasets (Google Scholar pages,
// Amazon categories, DBGen-style large groups) as JSON files that cmd/dime
// can analyze.
//
// Usage:
//
//	datagen -kind scholar [-n 340] [-error 0.06] [-seed 1] [-out page.json]
//	datagen -kind amazon [-n 60] [-error 0.2] [-category Router] [-out router.json]
//	datagen -kind dbgen [-n 20000] [-error 0.1] [-out gen.json]
//
// Without -out the JSON goes to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dime/internal/datagen"
	"dime/internal/entity"
)

func main() {
	var (
		kind     = flag.String("kind", "scholar", "dataset kind: scholar, amazon or dbgen")
		n        = flag.Int("n", 0, "size (publications per page / products per category / entities)")
		errRate  = flag.Float64("error", 0.06, "mis-categorized entity rate")
		seed     = flag.Int64("seed", 1, "generation seed")
		category = flag.String("category", "Router", "amazon: category to emit")
		owner    = flag.String("owner", "", "scholar: page owner name")
		pages    = flag.Int("pages", 0, "scholar: emit a JSON-lines corpus of this many pages")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	if *pages > 0 && *kind == "scholar" {
		corpus := datagen.ScholarPages(*pages, *n, *errRate, *seed)
		if err := writeCorpus(*out, corpus); err != nil {
			fatal(err)
		}
		return
	}

	var g *entity.Group
	switch *kind {
	case "scholar":
		g = datagen.Scholar(datagen.ScholarOptions{
			Owner: *owner, NumPubs: *n, ErrorRate: *errRate, Seed: *seed,
		})
	case "amazon":
		per := *n
		if per == 0 {
			per = 60
		}
		corpus := datagen.Amazon(datagen.AmazonOptions{
			ProductsPerCategory: per, ErrorRate: *errRate, Seed: *seed,
		})
		for _, cand := range corpus.Groups {
			if cand.Name == *category {
				g = cand
				break
			}
		}
		if g == nil {
			fatal(fmt.Errorf("unknown category %q", *category))
		}
	case "dbgen":
		g = datagen.DBGen(datagen.DBGenOptions{
			NumEntities: *n, ErrorRate: *errRate, Seed: *seed,
		})
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: group %q, %d entities (%d mis-categorized)\n",
		*out, g.Name, g.Size(), len(g.MisCategorizedIDs()))
}

// writeCorpus emits a JSON-lines corpus to the output file or stdout.
func writeCorpus(out string, groups []*entity.Group) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := entity.WriteGroups(w, groups); err != nil {
		return err
	}
	if out != "" {
		total, errs := 0, 0
		for _, g := range groups {
			total += g.Size()
			errs += len(g.MisCategorizedIDs())
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d groups, %d entities (%d mis-categorized)\n",
			out, len(groups), total, errs)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
