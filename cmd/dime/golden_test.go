package main

// Golden tests for the CLI's output paths: the scrollbar listing, -level,
// -why, -stats (single group and batch), and the -trace JSON export. The
// input groups come from the deterministic synthetic generator, so the
// expected text is stable across runs and platforms.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/obs"
)

// writeGroupFile serializes deterministic Scholar groups into dir.
func writeGroupFile(t *testing.T, dir, name string, groups ...*entity.Group) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := entity.WriteGroups(f, groups); err != nil {
		t.Fatal(err)
	}
	return path
}

func singleGroupFile(t *testing.T, dir string) string {
	t.Helper()
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 30, ErrorRate: 0.1, Seed: 7})
	return writeGroupFile(t, dir, "group.json", g)
}

// runCLI invokes run() and returns (stdout, stderr, exit code).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestGoldenLevels(t *testing.T) {
	in := singleGroupFile(t, t.TempDir())
	stdout, stderr, code := runCLI(t, "-in", in, "-preset", "scholar")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	want := `group "Lei Zhou": 33 entities, 6 partitions, pivot size 27
level 1 (+phi-1): 2 mis-categorized
  p0031
  p0032
  score vs ground truth: P=1.00 R=0.67 F=0.80
level 2 (+phi-2): 3 mis-categorized
  p0031
  p0032
  p0033
  score vs ground truth: P=1.00 R=1.00 F=1.00
level 3 (+phi-3): 6 mis-categorized
  p0001
  p0002
  p0003
  p0031
  p0032
  p0033
  score vs ground truth: P=0.50 R=1.00 F=0.67
`
	if stdout != want {
		t.Errorf("output mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}
}

func TestGoldenLevelFlag(t *testing.T) {
	in := singleGroupFile(t, t.TempDir())
	stdout, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-level", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	want := `group "Lei Zhou": 33 entities, 6 partitions, pivot size 27
level 2 (+phi-2): 3 mis-categorized
  p0031
  p0032
  p0033
  score vs ground truth: P=1.00 R=1.00 F=1.00
`
	if stdout != want {
		t.Errorf("output mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}
}

// latencyLineRE matches one quantile report line; the numbers are wall-clock
// measurements and vary run to run, so golden comparisons normalize them.
var latencyLineRE = regexp.MustCompile(`n=\d+ p50=\S+ p90=\S+ p99=\S+`)

// normalizeLatencies replaces the variable parts of latency quantile lines
// with fixed placeholders.
func normalizeLatencies(s string) string {
	return latencyLineRE.ReplaceAllString(s, "n=N p50=X p90=X p99=X")
}

func TestGoldenWhyAndStats(t *testing.T) {
	in := singleGroupFile(t, t.TempDir())
	stdout, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-level", "0", "-why", "-stats")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	wantTail := `witnesses:
  partition 0: phi-3 holds for (p0001, pivot p0005)
  partition 1: phi-3 holds for (p0002, pivot p0005)
  partition 3: every pair provably satisfies phi-1 (signature filter)
  partition 4: every pair provably satisfies phi-1 (signature filter)
  partition 5: every pair provably satisfies phi-2 (signature filter)
stats: {PositivePairsConsidered:539 PositiveVerified:27 PositiveSkippedByTransitivity:512 NegativeVerified:189 PartitionsFilteredBySignature:3 CertainPairsBySignature:2}
phase latency (s):
  candidate-gen      n=N p50=X p90=X p99=X
  dime+              n=N p50=X p90=X p99=X
  negative-filter    n=N p50=X p90=X p99=X
  negative-verify    n=N p50=X p90=X p99=X
  positive-verify    n=N p50=X p90=X p99=X
  record-compile     n=N p50=X p90=X p99=X
  signature-build    n=N p50=X p90=X p99=X
`
	if norm := normalizeLatencies(stdout); !strings.HasSuffix(norm, wantTail) {
		t.Errorf("output mismatch:\n--- got ---\n%s--- want suffix ---\n%s", norm, wantTail)
	}
}

func TestGoldenCorpusStats(t *testing.T) {
	dir := t.TempDir()
	c1 := datagen.Scholar(datagen.ScholarOptions{NumPubs: 20, ErrorRate: 0.1, Seed: 11})
	c2 := datagen.Scholar(datagen.ScholarOptions{NumPubs: 25, ErrorRate: 0.08, Seed: 12})
	in := writeGroupFile(t, dir, "corpus.jsonl", c1, c2)
	stdout, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-stats")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	// Wall time, worker count and latency measurements vary by machine;
	// normalize them.
	norm := regexp.MustCompile(`batch: 2 groups, \d+ workers, wall \S+`).
		ReplaceAllString(normalizeLatencies(stdout), "batch: 2 groups, W workers, wall T")
	want := `Group                    Entities    Pivot  Flagged  Score
Gustav Wu                      22       17        5  P=0.40 R=1.00 F=0.57
Nan Harris                     27       22        5  P=0.40 R=1.00 F=0.57

aggregate (deepest level, 2 groups): P=0.40 R=1.00 F=0.57

batch: 2 groups, W workers, wall T
group latency (s): n=N p50=X p90=X p99=X
stats: {PositivePairsConsidered:539 PositiveVerified:87 PositiveSkippedByTransitivity:452 NegativeVerified:236 PartitionsFilteredBySignature:4 CertainPairsBySignature:2}
phase latency (s):
  batch              n=N p50=X p90=X p99=X
  candidate-gen      n=N p50=X p90=X p99=X
  dime+              n=N p50=X p90=X p99=X
  negative-filter    n=N p50=X p90=X p99=X
  negative-verify    n=N p50=X p90=X p99=X
  positive-verify    n=N p50=X p90=X p99=X
  record-compile     n=N p50=X p90=X p99=X
  signature-build    n=N p50=X p90=X p99=X
`
	if norm != want {
		t.Errorf("output mismatch:\n--- got ---\n%s--- want ---\n%s", norm, want)
	}
}

func TestTraceExport(t *testing.T) {
	dir := t.TempDir()
	in := singleGroupFile(t, dir)
	tracePath := filepath.Join(dir, "trace.json")
	_, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var ex obs.TraceExport
	if err := json.Unmarshal(data, &ex); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if ex.Version != 1 || ex.Tool != "dime" || len(ex.Runs) != 1 {
		t.Fatalf("export header = %+v", ex)
	}
	run := ex.Runs[0]
	if run.Name != "dime+" {
		t.Fatalf("run name = %q", run.Name)
	}
	for _, phase := range []string{
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild, obs.PhaseCandidateGen,
		obs.PhasePositiveVerify, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify,
	} {
		if run.Find(phase) == nil {
			t.Errorf("trace missing phase %s", phase)
		}
	}
	if run.Counter("candidates") == 0 {
		t.Error("trace has no candidate counters")
	}
}

func TestMetricsExport(t *testing.T) {
	dir := t.TempDir()
	in := singleGroupFile(t, dir)
	metricsPath := filepath.Join(dir, "metrics.prom")
	_, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-metrics-out", metricsPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	// Counter values are deterministic (work counts, not timings); histogram
	// structure is fixed even though observations vary.
	for _, want := range []string{
		"# TYPE dime_positive_verify_verified counter\ndime_positive_verify_verified 27\n",
		"# TYPE dime_phase_positive_verify_seconds histogram\n",
		`dime_phase_positive_verify_seconds_bucket{le="+Inf"} 1`,
		"dime_phase_positive_verify_seconds_count 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	// The exposition must be structurally valid: every non-comment line is
	// "name[{le=...}] value", every metric has a preceding # TYPE.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.Fields(name)[0]] = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		base := fields[0]
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		base = strings.TrimSuffix(base, "_bucket")
		base = strings.TrimSuffix(base, "_sum")
		base = strings.TrimSuffix(base, "_count")
		if !typed[base] {
			t.Errorf("sample %q has no preceding # TYPE for %q", line, base)
		}
	}
}

func TestFlightExportCLI(t *testing.T) {
	dir := t.TempDir()
	in := singleGroupFile(t, dir)
	flightPath := filepath.Join(dir, "flight.json")
	_, stderr, code := runCLI(t, "-in", in, "-preset", "scholar",
		"-flight-out", flightPath, "-flight-resources")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex obs.FlightExport
	if err := json.Unmarshal(data, &ex); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if ex.Version != 1 || ex.Tool != "dime-flight" || ex.Kept != 1 || len(ex.Traces) != 1 {
		t.Fatalf("export header = %+v", ex)
	}
	tr := ex.Traces[0]
	if tr.Name != "dime+" || len(tr.Events) == 0 || tr.Events[0].Name != "dime+" {
		t.Fatalf("trace = %+v", tr)
	}
	phases := map[string]bool{}
	for _, ev := range tr.Events {
		phases[ev.Name] = true
	}
	for _, phase := range []string{
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild, obs.PhaseCandidateGen,
		obs.PhasePositiveVerify, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify,
	} {
		if !phases[phase] {
			t.Errorf("flight trace missing phase %s", phase)
		}
	}
	// -flight-resources attributes heap allocations; compiling 33 records
	// allocates, so the record-compile span must show a nonzero delta.
	for _, ev := range tr.Events {
		if ev.Name == obs.PhaseRecordCompile && ev.AllocBytes == 0 {
			t.Errorf("record-compile span has no allocation attribution: %+v", ev)
		}
	}
}

func TestFlightThresholdDropsFastRuns(t *testing.T) {
	dir := t.TempDir()
	in := singleGroupFile(t, dir)
	flightPath := filepath.Join(dir, "flight.json")
	_, stderr, code := runCLI(t, "-in", in, "-preset", "scholar",
		"-flight-out", flightPath, "-flight-threshold", "1h")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	var ex obs.FlightExport
	if err := json.Unmarshal(data, &ex); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if ex.Kept != 0 || ex.Dropped != 1 || len(ex.Traces) != 0 {
		t.Fatalf("1h threshold should drop the run: %+v", ex)
	}
}

func TestLogFlagEmitsSpans(t *testing.T) {
	in := singleGroupFile(t, t.TempDir())
	_, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-log")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, phase := range []string{"dime+", obs.PhaseCandidateGen, obs.PhaseNegativeVerify} {
		if !strings.Contains(stderr, "msg="+phase) {
			t.Errorf("log output missing span %q:\n%s", phase, stderr)
		}
	}
}

// TestIntraWorkersFlagIdenticalOutput pins the -intra-workers contract at
// the CLI level: every worker count must print the same levels AND the same
// stats line, because the parallel path is byte-identical to the sequential
// one — not merely set-equivalent.
func TestIntraWorkersFlagIdenticalOutput(t *testing.T) {
	in := singleGroupFile(t, t.TempDir())
	base, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-stats")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	// Latency quantiles are wall-clock measurements and differ between runs;
	// everything else must match byte for byte.
	base = normalizeLatencies(base)
	for _, workers := range []string{"1", "2", "4"} {
		got, stderr, code := runCLI(t, "-in", in, "-preset", "scholar", "-stats", "-intra-workers", workers)
		if code != 0 {
			t.Fatalf("-intra-workers %s: exit %d, stderr %q", workers, code, stderr)
		}
		if got = normalizeLatencies(got); got != base {
			t.Errorf("-intra-workers %s output diverged:\n--- got ---\n%s--- want ---\n%s", workers, got, base)
		}
	}
	if _, _, code := runCLI(t, "-in", in, "-preset", "scholar", "-intra-workers", "not-a-number"); code != 2 {
		t.Fatalf("bad -intra-workers value: exit %d, want 2", code)
	}
}

func TestRunErrors(t *testing.T) {
	if _, stderr, code := runCLI(t); code != 2 || !strings.Contains(stderr, "-in is required") {
		t.Fatalf("missing -in: code %d, stderr %q", code, stderr)
	}
	if _, _, code := runCLI(t, "-not-a-flag"); code != 2 {
		t.Fatalf("bad flag: code %d", code)
	}
	if _, stderr, code := runCLI(t, "-in", "/nonexistent.json", "-preset", "scholar"); code != 1 || !strings.Contains(stderr, "dime:") {
		t.Fatalf("missing input: code %d, stderr %q", code, stderr)
	}
}
