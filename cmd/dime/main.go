// Command dime discovers mis-categorized entities in a group loaded from a
// JSON file (the format cmd/datagen writes: a serialized entity.Group).
//
// Usage:
//
//	dime -in group.json [-preset scholar|amazon|dbgen] [-level N] [-basic] [-stats] [-why]
//	dime -in group.json -pos "ov(Authors) >= 2" -pos "..." -neg "ov(Authors) = 0"
//	dime -in group.json -rules rules.json [-ontology tree.json -tree Venue]
//	dime -in labeled.json -preset scholar -learn rules.json
//
// With a preset, the paper's rule set and record configuration for that
// dataset are used; -rules loads a rule-set JSON file instead (combined with
// -preset it reuses the preset's configuration, so on(...) predicates
// resolve); -pos/-neg parse ad-hoc DSL rules (functions: ov, jac, dice, cos,
// eds, ed, on). -learn runs the Section-V rule generator over the group's
// ground truth and writes the learned rule set. The tool prints each
// scrollbar level's discovered entities, with -why the per-partition
// witness, and with -stats the work counters.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"dime"
	"dime/internal/analysis"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/metrics"
	"dime/internal/ontology"
	"dime/internal/presets"
	"dime/internal/rulegen"
	"dime/internal/rules"
)

type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint(*s) }
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		in        = flag.String("in", "", "input file: group JSON, JSON-lines corpus, or CSV (required)")
		csvSep    = flag.String("csv-sep", "; ", "multi-value separator for CSV cells")
		csvID     = flag.String("csv-id", "", "CSV column holding entity IDs (default: first column)")
		preset    = flag.String("preset", "", "rule preset: scholar, amazon or dbgen")
		rulesFile = flag.String("rules", "", "rule-set JSON file (see dime.MarshalRuleSet for the format)")
		ontoFile  = flag.String("ontology", "", "ontology JSON file; registers the tree for attributes named in -tree")
		treeAttrs stringsFlag
		level     = flag.Int("level", -1, "scrollbar level to report (default: all levels)")
		basic     = flag.Bool("basic", false, "run the quadratic reference algorithm DIME instead of DIME+")
		stats     = flag.Bool("stats", false, "print work counters")
		why       = flag.Bool("why", false, "print the witnessing rule and entity pair per flagged partition")
		learn     = flag.String("learn", "", "learn a rule set from the group's ground truth and write it to this file")
		profile   = flag.Bool("profile", false, "profile the group's attributes (coverage, token shape, separability) and exit")
		pos       stringsFlag
		neg       stringsFlag
	)
	flag.Var(&pos, "pos", "positive rule DSL (repeatable)")
	flag.Var(&neg, "neg", "negative rule DSL (repeatable)")
	flag.Var(&treeAttrs, "tree", "attribute to attach the -ontology tree to (repeatable)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "dime: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	groups, err := loadGroups(*in, *csvID, *csvSep)
	if err != nil {
		fatal(err)
	}
	if len(groups) > 1 && !*profile && *learn == "" {
		cfg, rs, err := resolveRules(groups[0], *preset, *rulesFile, *ontoFile, treeAttrs, pos, neg)
		if err != nil {
			fatal(err)
		}
		if err := runCorpus(groups, dime.Options{Config: cfg, Rules: rs}); err != nil {
			fatal(err)
		}
		return
	}
	g := *groups[0]

	if *profile {
		if err := printProfile(&g); err != nil {
			fatal(err)
		}
		return
	}
	if *learn != "" {
		if err := learnRules(&g, *preset, *learn); err != nil {
			fatal(err)
		}
		return
	}

	cfg, rs, err := resolveRules(&g, *preset, *rulesFile, *ontoFile, treeAttrs, pos, neg)
	if err != nil {
		fatal(err)
	}

	opts := dime.Options{Config: cfg, Rules: rs}
	var res *dime.Result
	if *basic {
		res, err = dime.DiscoverBasic(&g, opts)
	} else {
		res, err = dime.Discover(&g, opts)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("group %q: %d entities, %d partitions, pivot size %d\n",
		g.Name, g.Size(), len(res.Partitions), res.PivotSize())
	for li, lv := range res.Levels {
		if *level >= 0 && li != *level {
			continue
		}
		fmt.Printf("level %d (+%s): %d mis-categorized\n", li+1, lv.RuleName, len(lv.EntityIDs))
		for _, id := range lv.EntityIDs {
			fmt.Printf("  %s\n", id)
		}
		if g.Truth != nil {
			fmt.Printf("  score vs ground truth: %s\n",
				metrics.Score(lv.EntityIDs, g.MisCategorizedIDs()))
		}
	}
	if *why {
		fmt.Println("witnesses:")
		for _, lv := range res.Levels[len(res.Levels)-1:] {
			for _, pi := range lv.PartitionIndexes {
				w, ok := res.WitnessOf(pi)
				if !ok {
					continue
				}
				if w.EntityID == "" {
					fmt.Printf("  partition %d: every pair provably satisfies %s (signature filter)\n", pi, w.Rule)
				} else {
					fmt.Printf("  partition %d: %s holds for (%s, pivot %s)\n", pi, w.Rule, w.EntityID, w.PivotID)
				}
			}
		}
	}
	if *stats {
		fmt.Printf("stats: %+v\n", res.Stats)
	}
}

// resolveRules picks the rule source: a -rules file (parsed against the
// preset's config when -preset is also given, so ontology predicates
// resolve), a preset's built-in rules, or ad-hoc -pos/-neg DSL flags.
func resolveRules(g *entity.Group, preset, rulesFile, ontoFile string, treeAttrs, pos, neg []string) (*rules.Config, rules.RuleSet, error) {
	if rulesFile != "" {
		var cfg *rules.Config
		switch preset {
		case "":
			cfg = rules.NewConfig(g.Schema)
		default:
			presetCfg, _, err := resolveRules(g, preset, "", "", nil, nil, nil)
			if err != nil {
				return nil, rules.RuleSet{}, err
			}
			cfg = presetCfg
		}
		if ontoFile != "" {
			data, err := os.ReadFile(ontoFile)
			if err != nil {
				return nil, rules.RuleSet{}, err
			}
			tree, err := ontology.LoadTree(data)
			if err != nil {
				return nil, rules.RuleSet{}, err
			}
			if len(treeAttrs) == 0 {
				return nil, rules.RuleSet{}, fmt.Errorf("dime: -ontology needs at least one -tree attribute")
			}
			for _, attr := range treeAttrs {
				cfg.WithTree(attr, tree)
			}
		}
		data, err := os.ReadFile(rulesFile)
		if err != nil {
			return nil, rules.RuleSet{}, err
		}
		rs, err := rules.LoadRuleSet(cfg, data)
		return cfg, rs, err
	}
	switch preset {
	case "scholar":
		cfg := presets.ScholarConfig()
		return cfg, presets.ScholarRules(cfg), nil
	case "amazon":
		// Without a trained topic model, use an oracle-free configuration:
		// regenerate a reference corpus to learn the description hierarchy
		// would need the corpus; here we use a corpus-independent true tree.
		corpus := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: 1, Seed: 1})
		cfg := presets.AmazonConfig(corpus.TrueTree, corpus.TrueMapper())
		return cfg, presets.AmazonRules(cfg), nil
	case "dbgen":
		cfg := presets.DBGenConfig()
		return cfg, presets.DBGenRules(cfg), nil
	case "":
		if len(pos) == 0 || len(neg) == 0 {
			return nil, rules.RuleSet{}, fmt.Errorf("dime: provide -preset, or at least one -pos and one -neg rule")
		}
		cfg := rules.NewConfig(g.Schema)
		var rs rules.RuleSet
		for i, dsl := range pos {
			r, err := rules.Parse(cfg, fmt.Sprintf("pos%d", i+1), rules.Positive, dsl)
			if err != nil {
				return nil, rs, err
			}
			rs.Positive = append(rs.Positive, r)
		}
		for i, dsl := range neg {
			r, err := rules.Parse(cfg, fmt.Sprintf("neg%d", i+1), rules.Negative, dsl)
			if err != nil {
				return nil, rs, err
			}
			rs.Negative = append(rs.Negative, r)
		}
		return cfg, rs, nil
	default:
		return nil, rules.RuleSet{}, fmt.Errorf("dime: unknown preset %q", preset)
	}
}

// learnRules samples labelled pairs from the group's ground truth, runs the
// greedy rule generator (Section V of the paper), and writes the learned
// rule set as JSON. A preset supplies the record configuration (ontologies,
// token modes); without one a plain config over the group's schema is used.
func learnRules(g *entity.Group, preset, outPath string) error {
	if len(g.Truth) == 0 {
		return fmt.Errorf("dime: -learn needs a group with ground truth (the \"truth\" field)")
	}
	cfg, _, err := resolveRules(g, preset, "", "", nil, []string{"ov(" + g.Schema.Name(0) + ") >= 1"}, []string{"ov(" + g.Schema.Name(0) + ") = 0"})
	if err != nil {
		return err
	}
	recs, err := cfg.NewRecords(g)
	if err != nil {
		return err
	}
	var good, bad []*rules.Record
	for _, r := range recs {
		if g.Truth[r.Entity.ID] {
			bad = append(bad, r)
		} else {
			good = append(good, r)
		}
	}
	if len(good) < 2 || len(bad) == 0 {
		return fmt.Errorf("dime: need at least two correct and one mis-categorized entity to learn from")
	}
	var exs []rulegen.Example
	for i := 0; i < 250; i++ {
		exs = append(exs, rulegen.Example{A: good[(i*7)%len(good)], B: good[(i*13+1)%len(good)], Same: true})
	}
	for i := 0; i < 250; i++ {
		exs = append(exs, rulegen.Example{A: good[(i*11)%len(good)], B: bad[i%len(bad)], Same: false})
	}
	rs, err := rulegen.Generate(rulegen.Options{Config: cfg, MaxThresholds: 32}, exs)
	if err != nil {
		return err
	}
	data, err := rules.MarshalRuleSet(rs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "learned %d positive and %d negative rules → %s\n",
		len(rs.Positive), len(rs.Negative), outPath)
	return nil
}

// printProfile renders the attribute profile of the group, ranked by
// separability when ground truth is available.
func printProfile(g *entity.Group) error {
	profiles, err := analysis.Profile(g, analysis.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("group %q: %d entities, %d labelled mis-categorized\n\n",
		g.Name, g.Size(), len(g.MisCategorizedIDs()))
	fmt.Printf("%-18s %8s %8s %8s %8s %9s %9s %6s\n",
		"Attribute", "Coverage", "Multi", "AvgVals", "AvgWords", "Distinct", "Separab.", "Mode")
	for _, p := range analysis.RankBySeparability(profiles) {
		mode := "elem"
		if p.SuggestedMode == rules.WordsMode {
			mode = "words"
		}
		sep := "    -"
		if !math.IsNaN(p.Separability) {
			sep = fmt.Sprintf("%+.3f", p.Separability)
		}
		fmt.Printf("%-18s %8.2f %8.2f %8.1f %8.1f %9.2f %9s %6s\n",
			p.Name, p.Coverage, p.MultiValued, p.AvgValues, p.AvgWords, p.DistinctRatio, sep, mode)
	}
	fmt.Println("\nhigh-separability attributes are where positive and negative rules should look first")
	return nil
}

// runCorpus batch-processes a multi-group corpus with DiscoverAll and
// prints a per-group summary plus (when ground truth is present) the
// aggregate score of the deepest scrollbar level.
func runCorpus(groups []*entity.Group, opts dime.Options) error {
	results, err := dime.DiscoverAll(groups, opts, 0)
	if err != nil {
		return err
	}
	var scores []metrics.PRF
	fmt.Printf("%-24s %8s %8s %8s  %s\n", "Group", "Entities", "Pivot", "Flagged", "Score")
	for i, g := range groups {
		res := results[i]
		scoreStr := "-"
		if g.Truth != nil {
			s := metrics.Score(res.Final(), g.MisCategorizedIDs())
			scores = append(scores, s)
			scoreStr = s.String()
		}
		fmt.Printf("%-24s %8d %8d %8d  %s\n", g.Name, g.Size(), res.PivotSize(), len(res.Final()), scoreStr)
	}
	if len(scores) > 0 {
		fmt.Printf("\naggregate (deepest level, %d groups): %s\n", len(scores), metrics.Average(scores))
	}
	return nil
}

// loadGroups reads the input file as CSV (by extension) or as a JSON /
// JSON-lines corpus.
func loadGroups(path, csvID, csvSep string) ([]*entity.Group, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		g, err := entity.ReadGroupCSV(f, name, csvID, csvSep)
		if err != nil {
			return nil, err
		}
		return []*entity.Group{g}, nil
	}
	return entity.ReadGroups(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dime: %v\n", err)
	os.Exit(1)
}
