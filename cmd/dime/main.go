// Command dime discovers mis-categorized entities in a group loaded from a
// JSON file (the format cmd/datagen writes: a serialized entity.Group).
//
// Usage:
//
//	dime -in group.json [-preset scholar|amazon|dbgen] [-level N] [-basic] [-stats] [-why] [-intra-workers N]
//	dime -in group.json -pos "ov(Authors) >= 2" -pos "..." -neg "ov(Authors) = 0"
//	dime -in group.json -rules rules.json [-ontology tree.json -tree Venue]
//	dime -in labeled.json -preset scholar -learn rules.json
//	dime -in group.json -preset scholar -trace trace.json -log
//	dime -in corpus.jsonl -preset scholar -stats -serve-debug :6060
//
// With a preset, the paper's rule set and record configuration for that
// dataset are used; -rules loads a rule-set JSON file instead (combined with
// -preset it reuses the preset's configuration, so on(...) predicates
// resolve); -pos/-neg parse ad-hoc DSL rules (functions: ov, jac, dice, cos,
// eds, ed, on). -learn runs the Section-V rule generator over the group's
// ground truth and writes the learned rule set. The tool prints each
// scrollbar level's discovered entities, with -why the per-partition
// witness, and with -stats the work counters (for corpora, the batch
// aggregate with wall time and worker count).
//
// Observability: -trace FILE writes a JSON span tree of every pipeline phase
// with timings and work counters; -log emits one structured log line per
// completed phase to stderr; -serve-debug ADDR serves /debug/pprof/,
// /debug/vars, /debug/flight and a Prometheus-format /metrics for the
// duration of the run and then waits for ctrl-c so the endpoints can be
// inspected. -metrics-out FILE writes the final Prometheus text snapshot;
// -flight-out FILE dumps the flight recorder (ring buffer of recent runs,
// tail-retained above -flight-threshold, with per-span heap-allocation
// deltas under -flight-resources). With -stats, phase-latency quantiles
// (p50/p90/p99, interpolated from fixed-bucket histograms) follow the work
// counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"dime"
	"dime/internal/analysis"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/metrics"
	"dime/internal/obs"
	"dime/internal/ontology"
	"dime/internal/presets"
	"dime/internal/rulegen"
	"dime/internal/rules"
)

type stringsFlag []string

func (s *stringsFlag) String() string { return fmt.Sprint(*s) }
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is the testable entry point: it parses args, executes, writes human
// output to stdout and diagnostics to stderr, and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dime", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "input file: group JSON, JSON-lines corpus, or CSV (required)")
		csvSep     = fs.String("csv-sep", "; ", "multi-value separator for CSV cells")
		csvID      = fs.String("csv-id", "", "CSV column holding entity IDs (default: first column)")
		preset     = fs.String("preset", "", "rule preset: scholar, amazon or dbgen")
		rulesFile  = fs.String("rules", "", "rule-set JSON file (see dime.MarshalRuleSet for the format)")
		ontoFile   = fs.String("ontology", "", "ontology JSON file; registers the tree for attributes named in -tree")
		treeAttrs  stringsFlag
		level      = fs.Int("level", -1, "scrollbar level to report (default: all levels)")
		basic      = fs.Bool("basic", false, "run the quadratic reference algorithm DIME instead of DIME+")
		stats      = fs.Bool("stats", false, "print work counters (batch aggregate for corpora)")
		why        = fs.Bool("why", false, "print the witnessing rule and entity pair per flagged partition")
		learn      = fs.String("learn", "", "learn a rule set from the group's ground truth and write it to this file")
		profile    = fs.Bool("profile", false, "profile the group's attributes (coverage, token shape, separability) and exit")
		intra      = fs.Int("intra-workers", 0, "worker goroutines within each DIME+ run (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
		traceFile  = fs.String("trace", "", "write a JSON span trace of the run to this file")
		logSpans   = fs.Bool("log", false, "emit one structured log line per completed phase to stderr")
		serveDebug = fs.String("serve-debug", "", "serve /debug/pprof/, /debug/vars, /debug/flight and /metrics on this address (e.g. :6060)")
		metricsOut = fs.String("metrics-out", "", "write the final metrics snapshot in Prometheus text format to this file")
		flightOut  = fs.String("flight-out", "", "write the flight-recorder dump (recent retained runs) as JSON to this file")
		flightThr  = fs.Duration("flight-threshold", 0, "flight recorder keeps only runs at least this long (0 keeps all)")
		flightRes  = fs.Bool("flight-resources", false, "attach per-span heap-allocation deltas to flight-recorder events")
		pos        stringsFlag
		neg        stringsFlag
	)
	fs.Var(&pos, "pos", "positive rule DSL (repeatable)")
	fs.Var(&neg, "neg", "negative rule DSL (repeatable)")
	fs.Var(&treeAttrs, "tree", "attribute to attach the -ontology tree to (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *in == "" {
		fmt.Fprintln(stderr, "dime: -in is required")
		fs.Usage()
		return 2
	}

	// Observability wiring: any combination of a JSON trace, per-span logs,
	// the metrics registry (behind the debug server and/or -metrics-out and
	// -stats quantiles), and the flight recorder.
	var (
		tr     *obs.Trace
		reg    *obs.Registry
		fr     *obs.FlightRecorder
		probes []obs.Probe
		srv    *obs.DebugServer
	)
	if *traceFile != "" {
		tr = obs.NewTrace()
		probes = append(probes, tr)
	}
	if *logSpans {
		probes = append(probes, obs.Logged(obs.NewLogger(stderr, slog.LevelInfo), slog.LevelInfo))
	}
	if *serveDebug != "" {
		// The debug server exposes the process-wide registry, so feed that
		// one; otherwise a run-local registry keeps the snapshot scoped.
		reg = obs.Default()
	} else if *stats || *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	if reg != nil {
		probes = append(probes, obs.Observer(reg))
	}
	if *flightOut != "" || *serveDebug != "" || *flightThr > 0 || *flightRes {
		fr = obs.NewFlightRecorder(obs.FlightOptions{Threshold: *flightThr, Resources: *flightRes})
		probes = append(probes, fr)
	}
	if *serveDebug != "" {
		var err error
		if srv, err = obs.ServeDebug(*serveDebug, reg, fr); err != nil {
			fmt.Fprintf(stderr, "dime: %v\n", err)
			return 1
		}
		defer func() { _ = srv.Close() }()
	}
	probe := obs.Multi(probes...)

	code := runInput(stdout, stderr, probe, cliArgs{
		in: *in, csvID: *csvID, csvSep: *csvSep,
		preset: *preset, rulesFile: *rulesFile, ontoFile: *ontoFile,
		treeAttrs: treeAttrs, pos: pos, neg: neg,
		level: *level, basic: *basic, stats: *stats, why: *why,
		learn: *learn, profile: *profile, intraWorkers: *intra,
		reg: reg,
	})

	if tr != nil {
		f, err := os.Create(*traceFile)
		if err == nil {
			err = tr.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "dime: writing trace: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if *metricsOut != "" {
		if err := writeFileWith(*metricsOut, reg.WritePrometheus); err != nil {
			fmt.Fprintf(stderr, "dime: writing metrics: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if *flightOut != "" {
		if err := writeFileWith(*flightOut, fr.WriteJSON); err != nil {
			fmt.Fprintf(stderr, "dime: writing flight dump: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if srv != nil && code == 0 {
		fmt.Fprintf(stderr, "dime: debug server on http://%s (ctrl-c to exit)\n", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	return code
}

// cliArgs carries the parsed flags into the execution paths.
type cliArgs struct {
	in, csvID, csvSep           string
	preset, rulesFile, ontoFile string
	treeAttrs, pos, neg         []string
	level                       int
	basic, stats, why           bool
	learn                       string
	profile                     bool
	intraWorkers                int
	// reg is the Observer registry behind the run's probe (nil when no
	// metrics sink was requested); -stats reads its phase-latency quantiles.
	reg *obs.Registry
}

// writeFileWith creates path and streams dump into it.
func writeFileWith(path string, dump func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runInput dispatches to the profile / learn / corpus / single-group paths.
func runInput(stdout, stderr io.Writer, probe obs.Probe, c cliArgs) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dime: %v\n", err)
		return 1
	}
	groups, err := loadGroups(c.in, c.csvID, c.csvSep)
	if err != nil {
		return fail(err)
	}
	if len(groups) > 1 && !c.profile && c.learn == "" {
		cfg, rs, err := resolveRules(groups[0], c.preset, c.rulesFile, c.ontoFile, c.treeAttrs, c.pos, c.neg)
		if err != nil {
			return fail(err)
		}
		opts := dime.Options{Config: cfg, Rules: rs, Probe: probe, IntraWorkers: c.intraWorkers}
		if err := runCorpus(stdout, groups, opts, c.stats, c.reg); err != nil {
			return fail(err)
		}
		return 0
	}
	g := *groups[0]

	if c.profile {
		if err := printProfile(stdout, &g); err != nil {
			return fail(err)
		}
		return 0
	}
	if c.learn != "" {
		if err := learnRules(stderr, &g, c.preset, c.learn, probe); err != nil {
			return fail(err)
		}
		return 0
	}

	cfg, rs, err := resolveRules(&g, c.preset, c.rulesFile, c.ontoFile, c.treeAttrs, c.pos, c.neg)
	if err != nil {
		return fail(err)
	}

	opts := dime.Options{Config: cfg, Rules: rs, Probe: probe, IntraWorkers: c.intraWorkers}
	var res *dime.Result
	if c.basic {
		res, err = dime.DiscoverBasic(&g, opts)
	} else {
		res, err = dime.Discover(&g, opts)
	}
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "group %q: %d entities, %d partitions, pivot size %d\n",
		g.Name, g.Size(), len(res.Partitions), res.PivotSize())
	for li, lv := range res.Levels {
		if c.level >= 0 && li != c.level {
			continue
		}
		fmt.Fprintf(stdout, "level %d (+%s): %d mis-categorized\n", li+1, lv.RuleName, len(lv.EntityIDs))
		for _, id := range lv.EntityIDs {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		if g.Truth != nil {
			fmt.Fprintf(stdout, "  score vs ground truth: %s\n",
				metrics.Score(lv.EntityIDs, g.MisCategorizedIDs()))
		}
	}
	if c.why {
		fmt.Fprintln(stdout, "witnesses:")
		for _, lv := range res.Levels[len(res.Levels)-1:] {
			for _, pi := range lv.PartitionIndexes {
				w, ok := res.WitnessOf(pi)
				if !ok {
					continue
				}
				if w.EntityID == "" {
					fmt.Fprintf(stdout, "  partition %d: every pair provably satisfies %s (signature filter)\n", pi, w.Rule)
				} else {
					fmt.Fprintf(stdout, "  partition %d: %s holds for (%s, pivot %s)\n", pi, w.Rule, w.EntityID, w.PivotID)
				}
			}
		}
	}
	if c.stats {
		fmt.Fprintf(stdout, "stats: %+v\n", res.Stats)
		printPhaseLatencies(stdout, c.reg)
	}
	return 0
}

// printPhaseLatencies renders the phase-latency histograms the Observer
// collected: one line per pipeline phase with the count and interpolated
// p50/p90/p99 (seconds). Nothing is printed without a registry or when no
// phase spans were observed.
func printPhaseLatencies(stdout io.Writer, reg *obs.Registry) {
	if reg == nil {
		return
	}
	header := false
	for _, s := range reg.HistogramSummaries() {
		phase, ok := strings.CutPrefix(s.Name, "dime.phase.")
		if !ok {
			continue
		}
		phase = strings.TrimSuffix(phase, ".seconds")
		if !header {
			fmt.Fprintln(stdout, "phase latency (s):")
			header = true
		}
		fmt.Fprintf(stdout, "  %-18s n=%d p50=%.3g p90=%.3g p99=%.3g\n",
			phase, s.Count, s.P50, s.P90, s.P99)
	}
}

// resolveRules picks the rule source: a -rules file (parsed against the
// preset's config when -preset is also given, so ontology predicates
// resolve), a preset's built-in rules, or ad-hoc -pos/-neg DSL flags.
func resolveRules(g *entity.Group, preset, rulesFile, ontoFile string, treeAttrs, pos, neg []string) (*rules.Config, rules.RuleSet, error) {
	if rulesFile != "" {
		var cfg *rules.Config
		switch preset {
		case "":
			cfg = rules.NewConfig(g.Schema)
		default:
			presetCfg, _, err := resolveRules(g, preset, "", "", nil, nil, nil)
			if err != nil {
				return nil, rules.RuleSet{}, err
			}
			cfg = presetCfg
		}
		if ontoFile != "" {
			data, err := os.ReadFile(ontoFile)
			if err != nil {
				return nil, rules.RuleSet{}, err
			}
			tree, err := ontology.LoadTree(data)
			if err != nil {
				return nil, rules.RuleSet{}, err
			}
			if len(treeAttrs) == 0 {
				return nil, rules.RuleSet{}, fmt.Errorf("dime: -ontology needs at least one -tree attribute")
			}
			for _, attr := range treeAttrs {
				cfg.WithTree(attr, tree)
			}
		}
		data, err := os.ReadFile(rulesFile)
		if err != nil {
			return nil, rules.RuleSet{}, err
		}
		rs, err := rules.LoadRuleSet(cfg, data)
		return cfg, rs, err
	}
	switch preset {
	case "scholar":
		cfg := presets.ScholarConfig()
		return cfg, presets.ScholarRules(cfg), nil
	case "amazon":
		// Without a trained topic model, use an oracle-free configuration:
		// regenerate a reference corpus to learn the description hierarchy
		// would need the corpus; here we use a corpus-independent true tree.
		corpus := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: 1, Seed: 1})
		cfg := presets.AmazonConfig(corpus.TrueTree, corpus.TrueMapper())
		return cfg, presets.AmazonRules(cfg), nil
	case "dbgen":
		cfg := presets.DBGenConfig()
		return cfg, presets.DBGenRules(cfg), nil
	case "":
		if len(pos) == 0 || len(neg) == 0 {
			return nil, rules.RuleSet{}, fmt.Errorf("dime: provide -preset, or at least one -pos and one -neg rule")
		}
		cfg := rules.NewConfig(g.Schema)
		var rs rules.RuleSet
		for i, dsl := range pos {
			r, err := rules.Parse(cfg, fmt.Sprintf("pos%d", i+1), rules.Positive, dsl)
			if err != nil {
				return nil, rs, err
			}
			rs.Positive = append(rs.Positive, r)
		}
		for i, dsl := range neg {
			r, err := rules.Parse(cfg, fmt.Sprintf("neg%d", i+1), rules.Negative, dsl)
			if err != nil {
				return nil, rs, err
			}
			rs.Negative = append(rs.Negative, r)
		}
		return cfg, rs, nil
	default:
		return nil, rules.RuleSet{}, fmt.Errorf("dime: unknown preset %q", preset)
	}
}

// learnRules samples labelled pairs from the group's ground truth, runs the
// greedy rule generator (Section V of the paper), and writes the learned
// rule set as JSON. A preset supplies the record configuration (ontologies,
// token modes); without one a plain config over the group's schema is used.
func learnRules(stderr io.Writer, g *entity.Group, preset, outPath string, probe obs.Probe) error {
	if len(g.Truth) == 0 {
		return fmt.Errorf("dime: -learn needs a group with ground truth (the \"truth\" field)")
	}
	cfg, _, err := resolveRules(g, preset, "", "", nil, []string{"ov(" + g.Schema.Name(0) + ") >= 1"}, []string{"ov(" + g.Schema.Name(0) + ") = 0"})
	if err != nil {
		return err
	}
	recs, err := cfg.NewRecords(g)
	if err != nil {
		return err
	}
	var good, bad []*rules.Record
	for _, r := range recs {
		if g.Truth[r.Entity.ID] {
			bad = append(bad, r)
		} else {
			good = append(good, r)
		}
	}
	if len(good) < 2 || len(bad) == 0 {
		return fmt.Errorf("dime: need at least two correct and one mis-categorized entity to learn from")
	}
	var exs []rulegen.Example
	for i := 0; i < 250; i++ {
		exs = append(exs, rulegen.Example{A: good[(i*7)%len(good)], B: good[(i*13+1)%len(good)], Same: true})
	}
	for i := 0; i < 250; i++ {
		exs = append(exs, rulegen.Example{A: good[(i*11)%len(good)], B: bad[i%len(bad)], Same: false})
	}
	rs, err := rulegen.Generate(rulegen.Options{Config: cfg, MaxThresholds: 32, Probe: probe}, exs)
	if err != nil {
		return err
	}
	data, err := rules.MarshalRuleSet(rs)
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "learned %d positive and %d negative rules → %s\n",
		len(rs.Positive), len(rs.Negative), outPath)
	return nil
}

// printProfile renders the attribute profile of the group, ranked by
// separability when ground truth is available.
func printProfile(stdout io.Writer, g *entity.Group) error {
	profiles, err := analysis.Profile(g, analysis.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "group %q: %d entities, %d labelled mis-categorized\n\n",
		g.Name, g.Size(), len(g.MisCategorizedIDs()))
	fmt.Fprintf(stdout, "%-18s %8s %8s %8s %8s %9s %9s %6s\n",
		"Attribute", "Coverage", "Multi", "AvgVals", "AvgWords", "Distinct", "Separab.", "Mode")
	for _, p := range analysis.RankBySeparability(profiles) {
		mode := "elem"
		if p.SuggestedMode == rules.WordsMode {
			mode = "words"
		}
		sep := "    -"
		if !math.IsNaN(p.Separability) {
			sep = fmt.Sprintf("%+.3f", p.Separability)
		}
		fmt.Fprintf(stdout, "%-18s %8.2f %8.2f %8.1f %8.1f %9.2f %9s %6s\n",
			p.Name, p.Coverage, p.MultiValued, p.AvgValues, p.AvgWords, p.DistinctRatio, sep, mode)
	}
	fmt.Fprintln(stdout, "\nhigh-separability attributes are where positive and negative rules should look first")
	return nil
}

// runCorpus batch-processes a multi-group corpus with DiscoverAll and
// prints a per-group summary plus (when ground truth is present) the
// aggregate score of the deepest scrollbar level. With stats, the batch
// aggregate (summed work counters, wall time, workers) follows.
func runCorpus(stdout io.Writer, groups []*entity.Group, opts dime.Options, stats bool, reg *obs.Registry) error {
	results, bs, err := dime.DiscoverAllStats(groups, opts, 0)
	if err != nil {
		return err
	}
	var scores []metrics.PRF
	fmt.Fprintf(stdout, "%-24s %8s %8s %8s  %s\n", "Group", "Entities", "Pivot", "Flagged", "Score")
	for i, g := range groups {
		res := results[i]
		scoreStr := "-"
		if g.Truth != nil {
			s := metrics.Score(res.Final(), g.MisCategorizedIDs())
			scores = append(scores, s)
			scoreStr = s.String()
		}
		fmt.Fprintf(stdout, "%-24s %8d %8d %8d  %s\n", g.Name, g.Size(), res.PivotSize(), len(res.Final()), scoreStr)
	}
	if len(scores) > 0 {
		fmt.Fprintf(stdout, "\naggregate (deepest level, %d groups): %s\n", len(scores), metrics.Average(scores))
	}
	if stats {
		fmt.Fprintf(stdout, "\nbatch: %d groups, %d workers, wall %v\n", bs.Groups, bs.Workers, bs.Wall.Round(time.Millisecond))
		gl := bs.GroupLatency
		fmt.Fprintf(stdout, "group latency (s): n=%d p50=%.3g p90=%.3g p99=%.3g\n",
			gl.Count, gl.P50, gl.P90, gl.P99)
		fmt.Fprintf(stdout, "stats: %+v\n", bs.Stats)
		printPhaseLatencies(stdout, reg)
	}
	return nil
}

// loadGroups reads the input file as CSV (by extension) or as a JSON /
// JSON-lines corpus.
func loadGroups(path, csvID, csvSep string) ([]*entity.Group, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		g, err := entity.ReadGroupCSV(f, name, csvID, csvSep)
		if err != nil {
			return nil, err
		}
		return []*entity.Group{g}, nil
	}
	return entity.ReadGroups(f)
}
