package main

import (
	"os"
	"path/filepath"
	"testing"

	"dime/internal/datagen"
)

func TestResolveRulesPresets(t *testing.T) {
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 10, Seed: 1})
	for _, preset := range []string{"scholar", "dbgen", "amazon"} {
		cfg, rs, err := resolveRules(g, preset, "", "", nil, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if cfg == nil || len(rs.Positive) == 0 || len(rs.Negative) == 0 {
			t.Fatalf("%s: incomplete resolution", preset)
		}
	}
	if _, _, err := resolveRules(g, "nope", "", "", nil, nil, nil); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestResolveRulesDSL(t *testing.T) {
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 10, Seed: 1})
	cfg, rs, err := resolveRules(g, "", "", "", nil,
		[]string{"ov(Authors) >= 2"}, []string{"ov(Authors) = 0"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Schema.Equal(g.Schema) {
		t.Fatal("DSL path should use the group's schema")
	}
	if rs.Positive[0].Name != "pos1" || rs.Negative[0].Name != "neg1" {
		t.Fatalf("rule names: %q / %q", rs.Positive[0].Name, rs.Negative[0].Name)
	}
	if _, _, err := resolveRules(g, "", "", "", nil, nil, nil); err == nil {
		t.Fatal("no preset and no rules should fail")
	}
	if _, _, err := resolveRules(g, "", "", "", nil, []string{"bad("}, []string{"ov(Authors) = 0"}); err == nil {
		t.Fatal("bad DSL should fail")
	}
}

func TestResolveRulesFromFiles(t *testing.T) {
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 10, Seed: 1})
	dir := t.TempDir()

	rulesPath := filepath.Join(dir, "rules.json")
	if err := os.WriteFile(rulesPath, []byte(`{
		"positive": [{"name": "p", "rule": "ov(Authors) >= 2"}],
		"negative": [{"name": "n", "rule": "ov(Authors) = 0"}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rs, err := resolveRules(g, "", rulesPath, "", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Positive[0].Name != "p" {
		t.Fatalf("loaded rule name = %q", rs.Positive[0].Name)
	}

	// With an ontology file and a tree attribute, on(...) rules resolve.
	ontoPath := filepath.Join(dir, "onto.json")
	if err := os.WriteFile(ontoPath, []byte(`{
		"label": "Venue",
		"children": [{"label": "CS", "children": [{"label": "SIGMOD"}, {"label": "VLDB"}]}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rulesPath2 := filepath.Join(dir, "rules2.json")
	if err := os.WriteFile(rulesPath2, []byte(`{
		"positive": [{"rule": "ov(Authors) >= 1 && on(Venue) >= 0.6"}],
		"negative": [{"rule": "on(Venue) <= 0.3"}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, rs2, err := resolveRules(g, "", rulesPath2, ontoPath, []string{"Venue"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tree("Venue") == nil {
		t.Fatal("ontology not registered")
	}
	if len(rs2.Positive) != 1 {
		t.Fatal("rules not loaded")
	}
	// Ontology without -tree attributes must fail.
	if _, _, err := resolveRules(g, "", rulesPath2, ontoPath, nil, nil, nil); err == nil {
		t.Fatal("ontology without tree attributes should fail")
	}
	// Missing files must fail.
	if _, _, err := resolveRules(g, "", filepath.Join(dir, "nope.json"), "", nil, nil, nil); err == nil {
		t.Fatal("missing rules file should fail")
	}
}
