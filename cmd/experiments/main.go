// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section VI) on the synthetic datasets. Each experiment prints
// its artifacts as aligned text tables; see EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
// Usage:
//
//	experiments [-exp N] [-detail] [-large] [-full] [-pages N] [-pubs N] [-seed S] [-serve-debug :6060]
//
// Without -exp, every experiment runs in order. -serve-debug exposes
// /debug/pprof/, /debug/vars, /debug/flight and a Prometheus-format /metrics
// for the duration of the run, so long sweeps can be profiled live.
package main

import (
	"flag"
	"fmt"
	"os"

	"dime/internal/experiments"
	"dime/internal/obs"
)

func main() {
	var (
		exp        = flag.Int("exp", 0, "experiment number 1..7 (0 = all; 2 is part of 1; 7 = ablation)")
		detail     = flag.Bool("detail", false, "with -exp 3: also print the per-page Figure 8 table")
		large      = flag.Bool("large", false, "with -exp 5: also run the DBGen 20k-100k table")
		full       = flag.Bool("full", false, "run efficiency sweeps at the paper's sizes (slow)")
		pages      = flag.Int("pages", 0, "Scholar pages to generate (default 40; paper used 200)")
		pubs       = flag.Int("pubs", 0, "publications per page (default 150; paper avg 340)")
		seed       = flag.Int64("seed", 0, "generation seed (default 2018)")
		chart      = flag.Bool("chart", false, "render each table's numeric columns as bar charts too")
		serveDebug = flag.String("serve-debug", "", "serve /debug/pprof/, /debug/vars, /debug/flight and /metrics on this address while experiments run")
	)
	flag.Parse()

	if *serveDebug != "" {
		srv, err := obs.ServeDebug(*serveDebug, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "experiments: debug server on http://%s\n", srv.Addr())
	}

	opts := experiments.Options{
		Pages:       *pages,
		PubsPerPage: *pubs,
		Seed:        *seed,
		Full:        *full,
	}

	type runner struct {
		n   int
		fn  func(experiments.Options) ([]experiments.Table, error)
		on  bool
		tag string
	}
	runs := []runner{
		{1, experiments.Exp1, *exp == 0 || *exp == 1 || *exp == 2, "Exp-1/2: comparison with EM and ML approaches"},
		{3, experiments.Exp3, *exp == 0 || *exp == 3, "Exp-3: effectiveness of tuning negative rules"},
		{3, experiments.Exp3Detail, (*exp == 0 || *exp == 3) && *detail, "Exp-3 detail: Figure 8 per-page results"},
		{4, experiments.Exp4, *exp == 0 || *exp == 4, "Exp-4: effectiveness of positive rules"},
		{5, experiments.Exp5, *exp == 0 || *exp == 5, "Exp-5: efficiency study"},
		{5, experiments.Exp5Large, (*exp == 0 || *exp == 5) && *large, "Exp-5 large: DBGen scaling table"},
		{6, experiments.Exp6, *exp == 0 || *exp == 6, "Exp-6: comparison with rule generation methods"},
		{7, experiments.Ablation, *exp == 0 || *exp == 7, "Ablation: DIME+ design choices"},
	}

	for _, r := range runs {
		if !r.on {
			continue
		}
		fmt.Printf("### %s\n\n", r.tag)
		tables, err := r.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		for i := range tables {
			tables[i].Fprint(os.Stdout)
			if *chart {
				tables[i].FprintChart(os.Stdout)
			}
		}
	}
}
