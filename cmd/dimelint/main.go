// Command dimelint runs DIME's static-analysis suite (internal/lint) over
// the module and reports violations of the codebase's correctness
// invariants with file:line diagnostics — per-package analyzers plus the
// interprocedural detersafe / panicprop / resultpkgs passes over the module
// call graph.
//
// Usage:
//
//	dimelint [flags] [patterns...]
//
// Patterns default to ./... (the whole module). Findings are suppressed
// with an in-source comment on the offending line (or the line above):
//
//	//lint:ignore <analyzer|all> <reason>
//
// or accepted in a baseline file (see -baseline). Exit codes:
//
//	0  no findings (or every finding is covered by the baseline)
//	1  findings (with -baseline: findings not covered by it)
//	2  usage or load error (bad flags, unmatched patterns, unreadable
//	   baseline)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dime/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one diagnostic. File is
// module-relative with forward slashes so output is machine-stable across
// checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dimelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	baselinePath := fs.String("baseline", "", "accept findings recorded in this baseline `file`; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this baseline `file` and exit 0")
	typeErrors := fs.Bool("type-errors", false, "also print type-check errors (findings are best-effort when present)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dimelint [flags] [patterns...]\n\npatterns default to ./...; flags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	modRoot, err := lint.ModuleRoot(cwd)
	if err != nil {
		return fatal(stderr, err)
	}
	pkgs, err := lint.Load(cwd, fs.Args())
	if err != nil {
		return fatal(stderr, err)
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not let a CI gate pass vacuously.
		return fatal(stderr, fmt.Errorf("no packages match %v", fs.Args()))
	}
	if *typeErrors {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "dimelint: %s: type error: %v\n", pkg.Path, terr)
			}
		}
	}

	diags := lint.Run(pkgs, analyzers)

	if *writeBaseline != "" {
		b := lint.NewBaseline(diags, modRoot)
		if err := b.Write(*writeBaseline); err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintf(stderr, "dimelint: recorded %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			return fatal(stderr, err)
		}
		fresh, stale := b.Apply(diags, modRoot)
		for _, f := range stale {
			fmt.Fprintf(stderr, "dimelint: stale baseline entry (finding no longer occurs): %s: %s: %s\n", f.File, f.Analyzer, f.Message)
		}
		diags = fresh
	}

	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     relTo(modRoot, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relTo(cwd, d.Pos.Filename)
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dimelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relTo renders path relative to dir (forward slashes) when it is inside it.
func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(rel)
	}
	return path
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "dimelint: %v\n", err)
	return 2
}
