// Command dimelint runs DIME's static-analysis suite (internal/lint) over
// the module and reports violations of the codebase's correctness
// invariants with file:line diagnostics — per-package analyzers plus the
// interprocedural detersafe / panicprop / resultpkgs / alloclint passes and
// the locklint concurrency suite (lockorder / heldcall / goleak / ctxflow)
// over the module call graph.
//
// Usage:
//
//	dimelint [flags] [patterns...]
//
// Patterns default to ./... (the whole module). Findings are suppressed
// with an in-source comment on the offending line (or the line above):
//
//	//lint:ignore <analyzer|all> <reason>
//
// or accepted in a baseline file (see -baseline). Hot-path allocation
// findings (alloclint) are budgeted separately through -alloc-budget, and
// the locklint analyzers gate against their own -lock-baseline, so the
// correctness baseline, the performance budget and the concurrency baseline
// evolve independently; -alloc-report prints the underlying ranked
// allocation sites, and -graph dumps the call graph and lock-acquisition
// graph as DOT. With -only, baseline and budget entries for unselected
// analyzers are ignored entirely: they are neither applied nor reported
// stale, so a narrowed run never invents staleness ("locklint" in -only
// expands to the four concurrency analyzers). Exit codes:
//
//	0  no findings (or every finding is covered by baseline/budget)
//	1  findings (with -baseline/-alloc-budget/-lock-baseline: findings not
//	   covered)
//	2  usage or load error (bad flags, unknown -only analyzer, unmatched
//	   patterns, unreadable baseline/budget)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dime/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one diagnostic. File is
// module-relative with forward slashes so output is machine-stable across
// checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonStale is the -json wire form of one stale baseline/budget entry: a
// recorded finding that no longer occurs and should be garbage-collected
// from its file.
type jsonStale struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// jsonOutput is the -json document: current findings plus stale
// baseline/budget entries (text mode prints the latter to stderr).
type jsonOutput struct {
	Findings []jsonFinding `json:"findings"`
	Stale    []jsonStale   `json:"stale"`
}

// jsonAllocSite is the -alloc-report -json wire form of one ranked site.
type jsonAllocSite struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Kind      string `json:"kind"`
	Func      string `json:"func"`
	LoopDepth int    `json:"loopDepth"`
	Dist      int    `json:"dist"`
	Entry     string `json:"entry"`
	Weight    int    `json:"weight"`
	Message   string `json:"message"`
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dimelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the selected analyzers and exit")
	asJSON := fs.Bool("json", false, "emit a JSON object {findings, stale} instead of file:line text")
	baselinePath := fs.String("baseline", "", "accept non-alloclint findings recorded in this baseline `file`; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "record current non-alloclint findings to this baseline `file` and exit 0")
	only := fs.String("only", "", "comma-separated `analyzers` to run (see -list); others are skipped and their baseline/budget entries ignored")
	allocBudget := fs.String("alloc-budget", "", "accept alloclint findings recorded in this budget `file`; fail only when a hot-path allocation site is added")
	writeAllocBudget := fs.String("write-alloc-budget", "", "record current alloclint findings to this budget `file` and exit 0")
	lockBaseline := fs.String("lock-baseline", "", "accept locklint (lockorder/heldcall/goleak/ctxflow) findings recorded in this baseline `file`; fail only on new ones")
	writeLockBaseline := fs.String("write-lock-baseline", "", "record current locklint findings to this baseline `file` and exit 0")
	graph := fs.Bool("graph", false, "dump the module call graph and lock-acquisition graph as DOT and exit")
	allocReport := fs.Bool("alloc-report", false, "print the ranked hot-path allocation-site report and exit (honors -json)")
	typeErrors := fs.Bool("type-errors", false, "also print type-check errors (findings are best-effort when present)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dimelint [flags] [patterns...]\n\npatterns default to ./...; flags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		sel, err := selectAnalyzers(analyzers, *only)
		if err != nil {
			return fatal(stderr, err)
		}
		analyzers = sel
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-22s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name()] = true
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	modRoot, err := lint.ModuleRoot(cwd)
	if err != nil {
		return fatal(stderr, err)
	}
	pkgs, err := lint.Load(cwd, fs.Args())
	if err != nil {
		return fatal(stderr, err)
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not let a CI gate pass vacuously.
		return fatal(stderr, fmt.Errorf("no packages match %v", fs.Args()))
	}
	if *typeErrors {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "dimelint: %s: type error: %v\n", pkg.Path, terr)
			}
		}
	}

	if *allocReport {
		return runAllocReport(pkgs, modRoot, *asJSON, stdout, stderr)
	}
	if *graph {
		g := lint.BuildCallGraph(pkgs)
		if err := g.WriteDOT(stdout); err != nil {
			return fatal(stderr, err)
		}
		if err := lint.BuildLockFacts(g).WriteDOT(stdout); err != nil {
			return fatal(stderr, err)
		}
		return 0
	}

	diags := lint.Run(pkgs, analyzers)

	// alloclint findings gate against the allocation budget, the locklint
	// analyzers against the concurrency baseline, and everything else against
	// the correctness baseline. The three-way split keeps a perf-budget bump
	// or an accepted concurrency finding from touching lint.baseline.json and
	// vice versa.
	lockNames := map[string]bool{}
	for _, name := range lint.LockLintNames() {
		lockNames[name] = true
	}
	var allocDiags, lockDiags, restDiags []lint.Diagnostic
	for _, d := range diags {
		switch {
		case d.Analyzer == (lint.AllocLint{}).Name():
			allocDiags = append(allocDiags, d)
		case lockNames[d.Analyzer]:
			lockDiags = append(lockDiags, d)
		default:
			restDiags = append(restDiags, d)
		}
	}

	if *writeBaseline != "" || *writeAllocBudget != "" || *writeLockBaseline != "" {
		if *writeBaseline != "" {
			b := lint.NewBaseline(restDiags, modRoot)
			if err := b.Write(*writeBaseline); err != nil {
				return fatal(stderr, err)
			}
			fmt.Fprintf(stderr, "dimelint: recorded %d finding(s) to %s\n", len(restDiags), *writeBaseline)
		}
		if *writeAllocBudget != "" {
			b := lint.NewBaseline(allocDiags, modRoot)
			if err := b.Write(*writeAllocBudget); err != nil {
				return fatal(stderr, err)
			}
			fmt.Fprintf(stderr, "dimelint: recorded %d alloc site(s) to %s\n", len(allocDiags), *writeAllocBudget)
		}
		if *writeLockBaseline != "" {
			b := lint.NewBaseline(lockDiags, modRoot)
			if err := b.Write(*writeLockBaseline); err != nil {
				return fatal(stderr, err)
			}
			fmt.Fprintf(stderr, "dimelint: recorded %d locklint finding(s) to %s\n", len(lockDiags), *writeLockBaseline)
		}
		return 0
	}

	var staleOut []lint.BaselineFinding
	if *baselinePath != "" {
		b, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			return fatal(stderr, err)
		}
		keepEntry := func(analyzer string) bool {
			return selected[analyzer] && analyzer != (lint.AllocLint{}).Name() && !lockNames[analyzer]
		}
		fresh, stale := filterBaseline(b, keepEntry).Apply(restDiags, modRoot)
		restDiags = fresh
		staleOut = append(staleOut, stale...)
	}
	if *allocBudget != "" && selected[(lint.AllocLint{}).Name()] {
		b, err := lint.ReadBaseline(*allocBudget)
		if err != nil {
			return fatal(stderr, err)
		}
		keepEntry := func(analyzer string) bool { return analyzer == (lint.AllocLint{}).Name() }
		fresh, stale := filterBaseline(b, keepEntry).Apply(allocDiags, modRoot)
		allocDiags = fresh
		staleOut = append(staleOut, stale...)
	}
	if *lockBaseline != "" {
		anySelected := false
		for name := range lockNames {
			if selected[name] {
				anySelected = true
			}
		}
		if anySelected {
			b, err := lint.ReadBaseline(*lockBaseline)
			if err != nil {
				return fatal(stderr, err)
			}
			keepEntry := func(analyzer string) bool { return selected[analyzer] && lockNames[analyzer] }
			fresh, stale := filterBaseline(b, keepEntry).Apply(lockDiags, modRoot)
			lockDiags = fresh
			staleOut = append(staleOut, stale...)
		}
	}

	diags = append(append(restDiags, lockDiags...), allocDiags...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	if *asJSON {
		out := jsonOutput{Findings: []jsonFinding{}, Stale: []jsonStale{}}
		for _, d := range diags {
			out.Findings = append(out.Findings, jsonFinding{
				File:     relTo(modRoot, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		for _, f := range staleOut {
			out.Stale = append(out.Stale, jsonStale{File: f.File, Analyzer: f.Analyzer, Message: f.Message, Count: f.Count})
		}
		enc := json.NewEncoder(stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fatal(stderr, err)
		}
	} else {
		for _, f := range staleOut {
			fmt.Fprintf(stderr, "dimelint: stale baseline entry (finding no longer occurs): %s: %s: %s\n", f.File, f.Analyzer, f.Message)
		}
		for _, d := range diags {
			d.Pos.Filename = relTo(cwd, d.Pos.Filename)
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dimelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runAllocReport prints the ranked hot-path allocation sites.
func runAllocReport(pkgs []*lint.Package, modRoot string, asJSON bool, stdout, stderr io.Writer) int {
	sites := lint.AnalyzeAllocs(lint.BuildCallGraph(pkgs), nil)
	if asJSON {
		out := make([]jsonAllocSite, 0, len(sites))
		for _, s := range sites {
			out = append(out, jsonAllocSite{
				File:      relTo(modRoot, s.Pos.Filename),
				Line:      s.Pos.Line,
				Col:       s.Pos.Column,
				Kind:      string(s.Kind),
				Func:      s.Func,
				LoopDepth: s.LoopDepth,
				Dist:      s.Dist,
				Entry:     s.Entry,
				Weight:    s.Weight,
				Message:   s.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetEscapeHTML(false)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fatal(stderr, err)
		}
		return 0
	}
	for i, s := range sites {
		fmt.Fprintf(stdout, "%4d  w=%-3d depth=%d dist=%d  %-10s %s:%d:%d  %s\n",
			i+1, s.Weight, s.LoopDepth, s.Dist, s.Kind,
			relTo(modRoot, s.Pos.Filename), s.Pos.Line, s.Pos.Column, s.Func)
	}
	fmt.Fprintf(stderr, "dimelint: %d hot-path allocation site(s)\n", len(sites))
	return 0
}

// selectAnalyzers resolves a comma-separated -only list against the suite.
// The group name "locklint" expands to the four concurrency analyzers.
func selectAnalyzers(all []lint.Analyzer, names string) ([]lint.Analyzer, error) {
	byName := make(map[string]lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	added := map[string]bool{}
	var sel []lint.Analyzer
	add := func(name string) error {
		a, ok := byName[name]
		if !ok {
			return fmt.Errorf("unknown analyzer %q in -only (see -list)", name)
		}
		if !added[name] {
			added[name] = true
			sel = append(sel, a)
		}
		return nil
	}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "locklint" {
			for _, sub := range lint.LockLintNames() {
				if err := add(sub); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := add(name); err != nil {
			return nil, err
		}
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return sel, nil
}

// filterBaseline returns a copy of b holding only the entries whose analyzer
// passes keep, so -only runs and the baseline/budget split never report
// entries outside their scope as stale.
func filterBaseline(b *lint.Baseline, keep func(analyzer string) bool) *lint.Baseline {
	out := &lint.Baseline{Version: b.Version}
	for _, f := range b.Findings {
		if keep(f.Analyzer) {
			out.Findings = append(out.Findings, f)
		}
	}
	return out
}

// relTo renders path relative to dir (forward slashes) when it is inside it.
func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(rel)
	}
	return path
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "dimelint: %v\n", err)
	return 2
}
