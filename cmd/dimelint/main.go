// Command dimelint runs DIME's static-analysis suite (internal/lint) over
// the module and reports violations of the codebase's correctness
// invariants with file:line diagnostics. It exits non-zero when it finds
// anything, so `make check` can gate on it.
//
// Usage:
//
//	dimelint [flags] [patterns...]
//
// Patterns default to ./... (the whole module). Findings are suppressed
// with an in-source comment on the offending line (or the line above):
//
//	//lint:ignore <analyzer|all> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dime/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	typeErrors := flag.Bool("type-errors", false, "also print type-check errors (findings are best-effort when present)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dimelint [flags] [patterns...]\n\npatterns default to ./...; flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name(), a.Doc())
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not let a CI gate pass vacuously.
		fatal(fmt.Errorf("no packages match %v", flag.Args()))
	}
	if *typeErrors {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "dimelint: %s: type error: %v\n", pkg.Path, terr)
			}
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dimelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimelint: %v\n", err)
	os.Exit(2)
}
