package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dime/internal/lint"
)

// chdir switches into dir for the duration of the test. run() resolves the
// module from the working directory, so the golden tests operate inside the
// fixture modules under testdata/src (which the go tool itself ignores).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// runCLI invokes run() and returns exit code, stdout, stderr.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

const fixtureGolden = `lib.go:11:9: detersafe: time.Now (wall clock) in fixturemod.tick is reachable from result entry point fixturemod.Discover; results must not depend on it (chain: fixturemod.Discover -> fixturemod.tick)
lib.go:15:6: panicprop: exported fixturemod.Outer can reach panic via fixturemod.inner (chain: fixturemod.Outer -> fixturemod.inner); return an error or absorb the panic behind recover/MustX
lib.go:20:2: panic-in-library: panic in library function inner; return an error or move the panic into a Must* constructor
lib.go:24:11: float-threshold: exact == on float values; use sim.Eq (epsilon 1e-9) instead
`

const fixtureGoldenJSON = `[
  {
    "file": "lib.go",
    "line": 11,
    "col": 9,
    "analyzer": "detersafe",
    "message": "time.Now (wall clock) in fixturemod.tick is reachable from result entry point fixturemod.Discover; results must not depend on it (chain: fixturemod.Discover -> fixturemod.tick)"
  },
  {
    "file": "lib.go",
    "line": 15,
    "col": 6,
    "analyzer": "panicprop",
    "message": "exported fixturemod.Outer can reach panic via fixturemod.inner (chain: fixturemod.Outer -> fixturemod.inner); return an error or absorb the panic behind recover/MustX"
  },
  {
    "file": "lib.go",
    "line": 20,
    "col": 2,
    "analyzer": "panic-in-library",
    "message": "panic in library function inner; return an error or move the panic into a Must* constructor"
  },
  {
    "file": "lib.go",
    "line": 24,
    "col": 11,
    "analyzer": "float-threshold",
    "message": "exact == on float values; use sim.Eq (epsilon 1e-9) instead"
  }
]
`

func TestRunList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout, a.Name()) || !strings.Contains(stdout, a.Doc()) {
			t.Errorf("-list output missing analyzer %s", a.Name())
		}
	}
}

func TestRunNewFindingsTextGolden(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))
	code, stdout, stderr := runCLI(t)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings); stderr: %s", code, stderr)
	}
	if stdout != fixtureGolden {
		t.Errorf("stdout mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, fixtureGolden)
	}
	if !strings.Contains(stderr, "4 finding(s)") {
		t.Errorf("stderr should count findings, got: %s", stderr)
	}
}

func TestRunJSONGolden(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))
	code, stdout, _ := runCLI(t, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if stdout != fixtureGoldenJSON {
		t.Errorf("stdout mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, fixtureGoldenJSON)
	}
}

func TestRunCleanModule(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "cleanmod"))
	code, stdout, stderr := runCLI(t)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run should print nothing, got: %s", stdout)
	}
}

func TestRunBaselineWorkflow(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))

	// Record the current findings.
	code, _, stderr := runCLI(t, "-write-baseline", baseline)
	if code != 0 || !strings.Contains(stderr, "recorded 4 finding(s)") {
		t.Fatalf("write-baseline: exit=%d stderr=%s", code, stderr)
	}

	// A fully baselined run is clean.
	code, stdout, stderr := runCLI(t, "-baseline", baseline)
	if code != 0 || stdout != "" {
		t.Fatalf("baselined run: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}

	// Dropping an entry makes exactly that finding fresh again.
	b, err := lint.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	full := b.Findings
	b.Findings = full[1:] // drop the detersafe entry (findings are sorted)
	if err := b.Write(baseline); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("new-finding run: exit = %d, want 1", code)
	}
	if want := fixtureGolden[:strings.Index(fixtureGolden, "\n")+1]; stdout != want {
		t.Errorf("only the unbaselined finding should print:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}

	// A baseline entry whose finding no longer occurs is reported stale on
	// stderr without failing the run.
	b.Findings = append(full, lint.BaselineFinding{File: "gone.go", Analyzer: "detersafe", Message: "no longer here"})
	if err := b.Write(baseline); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("stale-entry run: exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "stale baseline entry") || !strings.Contains(stderr, "gone.go") {
		t.Errorf("want stale-entry warning on stderr, got: %s", stderr)
	}
}

func TestRunUsageAndLoadErrors(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "cleanmod"))
	if code, _, _ := runCLI(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "./no/such/dir/..."); code != 2 {
		t.Errorf("bad pattern: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-baseline", "absent.json"); code != 2 {
		t.Errorf("missing baseline: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
}
