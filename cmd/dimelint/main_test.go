package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dime/internal/lint"
)

// chdir switches into dir for the duration of the test. run() resolves the
// module from the working directory, so the golden tests operate inside the
// fixture modules under testdata/src (which the go tool itself ignores).
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// runCLI invokes run() and returns exit code, stdout, stderr.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

const fixtureGolden = `lib.go:11:9: detersafe: time.Now (wall clock) in fixturemod.tick is reachable from result entry point fixturemod.Discover; results must not depend on it (chain: fixturemod.Discover -> fixturemod.tick)
lib.go:15:6: panicprop: exported fixturemod.Outer can reach panic via fixturemod.inner (chain: fixturemod.Outer -> fixturemod.inner); return an error or absorb the panic behind recover/MustX
lib.go:20:2: panic-in-library: panic in library function inner; return an error or move the panic into a Must* constructor
lib.go:24:11: float-threshold: exact == on float values; use sim.Eq (epsilon 1e-9) instead
`

const fixtureGoldenJSON = `{
  "findings": [
    {
      "file": "lib.go",
      "line": 11,
      "col": 9,
      "analyzer": "detersafe",
      "message": "time.Now (wall clock) in fixturemod.tick is reachable from result entry point fixturemod.Discover; results must not depend on it (chain: fixturemod.Discover -> fixturemod.tick)"
    },
    {
      "file": "lib.go",
      "line": 15,
      "col": 6,
      "analyzer": "panicprop",
      "message": "exported fixturemod.Outer can reach panic via fixturemod.inner (chain: fixturemod.Outer -> fixturemod.inner); return an error or absorb the panic behind recover/MustX"
    },
    {
      "file": "lib.go",
      "line": 20,
      "col": 2,
      "analyzer": "panic-in-library",
      "message": "panic in library function inner; return an error or move the panic into a Must* constructor"
    },
    {
      "file": "lib.go",
      "line": 24,
      "col": 11,
      "analyzer": "float-threshold",
      "message": "exact == on float values; use sim.Eq (epsilon 1e-9) instead"
    }
  ],
  "stale": []
}
`

// allocGolden is the alloclint text output over the allocmod fixture, whose
// hot loop allocates through an unevidenced append and a Sprintf.
const allocGolden = `lib.go:9:9: alloclint: append without preallocation evidence in hot-path function allocmod.Discover (loop depth 1); hoist it, reuse a buffer, or record it in the alloc budget
lib.go:9:21: alloclint: fmt.Sprintf in a non-error path in hot-path function allocmod.Discover (loop depth 1); hoist it, reuse a buffer, or record it in the alloc budget
`

// allocReportGolden is the ranked -alloc-report text over allocmod.
const allocReportGolden = `   1  w=24  depth=1 dist=0  append     lib.go:9:9  allocmod.Discover
   2  w=24  depth=1 dist=0  format     lib.go:9:21  allocmod.Discover
`

func TestRunList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(stdout, a.Name()) || !strings.Contains(stdout, a.Doc()) {
			t.Errorf("-list output missing analyzer %s", a.Name())
		}
	}
}

func TestRunNewFindingsTextGolden(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))
	code, stdout, stderr := runCLI(t)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings); stderr: %s", code, stderr)
	}
	if stdout != fixtureGolden {
		t.Errorf("stdout mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, fixtureGolden)
	}
	if !strings.Contains(stderr, "4 finding(s)") {
		t.Errorf("stderr should count findings, got: %s", stderr)
	}
}

func TestRunJSONGolden(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))
	code, stdout, _ := runCLI(t, "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if stdout != fixtureGoldenJSON {
		t.Errorf("stdout mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, fixtureGoldenJSON)
	}
}

func TestRunCleanModule(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "cleanmod"))
	code, stdout, stderr := runCLI(t)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run should print nothing, got: %s", stdout)
	}
}

func TestRunBaselineWorkflow(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))

	// Record the current findings.
	code, _, stderr := runCLI(t, "-write-baseline", baseline)
	if code != 0 || !strings.Contains(stderr, "recorded 4 finding(s)") {
		t.Fatalf("write-baseline: exit=%d stderr=%s", code, stderr)
	}

	// A fully baselined run is clean.
	code, stdout, stderr := runCLI(t, "-baseline", baseline)
	if code != 0 || stdout != "" {
		t.Fatalf("baselined run: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}

	// Dropping an entry makes exactly that finding fresh again.
	b, err := lint.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	full := b.Findings
	b.Findings = full[1:] // drop the detersafe entry (findings are sorted)
	if err := b.Write(baseline); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("new-finding run: exit = %d, want 1", code)
	}
	if want := fixtureGolden[:strings.Index(fixtureGolden, "\n")+1]; stdout != want {
		t.Errorf("only the unbaselined finding should print:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}

	// A baseline entry whose finding no longer occurs is reported stale on
	// stderr without failing the run.
	b.Findings = append(full, lint.BaselineFinding{File: "gone.go", Analyzer: "detersafe", Message: "no longer here"})
	if err := b.Write(baseline); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("stale-entry run: exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "stale baseline entry") || !strings.Contains(stderr, "gone.go") {
		t.Errorf("want stale-entry warning on stderr, got: %s", stderr)
	}
}

func TestRunOnly(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))

	// A narrowed run reports just the selected analyzer's findings.
	code, stdout, _ := runCLI(t, "-only", "detersafe")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if want := fixtureGolden[:strings.Index(fixtureGolden, "\n")+1]; stdout != want {
		t.Errorf("-only detersafe:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}

	// -list honors -only.
	code, stdout, _ = runCLI(t, "-list", "-only", "detersafe,float-threshold")
	if code != 0 || strings.Contains(stdout, "panicprop") || !strings.Contains(stdout, "detersafe") {
		t.Errorf("-list -only: exit=%d stdout=%s", code, stdout)
	}

	// Unknown analyzer names are usage errors.
	code, _, stderr := runCLI(t, "-only", "nope")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("-only nope: exit=%d stderr=%s", code, stderr)
	}
}

// TestRunOnlyBaselineInteraction checks the documented -only/-baseline
// contract: entries for unselected analyzers are neither applied nor
// reported stale.
func TestRunOnlyBaselineInteraction(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))

	if code, _, stderr := runCLI(t, "-write-baseline", baseline); code != 0 {
		t.Fatalf("write-baseline: exit=%d stderr=%s", code, stderr)
	}
	// The full baseline holds entries for four analyzers; a detersafe-only
	// run must stay clean and must not call the other three entries stale.
	code, stdout, stderr := runCLI(t, "-only", "detersafe", "-baseline", baseline)
	if code != 0 || stdout != "" {
		t.Fatalf("narrowed baselined run: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}
	if strings.Contains(stderr, "stale") {
		t.Errorf("unselected analyzers' entries reported stale: %s", stderr)
	}
}

// TestRunJSONStale checks that stale entries surface in the -json object.
func TestRunJSONStale(t *testing.T) {
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	chdir(t, filepath.Join("testdata", "src", "fixturemod"))

	if code, _, stderr := runCLI(t, "-write-baseline", baseline); code != 0 {
		t.Fatalf("write-baseline: exit=%d stderr=%s", code, stderr)
	}
	b, err := lint.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	b.Findings = append(b.Findings, lint.BaselineFinding{File: "gone.go", Analyzer: "detersafe", Message: "no longer here", Count: 2})
	if err := b.Write(baseline); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCLI(t, "-json", "-baseline", baseline)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stale entries do not fail)", code)
	}
	if !strings.Contains(stdout, `"findings": [],`) {
		t.Errorf("want empty findings array, got:\n%s", stdout)
	}
	for _, frag := range []string{`"file": "gone.go"`, `"message": "no longer here"`, `"count": 2`} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("stale array missing %s in:\n%s", frag, stdout)
		}
	}
}

func TestRunAllocBudgetWorkflow(t *testing.T) {
	budget := filepath.Join(t.TempDir(), "alloc.budget.json")
	chdir(t, filepath.Join("testdata", "src", "allocmod"))

	// Unbudgeted, both hot-loop sites are findings.
	code, stdout, stderr := runCLI(t)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if stdout != allocGolden {
		t.Errorf("stdout mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, allocGolden)
	}

	// Record the budget; a budgeted run is clean.
	code, _, stderr = runCLI(t, "-write-alloc-budget", budget)
	if code != 0 || !strings.Contains(stderr, "recorded 2 alloc site(s)") {
		t.Fatalf("write-alloc-budget: exit=%d stderr=%s", code, stderr)
	}
	code, stdout, stderr = runCLI(t, "-alloc-budget", budget)
	if code != 0 || stdout != "" {
		t.Fatalf("budgeted run: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}

	// Shrinking the budget makes the dropped site a finding again: this is
	// exactly what adding a new hot-path allocation site looks like.
	b, err := lint.ReadBaseline(budget)
	if err != nil {
		t.Fatal(err)
	}
	full := b.Findings
	b.Findings = full[1:]
	if err := b.Write(budget); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-alloc-budget", budget)
	if code != 1 {
		t.Fatalf("over-budget run: exit = %d, want 1", code)
	}
	if want := allocGolden[:strings.Index(allocGolden, "\n")+1]; stdout != want {
		t.Errorf("only the over-budget site should print:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}

	// A budget entry whose site was optimized away is stale, not fatal.
	b.Findings = append(full, lint.BaselineFinding{File: "gone.go", Analyzer: "alloclint", Message: "optimized away"})
	if err := b.Write(budget); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-alloc-budget", budget)
	if code != 0 || !strings.Contains(stderr, "stale baseline entry") {
		t.Fatalf("stale-budget run: exit=%d stderr=%s", code, stderr)
	}

	// With alloclint unselected the budget is not applied at all: no
	// findings, and no stale storm from its now-unmatched entries.
	code, stdout, stderr = runCLI(t, "-only", "detersafe", "-alloc-budget", budget)
	if code != 0 || stdout != "" || strings.Contains(stderr, "stale") {
		t.Fatalf("-only detersafe with budget: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}
}

func TestRunAllocReportGolden(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "allocmod"))
	code, stdout, stderr := runCLI(t, "-alloc-report")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != allocReportGolden {
		t.Errorf("report mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, allocReportGolden)
	}
	if !strings.Contains(stderr, "2 hot-path allocation site(s)") {
		t.Errorf("stderr should count sites, got: %s", stderr)
	}

	// JSON report carries the full site records.
	code, stdout, _ = runCLI(t, "-alloc-report", "-json")
	if code != 0 {
		t.Fatalf("json report: exit = %d, want 0", code)
	}
	for _, frag := range []string{`"kind": "append"`, `"kind": "format"`, `"loopDepth": 1`, `"weight": 24`, `"entry": "allocmod.Discover"`} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("json report missing %s in:\n%s", frag, stdout)
		}
	}
}

// lockGolden is the locklint text output over the lockmod fixture: an AB/BA
// lock-order inversion reported from both sides, a direct sleep under a held
// lock, and a blocking call chain under a held lock.
const lockGolden = `lib.go:20:2: lockorder: lock order inversion: lockmod.wm acquired while lockmod.PushPull holds lockmod.mu, but another path acquires them in the opposite order (cycle: lockmod.mu -> lockmod.wm): potential deadlock
lib.go:28:2: lockorder: lock order inversion: lockmod.mu acquired while lockmod.PullPush holds lockmod.wm, but another path acquires them in the opposite order (cycle: lockmod.mu -> lockmod.wm): potential deadlock
lib.go:36:2: heldcall: time.Sleep while lockmod.SlowFlush holds lockmod.mu
lib.go:44:2: heldcall: call to lockmod.drain may block (time.Sleep; chain: lockmod.drain) while lockmod.Relay holds lockmod.wm
`

// leakGolden is the goleak text output over the leakmod fixture; the
// Stoppable counterpart with a quit-channel receive must stay silent.
const leakGolden = `lib.go:8:2: goleak: goroutine spawned in leakmod.Serve runs an unbounded loop with no cancellation path (no channel or ctx.Done receive anywhere in its body); it outlives the request — reachable from leakmod.Serve (chain: leakmod.Serve)
`

// ctxGolden is the ctxflow text output over the ctxmod fixture; the Forward
// counterpart that threads its ctx must stay silent.
const ctxGolden = `lib.go:13:8: ctxflow: context.Background() in ctxmod.Handle discards the caller's context on a path reachable from entry point ctxmod.Handle (chain: ctxmod.Handle); thread the caller's ctx through instead
lib.go:17:11: ctxflow: parameter "ctx" in ctxmod.Wait is received but never used, yet the function does blocking or context-aware work; pass the caller's ctx to the downstream calls or drop the parameter
`

// lockGraphGolden is the -graph DOT dump over lockmod: the call graph
// followed by the lock-acquisition graph, whose AB/BA pair is visible as the
// two opposing edges.
const lockGraphGolden = `digraph callgraph {
  "lockmod.PullPush";
  "lockmod.PushPull";
  "lockmod.Relay";
  "lockmod.Relay" -> "lockmod.drain" [label="call"];
  "lockmod.SlowFlush";
  "lockmod.drain";
}
digraph lockgraph {
  "lockmod.mu";
  "lockmod.wm";
  "lockmod.mu" -> "lockmod.wm" [label="lockmod.PushPull"];
  "lockmod.wm" -> "lockmod.mu" [label="lockmod.PullPush"];
}
`

// TestRunLockLintFixtures proves each locklint analyzer on its violating
// fixture module with golden text output, via the -only locklint group
// alias.
func TestRunLockLintFixtures(t *testing.T) {
	for _, tc := range []struct {
		mod, golden string
		findings    string
	}{
		{"lockmod", lockGolden, "4 finding(s)"},
		{"leakmod", leakGolden, "1 finding(s)"},
		{"ctxmod", ctxGolden, "2 finding(s)"},
	} {
		t.Run(tc.mod, func(t *testing.T) {
			chdir(t, filepath.Join("testdata", "src", tc.mod))
			code, stdout, stderr := runCLI(t, "-only", "locklint")
			if code != 1 {
				t.Fatalf("exit = %d, want 1 (findings); stderr: %s", code, stderr)
			}
			if stdout != tc.golden {
				t.Errorf("stdout mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, tc.golden)
			}
			if !strings.Contains(stderr, tc.findings) {
				t.Errorf("stderr should count findings, got: %s", stderr)
			}
		})
	}
}

// TestRunLockLintAlias checks that "locklint" in -only expands to exactly
// the four concurrency analyzers.
func TestRunLockLintAlias(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list", "-only", "locklint")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range lint.LockLintNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list -only locklint missing %s:\n%s", name, stdout)
		}
	}
	if strings.Contains(stdout, "detersafe") || strings.Contains(stdout, "alloclint") {
		t.Errorf("-list -only locklint selected analyzers outside the group:\n%s", stdout)
	}
}

// TestRunLockBaselineWorkflow checks the -lock-baseline split: locklint
// findings gate against their own baseline, are invisible to -baseline, and
// removing an entry resurfaces exactly that finding.
func TestRunLockBaselineWorkflow(t *testing.T) {
	lockBase := filepath.Join(t.TempDir(), "lock.baseline.json")
	corrBase := filepath.Join(t.TempDir(), "baseline.json")
	chdir(t, filepath.Join("testdata", "src", "lockmod"))

	// Record the locklint findings; the correctness baseline stays empty —
	// locklint findings must not leak into it.
	code, _, stderr := runCLI(t, "-write-lock-baseline", lockBase, "-write-baseline", corrBase)
	if code != 0 || !strings.Contains(stderr, "recorded 4 locklint finding(s)") {
		t.Fatalf("write-lock-baseline: exit=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "recorded 0 finding(s)") {
		t.Fatalf("locklint findings leaked into the correctness baseline: %s", stderr)
	}

	// A fully lock-baselined run is clean.
	code, stdout, stderr := runCLI(t, "-lock-baseline", lockBase)
	if code != 0 || stdout != "" {
		t.Fatalf("lock-baselined run: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}

	// The same entries in -baseline do NOT cover locklint findings: the
	// correctness baseline ignores lock analyzers entirely, so the findings
	// stay fresh and the entries are not reported stale.
	code, stdout, stderr = runCLI(t, "-baseline", lockBase)
	if code != 1 || stdout != lockGolden {
		t.Fatalf("-baseline must not cover locklint findings: exit=%d stdout=%q", code, stdout)
	}
	if strings.Contains(stderr, "stale") {
		t.Errorf("-baseline reported locklint entries stale: %s", stderr)
	}

	// Dropping an entry makes exactly that finding fresh again — this is
	// what an injected lock-order inversion looks like to `make check`.
	// Baseline entries sort by (file, analyzer, message), so entry 0 is the
	// heldcall "call to lockmod.drain" finding: lockGolden's last line.
	b, err := lint.ReadBaseline(lockBase)
	if err != nil {
		t.Fatal(err)
	}
	b.Findings = b.Findings[1:]
	if err := b.Write(lockBase); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runCLI(t, "-lock-baseline", lockBase)
	if code != 1 {
		t.Fatalf("new-finding run: exit = %d, want 1", code)
	}
	trimmed := strings.TrimSuffix(lockGolden, "\n")
	if want := lockGolden[strings.LastIndex(trimmed, "\n")+1:]; stdout != want {
		t.Errorf("only the unbaselined finding should print:\n--- got ---\n%s--- want ---\n%s", stdout, want)
	}

	// With the lock analyzers unselected the lock baseline is not applied:
	// no findings, no stale storm.
	code, stdout, stderr = runCLI(t, "-only", "float-threshold", "-lock-baseline", lockBase)
	if code != 0 || stdout != "" || strings.Contains(stderr, "stale") {
		t.Fatalf("-only float-threshold with lock baseline: exit=%d stdout=%q stderr=%s", code, stdout, stderr)
	}
}

// TestRunGraphGolden checks the -graph DOT dump of the call graph and
// lock-acquisition graph over lockmod.
func TestRunGraphGolden(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "lockmod"))
	code, stdout, stderr := runCLI(t, "-graph")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if stdout != lockGraphGolden {
		t.Errorf("graph mismatch:\n--- got ---\n%s--- want ---\n%s", stdout, lockGraphGolden)
	}
}

func TestRunUsageAndLoadErrors(t *testing.T) {
	chdir(t, filepath.Join("testdata", "src", "cleanmod"))
	if code, _, _ := runCLI(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code, _, stderr := runCLI(t, "./no/such/dir/..."); code != 2 {
		t.Errorf("bad pattern: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-baseline", "absent.json"); code != 2 {
		t.Errorf("missing baseline: exit = %d, want 2 (stderr: %s)", code, stderr)
	}
}
