module allocmod

go 1.22
