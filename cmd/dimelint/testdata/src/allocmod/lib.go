package allocmod

import "fmt"

// Discover is the hot entry point of this fixture.
func Discover(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprintf("[%s]", x))
	}
	return out
}
