// Package leakmod is the goleak violation fixture: an exported entry spawns
// a goroutine whose body loops forever with no channel or ctx.Done receive —
// nothing can ever stop it.
package leakmod

// Serve starts the background pump and returns.
func Serve() {
	go func() {
		for {
			step()
		}
	}()
}

// Stoppable is the clean counterpart: the loop has a quit-channel receive,
// so it must not be reported.
func Stoppable(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
			step()
		}
	}()
}

func step() {}
