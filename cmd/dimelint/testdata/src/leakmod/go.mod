module leakmod

go 1.22
