// Package lockmod is the lockorder/heldcall violation fixture: two package
// mutexes acquired in opposite orders on two paths (a classic AB/BA
// deadlock), plus a sleep and a blocking call executed under a held lock.
package lockmod

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	wm sync.Mutex
)

// PushPull locks mu then wm.
func PushPull() {
	mu.Lock()
	defer mu.Unlock()
	wm.Lock()
	defer wm.Unlock()
}

// PullPush locks wm then mu: the inversion of PushPull.
func PullPush() {
	wm.Lock()
	defer wm.Unlock()
	mu.Lock()
	defer mu.Unlock()
}

// SlowFlush sleeps while holding mu.
func SlowFlush() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond)
}

// Relay calls the sleeper while holding wm, so the block arrives through a
// call chain rather than directly.
func Relay() {
	wm.Lock()
	defer wm.Unlock()
	drain()
}

func drain() {
	time.Sleep(time.Millisecond)
}
