package cleanmod

// Add is finding-free on every analyzer.
func Add(a, b int) int {
	return a + b
}
