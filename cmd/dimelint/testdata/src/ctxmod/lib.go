// Package ctxmod is the ctxflow violation fixture: one entry manufactures
// its own context.Background() instead of threading the caller's, and one
// receives a ctx parameter it never uses while doing blocking work.
package ctxmod

import (
	"context"
	"time"
)

// Handle is a request entry that discards whatever deadline its caller had.
func Handle() {
	fetch(context.Background())
}

// Wait receives ctx but ignores it while blocking.
func Wait(ctx context.Context) {
	time.Sleep(time.Millisecond)
}

// Forward is the clean counterpart: the caller's ctx flows through.
func Forward(ctx context.Context) {
	fetch(ctx)
}

func fetch(ctx context.Context) {
	_ = ctx
}
