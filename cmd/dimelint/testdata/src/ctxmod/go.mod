module ctxmod

go 1.22
