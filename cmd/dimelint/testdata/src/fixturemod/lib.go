package fixturemod

import "time"

// Discover is a result entry point for the detersafe fixture.
func Discover() int64 {
	return tick()
}

func tick() int64 {
	return time.Now().UnixNano()
}

// Outer is exported API from which a panic is reachable.
func Outer() {
	inner()
}

func inner() {
	panic("boom")
}

func eq(a float64) bool {
	return a == 0.75
}
