// Command dimed is the long-lived DIME discovery server: an HTTP JSON API
// over per-corpus incremental Session state, with asynchronous discovery
// jobs on a bounded worker pool and the repository's debug surface
// (/metrics, /debug/vars, /debug/flight, /debug/pprof/) built in.
//
// Usage:
//
//	dimed [-addr :8080] [-workers N] [-queue N] [-request-timeout 30s]
//	      [-shutdown-grace 30s] [-flight-threshold 0] [-flight-resources]
//
// Endpoints (see internal/serve for the full contract):
//
//	POST   /v1/corpora                            create a corpus {id, profile[, name]}
//	POST   /v1/corpora/{id}/entities              ingest entities
//	POST   /v1/corpora/{id}/discover              start an async discovery job → 202 {job}
//	GET    /v1/corpora/{id}/status/{job}          poll (or ?wait=true long-poll) the job
//	GET    /v1/corpora/{id}/results/{job}         fetch the full result
//	GET    /v1/corpora/{id}/scrollbar/{level}     one scrollbar level of the latest result
//	GET    /v1/corpora/{id}/witnesses/{partition} why a partition was marked
//
// Built-in profiles: scholar, amazon, dbgen. A full job queue returns 429
// (backpressure); draining returns 503. On SIGINT/SIGTERM the server drains
// queued and running jobs (bounded by -shutdown-grace) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dime/internal/obs"
	"dime/internal/serve"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// shutdownSignal delivers the signals that trigger graceful shutdown; tests
// replace notifySignals to inject one.
var notifySignals = func(ch chan<- os.Signal) {
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
}

// run is the testable entry point: parse flags, start the server, wait for
// a shutdown signal, drain, exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dimed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		workers   = fs.Int("workers", 0, "discovery worker goroutines (0 = default)")
		queue     = fs.Int("queue", 0, "queued discovery jobs beyond running ones before 429 (0 = default 64)")
		reqTO     = fs.Duration("request-timeout", 30*time.Second, "per-request deadline; also caps ?wait=true long-polls")
		grace     = fs.Duration("shutdown-grace", 30*time.Second, "drain budget for queued/running jobs and in-flight requests on shutdown")
		flightThr = fs.Duration("flight-threshold", 0, "flight recorder keeps only requests/runs at least this slow (0 keeps all)")
		flightRes = fs.Bool("flight-resources", false, "attach per-span heap-allocation deltas to flight-recorder events")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "dimed: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	srv := serve.NewServer(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTO,
		Registry:       obs.Default(),
		Flight: obs.NewFlightRecorder(obs.FlightOptions{
			Threshold: *flightThr,
			Resources: *flightRes,
		}),
	})
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(stderr, "dimed: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "dimed: serving on http://%s (profiles: scholar, amazon, dbgen)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	notifySignals(sig)
	<-sig
	fmt.Fprintf(stderr, "dimed: shutting down, draining jobs (grace %v)\n", *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "dimed: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "dimed: drained cleanly")
	return 0
}
