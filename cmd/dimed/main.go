// Command dimed is the long-lived DIME discovery server: an HTTP JSON API
// over per-corpus incremental Session state, with asynchronous discovery
// jobs on a bounded worker pool and the repository's debug surface
// (/metrics, /debug/vars, /debug/flight, /debug/pprof/) built in.
//
// Usage:
//
//	dimed [-addr :8080] [-workers N] [-queue N] [-request-timeout 30s]
//	      [-shutdown-grace 30s] [-flight-threshold 0] [-flight-resources]
//	      [-chaos] [-chaos-seed 1] [-chaos-rate 0.1] [-chaos-latency 5ms]
//	      [-chaos-budget 0]
//
// Endpoints (see internal/serve for the full contract):
//
//	POST   /v1/corpora                            create a corpus {id, profile[, name]}
//	POST   /v1/corpora/{id}/entities              ingest entities
//	POST   /v1/corpora/{id}/discover              start an async discovery job → 202 {job}
//	GET    /v1/corpora/{id}/status/{job}          poll (or ?wait=true long-poll) the job
//	GET    /v1/corpora/{id}/results/{job}         fetch the full result
//	GET    /v1/corpora/{id}/scrollbar/{level}     one scrollbar level of the latest result
//	GET    /v1/corpora/{id}/witnesses/{partition} why a partition was marked
//
// Built-in profiles: scholar, amazon, dbgen. A full job queue returns 429
// (backpressure); draining returns 503. On SIGINT/SIGTERM the server drains
// queued and running jobs (bounded by -shutdown-grace) before exiting.
//
// The -chaos flags (testing only) mount a deterministic internal/fault
// middleware in front of the API: seeded rules inject latency and 503
// refusals on every route, and connection resets / truncated bodies on the
// routes a resilient client can safely retry (GETs and the
// idempotency-keyed discover). Same seed, same request sequence, same
// faults; fire counts appear in /metrics as dime.fault.*.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dime/internal/fault"
	"dime/internal/obs"
	"dime/internal/serve"
)

// chaosRules builds the -chaos rule set, scoped by replay safety: latency
// and pre-handler 503 refusals are safe on every route (the handler never
// ran); resets and truncations go only where a correct client can retry —
// GETs and the idempotency-keyed discover POST.
func chaosRules(rate float64, latency time.Duration, budget int) []fault.Rule {
	return []fault.Rule{
		{Name: "latency", P: rate, Kind: fault.KindLatency, Latency: latency, Budget: budget},
		{Name: "refuse-503", P: rate, Kind: fault.KindStatus, Status: 503, RetryAfter: "1", Budget: budget},
		{Name: "get-reset", Method: "GET", P: rate, Kind: fault.KindReset, Budget: budget},
		{Name: "get-truncate", Method: "GET", P: rate, Kind: fault.KindTruncate, Budget: budget},
		{Name: "discover-truncate", Method: "POST", Path: "*/discover", P: rate, Kind: fault.KindTruncate, Budget: budget},
	}
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// shutdownSignal delivers the signals that trigger graceful shutdown; tests
// replace notifySignals to inject one.
var notifySignals = func(ch chan<- os.Signal) {
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
}

// run is the testable entry point: parse flags, start the server, wait for
// a shutdown signal, drain, exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dimed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		workers   = fs.Int("workers", 0, "discovery worker goroutines (0 = default)")
		queue     = fs.Int("queue", 0, "queued discovery jobs beyond running ones before 429 (0 = default 64)")
		reqTO     = fs.Duration("request-timeout", 30*time.Second, "per-request deadline; also caps ?wait=true long-polls")
		grace     = fs.Duration("shutdown-grace", 30*time.Second, "drain budget for queued/running jobs and in-flight requests on shutdown")
		flightThr = fs.Duration("flight-threshold", 0, "flight recorder keeps only requests/runs at least this slow (0 keeps all)")
		flightRes = fs.Bool("flight-resources", false, "attach per-span heap-allocation deltas to flight-recorder events")

		chaos       = fs.Bool("chaos", false, "mount deterministic fault-injection middleware (testing only)")
		chaosSeed   = fs.Int64("chaos-seed", 1, "seed for -chaos fault decisions (same seed + same requests = same faults)")
		chaosRate   = fs.Float64("chaos-rate", 0.1, "per-rule fire probability for -chaos (0..1)")
		chaosLat    = fs.Duration("chaos-latency", 5*time.Millisecond, "latency injected per -chaos latency fire")
		chaosBudget = fs.Int("chaos-budget", 0, "per-rule cap on -chaos fires (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "dimed: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	srv := serve.NewServer(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTO,
		Registry:       obs.Default(),
		Flight: obs.NewFlightRecorder(obs.FlightOptions{
			Threshold: *flightThr,
			Resources: *flightRes,
		}),
	})
	if *chaos {
		inj := fault.NewInjector(fault.Options{
			Seed:     *chaosSeed,
			Registry: obs.Default(),
			Rules:    chaosRules(*chaosRate, *chaosLat, *chaosBudget),
		})
		srv.WrapHandler(inj.Middleware)
		fmt.Fprintf(stderr, "dimed: CHAOS fault injection enabled (seed %d, rate %g, budget %d)\n",
			*chaosSeed, *chaosRate, *chaosBudget)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(stderr, "dimed: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "dimed: serving on http://%s (profiles: scholar, amazon, dbgen)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	notifySignals(sig)
	<-sig
	fmt.Fprintf(stderr, "dimed: shutting down, draining jobs (grace %v)\n", *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "dimed: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, "dimed: drained cleanly")
	return 0
}
