package main

// Tests for the dimed entry point: flag handling, boot on an ephemeral port,
// serving traffic end to end, and signal-driven graceful shutdown. The
// signal path is injected through the notifySignals seam, so the test never
// signals its own process.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dime/internal/difftest"
)

// syncBuffer is an io.Writer safe for concurrent writes (run's goroutine)
// and reads (the test polling for the serving line).
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "flag provided but not defined") {
		t.Errorf("stderr missing flag error: %q", errb.String())
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"extra"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unexpected arguments") {
		t.Errorf("stderr missing argument error: %q", errb.String())
	}
}

func TestRunRejectsUnbindableAddr(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-addr", "256.0.0.1:http"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr %q", code, errb.String())
	}
}

var servingLine = regexp.MustCompile(`serving on http://(\S+)`)

// TestRunServesAndShutsDownGracefully boots dimed on an ephemeral port,
// drives one corpus round trip over real TCP, injects SIGTERM through the
// notifySignals seam and requires a clean drain, exit 0, and every goroutine
// the server spawned released.
func TestRunServesAndShutsDownGracefully(t *testing.T) {
	sigc := make(chan chan<- os.Signal, 1)
	orig := notifySignals
	notifySignals = func(ch chan<- os.Signal) { sigc <- ch }
	defer func() { notifySignals = orig }()

	// "Drained cleanly" must mean it: after run returns, the listener, the
	// worker pool and every connection goroutine are gone.
	snap := difftest.Goroutines()
	defer snap.CheckReleased(t)

	var out, errb syncBuffer
	exit := make(chan int, 1)
	go func() { exit <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errb) }()

	ch := <-sigc // run reached its signal wait; the listener is up
	m := servingLine.FindStringSubmatch(errb.String())
	if m == nil {
		t.Fatalf("no serving line on stderr: %q", errb.String())
	}
	base := "http://" + m[1]

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", resp.StatusCode, raw)
	}

	// One real corpus lifecycle against the booted binary surface.
	body := strings.NewReader(`{"id": "g", "profile": "scholar"}`)
	resp, err = http.Post(base+"/v1/corpora", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create corpus: status %d: %s", resp.StatusCode, raw)
	}
	var created struct {
		ID      string `json:"id"`
		Profile string `json:"profile"`
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "g" || created.Profile != "scholar" {
		t.Fatalf("created corpus = %+v", created)
	}

	ch <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr %q", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after signal")
	}
	if !strings.Contains(errb.String(), "drained cleanly") {
		t.Errorf("stderr missing drain confirmation: %q", errb.String())
	}
}

// TestRunChaosFlags boots dimed with -chaos at rate 1 and per-rule budget 1,
// which makes the fault schedule fully deterministic: the first GET is
// refused with an injected 503, the second dies to a connection reset, the
// third arrives truncated, and the fourth — every budget exhausted — is
// served cleanly. The server then drains and exits 0 as usual.
func TestRunChaosFlags(t *testing.T) {
	sigc := make(chan chan<- os.Signal, 1)
	orig := notifySignals
	notifySignals = func(ch chan<- os.Signal) { sigc <- ch }
	defer func() { notifySignals = orig }()

	var out, errb syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-chaos", "-chaos-rate", "1", "-chaos-budget", "1", "-chaos-latency", "1ms",
		}, &out, &errb)
	}()
	ch := <-sigc
	if !strings.Contains(errb.String(), "CHAOS fault injection enabled") {
		t.Fatalf("stderr missing chaos banner: %q", errb.String())
	}
	m := servingLine.FindStringSubmatch(errb.String())
	if m == nil {
		t.Fatalf("no serving line on stderr: %q", errb.String())
	}
	base := "http://" + m[1]
	// Fresh connection per request so the injected reset cannot poison a
	// pooled connection for the following request.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	// 1: injected 503 (latency and refuse-503 budgets burn together).
	resp, err := hc.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("request 1: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "fault: injected 503") {
		t.Fatalf("request 1: status %d body %q, want injected 503", resp.StatusCode, raw)
	}
	// 2: injected connection reset — a transport error, no response.
	if resp, err := hc.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatalf("request 2: got status %d, want a connection reset", resp.StatusCode)
	}
	// 3: truncated body — the read fails mid-stream.
	resp, err = hc.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("request 3: %v", err)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("request 3: body read completed, want truncation")
	}
	resp.Body.Close()
	// 4: all budgets exhausted — served cleanly.
	resp, err = hc.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("request 4: %v", err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), "ok") {
		t.Fatalf("request 4: status %d body %q, want clean 200", resp.StatusCode, raw)
	}

	ch <- os.Interrupt
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr %q", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after signal")
	}
}
