// Command benchjson converts `go test -bench` output into a stable JSON
// document, keyed by benchmark name (the -N GOMAXPROCS suffix stripped) with
// ns/op, B/op, allocs/op and any custom ReportMetric units. scripts/bench.sh
// pipes the benchmark run through it to produce BENCH_core.json, the
// checked-in performance snapshot diffed across commits.
//
// With -prev it also diffs the new snapshot against a previous one,
// printing per-benchmark ns/op and allocs/op deltas to stderr, and with
// -gate it turns the diff into a regression gate: when a gated benchmark's
// allocs/op grows by more than -max-allocs-regress percent, benchjson exits
// 2 (after writing the output, so the regressing snapshot is inspectable).
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson [-o out.json] \
//	    [-prev old.json [-gate BenchmarkDIMEPlus] [-max-allocs-regress 25]]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the output JSON: benchmarks by name plus the Go version and
// GOMAXPROCS lines `go test` prints, when present.
type Document struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	prevPath := flag.String("prev", "", "previous snapshot `file` to diff against (deltas print to stderr)")
	gate := flag.String("gate", "", "benchmark `name` (exact, or prefix of its sub-benchmarks) gated against allocs/op regressions vs -prev")
	maxRegress := flag.Float64("max-allocs-regress", 25, "fail (exit 2) when a gated benchmark's allocs/op grows more than this `percent` vs -prev")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *prevPath != "" {
		prev, err := readSnapshot(*prevPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		regressions := diff(doc, prev, *gate, *maxRegress, os.Stderr)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			os.Exit(2)
		}
	}
}

// readSnapshot loads a previously written Document.
func readSnapshot(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// diff prints per-benchmark ns/op and allocs/op deltas against prev for
// every benchmark present in both snapshots, and returns the regression
// messages for gated benchmarks whose allocs/op grew more than maxRegress
// percent. gate matches the benchmark exactly or as a "gate/" sub-benchmark
// prefix, so -gate BenchmarkDIMEPlus covers BenchmarkDIMEPlus/nil-probe and
// /traced without catching BenchmarkDIMEPlusParallel.
func diff(doc, prev *Document, gate string, maxRegress float64, w io.Writer) []string {
	var regressions []string
	for _, name := range doc.Names() {
		old, ok := prev.Benchmarks[name]
		if !ok {
			continue
		}
		cur := doc.Benchmarks[name]
		fmt.Fprintf(w, "benchjson: %s: ns/op %.0f -> %.0f (%s), allocs/op %.0f -> %.0f (%s)\n",
			name, old.NsPerOp, cur.NsPerOp, pctDelta(old.NsPerOp, cur.NsPerOp),
			old.AllocsPerOp, cur.AllocsPerOp, pctDelta(old.AllocsPerOp, cur.AllocsPerOp))
		gated := gate != "" && (name == gate || strings.HasPrefix(name, gate+"/"))
		if gated && old.AllocsPerOp > 0 {
			growth := (cur.AllocsPerOp - old.AllocsPerOp) / old.AllocsPerOp * 100
			if growth > maxRegress {
				regressions = append(regressions, fmt.Sprintf(
					"%s allocs/op grew %.1f%% (%.0f -> %.0f), over the %.0f%% budget",
					name, growth, old.AllocsPerOp, cur.AllocsPerOp, maxRegress))
			}
		}
	}
	return regressions
}

// pctDelta renders a relative change, guarding the zero denominator.
func pctDelta(old, cur float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

// parse scans benchmark result lines ("BenchmarkX-8  30  40123 ns/op  ...").
// Non-benchmark lines (PASS, ok, goos, test log output) are ignored. A
// benchmark that appears twice keeps the later measurement, matching how a
// re-run supersedes an earlier one in a concatenated log.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		valid := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				valid = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		if !valid {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		doc.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// Names returns the parsed benchmark names, sorted (used by tests).
func (d *Document) Names() []string {
	names := make([]string, 0, len(d.Benchmarks))
	for name := range d.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
