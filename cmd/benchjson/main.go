// Command benchjson converts `go test -bench` output into a stable JSON
// document, keyed by benchmark name (the -N GOMAXPROCS suffix stripped) with
// ns/op, B/op, allocs/op and any custom ReportMetric units. scripts/bench.sh
// pipes the benchmark run through it to produce BENCH_core.json, the
// checked-in performance snapshot diffed across commits.
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson [-o out.json]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the output JSON: benchmarks by name plus the Go version and
// GOMAXPROCS lines `go test` prints, when present.
type Document struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans benchmark result lines ("BenchmarkX-8  30  40123 ns/op  ...").
// Non-benchmark lines (PASS, ok, goos, test log output) are ignored. A
// benchmark that appears twice keeps the later measurement, matching how a
// re-run supersedes an earlier one in a concatenated log.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		valid := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				valid = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		if !valid {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		doc.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// Names returns the parsed benchmark names, sorted (used by tests).
func (d *Document) Names() []string {
	names := make([]string, 0, len(d.Benchmarks))
	for name := range d.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
