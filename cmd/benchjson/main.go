// Command benchjson converts `go test -bench` output into a stable JSON
// document, keyed by benchmark name (the -N GOMAXPROCS suffix stripped) with
// ns/op, B/op, allocs/op and any custom ReportMetric units. scripts/bench.sh
// pipes the benchmark run through it to produce BENCH_core.json, the
// checked-in performance snapshot diffed across commits.
//
// With -prev it also diffs the new snapshot against a previous one,
// printing per-benchmark ns/op and allocs/op deltas to stderr, and with
// -gate it turns the diff into a regression gate: when a gated benchmark's
// allocs/op grows by more than -max-allocs-regress percent, benchjson exits
// 2 (after writing the output, so the regressing snapshot is inspectable).
//
// With -history the snapshot is additionally appended as one JSON line
// ({"unix_ts": ..., "benchmarks": {...}}) to a log file — BENCH_history.jsonl
// in this repository — building the multi-run record that -trend analyzes.
//
// With -overhead-base and -overhead-probe the freshly parsed snapshot is
// checked for instrumentation overhead: the probe benchmark's ns/op must be
// within -max-overhead percent of the base benchmark's, or benchjson exits
// 2. bench.sh uses this to keep BenchmarkDIMEPlus/flight-recorder within 5%
// of /nil-probe.
//
// -trend is a separate mode that reads -history instead of stdin: the
// newest entry's gated benchmarks are compared against the median of the up
// to -trend-window preceding entries, which smooths single-run noise. A
// gated benchmark whose ns/op grew more than -max-ns-regress percent or
// whose allocs/op grew more than -max-allocs-regress percent over the
// median exits 2. Benchmarks with fewer than two prior samples are skipped
// (a trend needs history).
//
// Exit codes: 0 on success, 1 on usage/parse/IO errors, 2 when a gate
// (allocs diff, overhead, or trend) found a regression.
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson [-o out.json] [-history log.jsonl] \
//	    [-prev old.json [-gate BenchmarkDIMEPlus] [-max-allocs-regress 25]] \
//	    [-overhead-base B/nil-probe -overhead-probe B/flight-recorder [-max-overhead 5]]
//	benchjson -trend -history log.jsonl -gate BenchmarkDIMEPlus \
//	    [-trend-window 5] [-max-ns-regress 15] [-max-allocs-regress 25]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the output JSON: benchmarks by name.
type Document struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

// historyEntry is one line of the JSONL history log: a snapshot plus the
// unix timestamp it was recorded at.
type historyEntry struct {
	UnixTS     int64             `json:"unix_ts"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

func main() { os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr, time.Now())) }

// run is the testable entry point; now stamps history entries.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer, now time.Time) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out           = fs.String("o", "", "output `file` (default stdout)")
		prevPath      = fs.String("prev", "", "previous snapshot `file` to diff against (deltas print to stderr)")
		gate          = fs.String("gate", "", "benchmark `name` (exact, or prefix of its sub-benchmarks) gated against regressions")
		maxRegress    = fs.Float64("max-allocs-regress", 25, "fail (exit 2) when a gated benchmark's allocs/op grows more than this `percent`")
		historyPath   = fs.String("history", "", "append the snapshot as one JSON line to this `file`; with -trend, the history to analyze")
		trend         = fs.Bool("trend", false, "analyze -history instead of stdin: gate the newest entry against the median of prior entries")
		trendWindow   = fs.Int("trend-window", 5, "number of prior history entries the trend median is taken over")
		maxNsRegress  = fs.Float64("max-ns-regress", 15, "with -trend: fail when a gated benchmark's ns/op grows more than this `percent` over the median")
		overheadBase  = fs.String("overhead-base", "", "baseline benchmark `name` for the instrumentation-overhead gate")
		overheadProbe = fs.String("overhead-probe", "", "instrumented benchmark `name` whose ns/op must stay near -overhead-base")
		maxOverhead   = fs.Float64("max-overhead", 5, "allowed ns/op overhead `percent` of -overhead-probe vs -overhead-base")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}

	if *trend {
		if *historyPath == "" {
			return fail(fmt.Errorf("-trend needs -history"))
		}
		entries, err := readHistory(*historyPath)
		if err != nil {
			return fail(err)
		}
		regressions := trendCheck(entries, *gate, *trendWindow, *maxNsRegress, *maxRegress, stderr)
		for _, r := range regressions {
			fmt.Fprintf(stderr, "benchjson: TREND REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			return 2
		}
		return 0
	}

	doc, err := parse(stdin)
	if err != nil {
		return fail(err)
	}
	if len(doc.Benchmarks) == 0 {
		return fail(fmt.Errorf("no benchmark lines on stdin"))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if _, err := w.Write(data); err != nil {
		return fail(err)
	}

	if *historyPath != "" {
		if err := appendHistory(*historyPath, doc, now); err != nil {
			return fail(err)
		}
	}

	code := 0
	if *prevPath != "" {
		prev, err := readSnapshot(*prevPath)
		if err != nil {
			return fail(err)
		}
		regressions := diff(doc, prev, *gate, *maxRegress, stderr)
		for _, r := range regressions {
			fmt.Fprintf(stderr, "benchjson: REGRESSION: %s\n", r)
		}
		if len(regressions) > 0 {
			code = 2
		}
	}
	if *overheadBase != "" || *overheadProbe != "" {
		if *overheadBase == "" || *overheadProbe == "" {
			return fail(fmt.Errorf("-overhead-base and -overhead-probe go together"))
		}
		if msg, err := overheadCheck(doc, *overheadBase, *overheadProbe, *maxOverhead, stderr); err != nil {
			return fail(err)
		} else if msg != "" {
			fmt.Fprintf(stderr, "benchjson: OVERHEAD REGRESSION: %s\n", msg)
			code = 2
		}
	}
	return code
}

// readSnapshot loads a previously written Document.
func readSnapshot(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &doc, nil
}

// appendHistory adds one timestamped JSONL entry for doc to path.
func appendHistory(path string, doc *Document, now time.Time) error {
	line, err := json.Marshal(historyEntry{UnixTS: now.Unix(), Benchmarks: doc.Benchmarks})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(append(line, '\n'))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readHistory parses a JSONL history log, oldest entry first. Blank lines
// are skipped; a malformed line is an error (the log is checked in, so
// corruption should fail loudly, not silently shorten the window).
func readHistory(path string) ([]historyEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []historyEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e historyEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%s line %d: %v", path, len(entries)+1, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// trendCheck compares the newest history entry's gated benchmarks against
// the median of up to window preceding entries and returns the regression
// messages. Medians smooth out single-run noise, so a regression here means
// the newest run is slower than the recent norm, not just slower than one
// lucky prior run. Benchmarks with fewer than two prior samples are skipped.
func trendCheck(entries []historyEntry, gate string, window int, maxNs, maxAllocs float64, w io.Writer) []string {
	if len(entries) < 2 {
		fmt.Fprintf(w, "benchjson: trend: %d history entries, nothing to compare\n", len(entries))
		return nil
	}
	latest := entries[len(entries)-1]
	prior := entries[:len(entries)-1]
	if len(prior) > window {
		prior = prior[len(prior)-window:]
	}
	names := make([]string, 0, len(latest.Benchmarks))
	for name := range latest.Benchmarks {
		if gate == "" || name == gate || strings.HasPrefix(name, gate+"/") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		cur := latest.Benchmarks[name]
		var ns, allocs []float64
		for _, e := range prior {
			if old, ok := e.Benchmarks[name]; ok {
				ns = append(ns, old.NsPerOp)
				allocs = append(allocs, old.AllocsPerOp)
			}
		}
		if len(ns) < 2 {
			fmt.Fprintf(w, "benchjson: trend: %s: only %d prior sample(s), skipping\n", name, len(ns))
			continue
		}
		medNs, medAllocs := median(ns), median(allocs)
		fmt.Fprintf(w, "benchjson: trend: %s: ns/op %.0f vs median %.0f (%s, n=%d), allocs/op %.0f vs median %.0f (%s)\n",
			name, cur.NsPerOp, medNs, pctDelta(medNs, cur.NsPerOp), len(ns),
			cur.AllocsPerOp, medAllocs, pctDelta(medAllocs, cur.AllocsPerOp))
		if medNs > 0 {
			if growth := (cur.NsPerOp - medNs) / medNs * 100; growth > maxNs {
				regressions = append(regressions, fmt.Sprintf(
					"%s ns/op grew %.1f%% over the %d-run median (%.0f -> %.0f), budget %.0f%%",
					name, growth, len(ns), medNs, cur.NsPerOp, maxNs))
			}
		}
		if medAllocs > 0 {
			if growth := (cur.AllocsPerOp - medAllocs) / medAllocs * 100; growth > maxAllocs {
				regressions = append(regressions, fmt.Sprintf(
					"%s allocs/op grew %.1f%% over the %d-run median (%.0f -> %.0f), budget %.0f%%",
					name, growth, len(allocs), medAllocs, cur.AllocsPerOp, maxAllocs))
			}
		}
	}
	return regressions
}

// median returns the middle value (mean of the middle two for even counts).
func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// overheadCheck compares probe's ns/op against base's in one snapshot and
// returns a non-empty message when the overhead exceeds maxPct percent.
func overheadCheck(doc *Document, base, probe string, maxPct float64, w io.Writer) (string, error) {
	b, ok := doc.Benchmarks[base]
	if !ok {
		return "", fmt.Errorf("overhead base %q not in snapshot", base)
	}
	p, ok := doc.Benchmarks[probe]
	if !ok {
		return "", fmt.Errorf("overhead probe %q not in snapshot", probe)
	}
	if b.NsPerOp <= 0 {
		return "", fmt.Errorf("overhead base %q has no ns/op", base)
	}
	overhead := (p.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
	fmt.Fprintf(w, "benchjson: overhead: %s %.0f ns/op vs %s %.0f ns/op (%+.1f%%, budget %.0f%%)\n",
		probe, p.NsPerOp, base, b.NsPerOp, overhead, maxPct)
	if overhead > maxPct {
		return fmt.Sprintf("%s is %.1f%% slower than %s, over the %.0f%% budget",
			probe, overhead, base, maxPct), nil
	}
	return "", nil
}

// diff prints per-benchmark ns/op and allocs/op deltas against prev for
// every benchmark present in both snapshots, and returns the regression
// messages for gated benchmarks whose allocs/op grew more than maxRegress
// percent. gate matches the benchmark exactly or as a "gate/" sub-benchmark
// prefix, so -gate BenchmarkDIMEPlus covers BenchmarkDIMEPlus/nil-probe and
// /traced without catching BenchmarkDIMEPlusParallel.
func diff(doc, prev *Document, gate string, maxRegress float64, w io.Writer) []string {
	var regressions []string
	for _, name := range doc.Names() {
		old, ok := prev.Benchmarks[name]
		if !ok {
			continue
		}
		cur := doc.Benchmarks[name]
		fmt.Fprintf(w, "benchjson: %s: ns/op %.0f -> %.0f (%s), allocs/op %.0f -> %.0f (%s)\n",
			name, old.NsPerOp, cur.NsPerOp, pctDelta(old.NsPerOp, cur.NsPerOp),
			old.AllocsPerOp, cur.AllocsPerOp, pctDelta(old.AllocsPerOp, cur.AllocsPerOp))
		gated := gate != "" && (name == gate || strings.HasPrefix(name, gate+"/"))
		if gated && old.AllocsPerOp > 0 {
			growth := (cur.AllocsPerOp - old.AllocsPerOp) / old.AllocsPerOp * 100
			if growth > maxRegress {
				regressions = append(regressions, fmt.Sprintf(
					"%s allocs/op grew %.1f%% (%.0f -> %.0f), over the %.0f%% budget",
					name, growth, old.AllocsPerOp, cur.AllocsPerOp, maxRegress))
			}
		}
	}
	return regressions
}

// pctDelta renders a relative change, guarding the zero denominator.
func pctDelta(old, cur float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

// parse scans benchmark result lines ("BenchmarkX-8  30  40123 ns/op  ...").
// Non-benchmark lines (PASS, ok, goos, test log output) are ignored. A
// benchmark that appears twice keeps the later measurement, matching how a
// re-run supersedes an earlier one in a concatenated log.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		valid := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				valid = false
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		if !valid {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		doc.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// Names returns the parsed benchmark names, sorted (used by tests).
func (d *Document) Names() []string {
	names := make([]string, 0, len(d.Benchmarks))
	for name := range d.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
