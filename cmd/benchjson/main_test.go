package main

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dime
cpu: some cpu
BenchmarkDIMEPlus/nil-probe-8         	      30	  40262448 ns/op	        57023 verifications/op	12525553 B/op	   58037 allocs/op
BenchmarkDIMEPlus/traced-8            	      28	  41000000 ns/op	        57023 verifications/op	12700000 B/op	   58300 allocs/op
BenchmarkExp1Fig6-8                   	       1	9000000000 ns/op	400000000 B/op	 5000000 allocs/op
some interleaved log line
PASS
ok  	dime	62.102s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkDIMEPlus/nil-probe",
		"BenchmarkDIMEPlus/traced",
		"BenchmarkExp1Fig6",
	}
	if got := doc.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	r := doc.Benchmarks["BenchmarkDIMEPlus/nil-probe"]
	if r.Iterations != 30 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	if math.Abs(r.NsPerOp-40262448) > 0.5 {
		t.Errorf("ns/op = %g", r.NsPerOp)
	}
	if math.Abs(r.BPerOp-12525553) > 0.5 || math.Abs(r.AllocsPerOp-58037) > 0.5 {
		t.Errorf("mem = %g / %g", r.BPerOp, r.AllocsPerOp)
	}
	if math.Abs(r.Metrics["verifications/op"]-57023) > 0.5 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseKeepsLaterDuplicate(t *testing.T) {
	in := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 20 90 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := doc.Benchmarks["BenchmarkX"]
	if r.Iterations != 20 || math.Abs(r.NsPerOp-90) > 0.5 {
		t.Fatalf("duplicate handling: %+v", r)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBad notanumber 5 ns/op\nBenchmarkAlso-2 3 nan... ns/op extra\nBenchmarkOK-2 3 5 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Names(); !reflect.DeepEqual(got, []string{"BenchmarkOK"}) {
		t.Fatalf("names = %v", got)
	}
}

func TestDiffDeltasAndGate(t *testing.T) {
	prev := &Document{Benchmarks: map[string]Result{
		"BenchmarkDIMEPlus/nil-probe":    {NsPerOp: 40e6, AllocsPerOp: 58000},
		"BenchmarkDIMEPlus/traced":       {NsPerOp: 41e6, AllocsPerOp: 58300},
		"BenchmarkDIMEPlusParallel/fast": {NsPerOp: 20e6, AllocsPerOp: 100000},
		"BenchmarkGone":                  {NsPerOp: 1, AllocsPerOp: 1},
	}}
	cur := &Document{Benchmarks: map[string]Result{
		"BenchmarkDIMEPlus/nil-probe":    {NsPerOp: 27e6, AllocsPerOp: 14835},
		"BenchmarkDIMEPlus/traced":       {NsPerOp: 28e6, AllocsPerOp: 80000}, // +37%
		"BenchmarkDIMEPlusParallel/fast": {NsPerOp: 20e6, AllocsPerOp: 999999},
		"BenchmarkNew":                   {NsPerOp: 5, AllocsPerOp: 5},
	}}

	var out strings.Builder
	regressions := diff(cur, prev, "BenchmarkDIMEPlus", 25, &out)

	// Deltas print for benchmarks present in both snapshots only.
	text := out.String()
	if !strings.Contains(text, "BenchmarkDIMEPlus/nil-probe: ns/op 40000000 -> 27000000 (-32.5%), allocs/op 58000 -> 14835 (-74.4%)") {
		t.Errorf("improvement delta missing:\n%s", text)
	}
	if strings.Contains(text, "BenchmarkGone") || strings.Contains(text, "BenchmarkNew") {
		t.Errorf("unmatched benchmarks should not diff:\n%s", text)
	}

	// Only the gated sub-benchmark over budget regresses; the parallel
	// benchmark's blowup is outside the gate prefix.
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the traced one", regressions)
	}
	if !strings.Contains(regressions[0], "BenchmarkDIMEPlus/traced") || !strings.Contains(regressions[0], "37.2%") {
		t.Errorf("regression message: %s", regressions[0])
	}

	// Within budget: no regression.
	cur.Benchmarks["BenchmarkDIMEPlus/traced"] = Result{NsPerOp: 28e6, AllocsPerOp: 60000} // +2.9%
	if got := diff(cur, prev, "BenchmarkDIMEPlus", 25, &strings.Builder{}); len(got) != 0 {
		t.Errorf("within-budget growth flagged: %v", got)
	}

	// No gate, no regressions regardless of growth.
	cur.Benchmarks["BenchmarkDIMEPlus/traced"] = Result{NsPerOp: 28e6, AllocsPerOp: 999999}
	if got := diff(cur, prev, "", 25, &strings.Builder{}); len(got) != 0 {
		t.Errorf("ungated diff flagged regressions: %v", got)
	}
}

func TestJSONShape(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Names(), doc.Names()) {
		t.Fatalf("round trip lost benchmarks: %v vs %v", back.Names(), doc.Names())
	}
}
