package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: dime
cpu: some cpu
BenchmarkDIMEPlus/nil-probe-8         	      30	  40262448 ns/op	        57023 verifications/op	12525553 B/op	   58037 allocs/op
BenchmarkDIMEPlus/traced-8            	      28	  41000000 ns/op	        57023 verifications/op	12700000 B/op	   58300 allocs/op
BenchmarkExp1Fig6-8                   	       1	9000000000 ns/op	400000000 B/op	 5000000 allocs/op
some interleaved log line
PASS
ok  	dime	62.102s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkDIMEPlus/nil-probe",
		"BenchmarkDIMEPlus/traced",
		"BenchmarkExp1Fig6",
	}
	if got := doc.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	r := doc.Benchmarks["BenchmarkDIMEPlus/nil-probe"]
	if r.Iterations != 30 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	if math.Abs(r.NsPerOp-40262448) > 0.5 {
		t.Errorf("ns/op = %g", r.NsPerOp)
	}
	if math.Abs(r.BPerOp-12525553) > 0.5 || math.Abs(r.AllocsPerOp-58037) > 0.5 {
		t.Errorf("mem = %g / %g", r.BPerOp, r.AllocsPerOp)
	}
	if math.Abs(r.Metrics["verifications/op"]-57023) > 0.5 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseKeepsLaterDuplicate(t *testing.T) {
	in := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 20 90 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := doc.Benchmarks["BenchmarkX"]
	if r.Iterations != 20 || math.Abs(r.NsPerOp-90) > 0.5 {
		t.Fatalf("duplicate handling: %+v", r)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBad notanumber 5 ns/op\nBenchmarkAlso-2 3 nan... ns/op extra\nBenchmarkOK-2 3 5 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Names(); !reflect.DeepEqual(got, []string{"BenchmarkOK"}) {
		t.Fatalf("names = %v", got)
	}
}

func TestDiffDeltasAndGate(t *testing.T) {
	prev := &Document{Benchmarks: map[string]Result{
		"BenchmarkDIMEPlus/nil-probe":    {NsPerOp: 40e6, AllocsPerOp: 58000},
		"BenchmarkDIMEPlus/traced":       {NsPerOp: 41e6, AllocsPerOp: 58300},
		"BenchmarkDIMEPlusParallel/fast": {NsPerOp: 20e6, AllocsPerOp: 100000},
		"BenchmarkGone":                  {NsPerOp: 1, AllocsPerOp: 1},
	}}
	cur := &Document{Benchmarks: map[string]Result{
		"BenchmarkDIMEPlus/nil-probe":    {NsPerOp: 27e6, AllocsPerOp: 14835},
		"BenchmarkDIMEPlus/traced":       {NsPerOp: 28e6, AllocsPerOp: 80000}, // +37%
		"BenchmarkDIMEPlusParallel/fast": {NsPerOp: 20e6, AllocsPerOp: 999999},
		"BenchmarkNew":                   {NsPerOp: 5, AllocsPerOp: 5},
	}}

	var out strings.Builder
	regressions := diff(cur, prev, "BenchmarkDIMEPlus", 25, &out)

	// Deltas print for benchmarks present in both snapshots only.
	text := out.String()
	if !strings.Contains(text, "BenchmarkDIMEPlus/nil-probe: ns/op 40000000 -> 27000000 (-32.5%), allocs/op 58000 -> 14835 (-74.4%)") {
		t.Errorf("improvement delta missing:\n%s", text)
	}
	if strings.Contains(text, "BenchmarkGone") || strings.Contains(text, "BenchmarkNew") {
		t.Errorf("unmatched benchmarks should not diff:\n%s", text)
	}

	// Only the gated sub-benchmark over budget regresses; the parallel
	// benchmark's blowup is outside the gate prefix.
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the traced one", regressions)
	}
	if !strings.Contains(regressions[0], "BenchmarkDIMEPlus/traced") || !strings.Contains(regressions[0], "37.2%") {
		t.Errorf("regression message: %s", regressions[0])
	}

	// Within budget: no regression.
	cur.Benchmarks["BenchmarkDIMEPlus/traced"] = Result{NsPerOp: 28e6, AllocsPerOp: 60000} // +2.9%
	if got := diff(cur, prev, "BenchmarkDIMEPlus", 25, &strings.Builder{}); len(got) != 0 {
		t.Errorf("within-budget growth flagged: %v", got)
	}

	// No gate, no regressions regardless of growth.
	cur.Benchmarks["BenchmarkDIMEPlus/traced"] = Result{NsPerOp: 28e6, AllocsPerOp: 999999}
	if got := diff(cur, prev, "", 25, &strings.Builder{}); len(got) != 0 {
		t.Errorf("ungated diff flagged regressions: %v", got)
	}
}

// runBenchjson invokes run() with a fixed clock, returning stderr and exit.
func runBenchjson(t *testing.T, stdin string, args ...string) (string, int) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, strings.NewReader(stdin), &stdout, &stderr, time.Unix(1754600000, 0))
	return stderr.String(), code
}

func TestHistoryAppend(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "history.jsonl")
	for i := 0; i < 2; i++ {
		stderr, code := runBenchjson(t, sample, "-o", filepath.Join(dir, "out.json"), "-history", hist)
		if code != 0 {
			t.Fatalf("run %d: exit %d, stderr %q", i, code, stderr)
		}
	}
	entries, err := readHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("history has %d entries, want 2", len(entries))
	}
	for i, e := range entries {
		if e.UnixTS != 1754600000 {
			t.Errorf("entry %d unix_ts = %d", i, e.UnixTS)
		}
		if r := e.Benchmarks["BenchmarkDIMEPlus/nil-probe"]; math.Abs(r.NsPerOp-40262448) > 0.5 {
			t.Errorf("entry %d ns/op = %g", i, r.NsPerOp)
		}
	}
}

func TestReadHistoryRejectsCorruption(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "history.jsonl")
	if err := os.WriteFile(hist, []byte("{\"unix_ts\":1,\"benchmarks\":{}}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readHistory(hist); err == nil {
		t.Fatal("corrupt history line should error")
	}
}

// histEntries builds a history where BenchmarkDIMEPlus/nil-probe holds
// steady and the final entry takes the given ns/op and allocs/op.
func histEntries(finalNs, finalAllocs float64) []historyEntry {
	entries := make([]historyEntry, 0, 5)
	for i := 0; i < 4; i++ {
		entries = append(entries, historyEntry{
			UnixTS: int64(i),
			Benchmarks: map[string]Result{
				"BenchmarkDIMEPlus/nil-probe": {NsPerOp: 30e6 + float64(i)*1e5, AllocsPerOp: 14800},
				"BenchmarkUngated":            {NsPerOp: 1e6, AllocsPerOp: 10},
			},
		})
	}
	entries = append(entries, historyEntry{
		UnixTS: 4,
		Benchmarks: map[string]Result{
			"BenchmarkDIMEPlus/nil-probe": {NsPerOp: finalNs, AllocsPerOp: finalAllocs},
			"BenchmarkUngated":            {NsPerOp: 99e6, AllocsPerOp: 999999},
			"BenchmarkDIMEPlus/new":       {NsPerOp: 1e6, AllocsPerOp: 5},
		},
	})
	return entries
}

func TestTrendCheck(t *testing.T) {
	// Steady state: within budget, no regressions; the ungated blowup and
	// the sample-starved new benchmark are both ignored.
	var out strings.Builder
	if got := trendCheck(histEntries(31e6, 14900), "BenchmarkDIMEPlus", 5, 15, 25, &out); len(got) != 0 {
		t.Errorf("steady trend flagged: %v", got)
	}
	if !strings.Contains(out.String(), "BenchmarkDIMEPlus/new: only 0 prior sample(s), skipping") {
		t.Errorf("missing skip note:\n%s", out.String())
	}
	if strings.Contains(out.String(), "BenchmarkUngated") {
		t.Errorf("ungated benchmark analyzed:\n%s", out.String())
	}

	// ns/op 50% over the ~30.15e6 median regresses.
	got := trendCheck(histEntries(45e6, 14900), "BenchmarkDIMEPlus", 5, 15, 25, &strings.Builder{})
	if len(got) != 1 || !strings.Contains(got[0], "ns/op grew") {
		t.Errorf("ns/op trend regression = %v", got)
	}

	// allocs/op 100% over the median regresses even with flat ns/op.
	got = trendCheck(histEntries(30e6, 29600), "BenchmarkDIMEPlus", 5, 15, 25, &strings.Builder{})
	if len(got) != 1 || !strings.Contains(got[0], "allocs/op grew") {
		t.Errorf("allocs trend regression = %v", got)
	}

	// A single entry has nothing to compare against.
	if got := trendCheck(histEntries(30e6, 14800)[:1], "BenchmarkDIMEPlus", 5, 15, 25, &strings.Builder{}); got != nil {
		t.Errorf("single-entry trend = %v", got)
	}
}

func TestTrendWindowLimitsMedian(t *testing.T) {
	// Ancient fast entries outside the window must not drag the median
	// down: with window 2 only the two slow recent entries count.
	entries := []historyEntry{
		{Benchmarks: map[string]Result{"B": {NsPerOp: 1e6, AllocsPerOp: 10}}},
		{Benchmarks: map[string]Result{"B": {NsPerOp: 1e6, AllocsPerOp: 10}}},
		{Benchmarks: map[string]Result{"B": {NsPerOp: 40e6, AllocsPerOp: 10}}},
		{Benchmarks: map[string]Result{"B": {NsPerOp: 41e6, AllocsPerOp: 10}}},
		{Benchmarks: map[string]Result{"B": {NsPerOp: 42e6, AllocsPerOp: 10}}},
	}
	if got := trendCheck(entries, "B", 2, 15, 25, &strings.Builder{}); len(got) != 0 {
		t.Errorf("windowed trend flagged: %v", got)
	}
}

func TestTrendCLIExitCodes(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "history.jsonl")
	var lines []byte
	for _, e := range histEntries(45e6, 14900) {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(append(lines, line...), '\n')
	}
	if err := os.WriteFile(hist, lines, 0o644); err != nil {
		t.Fatal(err)
	}
	stderr, code := runBenchjson(t, "", "-trend", "-history", hist, "-gate", "BenchmarkDIMEPlus")
	if code != 2 || !strings.Contains(stderr, "TREND REGRESSION") {
		t.Errorf("regressing trend: exit %d, stderr %q", code, stderr)
	}
	if stderr, code := runBenchjson(t, "", "-trend"); code != 1 || !strings.Contains(stderr, "-trend needs -history") {
		t.Errorf("trend without history: exit %d, stderr %q", code, stderr)
	}
	if _, code := runBenchjson(t, "", "-trend", "-history", filepath.Join(dir, "missing.jsonl")); code != 1 {
		t.Errorf("missing history: exit %d", code)
	}
}

func TestOverheadCheck(t *testing.T) {
	doc := &Document{Benchmarks: map[string]Result{
		"BenchmarkDIMEPlus/nil-probe":       {NsPerOp: 30e6},
		"BenchmarkDIMEPlus/flight-recorder": {NsPerOp: 31e6}, // +3.3%
	}}
	msg, err := overheadCheck(doc, "BenchmarkDIMEPlus/nil-probe", "BenchmarkDIMEPlus/flight-recorder", 5, &strings.Builder{})
	if err != nil || msg != "" {
		t.Errorf("within budget: msg %q, err %v", msg, err)
	}
	doc.Benchmarks["BenchmarkDIMEPlus/flight-recorder"] = Result{NsPerOp: 33e6} // +10%
	msg, err = overheadCheck(doc, "BenchmarkDIMEPlus/nil-probe", "BenchmarkDIMEPlus/flight-recorder", 5, &strings.Builder{})
	if err != nil || !strings.Contains(msg, "10.0% slower") {
		t.Errorf("over budget: msg %q, err %v", msg, err)
	}
	if _, err := overheadCheck(doc, "BenchmarkMissing", "BenchmarkDIMEPlus/flight-recorder", 5, &strings.Builder{}); err == nil {
		t.Error("missing base should error")
	}
	if _, err := overheadCheck(doc, "BenchmarkDIMEPlus/nil-probe", "BenchmarkMissing", 5, &strings.Builder{}); err == nil {
		t.Error("missing probe should error")
	}
}

func TestOverheadCLIExitCode(t *testing.T) {
	in := "BenchmarkDIMEPlus/nil-probe-8 10 30000000 ns/op\n" +
		"BenchmarkDIMEPlus/flight-recorder-8 10 34000000 ns/op\n"
	out := filepath.Join(t.TempDir(), "out.json")
	stderr, code := runBenchjson(t, in, "-o", out,
		"-overhead-base", "BenchmarkDIMEPlus/nil-probe",
		"-overhead-probe", "BenchmarkDIMEPlus/flight-recorder")
	if code != 2 || !strings.Contains(stderr, "OVERHEAD REGRESSION") {
		t.Errorf("exit %d, stderr %q", code, stderr)
	}
	// The snapshot still gets written before the gate fails.
	if _, err := os.Stat(out); err != nil {
		t.Errorf("snapshot not written: %v", err)
	}
	if stderr, code := runBenchjson(t, in, "-overhead-base", "BenchmarkDIMEPlus/nil-probe"); code != 1 ||
		!strings.Contains(stderr, "go together") {
		t.Errorf("half-specified overhead pair: exit %d, stderr %q", code, stderr)
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	} {
		if got := median(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("median(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestJSONShape(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Names(), doc.Names()) {
		t.Fatalf("round trip lost benchmarks: %v vs %v", back.Names(), doc.Names())
	}
}
