package main

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dime
cpu: some cpu
BenchmarkDIMEPlus/nil-probe-8         	      30	  40262448 ns/op	        57023 verifications/op	12525553 B/op	   58037 allocs/op
BenchmarkDIMEPlus/traced-8            	      28	  41000000 ns/op	        57023 verifications/op	12700000 B/op	   58300 allocs/op
BenchmarkExp1Fig6-8                   	       1	9000000000 ns/op	400000000 B/op	 5000000 allocs/op
some interleaved log line
PASS
ok  	dime	62.102s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"BenchmarkDIMEPlus/nil-probe",
		"BenchmarkDIMEPlus/traced",
		"BenchmarkExp1Fig6",
	}
	if got := doc.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	r := doc.Benchmarks["BenchmarkDIMEPlus/nil-probe"]
	if r.Iterations != 30 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	if math.Abs(r.NsPerOp-40262448) > 0.5 {
		t.Errorf("ns/op = %g", r.NsPerOp)
	}
	if math.Abs(r.BPerOp-12525553) > 0.5 || math.Abs(r.AllocsPerOp-58037) > 0.5 {
		t.Errorf("mem = %g / %g", r.BPerOp, r.AllocsPerOp)
	}
	if math.Abs(r.Metrics["verifications/op"]-57023) > 0.5 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseKeepsLaterDuplicate(t *testing.T) {
	in := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 20 90 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	r := doc.Benchmarks["BenchmarkX"]
	if r.Iterations != 20 || math.Abs(r.NsPerOp-90) > 0.5 {
		t.Fatalf("duplicate handling: %+v", r)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBad notanumber 5 ns/op\nBenchmarkAlso-2 3 nan... ns/op extra\nBenchmarkOK-2 3 5 ns/op\n"
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Names(); !reflect.DeepEqual(got, []string{"BenchmarkOK"}) {
		t.Fatalf("names = %v", got)
	}
}

func TestJSONShape(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Names(), doc.Names()) {
		t.Fatalf("round trip lost benchmarks: %v vs %v", back.Names(), doc.Names())
	}
}
