// Quickstart builds the paper's running example (Figure 1: six publications
// on Nan Tang's Google Scholar page, two of which belong to other people)
// and walks the full DIME pipeline: positive rules partition the group, the
// largest partition becomes the pivot, and the negative rules reveal the
// mis-categorized entities level by level.
package main

import (
	"fmt"
	"log"

	"dime"
)

func main() {
	schema := dime.MustSchema("Title", "Authors", "Venue")

	// The record configuration: titles compare as word sets, author lists as
	// whole names, and venues through the built-in publication ontology
	// (so SIGMOD and VLDB count as highly similar even though the strings
	// share nothing).
	cfg := dime.NewConfig(schema).
		WithTokenMode("Title", dime.WordsMode).
		WithTree("Venue", dime.VenueTree())

	// The rules of the paper's Example 2, written in the DSL.
	ruleSet := dime.RuleSet{
		Positive: []dime.Rule{
			dime.MustParseRule(cfg, "phi+1", dime.Positive, "ov(Authors) >= 2"),
			dime.MustParseRule(cfg, "phi+2", dime.Positive, "ov(Authors) >= 1 && on(Venue) >= 0.75"),
		},
		Negative: []dime.Rule{
			dime.MustParseRule(cfg, "phi-1", dime.Negative, "ov(Authors) = 0"),
			dime.MustParseRule(cfg, "phi-2", dime.Negative, "ov(Authors) <= 1 && on(Venue) <= 0.25"),
		},
	}

	group := dime.NewGroup("Nan Tang", schema)
	add := func(id, title string, authors []string, venue string) {
		e, err := dime.NewEntity(schema, id, [][]string{{title}, authors, {venue}})
		if err != nil {
			log.Fatal(err)
		}
		if err := group.Add(e); err != nil {
			log.Fatal(err)
		}
	}
	add("e1", "KATARA: a data cleaning system powered by knowledge bases and crowdsourcing",
		[]string{"Xu Chu", "John Morcos", "Ihab F. Ilyas", "Mourad Ouzzani", "Paolo Papotti", "Nan Tang"}, "SIGMOD")
	add("e2", "Hierarchical indexing approach to support xpath queries",
		[]string{"Nan Tang", "Jeffrey Xu Yu", "M. Tamer Özsu", "Kam-Fai Wong"}, "ICDE")
	add("e3", "NADEEF: a generalized data cleaning system",
		[]string{"Amr Ebaid", "Ahmed Elmagarmid", "Ihab F. Ilyas", "Nan Tang"}, "VLDB")
	add("e4", "Discriminative bi-term topic model for social news clustering",
		[]string{"Yunqing Xia", "NJ Tang", "Amir Hussain", "Erik Cambria"}, "SIGIR")
	add("e5", "Win: an efficient data placement strategy for parallel xml databases",
		[]string{"Nan Tang", "Guoren Wang", "Jeffrey Xu Yu"}, "ICPADS")
	add("e6", "Extractive and oxidative desulfurization of model oil in polyethylene glycol",
		[]string{"Jianlong Wang", "Rijie Zhao", "Baixin Han", "Nan Tang", "Kaixi Li"}, "RSC Advances")

	res, err := dime.Discover(group, dime.Options{Config: cfg, Rules: ruleSet})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("partitions (%d total, pivot has %d entities):\n", len(res.Partitions), res.PivotSize())
	for pi, part := range res.Partitions {
		marker := " "
		if pi == res.Pivot {
			marker = "*"
		}
		ids := make([]string, len(part))
		for k, ei := range part {
			ids[k] = group.Entities[ei].ID
		}
		fmt.Printf("  %s P%d: %v\n", marker, pi+1, ids)
	}

	fmt.Println("\nscrollbar:")
	for li, lv := range res.Levels {
		fmt.Printf("  level %d (%s): %v\n", li+1, lv.RuleName, lv.EntityIDs)
	}
	fmt.Println("\nThe conservative level flags only e4 (no shared author with the")
	fmt.Println("pivot); sliding one level further also reveals e6, the chemist's")
	fmt.Println("publication — exactly the paper's walk-through.")
}
