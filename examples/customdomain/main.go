// Customdomain applies DIME to a domain the library has no preset for — a
// music streaming service's "Jazz Essentials" playlist polluted with
// mis-filed tracks — using only the public API: a hand-written genre
// ontology (JSON), a rule set loaded from its JSON form, approximate
// ontology matching for noisy genre strings, and per-partition witnesses.
package main

import (
	"fmt"
	"log"

	"dime"
)

const genreOntology = `{
  "label": "Genres",
  "children": [
    {"label": "Jazz", "children": [
      {"label": "Bebop"}, {"label": "Cool Jazz"}, {"label": "Swing"}, {"label": "Fusion"}
    ]},
    {"label": "Classical", "children": [
      {"label": "Baroque"}, {"label": "Romantic"}
    ]},
    {"label": "Electronic", "children": [
      {"label": "House"}, {"label": "Techno"}
    ]}
  ]
}`

const ruleSetJSON = `{
  "positive": [
    {"name": "same-artists", "rule": "ov(Artists) >= 1"},
    {"name": "same-subgenre", "rule": "on(Genre) >= 0.75 && jac(Title) >= 0.05"}
  ],
  "negative": [
    {"name": "no-artist-overlap", "rule": "ov(Artists) = 0 && on(Genre) <= 0.4"},
    {"name": "foreign-genre", "rule": "ov(Artists) <= 1 && on(Genre) <= 0.34"}
  ]
}`

func main() {
	schema := dime.MustSchema("Title", "Artists", "Genre")

	tree, err := dime.LoadOntology([]byte(genreOntology))
	if err != nil {
		log.Fatal(err)
	}
	cfg := dime.NewConfig(schema).
		WithTokenMode("Title", dime.WordsMode).
		WithTree("Genre", tree).
		// Streaming metadata is messy ("BeBop!", "cool-jazz"); map genre
		// strings approximately instead of exactly.
		WithMapper("Genre", tree.ApproxMapper(0.7))

	ruleSet, err := dime.LoadRuleSet(cfg, []byte(ruleSetJSON))
	if err != nil {
		log.Fatal(err)
	}

	playlist := dime.NewGroup("Jazz Essentials", schema)
	add := func(id, title string, artists []string, genre string) {
		e, err := dime.NewEntity(schema, id, [][]string{{title}, artists, {genre}})
		if err != nil {
			log.Fatal(err)
		}
		if err := playlist.Add(e); err != nil {
			log.Fatal(err)
		}
	}
	// The core of the playlist: bebop and cool-jazz tracks with overlapping
	// personnel (Davis plays on both sides of the 1950s divide).
	add("t1", "So What", []string{"Miles Davis", "Bill Evans"}, "Cool Jazz")
	add("t2", "Blue in Green", []string{"Miles Davis", "Bill Evans"}, "cool-jazz") // messy genre string
	add("t3", "Ornithology", []string{"Charlie Parker", "Miles Davis"}, "Bebop")
	add("t4", "Ko-Ko", []string{"Charlie Parker", "Dizzy Gillespie"}, "BeBop!") // messy again
	add("t5", "Take Five", []string{"Dave Brubeck", "Paul Desmond"}, "Cool Jazz")
	add("t6", "A Night in Tunisia", []string{"Dizzy Gillespie"}, "Bebop")
	// Mis-filed tracks.
	add("x1", "Brandenburg Concerto No 3", []string{"J S Bach"}, "Baroque")
	add("x2", "One More Time", []string{"Daft Punk"}, "House")

	res, err := dime.Discover(playlist, dime.Options{Config: cfg, Rules: ruleSet})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("playlist %q: %d tracks, %d partitions, pivot %d tracks\n",
		playlist.Name, playlist.Size(), len(res.Partitions), res.PivotSize())
	for li, lv := range res.Levels {
		fmt.Printf("level %d (%s): %v\n", li+1, lv.RuleName, lv.EntityIDs)
	}
	fmt.Println("\nwhy:")
	for pi := range res.Partitions {
		if w, ok := res.WitnessOf(pi); ok {
			if w.EntityID == "" {
				fmt.Printf("  partition %d: every pair provably satisfies %s\n", pi, w.Rule)
			} else {
				fmt.Printf("  %s is out: %s holds against pivot track %s\n", w.EntityID, w.Rule, w.PivotID)
			}
		}
	}
}
