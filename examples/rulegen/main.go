// Rulegen learns DIME rules from labelled example pairs (Section V of the
// paper) instead of writing them by hand: it samples positive examples
// (pairs of correct publications) and negative examples (correct ×
// mis-categorized pairs) from a generated Scholar page, runs the greedy
// generator, prints the learned rules, and applies them to a second,
// unseen page.
package main

import (
	"fmt"
	"log"

	"dime"
	"dime/internal/datagen"
	"dime/internal/metrics"
	"dime/internal/presets"
)

func main() {
	trainPage := datagen.Scholar(datagen.ScholarOptions{NumPubs: 120, ErrorRate: 0.12, Seed: 1})
	testPage := datagen.Scholar(datagen.ScholarOptions{NumPubs: 180, ErrorRate: 0.07, Seed: 2})
	cfg := presets.ScholarConfig()

	// Label example pairs from the training page's ground truth:
	// correct × correct → same category; correct × intruder → different.
	var good, bad []*dime.Entity
	for _, e := range trainPage.Entities {
		if trainPage.Truth[e.ID] {
			bad = append(bad, e)
		} else {
			good = append(good, e)
		}
	}
	var examples []dime.Example
	for i := 0; i < 200; i++ {
		examples = append(examples, dime.Example{
			A: good[(i*13)%len(good)], B: good[(i*29+7)%len(good)], Same: true,
		})
	}
	for i := 0; i < 180; i++ {
		examples = append(examples, dime.Example{
			A: good[(i*17)%len(good)], B: bad[i%len(bad)], Same: false,
		})
	}
	fmt.Printf("learning from %d examples (%d same-category, %d cross)...\n\n",
		len(examples), 200, 180)

	learned, err := dime.GenerateRules(cfg, examples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned positive rules:")
	for _, r := range learned.Positive {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("learned negative rules:")
	for _, r := range learned.Negative {
		fmt.Printf("  %s\n", r)
	}

	// Apply the learned rules to an unseen page and compare with the
	// hand-written preset rules of Section VI-A.
	truth := testPage.MisCategorizedIDs()
	run := func(tag string, rs dime.RuleSet) {
		res, err := dime.Discover(testPage, dime.Options{Config: cfg, Rules: rs})
		if err != nil {
			log.Fatal(err)
		}
		best := metrics.PRF{}
		for li := range res.Levels {
			if s := metrics.Score(res.MisCategorizedIDs(li), truth); s.F1 > best.F1 {
				best = s
			}
		}
		fmt.Printf("%-14s best scrollbar level: %s\n", tag, best)
	}
	fmt.Printf("\nunseen page %q (%d entities, %d mis-categorized):\n",
		testPage.Name, testPage.Size(), len(truth))
	run("learned rules:", learned)
	run("paper rules:", presets.ScholarRules(cfg))
}
