// Amazon cleans a synthetic product category: it generates a product corpus
// with injected mis-categorized products, learns a description theme
// hierarchy with LDA (the paper's substitute for attributes that have no
// published ontology), and runs DIME+ over the "Router" category with the
// co-purchase + description rules of Section VI-A.
package main

import (
	"fmt"
	"log"

	"dime"
	"dime/internal/datagen"
	"dime/internal/lda"
	"dime/internal/metrics"
	"dime/internal/presets"
	"dime/internal/tokenize"
)

func main() {
	corpus := datagen.Amazon(datagen.AmazonOptions{
		ProductsPerCategory: 80,
		ErrorRate:           0.20,
		Seed:                7,
	})

	// Learn the description theme hierarchy: one LDA topic per category,
	// greedily grouped into super-themes. The resulting tree plugs into the
	// rule config as the ontology behind on(Description).
	themes := map[string]bool{}
	for _, t := range corpus.ThemeOf {
		themes[t] = true
	}
	model, err := lda.Train(corpus.Descriptions(), lda.Options{
		K:          len(corpus.Groups),
		Alpha:      0.1,
		Iterations: 150,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	hier := lda.BuildHierarchy(model, len(themes))
	cfg := presets.AmazonConfig(hier.Tree, hier.Mapper())
	ruleSet := presets.AmazonRules(cfg)

	var router *dime.Group
	for _, g := range corpus.Groups {
		if g.Name == "Router" {
			router = g
			break
		}
	}
	if router == nil {
		log.Fatal("no Router category generated")
	}

	res, err := dime.Discover(router, dime.Options{Config: cfg, Rules: ruleSet})
	if err != nil {
		log.Fatal(err)
	}

	truth := router.MisCategorizedIDs()
	fmt.Printf("category %q: %d products, %d injected from other categories\n",
		router.Name, router.Size(), len(truth))
	for li, lv := range res.Levels {
		fmt.Printf("  level %d (%s): %d flagged   %s\n",
			li+1, lv.RuleName, len(lv.EntityIDs), metrics.Score(lv.EntityIDs, truth))
	}

	// Peek at the learned topics: the top words of the topic the pivot's
	// descriptions map to should look like router vocabulary.
	di, _ := router.Schema.Index("Description")
	pivotDesc := router.Entities[res.Partitions[res.Pivot][0]].Joined(di)
	topic := model.Infer(tokenize.Words(pivotDesc))
	fmt.Printf("\npivot description topic #%d top words: %v\n", topic, model.TopWords(topic, 8))

	fmt.Println("\nflagged products (final level):")
	ti, _ := router.Schema.Index("Title")
	for _, id := range res.Final() {
		e := router.ByID(id)
		status := "false positive"
		if router.Truth[id] {
			status = "true intruder"
		}
		fmt.Printf("  %-22s %-34s %s\n", id, e.Joined(ti), status)
	}
}
