// Streaming demonstrates incremental maintenance: a Google Scholar profile
// that gains publications over time. A dime.Session folds each arriving
// publication into the partitioning (only the new entity's candidate pairs
// are verified), and the scrollbar is recomputed at checkpoints — the mode a
// profile-cleaning service would run in, rather than re-clustering the whole
// page on every crawl.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dime"
	"dime/internal/datagen"
	"dime/internal/metrics"
	"dime/internal/presets"
)

func main() {
	// The "crawl": a full page whose entities arrive one by one.
	page := datagen.Scholar(datagen.ScholarOptions{
		Owner:     "Grace Weber",
		NumPubs:   240,
		ErrorRate: 0.07,
		Seed:      99,
	})
	cfg := presets.ScholarConfig()
	ruleSet := presets.ScholarRules(cfg)
	truth := page.MisCategorizedIDs()

	// Crawls do not deliver clean-then-dirty: shuffle the arrival order.
	arrival := append([]*dime.Entity(nil), page.Entities...)
	rand.New(rand.NewSource(1)).Shuffle(len(arrival), func(i, j int) {
		arrival[i], arrival[j] = arrival[j], arrival[i]
	})

	// Seed the session with the first few publications.
	const seedSize = 10
	live := dime.NewGroup(page.Name, page.Schema)
	for _, e := range arrival[:seedSize] {
		if err := live.Add(e.Clone()); err != nil {
			log.Fatal(err)
		}
	}
	sess, err := dime.NewSession(live, dime.Options{Config: cfg, Rules: ruleSet})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d publications onto %q (seeded with %d)\n\n",
		page.Size()-seedSize, page.Name, seedSize)
	fmt.Printf("%8s %12s %10s %10s  %s\n", "arrived", "partitions", "pivot", "flagged", "score so far")

	rebuilds := 0
	for i, e := range arrival[seedSize:] {
		rebuilt, err := sess.Add(e.Clone())
		if err != nil {
			log.Fatal(err)
		}
		if rebuilt {
			rebuilds++
		}
		arrived := seedSize + i + 1
		if arrived%60 == 0 || arrived == page.Size() {
			res, err := sess.Result()
			if err != nil {
				log.Fatal(err)
			}
			// Score against the truth restricted to what has arrived.
			var arrivedTruth []string
			for _, id := range truth {
				if live.ByID(id) != nil {
					arrivedTruth = append(arrivedTruth, id)
				}
			}
			fmt.Printf("%8d %12d %10d %10d  %s\n",
				arrived, len(res.Partitions), res.PivotSize(), len(res.Final()),
				metrics.Score(res.Final(), arrivedTruth))
		}
	}
	fmt.Printf("\nfull rebuilds forced by new ontology shapes: %d\n", rebuilds)

	// Cross-check: the incremental end state equals a from-scratch run.
	batch, err := dime.Discover(page, dime.Options{Config: cfg, Rules: ruleSet})
	if err != nil {
		log.Fatal(err)
	}
	final, err := sess.Result()
	if err != nil {
		log.Fatal(err)
	}
	match := len(batch.Final()) == len(final.Final())
	for i := range batch.Final() {
		if !match || batch.Final()[i] != final.Final()[i] {
			match = false
			break
		}
	}
	fmt.Printf("incremental result equals from-scratch result: %v\n", match)
}
