// Scholar cleans a full synthetic Google Scholar page: it generates a
// researcher profile with ~200 publications (including scraper noise, a
// name doppelgänger from another field, and odd-one-out correct papers),
// runs DIME+, and prints per-level precision/recall against the ground
// truth — the workflow the paper's Chrome extension automates.
package main

import (
	"fmt"
	"log"

	"dime"
	"dime/internal/datagen"
	"dime/internal/metrics"
	"dime/internal/presets"
)

func main() {
	page := datagen.Scholar(datagen.ScholarOptions{
		Owner:     "Ada Lovelace",
		NumPubs:   200,
		ErrorRate: 0.07,
		Seed:      42,
	})
	cfg := presets.ScholarConfig()
	ruleSet := presets.ScholarRules(cfg)

	res, err := dime.Discover(page, dime.Options{Config: cfg, Rules: ruleSet})
	if err != nil {
		log.Fatal(err)
	}

	truth := page.MisCategorizedIDs()
	fmt.Printf("page %q: %d entities, %d truly mis-categorized\n", page.Name, page.Size(), len(truth))
	fmt.Printf("partitions: %d (pivot %d entities)\n\n", len(res.Partitions), res.PivotSize())

	fmt.Println("scrollbar (drag right for more aggressive suggestions):")
	for li, lv := range res.Levels {
		score := metrics.Score(lv.EntityIDs, truth)
		fmt.Printf("  level %d (%-6s): %3d flagged   %s\n", li+1, lv.RuleName, len(lv.EntityIDs), score)
	}

	// Show what the most conservative level found, with the venue that gave
	// each entity away.
	fmt.Println("\nconservative suggestions (level 1):")
	vi, _ := page.Schema.Index("Venue")
	ai, _ := page.Schema.Index("Authors")
	for _, id := range res.MisCategorizedIDs(0) {
		e := page.ByID(id)
		status := "FALSE POSITIVE"
		if page.Truth[id] {
			status = "correct catch"
		}
		fmt.Printf("  %s  venue=%-28s authors=%d  → %s\n",
			id, e.Joined(vi), len(e.Value(ai)), status)
	}
	fmt.Println("\nwork performed:", res.Stats.PositiveVerified, "positive and",
		res.Stats.NegativeVerified, "negative verifications;",
		res.Stats.PositiveSkippedByTransitivity, "pairs skipped by transitivity")
}
