package dime_test

import (
	"bytes"
	"testing"

	"dime"
	"dime/internal/difftest"
)

// fuzzRuleSet builds an overlap-only rule set over the decoded group's own
// schema: one positive rule and up to two negative rules on the first
// attributes. Overlap needs no token-mode or ontology configuration, so any
// decodable schema works; a schema whose attribute names the DSL cannot
// parse is reported as not usable.
func fuzzRuleSet(cfg *dime.Config, g *dime.Group) (dime.RuleSet, bool) {
	a0 := g.Schema.Attributes[0]
	pos, err := dime.ParseRule(cfg, "f+1", dime.Positive, "ov("+a0+") >= 1")
	if err != nil {
		return dime.RuleSet{}, false
	}
	neg, err := dime.ParseRule(cfg, "f-1", dime.Negative, "ov("+a0+") = 0")
	if err != nil {
		return dime.RuleSet{}, false
	}
	rs := dime.RuleSet{Positive: []dime.Rule{pos}, Negative: []dime.Rule{neg}}
	if g.Schema.Len() > 1 {
		a1 := g.Schema.Attributes[1]
		if neg2, err := dime.ParseRule(cfg, "f-2", dime.Negative,
			"ov("+a0+") <= 1 && ov("+a1+") = 0"); err == nil {
			rs.Negative = append(rs.Negative, neg2)
		}
	}
	return rs, true
}

// fuzzSeedCorpus encodes a few real groups as the JSON-lines corpus format
// the fuzzer mutates: the Figure 1 running example and a tiny two-attribute
// group with an isolated entity.
func fuzzSeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	schema := dime.MustSchema("Title", "Authors", "Venue")
	fig1 := dime.NewGroup("Nan Tang", schema)
	add := func(g *dime.Group, s *dime.Schema, id string, values [][]string) {
		e, err := dime.NewEntity(s, id, values)
		if err != nil {
			f.Fatal(err)
		}
		if err := g.Add(e); err != nil {
			f.Fatal(err)
		}
	}
	add(fig1, schema, "e1", [][]string{{"t1"}, {"Xu Chu", "Ihab F. Ilyas", "Nan Tang"}, {"SIGMOD"}})
	add(fig1, schema, "e2", [][]string{{"t2"}, {"Nan Tang", "Jeffrey Xu Yu"}, {"ICDE"}})
	add(fig1, schema, "e4", [][]string{{"t4"}, {"Yunqing Xia", "NJ Tang"}, {"SIGIR"}})

	small := dime.MustSchema("A", "B")
	tiny := dime.NewGroup("tiny", small)
	add(tiny, small, "x1", [][]string{{"a", "b"}, {"k"}})
	add(tiny, small, "x2", [][]string{{"b", "c"}, {}})
	add(tiny, small, "x3", [][]string{{"z"}, {"q"}})

	var seeds [][]byte
	for _, groups := range [][]*dime.Group{{fig1}, {tiny}, {fig1, tiny}} {
		var buf bytes.Buffer
		if err := dime.WriteGroups(&buf, groups); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzDiffDIMEPlus feeds arbitrary bytes through the corpus decoder and, for
// every decoded group small enough to brute-force, asserts the differential
// invariant of internal/difftest: DIME, sequential DIME+ and parallel DIME+
// (IntraWorkers=3) must agree — the two DIME+ runs byte-for-byte. Inputs the
// pipeline legitimately rejects (undecodable corpora, unusable schemas,
// groups the record compiler refuses) are skipped; only a divergence or a
// panic fails.
func FuzzDiffDIMEPlus(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		groups, err := dime.ReadGroups(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, g := range groups {
			if g.Schema == nil || g.Schema.Len() == 0 || len(g.Entities) == 0 || len(g.Entities) > 48 {
				continue
			}
			cfg := dime.NewConfig(g.Schema)
			rs, ok := fuzzRuleSet(cfg, g)
			if !ok {
				continue
			}
			// Probe once: a group the record compiler rejects (JSON can
			// encode value lists no Add call would accept) is a skip, not a
			// divergence.
			if _, err := dime.DiscoverBasic(g, dime.Options{Config: cfg, Rules: rs}); err != nil {
				continue
			}
			difftest.Check(t, difftest.Case{Name: "fuzz-" + g.Name, Group: g, Config: cfg, Rules: rs}, 3)
		}
	})
}
