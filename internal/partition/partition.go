// Package partition provides the union–find structure DIME uses to maintain
// disjoint partitions of a group under transitivity: when two entities are
// verified to satisfy a positive rule they are unioned, and a candidate pair
// already in one partition is never verified again (Section IV-C).
package partition

// UnionFind is a disjoint-set forest over n elements with path compression
// and union by size. The zero value is unusable; create with New.
type UnionFind struct {
	parent []int
	size   []int
	count  int
}

// New creates a union–find over elements 0..n-1, each in its own set.
func New(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		size:   make([]int, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Len returns the number of elements.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Grow appends a new element in its own singleton set and returns its index.
func (uf *UnionFind) Grow() int {
	i := len(uf.parent)
	uf.parent = append(uf.parent, i)
	uf.size = append(uf.size, 1)
	uf.count++
	return i
}

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Union merges the sets of x and y; it returns true when a merge happened
// (false when they were already together).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.count--
	return true
}

// SizeOf returns the size of x's set.
func (uf *UnionFind) SizeOf(x int) int { return uf.size[uf.Find(x)] }

// Sets returns the disjoint sets as slices of element indexes. Sets are
// ordered by their smallest member and members are ascending, so the output
// is deterministic.
func (uf *UnionFind) Sets() [][]int {
	root2set := make(map[int][]int)
	order := make([]int, 0)
	for i := 0; i < len(uf.parent); i++ {
		r := uf.Find(i)
		if _, seen := root2set[r]; !seen {
			order = append(order, r)
		}
		root2set[r] = append(root2set[r], i)
	}
	sets := make([][]int, 0, len(order))
	for _, r := range order {
		sets = append(sets, root2set[r])
	}
	return sets
}

// Largest returns the members of the largest set; ties break toward the set
// containing the smallest element index, keeping pivot selection
// deterministic.
func (uf *UnionFind) Largest() []int {
	sets := uf.Sets()
	var best []int
	for _, s := range sets {
		if len(s) > len(best) {
			best = s
		}
	}
	return best
}
