package partition

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBasicUnionFind(t *testing.T) {
	uf := New(5)
	if uf.Count() != 5 || uf.Len() != 5 {
		t.Fatalf("fresh UF: count=%d len=%d", uf.Count(), uf.Len())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if uf.Union(0, 1) {
		t.Fatal("second union should be a no-op")
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Fatal("Same broken")
	}
	uf.Union(1, 2)
	if !uf.Same(0, 2) {
		t.Fatal("transitivity broken")
	}
	if uf.SizeOf(2) != 3 {
		t.Fatalf("SizeOf = %d", uf.SizeOf(2))
	}
	if uf.Count() != 3 {
		t.Fatalf("Count = %d", uf.Count())
	}
}

func TestSetsDeterministic(t *testing.T) {
	uf := New(6)
	uf.Union(4, 5)
	uf.Union(1, 3)
	got := uf.Sets()
	want := [][]int{{0}, {1, 3}, {2}, {4, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sets = %v, want %v", got, want)
	}
}

func TestLargest(t *testing.T) {
	uf := New(6)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Union(3, 4)
	got := uf.Largest()
	if !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("Largest = %v", got)
	}
}

func TestLargestTieBreaksToSmallestMember(t *testing.T) {
	uf := New(4)
	uf.Union(2, 3)
	uf.Union(0, 1)
	got := uf.Largest()
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Largest tie = %v, want [0 1]", got)
	}
}

// Property: against a naive labeling implementation, random union sequences
// produce identical partitions.
func TestAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		uf := New(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for op := 0; op < n; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			uf.Union(a, b)
			if labels[a] != labels[b] {
				relabel(labels[a], labels[b])
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(i, j) != (labels[i] == labels[j]) {
					t.Fatalf("trial %d: Same(%d,%d) mismatch", trial, i, j)
				}
			}
		}
		// Sets must partition 0..n-1 exactly.
		seen := make([]bool, n)
		total := 0
		for _, s := range uf.Sets() {
			for _, x := range s {
				if seen[x] {
					t.Fatal("element appears twice in Sets")
				}
				seen[x] = true
				total++
			}
		}
		if total != n {
			t.Fatalf("Sets covered %d of %d elements", total, n)
		}
	}
}
