package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOverlap(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 2},
		{[]string{"a"}, []string{"b"}, 0},
		{nil, []string{"a"}, 0},
		{nil, nil, 0},
		{[]string{"a", "a", "b"}, []string{"a"}, 1}, // duplicates count once
		{[]string{"x", "y"}, []string{"y", "x"}, 2},
	}
	for _, c := range cases {
		if got := Overlap(c.a, c.b); got != c.want {
			t.Errorf("Overlap(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlapSymmetric(t *testing.T) {
	f := func(a, b []string) bool { return Overlap(a, b) == Overlap(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard([]string{"a", "b"}, []string{"b", "c"}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("Jaccard = %v", got)
	}
	if Jaccard(nil, nil) != 1 {
		t.Fatal("Jaccard(∅,∅) should be 1")
	}
	if Jaccard(nil, []string{"a"}) != 0 {
		t.Fatal("Jaccard(∅,{a}) should be 0")
	}
	if Jaccard([]string{"a", "a"}, []string{"a"}) != 1 {
		t.Fatal("duplicates should not change Jaccard")
	}
}

func TestDice(t *testing.T) {
	if got := Dice([]string{"a", "b"}, []string{"b", "c"}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Dice = %v", got)
	}
	if Dice(nil, nil) != 1 {
		t.Fatal("Dice(∅,∅) = 1")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]string{"a", "b"}, []string{"b", "c"}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Cosine = %v", got)
	}
	if Cosine(nil, nil) != 1 {
		t.Fatal("Cosine(∅,∅) = 1")
	}
	if Cosine(nil, []string{"a"}) != 0 {
		t.Fatal("Cosine(∅,{a}) = 0")
	}
}

// Property: all normalized set similarities are within [0,1], symmetric, and
// equal 1 on identical non-empty sets.
func TestSetSimilarityProperties(t *testing.T) {
	fns := map[string]func(a, b []string) float64{
		"jaccard": Jaccard, "dice": Dice, "cosine": Cosine,
	}
	for name, fn := range fns {
		f := func(a, b []string) bool {
			v := fn(a, b)
			if v < 0 || v > 1+1e-12 {
				return false
			}
			if math.Abs(v-fn(b, a)) > 1e-12 {
				return false
			}
			return math.Abs(fn(a, a)-1) < 1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"日本語", "日本", 1},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceBounded(t *testing.T) {
	if d, ok := EditDistanceBounded("kitten", "sitting", 3); !ok || d != 3 {
		t.Fatalf("bounded = %d, %v", d, ok)
	}
	if _, ok := EditDistanceBounded("kitten", "sitting", 2); ok {
		t.Fatal("distance 3 should exceed bound 2")
	}
	if d, ok := EditDistanceBounded("", "", 0); !ok || d != 0 {
		t.Fatalf("empty strings: %d, %v", d, ok)
	}
	if _, ok := EditDistanceBounded("a", "b", -1); ok {
		t.Fatal("negative bound should fail")
	}
	if _, ok := EditDistanceBounded("abc", "abcdefgh", 3); ok {
		t.Fatal("length gap beyond bound should fail fast")
	}
}

// Property: the banded computation agrees with the full DP for every bound.
func TestEditDistanceBoundedMatchesFull(t *testing.T) {
	alphabet := []rune("abcd")
	gen := func(seed int64) string {
		var b strings.Builder
		n := int(seed % 9)
		if n < 0 {
			n = -n
		}
		x := seed
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			b.WriteRune(alphabet[int(uint64(x)>>60)%len(alphabet)])
		}
		return b.String()
	}
	for s1 := int64(0); s1 < 40; s1++ {
		for s2 := int64(0); s2 < 40; s2++ {
			a, b := gen(s1*7+1), gen(s2*13+3)
			full := EditDistance(a, b)
			for bound := 0; bound <= 10; bound++ {
				d, ok := EditDistanceBounded(a, b, bound)
				if full <= bound {
					if !ok || d != full {
						t.Fatalf("EditDistanceBounded(%q,%q,%d) = (%d,%v), full = %d", a, b, bound, d, ok, full)
					}
				} else if ok {
					t.Fatalf("EditDistanceBounded(%q,%q,%d) ok but full = %d", a, b, bound, full)
				}
			}
		}
	}
}

func TestEditWithin(t *testing.T) {
	if !EditWithin("abc", "abd", 1) {
		t.Fatal("abc/abd within 1")
	}
	if EditWithin("abc", "xyz", 2) {
		t.Fatal("abc/xyz not within 2")
	}
	if EditWithin("a", "b", -1) {
		t.Fatal("negative threshold never matches")
	}
}

func TestEditSimilarity(t *testing.T) {
	if EditSimilarity("", "") != 1 {
		t.Fatal("empty strings have similarity 1")
	}
	if got := EditSimilarity("abcd", "abcx"); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("EditSimilarity = %v", got)
	}
	if got := EditSimilarity("abc", ""); got != 0 {
		t.Fatalf("EditSimilarity vs empty = %v", got)
	}
}

// Property: edit distance is a metric on short random strings: symmetric,
// zero iff equal, triangle inequality.
func TestEditDistanceMetricProperties(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 12 {
			a = a[:12]
		}
		if len(b) > 12 {
			b = b[:12]
		}
		if len(c) > 12 {
			c = c[:12]
		}
		dab, dba := EditDistance(a, b), EditDistance(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			// Note: invalid UTF-8 both decode to replacement runes; comparing
			// decoded forms keeps the property exact.
			if string([]rune(a)) == string([]rune(b)) {
				return dab == 0
			}
			return false
		}
		return EditDistance(a, c) <= dab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
