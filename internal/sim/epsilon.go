package sim

import "math"

// Epsilon is the tolerance used by the threshold comparison helpers below.
// Similarity values are built from float divisions and square roots, so a
// value that is mathematically equal to a rule threshold (say jac = 0.3) can
// land a few ULPs on either side of it. Rule semantics must not depend on
// that noise: every threshold comparison in the codebase goes through Eq,
// AtLeast or AtMost. The dimelint float-threshold analyzer enforces this.
const Epsilon = 1e-9

// Eq reports whether two float64 similarity values are equal within Epsilon.
// Use it instead of == or != on similarity values.
func Eq(a, b float64) bool {
	return math.Abs(a-b) <= Epsilon
}

// AtLeast reports s ≥ threshold with Epsilon tolerance: a value within
// Epsilon below the threshold still satisfies it. This is the comparison for
// positive-rule predicates f(A) ≥ θ.
func AtLeast(s, threshold float64) bool {
	return s >= threshold-Epsilon
}

// AtMost reports s ≤ threshold with Epsilon tolerance: a value within
// Epsilon above the threshold still satisfies it. This is the comparison for
// negative-rule predicates f(A) ≤ σ.
func AtMost(s, threshold float64) bool {
	return s <= threshold+Epsilon
}
