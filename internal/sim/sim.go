// Package sim implements the similarity functions DIME rules are built from:
// set-based (overlap, Jaccard, dice, cosine), character-based (edit distance
// and normalized edit similarity), and hooks for ontology-based similarity
// (implemented in internal/ontology and plugged in through internal/rules).
//
// All functions are pure and allocation-light; the verification-cost models
// from Section IV-C of the paper live next to the functions they describe.
package sim

import "math"

// Overlap returns |a ∩ b| treating the slices as sets (duplicates in either
// input count once).
func Overlap(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	// Small inputs: direct scans beat map allocation by a wide margin, and
	// attribute token lists are usually short.
	if len(small) <= 16 && len(large) <= 32 {
		n := 0
		for bi, t := range large {
			if indexOf(large[:bi], t) >= 0 {
				continue // duplicate in large: count each common token once
			}
			if indexOf(small, t) >= 0 {
				n++
			}
		}
		return n
	}
	set := make(map[string]struct{}, len(small))
	for _, t := range small {
		set[t] = struct{}{}
	}
	n := 0
	for _, t := range large {
		if _, ok := set[t]; ok {
			n++
			delete(set, t) // count each common token once
		}
	}
	return n
}

// Jaccard returns |a ∩ b| / |a ∪ b| over the token sets. Two empty sets have
// similarity 1; one empty set against a non-empty one has similarity 0.
func Jaccard(a, b []string) float64 {
	da, db := dedupCount(a), dedupCount(b)
	if da == 0 && db == 0 {
		return 1
	}
	ov := Overlap(a, b)
	union := da + db - ov
	if union == 0 {
		return 1
	}
	return float64(ov) / float64(union)
}

// Dice returns 2|a ∩ b| / (|a| + |b|) over the token sets.
func Dice(a, b []string) float64 {
	da, db := dedupCount(a), dedupCount(b)
	if da+db == 0 {
		return 1
	}
	return 2 * float64(Overlap(a, b)) / float64(da+db)
}

// Cosine returns |a ∩ b| / sqrt(|a|·|b|) over the token sets.
func Cosine(a, b []string) float64 {
	da, db := dedupCount(a), dedupCount(b)
	if da == 0 && db == 0 {
		return 1
	}
	if da == 0 || db == 0 {
		return 0
	}
	return float64(Overlap(a, b)) / sqrtProduct(da, db)
}

func dedupCount(a []string) int {
	if len(a) < 2 {
		return len(a)
	}
	if len(a) <= 16 {
		n := 0
		for i, t := range a {
			if indexOf(a[:i], t) < 0 {
				n++
			}
		}
		return n
	}
	set := make(map[string]struct{}, len(a))
	for _, t := range a {
		set[t] = struct{}{}
	}
	return len(set)
}

// indexOf returns the position of t in xs or -1.
func indexOf(xs []string, t string) int {
	for i, x := range xs {
		if x == t {
			return i
		}
	}
	return -1
}

func sqrtProduct(a, b int) float64 {
	return math.Sqrt(float64(a) * float64(b))
}
