package sim

import "testing"

// FuzzEditDistance cross-checks the three edit-distance entry points against
// each other and against the Levenshtein metric axioms. The banded verifier
// (EditDistanceBounded) reimplements the DP with early exits and band
// bookkeeping, so agreement with the plain two-row DP is the property most
// worth fuzzing.
func FuzzEditDistance(f *testing.F) {
	f.Add("", "", 0)
	f.Add("kitten", "sitting", 3)
	f.Add("VLDB", "Very Large Data Bases", 5)
	f.Add("sigmod", "sigmod", 1)
	f.Add("a", "abcdefgh", 2)
	f.Add("héllo", "hello", 1) // multi-byte runes
	f.Add("日本語", "日本", 1)
	f.Add("ICDE 2018", "ICDE2018", 0)
	f.Fuzz(func(t *testing.T, a, b string, bound int) {
		const maxLen = 256
		if len(a) > maxLen || len(b) > maxLen {
			return // keep the O(|a|·|b|) DP cheap
		}
		bound %= 16
		if bound < 0 {
			bound = -bound
		}

		d := EditDistance(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		longest, diff := la, la-lb
		if lb > longest {
			longest = lb
		}
		if diff < 0 {
			diff = -diff
		}

		// Metric axioms.
		if d < diff || d > longest {
			t.Fatalf("EditDistance(%q, %q) = %d outside [%d, %d]", a, b, d, diff, longest)
		}
		// Identity is over the rune decoding: invalid UTF-8 collapses to
		// U+FFFD, so compare the decoded forms, not the raw bytes.
		if (d == 0) != (string([]rune(a)) == string([]rune(b))) {
			t.Fatalf("EditDistance(%q, %q) = %d; zero iff rune-equal violated", a, b, d)
		}
		if rev := EditDistance(b, a); rev != d {
			t.Fatalf("EditDistance not symmetric: %d vs %d for %q, %q", d, rev, a, b)
		}

		// The banded verifier must agree with the exact DP on both sides of
		// the bound.
		bd, ok := EditDistanceBounded(a, b, bound)
		if ok {
			if bd != d {
				t.Fatalf("EditDistanceBounded(%q, %q, %d) = %d, exact DP says %d", a, b, bound, bd, d)
			}
			if d > bound {
				t.Fatalf("EditDistanceBounded(%q, %q, %d) reported ok but distance is %d", a, b, bound, d)
			}
		} else {
			if d <= bound {
				t.Fatalf("EditDistanceBounded(%q, %q, %d) gave up but distance is %d", a, b, bound, d)
			}
			if bd != bound+1 {
				t.Fatalf("EditDistanceBounded(%q, %q, %d) = %d on failure, want bound+1", a, b, bound, bd)
			}
		}
		if within := EditWithin(a, b, bound); within != (d <= bound) {
			t.Fatalf("EditWithin(%q, %q, %d) = %v, distance is %d", a, b, bound, within, d)
		}

		// Normalized similarity stays in [0, 1] and matches its definition.
		s := EditSimilarity(a, b)
		if !AtLeast(s, 0) || !AtMost(s, 1) {
			t.Fatalf("EditSimilarity(%q, %q) = %g outside [0, 1]", a, b, s)
		}
		if longest > 0 {
			want := 1 - float64(d)/float64(longest)
			if !Eq(s, want) {
				t.Fatalf("EditSimilarity(%q, %q) = %g, want %g", a, b, s, want)
			}
		}
	})
}
