package sim

// EditDistance returns the Levenshtein distance between a and b, computed
// over runes with the classic two-row dynamic program in O(|a|·|b|) time and
// O(min(|a|,|b|)) space. Inputs are compared by their rune decoding, so
// invalid UTF-8 sequences collapse to U+FFFD before comparison (distinct
// invalid byte sequences are therefore equal).
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(ra) == 0 {
		return len(rb)
	}
	prev := make([]int, len(ra)+1)
	cur := make([]int, len(ra)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(rb); j++ {
		cur[0] = j
		for i := 1; i <= len(ra); i++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[i] = min3(prev[i]+1, cur[i-1]+1, prev[i-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(ra)]
}

// EditWithin reports whether EditDistance(a, b) ≤ θ, using the banded dynamic
// program that the paper's cost model describes: O(θ·min(|a|,|b|)) time. It
// is the verification routine for character-based predicates. θ < 0 always
// reports false.
func EditWithin(a, b string, theta int) bool {
	d, ok := EditDistanceBounded(a, b, theta)
	return ok && d <= theta
}

// EditDistanceBounded computes the edit distance if it is ≤ bound, returning
// (distance, true); otherwise it returns (bound+1, false). The band around
// the diagonal has width 2·bound+1.
func EditDistanceBounded(a, b string, bound int) (int, bool) {
	if bound < 0 {
		return 0, false
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	if len(rb)-len(ra) > bound {
		return bound + 1, false
	}
	if len(ra) == 0 {
		return len(rb), true
	}
	const inf = int(^uint(0) >> 2)
	n := len(ra)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for i := 0; i <= n; i++ {
		if i <= bound {
			prev[i] = i
		} else {
			prev[i] = inf
		}
	}
	for j := 1; j <= len(rb); j++ {
		lo := j - bound
		if lo < 1 {
			lo = 1
		}
		hi := j + bound
		if hi > n {
			hi = n
		}
		if lo > hi {
			return bound + 1, false
		}
		if lo == 1 {
			if j <= bound {
				cur[0] = j
			} else {
				cur[0] = inf
			}
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		rowMin := inf
		for i := lo; i <= hi; i++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			up := inf
			if i <= j+bound-1 { // prev[i] inside band of row j-1
				up = prev[i]
			}
			diag := prev[i-1]
			left := cur[i-1]
			v := diag + cost
			if up+1 < v {
				v = up + 1
			}
			if left+1 < v {
				v = left + 1
			}
			cur[i] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < n {
			cur[hi+1] = inf
		}
		if rowMin > bound {
			return bound + 1, false
		}
		prev, cur = cur, prev
	}
	if prev[n] > bound {
		return bound + 1, false
	}
	return prev[n], true
}

// EditSimilarity returns the normalized edit similarity
// 1 − ED(a, b) / max(|a|, |b|), a value in [0, 1]. Two empty strings have
// similarity 1.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
