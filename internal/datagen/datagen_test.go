package datagen

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestScholarDeterministic(t *testing.T) {
	a := Scholar(ScholarOptions{NumPubs: 50, ErrorRate: 0.1, Seed: 3})
	b := Scholar(ScholarOptions{NumPubs: 50, ErrorRate: 0.1, Seed: 3})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same seed must generate identical pages")
	}
	c := Scholar(ScholarOptions{NumPubs: 50, ErrorRate: 0.1, Seed: 4})
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Fatal("different seeds should differ")
	}
}

func TestScholarShape(t *testing.T) {
	g := Scholar(ScholarOptions{NumPubs: 100, ErrorRate: 0.1, Seed: 1})
	if g.Schema != ScholarSchema {
		t.Fatal("schema mismatch")
	}
	nErr := len(g.MisCategorizedIDs())
	if nErr == 0 {
		t.Fatal("no errors injected")
	}
	frac := float64(nErr) / float64(g.Size())
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("error fraction %.3f far from requested 0.1 (n=%d, errs=%d)", frac, g.Size(), nErr)
	}
	// Every entity has an owner-ish author list and a venue.
	vi, _ := g.Schema.Index("Venue")
	ai, _ := g.Schema.Index("Authors")
	for _, e := range g.Entities {
		if len(e.Value(ai)) == 0 {
			t.Fatalf("entity %s has no authors", e.ID)
		}
		if len(e.Value(vi)) != 1 {
			t.Fatalf("entity %s has %d venues", e.ID, len(e.Value(vi)))
		}
	}
}

func TestScholarPages(t *testing.T) {
	pages := ScholarPages(5, 40, 0.08, 11)
	if len(pages) != 5 {
		t.Fatalf("pages = %d", len(pages))
	}
	names := map[string]bool{}
	for _, p := range pages {
		names[p.Name] = true
		if p.Size() == 0 {
			t.Fatal("empty page")
		}
	}
}

func TestAmazonShape(t *testing.T) {
	c := Amazon(AmazonOptions{
		ProductsPerCategory: 30,
		ErrorRate:           0.2,
		Seed:                5,
		Categories:          []string{"Router", "Adapter", "Blender"},
	})
	if len(c.Groups) != 3 {
		t.Fatalf("groups = %d", len(c.Groups))
	}
	for _, g := range c.Groups {
		nErr := len(g.MisCategorizedIDs())
		if nErr == 0 {
			t.Fatalf("group %s has no injected errors", g.Name)
		}
		frac := float64(nErr) / float64(g.Size())
		if frac < 0.1 || frac > 0.3 {
			t.Fatalf("group %s error fraction %.3f", g.Name, frac)
		}
	}
	if c.ThemeOf["Router"] != "Electronics" {
		t.Fatal("theme mapping broken")
	}
	if c.TrueTree.Lookup("Router") == nil {
		t.Fatal("true tree missing category node")
	}
	if len(c.Descriptions()) == 0 {
		t.Fatal("no description docs")
	}
}

func TestAmazonTrueMapper(t *testing.T) {
	c := Amazon(AmazonOptions{
		ProductsPerCategory: 20,
		ErrorRate:           0.1,
		Seed:                9,
		Categories:          []string{"Router", "Adapter", "Puzzle"},
	})
	mapper := c.TrueMapper()
	di, _ := AmazonSchema.Index("Description")
	// Mapper should assign native products to (near) their own category.
	right, total := 0, 0
	for _, g := range c.Groups {
		for _, e := range g.Entities {
			if g.Truth[e.ID] {
				continue
			}
			total++
			if n := mapper(e.Value(di)); n != nil && n.Label == g.Name {
				right++
			}
		}
	}
	if total == 0 {
		t.Fatal("no natives")
	}
	if acc := float64(right) / float64(total); acc < 0.85 {
		t.Fatalf("true mapper accuracy %.2f too low", acc)
	}
}

func TestDBGenShape(t *testing.T) {
	g := DBGen(DBGenOptions{NumEntities: 500, ErrorRate: 0.2, Seed: 7})
	if g.Size() != 500 {
		t.Fatalf("size = %d", g.Size())
	}
	nErr := len(g.MisCategorizedIDs())
	if nErr != 100 {
		t.Fatalf("errors = %d, want 100", nErr)
	}
	// Deterministic.
	g2 := DBGen(DBGenOptions{NumEntities: 500, ErrorRate: 0.2, Seed: 7})
	ja, _ := json.Marshal(g)
	jb, _ := json.Marshal(g2)
	if string(ja) != string(jb) {
		t.Fatal("DBGen must be deterministic")
	}
}

func TestCorruptNameChangesToken(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := newRng(seed)
		c := corruptName(rng, "Nan Tang")
		if c == "Nan Tang" {
			t.Fatalf("seed %d: corruption was identity", seed)
		}
	}
}

func TestZipfIndexHeavyHead(t *testing.T) {
	rng := newRng(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[zipfIndex(rng, 10)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("zipf head %d should dominate tail %d", counts[0], counts[9])
	}
	if zipfIndex(rng, 1) != 0 || zipfIndex(rng, 0) != 0 {
		t.Fatal("degenerate zipf sizes")
	}
}

func TestVocabCoverage(t *testing.T) {
	// Every subfield of the built-in ontology used by the generator should
	// have a vocabulary (or fall back to generic words without panicking).
	u := newScholarUniverse()
	for _, subs := range u.subfields {
		for _, s := range subs {
			if len(u.vocabOf(s)) == 0 {
				t.Fatalf("subfield %q has empty vocabulary", s)
			}
		}
	}
	// Every Amazon category must have a vocabulary and a theme.
	for theme, cats := range amazonThemes {
		if len(themeVocab[theme]) == 0 {
			t.Fatalf("theme %q has no vocab", theme)
		}
		for _, c := range cats {
			if len(categoryVocab[c]) == 0 {
				t.Fatalf("category %q has no vocab", c)
			}
		}
	}
}

// newRng is a test helper wrapping rand.New.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
