package datagen

// Name and vocabulary pools for the synthetic generators. The pools are
// intentionally large enough that random draws rarely collide across
// communities, while owner-name collisions across fields are injected
// explicitly by the Scholar generator.

var givenNames = []string{
	"Wei", "Nan", "Guoliang", "Jianhua", "Shuang", "Xin", "Lei", "Ming",
	"Anna", "Boris", "Carla", "David", "Elena", "Felix", "Grace", "Henry",
	"Irene", "Jonas", "Karin", "Louis", "Maria", "Nora", "Omar", "Paula",
	"Quentin", "Rosa", "Stefan", "Tara", "Ulrich", "Vera", "Walter", "Xenia",
	"Yusuf", "Zoe", "Amir", "Bianca", "Cheng", "Divya", "Emil", "Fatima",
	"Gustav", "Hana", "Igor", "Jing", "Kavya", "Liang", "Mei", "Niko",
	"Olga", "Pierre", "Qing", "Ravi", "Sofia", "Tomas", "Uma", "Viktor",
}

var surnames = []string{
	"Tang", "Li", "Feng", "Hao", "Chen", "Wang", "Zhang", "Liu", "Yang",
	"Huang", "Zhao", "Wu", "Zhou", "Xu", "Sun", "Ma", "Gao", "Lin", "He",
	"Guo", "Smith", "Johnson", "Brown", "Miller", "Davis", "Garcia",
	"Martinez", "Lopez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore",
	"Martin", "Lee", "Thompson", "White", "Harris", "Clark", "Lewis",
	"Mueller", "Schmidt", "Fischer", "Weber", "Meyer", "Wagner", "Becker",
	"Hoffmann", "Koch", "Richter", "Klein", "Wolf", "Neumann", "Schwarz",
}

// subfieldVocab provides per-subfield title vocabularies: titles of
// publications in a subfield draw mostly from its own pool, so title
// similarity correlates with community membership (the signal the φ−3 rule
// exploits).
var subfieldVocab = map[string][]string{
	"Database": {
		"query", "index", "transaction", "relational", "join", "schema",
		"storage", "sql", "optimizer", "cleaning", "integration", "olap",
		"column", "tuple", "view", "partition", "log", "recovery",
	},
	"System": {
		"kernel", "scheduler", "distributed", "parallel", "filesystem",
		"virtualization", "cache", "memory", "latency", "throughput",
		"consensus", "replication", "fault", "cluster", "runtime", "placement",
	},
	"Data Mining": {
		"pattern", "frequent", "outlier", "clustering", "itemset", "stream",
		"anomaly", "graph", "community", "embedding", "association", "sampling",
	},
	"Information Retrieval": {
		"ranking", "retrieval", "relevance", "search", "document", "corpus",
		"feedback", "snippet", "crawler", "indexer", "topical", "news",
	},
	"Machine Learning": {
		"learning", "neural", "gradient", "kernel", "classifier", "regression",
		"supervised", "bayesian", "optimization", "feature", "boosting", "deep",
	},
	"Computational Linguistics": {
		"parsing", "translation", "semantics", "syntax", "discourse",
		"sentiment", "morphology", "tagging", "grammar", "dialogue",
	},
	"Theory": {
		"complexity", "approximation", "bounds", "algorithm", "hardness",
		"combinatorial", "randomized", "lower", "polynomial", "lattice",
	},
	"Chemical Sciences (general)": {
		"oxidative", "catalyst", "polymer", "synthesis", "desulfurization",
		"solvent", "reaction", "glycol", "compound", "extraction", "ligand",
	},
	"Analytical Chemistry": {
		"spectrometry", "chromatography", "assay", "titration", "sensor",
		"detection", "electrode", "sample", "calibration", "reagent",
	},
	"Organic Chemistry": {
		"alkene", "aromatic", "stereoselective", "cyclization", "amide",
		"carbonyl", "heterocycle", "substitution", "yield", "enantiomer",
	},
	"Physics (general)": {
		"quantum", "photon", "lattice", "superconductor", "entanglement",
		"plasma", "boson", "spin", "field", "symmetry",
	},
	"Mathematics": {
		"manifold", "topology", "conjecture", "invariant", "homology",
		"algebraic", "measure", "operator", "spectral", "convex",
	},
	"Biology (general)": {
		"genome", "protein", "cell", "receptor", "enzyme", "expression",
		"mutation", "pathway", "membrane", "transcription",
	},
	"Medicine": {
		"clinical", "trial", "patient", "therapy", "diagnosis", "dosage",
		"cohort", "symptom", "treatment", "vaccine",
	},
	"Electrical Engineering": {
		"converter", "inverter", "voltage", "circuit", "semiconductor",
		"modulation", "amplifier", "transistor", "impedance", "rectifier",
	},
	"Mechanical Engineering": {
		"turbulence", "fluid", "thermal", "stress", "fatigue", "vibration",
		"aerodynamic", "convection", "torque", "bearing",
	},
	"Economics": {
		"market", "equilibrium", "inflation", "elasticity", "auction",
		"welfare", "monetary", "labor", "incentive", "utility",
	},
	"Psychology": {
		"cognitive", "behavior", "memory", "perception", "attention",
		"emotion", "bias", "social", "developmental", "personality",
	},
}

var genericTitleWords = []string{
	"efficient", "scalable", "novel", "robust", "adaptive", "framework",
	"approach", "analysis", "study", "evaluation", "survey", "system",
	"model", "method", "towards", "revisiting", "understanding", "fast",
}

// amazonThemes lists product themes and their categories; sibling categories
// of a theme share part of their description vocabulary, making them the
// "similar categories" the paper injects mis-categorized products from.
var amazonThemes = map[string][]string{
	"Electronics":     {"Router", "Adapter", "Keyboard", "Monitor", "Headphones", "Webcam"},
	"Home & Kitchen":  {"Blender", "Toaster", "Cookware", "Vacuum", "Kettle", "Mixer"},
	"Toys & Games":    {"Puzzle", "Board Game", "Action Figure", "Building Blocks", "Doll", "RC Car"},
	"Beauty":          {"Shampoo", "Lotion", "Perfume", "Lipstick", "Sunscreen", "Serum"},
	"Office Products": {"Stapler", "Notebook", "Printer Paper", "Pen Set", "Organizer", "Whiteboard"},
}

// categoryVocab gives each category a distinctive description vocabulary;
// themeVocab words are shared across a theme's categories.
var categoryVocab = map[string][]string{
	"Router":          {"wireless", "broadband", "ethernet", "dualband", "firewall", "gigabit", "antenna", "wan"},
	"Adapter":         {"usb", "converter", "plug", "dongle", "compatible", "portq", "lan", "powered"},
	"Keyboard":        {"mechanical", "keys", "backlit", "typing", "switches", "numpad", "ergonomic", "keycap"},
	"Monitor":         {"display", "resolution", "panel", "hdmi", "screen", "pixels", "refresh", "bezel"},
	"Headphones":      {"audio", "bass", "earcup", "noise", "cancelling", "stereo", "driver", "headband"},
	"Webcam":          {"camera", "video", "microphone", "streaming", "autofocus", "lens", "conference", "capture"},
	"Blender":         {"blend", "smoothie", "pitcher", "blades", "crush", "puree", "motor", "jar"},
	"Toaster":         {"toast", "slots", "browning", "crumb", "bagel", "defrost", "slice", "lever"},
	"Cookware":        {"nonstick", "skillet", "saucepan", "induction", "lid", "ovensafe", "frying", "stainless"},
	"Vacuum":          {"suction", "filter", "cordless", "dustbin", "carpet", "brush", "hepa", "floors"},
	"Kettle":          {"boil", "water", "spout", "cordlessk", "temperature", "stainlessk", "rapid", "gooseneck"},
	"Mixer":           {"dough", "whisk", "bowl", "attachments", "knead", "beater", "stand", "speeds"},
	"Puzzle":          {"pieces", "jigsaw", "artwork", "interlocking", "poster", "challenging", "assembled", "collage"},
	"Board Game":      {"players", "dice", "strategy", "cards", "tokens", "family", "turns", "tabletop"},
	"Action Figure":   {"articulated", "collectible", "figure", "poseable", "superhero", "accessories", "sculpt", "vinyl"},
	"Building Blocks": {"bricks", "build", "construction", "pieces2", "stem", "interlock", "baseplate", "minifig"},
	"Doll":            {"doll", "dress", "hair", "outfit", "accessories2", "playset", "fashion", "braid"},
	"RC Car":          {"remote", "racing", "rechargeable", "offroad", "throttle", "wheels", "drift", "scale"},
	"Shampoo":         {"hairwash", "scalp", "sulfate", "lather", "moisturizing", "dandruff", "keratin", "rinse"},
	"Lotion":          {"skin", "hydrating", "cream", "moisture", "soothing", "dryness", "shea", "absorbs"},
	"Perfume":         {"fragrance", "scent", "notes", "floral", "musk", "spray", "lasting", "citrus"},
	"Lipstick":        {"lip", "matte", "shade", "pigment", "gloss", "longwear", "creamy", "tint"},
	"Sunscreen":       {"spf", "uva", "sunblock", "waterproofs", "protection", "zinc", "broad", "sand"},
	"Serum":           {"vitamin", "retinol", "antiaging", "wrinkle", "glow", "collagen", "hyaluronic", "brighten"},
	"Stapler":         {"staples", "sheets", "jamfree", "desktop", "fastening", "swingline", "capacity", "binder"},
	"Notebook":        {"pages", "ruled", "spiral", "journal", "paperb", "cover", "margins", "notes"},
	"Printer Paper":   {"ream", "letter", "bright", "inkjet", "sheetsp", "multipurpose", "acidfree", "gsm"},
	"Pen Set":         {"ink", "ballpoint", "gel", "writing", "nib", "smooth", "refill", "rollerball"},
	"Organizer":       {"drawers", "compartments", "desk", "storage", "trays", "mesh", "supplies", "sorter"},
	"Whiteboard":      {"dryerase", "marker", "magnetic", "board", "eraser", "mounting", "surface", "aluminum"},
}

var themeVocab = map[string][]string{
	"Electronics":     {"device", "cable", "wireless2", "tech", "ports", "setup", "compact", "led"},
	"Home & Kitchen":  {"kitchen", "dishwasher", "household", "cooking", "easyclean", "durable2", "counter", "meal"},
	"Toys & Games":    {"kids", "fun", "ages", "play", "gift", "imagination", "colorful", "safe"},
	"Beauty":          {"gentle", "natural", "formula", "daily", "dermatologist", "paraben", "radiant", "nourish"},
	"Office Products": {"office", "school", "organize", "professional", "documents", "workspace", "supplies2", "home2"},
}

var genericProductWords = []string{
	"quality", "premium", "value", "pack", "warranty", "brand", "best",
	"easy", "durable", "lightweight", "design", "perfect",
}

var brandPool = []string{
	"Acme", "Zenith", "Nova", "Pinnacle", "Vertex", "Orion", "Stellar",
	"Quantum", "Apex", "Aurora", "Cascade", "Summit", "Horizon", "Atlas",
	"Compass", "Beacon", "Harbor", "Crestline", "Northway", "Eastwood",
}
