package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"dime/internal/entity"
	"dime/internal/ontology"
	"dime/internal/tokenize"
)

// AmazonSchema is the eight-attribute relation of the paper's Amazon
// dataset (Section VI-A).
var AmazonSchema = entity.MustSchema(
	"Asin", "Title", "Brand", "Also_bought", "Also_viewed",
	"Bought_together", "Buy_after_viewing", "Description",
)

// AmazonOptions parameterizes the synthetic Amazon corpus.
type AmazonOptions struct {
	// ProductsPerCategory is the native product count per category; 0 means 60.
	ProductsPerCategory int
	// ErrorRate is the fraction of each group that is injected from other
	// categories (the paper's e%).
	ErrorRate float64
	// Seed drives generation.
	Seed int64
	// Categories optionally restricts generation to the named categories;
	// nil generates every category of every theme.
	Categories []string
	// NearShare is the share of injected products drawn from a sibling
	// category of the same theme (harder to detect); the rest come from a
	// different theme. Default 0.5.
	NearShare float64
}

func (o *AmazonOptions) defaults() {
	if o.ProductsPerCategory == 0 {
		o.ProductsPerCategory = 60
	}
	if o.NearShare == 0 {
		// More aggressive error injection draws proportionally more from
		// sibling categories — the paper observes recall decaying with e%
		// because injected products have similar buying behaviour and
		// descriptions.
		o.NearShare = 0.05 + 0.5*o.ErrorRate
	}
}

// AmazonCorpus is the generated product universe: one group per category
// plus the metadata the experiments need (theme membership and the ground
// truth tree over description topics).
type AmazonCorpus struct {
	// Groups holds one group per category, errors injected.
	Groups []*entity.Group
	// ThemeOf maps category name -> theme name.
	ThemeOf map[string]string
	// TrueTree is the ground-truth theme hierarchy (root → theme →
	// category); the experiments learn an equivalent tree with LDA, and the
	// tests use this one directly.
	TrueTree *ontology.Tree
	// CategoryNode maps category name -> its TrueTree node.
	CategoryNode map[string]*ontology.Node
}

// product is an intermediate representation before entity conversion.
type product struct {
	asin, title, brand string
	alsoBought         []string
	alsoViewed         []string
	boughtTogether     []string
	buyAfterViewing    []string
	description        string
	category           string
}

// Amazon generates the synthetic product corpus. Native products of a
// category draw their co-purchase lists from the category's ASIN pool
// (with a popular "core" so the lists overlap heavily) and their
// descriptions from the category vocabulary; injected products are natives
// of other categories, so they carry foreign co-purchase lists and foreign
// description topics — the two signals the paper's Amazon rules use.
func Amazon(opts AmazonOptions) *AmazonCorpus {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	corpus := &AmazonCorpus{
		ThemeOf:      make(map[string]string),
		TrueTree:     ontology.NewTree("Products"),
		CategoryNode: make(map[string]*ontology.Node),
	}
	var categories []string
	themes := make([]string, 0, len(amazonThemes))
	for theme := range amazonThemes {
		themes = append(themes, theme)
	}
	sort.Strings(themes)
	for _, theme := range themes {
		for _, c := range amazonThemes[theme] {
			corpus.ThemeOf[c] = theme
			corpus.CategoryNode[c] = corpus.TrueTree.AddPath(theme, c)
		}
	}
	if opts.Categories != nil {
		categories = append(categories, opts.Categories...)
	} else {
		for _, n := range corpus.TrueTree.Leaves() {
			categories = append(categories, n.Label)
		}
	}

	// Phase 1: generate native products per category.
	natives := make(map[string][]*product, len(categories))
	asinSeq := 0
	for _, cat := range categories {
		theme := corpus.ThemeOf[cat]
		pool := make([]string, opts.ProductsPerCategory)
		for i := range pool {
			asinSeq++
			pool[i] = fmt.Sprintf("B%09X", asinSeq*2654435761%0xFFFFFFFF)
		}
		core := pool // popular core: the first few ASINs
		coreN := 10
		if coreN > len(pool) {
			coreN = len(pool)
		}
		core = pool[:coreN]

		vocab := append([]string{}, categoryVocab[cat]...)
		vocab = append(vocab, themeVocab[theme]...)

		ps := make([]*product, opts.ProductsPerCategory)
		for i := range ps {
			p := &product{
				asin:     pool[i],
				brand:    pick(rng, brandPool),
				category: cat,
			}
			// Titles carry a brand, one vocabulary noun and a model code —
			// not the raw category name, which would leak the label into
			// every string-similarity feature.
			p.title = p.brand + " " + pick(rng, categoryVocab[cat]) + " " +
				fmt.Sprintf("%c%d", 'A'+rng.Intn(26), 100+rng.Intn(900))
			if rng.Float64() < 0.05 {
				// Cold-start products: no popular co-purchases yet, only a
				// couple of long-tail neighbours. Symbolic methods (CR, and
				// partly the SVM) flag them as outliers; DIME's description
				// ontology keeps them — the precision gap of Exp-1.
				p.alsoBought = sampleDistinct(rng, pool[coreN:], 2)
				p.alsoViewed = sampleDistinct(rng, pool[coreN:], 2)
				p.boughtTogether = sampleDistinct(rng, pool[coreN:], 1)
				p.buyAfterViewing = sampleDistinct(rng, pool[coreN:], 1)
			} else {
				p.alsoBought = append(sampleDistinct(rng, core, 3), sampleDistinct(rng, pool, 2)...)
				p.alsoViewed = append(sampleDistinct(rng, core, 3), sampleDistinct(rng, pool, 2)...)
				p.boughtTogether = sampleDistinct(rng, core, 1)
				p.buyAfterViewing = sampleDistinct(rng, core, 1)
			}
			if rng.Float64() < 0.08 {
				// A slice of products have lazy, mostly-generic copy — the
				// descriptions topic models mis-assign, which is where the
				// description-based negative predicates pay a precision tax.
				words := wordsOf(rng, genericProductWords, 10+rng.Intn(6))
				words = append(words, wordsOf(rng, vocab, 2)...)
				p.description = join(words)
			} else {
				words := wordsOf(rng, vocab, 12+rng.Intn(8))
				words = append(words, wordsOf(rng, genericProductWords, 4)...)
				p.description = join(words)
			}
			ps[i] = p
		}
		natives[cat] = ps
	}

	// Phase 2: assemble groups with injected errors.
	for _, cat := range categories {
		g := entity.NewGroup(cat, AmazonSchema)
		for _, p := range natives[cat] {
			g.MustAdd(p.toEntity())
		}
		n := len(natives[cat])
		nErr := int(float64(n)*opts.ErrorRate/(1-opts.ErrorRate) + 0.5)
		siblings := siblingsOf(corpus, categories, cat, true)
		strangers := siblingsOf(corpus, categories, cat, false)
		for i := 0; i < nErr; i++ {
			var sourceCat string
			if len(siblings) > 0 && (len(strangers) == 0 || rng.Float64() < opts.NearShare) {
				sourceCat = pick(rng, siblings)
			} else if len(strangers) > 0 {
				sourceCat = pick(rng, strangers)
			} else {
				break
			}
			src := pick(rng, natives[sourceCat])
			e := src.toEntity()
			// Injected copies keep their foreign behaviour but get a fresh
			// ID so multiple groups can hold copies of one product.
			e.ID = fmt.Sprintf("%s-inj%03d", src.asin, i)
			e.Values[0] = []string{e.ID}
			// A tenth of the injected products are "cross-listed
			// accessories": their Also_bought list carries the target
			// category's whole popular core, so every pivot product shares
			// an item with them and φ−4's ov(Also_bought) = 0 never fires.
			// φ−5 (Also_viewed) still catches them — the recall gap between
			// the two scrollbar levels in Figure 7.
			if ab, ok := AmazonSchema.Index("Also_bought"); ok && rng.Float64() < 0.10 {
				vals := append([]string{}, e.Values[ab]...)
				for k := 0; k < 10 && k < len(natives[cat]); k++ {
					vals = append(vals, natives[cat][k].asin)
				}
				e.Values[ab] = vals
			}
			g.MustAdd(e)
			g.MarkMisCategorized(e.ID)
		}
		corpus.Groups = append(corpus.Groups, g)
	}
	return corpus
}

func siblingsOf(c *AmazonCorpus, categories []string, cat string, near bool) []string {
	var out []string
	for _, other := range categories {
		if other == cat {
			continue
		}
		sameTheme := c.ThemeOf[other] == c.ThemeOf[cat]
		if sameTheme == near {
			out = append(out, other)
		}
	}
	return out
}

func (p *product) toEntity() *entity.Entity {
	return entity.MustNewEntity(AmazonSchema, p.asin, [][]string{
		{p.asin},
		{p.title},
		{p.brand},
		p.alsoBought,
		p.alsoViewed,
		p.boughtTogether,
		p.buyAfterViewing,
		{p.description},
	})
}

// Descriptions extracts the tokenized description of every entity across
// groups, the training corpus for the LDA theme hierarchy.
func (c *AmazonCorpus) Descriptions() [][]string {
	var docs [][]string
	for _, g := range c.Groups {
		di, _ := g.Schema.Index("Description")
		for _, e := range g.Entities {
			docs = append(docs, tokenize.Words(e.Joined(di)))
		}
	}
	return docs
}

// TrueMapper returns a node mapper that assigns a description to the
// category node whose vocabulary it overlaps most — the oracle counterpart
// of the learned LDA mapper, used by tests and as a fast path.
func (c *AmazonCorpus) TrueMapper() func(values []string) *ontology.Node {
	vocabNode := make(map[string]*ontology.Node)
	for cat, node := range c.CategoryNode {
		for _, w := range categoryVocab[cat] {
			vocabNode[w] = node
		}
	}
	themeNode := make(map[string]*ontology.Node)
	for theme, words := range themeVocab {
		for _, w := range words {
			if n := c.TrueTree.Lookup(theme); n != nil {
				themeNode[w] = n
			}
		}
	}
	return func(values []string) *ontology.Node {
		counts := make(map[*ontology.Node]int)
		for _, v := range values {
			for _, w := range tokenize.Words(v) {
				if n, ok := vocabNode[w]; ok {
					counts[n] += 2 // category words are twice as diagnostic
				} else if n, ok := themeNode[w]; ok {
					counts[n]++
				}
			}
		}
		var best *ontology.Node
		bestC := 0
		for n, cnt := range counts {
			if cnt > bestC || (cnt == bestC && best != nil && n.String() < best.String()) {
				best, bestC = n, cnt
			}
		}
		return best
	}
}
