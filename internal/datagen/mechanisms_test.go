package datagen_test

import (
	"testing"

	"dime/internal/core"
	"dime/internal/datagen"
	"dime/internal/presets"
)

// These tests pin the engineered mechanisms the experiment shapes rely on,
// so generator refactors cannot silently flatten the paper's curves.

// TestNegativeRuleGapExists: the second negative rule must add recall over
// the first (the Figure-7 scrollbar gap), driven by intruders — some of them
// cross-listed accessories — that φ−4 cannot condemn but φ−5 can.
func TestNegativeRuleGapExists(t *testing.T) {
	var caughtLater int
	for seed := int64(11); seed < 15; seed++ {
		c := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: 60, ErrorRate: 0.3, Seed: seed,
			Categories: []string{"Router", "Adapter", "Blender", "Puzzle"}})
		cfg := presets.AmazonConfig(c.TrueTree, c.TrueMapper())
		rs := presets.AmazonRules(cfg)
		for _, g := range c.Groups {
			res, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs})
			if err != nil {
				t.Fatal(err)
			}
			level1 := map[string]bool{}
			for _, id := range res.MisCategorizedIDs(0) {
				level1[id] = true
			}
			for _, id := range res.MisCategorizedIDs(1) {
				if !level1[id] && g.Truth[id] {
					caughtLater++
				}
			}
		}
	}
	if caughtLater == 0 {
		t.Fatal("no intruder was caught by φ−5 only; the scrollbar gap mechanism is gone")
	}
}

// TestColdStartNativesSurviveDIME: cold-start natives (no popular
// co-purchases) land outside the pivot but the description ontology keeps
// most of them from being flagged — the precision edge over CR.
func TestColdStartNativesSurviveDIME(t *testing.T) {
	c := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: 80, ErrorRate: 0.2, Seed: 13,
		Categories: []string{"Router", "Adapter", "Blender", "Puzzle"}})
	g := c.Groups[0]
	cfg := presets.AmazonConfig(c.TrueTree, c.TrueMapper())
	rs := presets.AmazonRules(cfg)
	res, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]bool{}
	for _, id := range res.Final() {
		flagged[id] = true
	}
	nativeFlagged := 0
	natives := 0
	for _, e := range g.Entities {
		if g.Truth[e.ID] {
			continue
		}
		natives++
		if flagged[e.ID] {
			nativeFlagged++
		}
	}
	// With the oracle description mapper, native false positives must be
	// rare even though cold-start natives sit outside the pivot.
	if frac := float64(nativeFlagged) / float64(natives); frac > 0.1 {
		t.Fatalf("%.0f%% of natives flagged; description ontology is not protecting cold-start products",
			frac*100)
	}
}

// TestScholarIntruderFlavours: each error flavour must be discovered at the
// scrollbar level its design targets (corrupt names at NR1, far-field
// doppelgängers by NR2).
func TestScholarIntruderFlavours(t *testing.T) {
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 200, ErrorRate: 0.08, Seed: 17})
	cfg := presets.ScholarConfig()
	rs := presets.ScholarRules(cfg)
	res, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs})
	if err != nil {
		t.Fatal(err)
	}
	level1 := map[string]bool{}
	for _, id := range res.MisCategorizedIDs(0) {
		level1[id] = true
	}
	level2 := map[string]bool{}
	for _, id := range res.MisCategorizedIDs(1) {
		level2[id] = true
	}
	ai, _ := g.Schema.Index("Authors")
	owner := g.Name
	var corruptCaught, corruptTotal, farCaught, farTotal int
	for _, e := range g.Entities {
		if !g.Truth[e.ID] {
			continue
		}
		hasOwner := false
		for _, a := range e.Value(ai) {
			if a == owner {
				hasOwner = true
			}
		}
		if !hasOwner { // corrupt-name flavour
			corruptTotal++
			if level1[e.ID] {
				corruptCaught++
			}
		} else {
			farTotal++
			if level2[e.ID] {
				farCaught++
			}
		}
	}
	if corruptTotal == 0 || farTotal == 0 {
		t.Fatalf("flavours missing: corrupt=%d far=%d", corruptTotal, farTotal)
	}
	if corruptCaught < corruptTotal {
		t.Fatalf("NR1 caught %d/%d corrupt-name intruders", corruptCaught, corruptTotal)
	}
	if farCaught == 0 {
		t.Fatal("NR2 caught no owner-name doppelgängers")
	}
}
