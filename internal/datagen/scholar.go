package datagen

import (
	"fmt"
	"math/rand"

	"dime/internal/entity"
	"dime/internal/ontology"
)

// ScholarSchema is the eight-attribute relation of the paper's Google
// Scholar dataset (Section VI-A).
var ScholarSchema = entity.MustSchema(
	"Title", "Authors", "Date", "Venue", "Volume", "Issue", "Pages", "Publisher",
)

// ScholarOptions parameterizes one synthetic Scholar page.
type ScholarOptions struct {
	// Owner is the page owner's name; empty picks one from the pools.
	Owner string
	// NumPubs is the number of correct publications (the paper's pages
	// average 340 entities); 0 means 150.
	NumPubs int
	// ErrorRate is the fraction of mis-categorized entities added on top,
	// as a share of the final group size (e.g. 0.1 adds ~11% of NumPubs).
	ErrorRate float64
	// Seed drives generation; same seed, same page.
	Seed int64

	// Shares of the error budget per intruder flavour; they are normalized.
	// CorruptShare: the owner's name is mangled and coauthors are random
	// (caught by φ−1). FarFieldShare: a name doppelgänger publishing in a
	// different field (caught by φ−2/φ−3). NearFieldShare: a doppelgänger in
	// another subfield of the same field (hardest; mostly φ−3 territory).
	CorruptShare, FarFieldShare, NearFieldShare float64

	// StrayRate is the fraction of correct publications that are "stray":
	// fresh coauthors and an off-subfield venue, landing in small partitions
	// (these drive the precision drop of aggressive negative rules).
	StrayRate float64

	// SecondaryRate is the fraction of correct publications forming a
	// secondary community: a coherent side-line of work (own collaborator
	// pool, one fixed off-subfield venue set) that stays outside the pivot
	// as a clean mid-size partition — the zero-error [10,100) rows of
	// Table I.
	SecondaryRate float64

	// NoiseRate is the fraction of correct publications whose owner name was
	// mangled by the scraper — they share no author token with the pivot and
	// become φ−1 false positives, the reason NR1 precision is below 1 in the
	// paper's Figure 8.
	NoiseRate float64
}

func (o *ScholarOptions) defaults() {
	if o.NumPubs == 0 {
		o.NumPubs = 150
	}
	if o.CorruptShare == 0 && o.FarFieldShare == 0 && o.NearFieldShare == 0 {
		o.CorruptShare, o.FarFieldShare, o.NearFieldShare = 0.55, 0.25, 0.20
	}
	if o.StrayRate == 0 {
		o.StrayRate = 0.03
	}
	if o.NoiseRate == 0 {
		o.NoiseRate = 0.005
	}
	if o.SecondaryRate == 0 {
		o.SecondaryRate = 0.08
	}
	if o.SecondaryRate < 0 {
		o.SecondaryRate = 0
	}
}

// scholarUniverse indexes the built-in venue ontology by field and subfield.
type scholarUniverse struct {
	tree      *ontology.Tree
	fields    []string
	subfields map[string][]string // field -> subfields
	venues    map[string][]string // subfield -> venues
}

func newScholarUniverse() *scholarUniverse {
	u := &scholarUniverse{
		tree:      ontology.VenueTree(),
		subfields: make(map[string][]string),
		venues:    make(map[string][]string),
	}
	for _, field := range u.tree.Root().Children() {
		u.fields = append(u.fields, field.Label)
		for _, sub := range field.Children() {
			u.subfields[field.Label] = append(u.subfields[field.Label], sub.Label)
			for _, v := range sub.Children() {
				u.venues[sub.Label] = append(u.venues[sub.Label], v.Label)
			}
		}
	}
	return u
}

func (u *scholarUniverse) vocabOf(subfield string) []string {
	if v, ok := subfieldVocab[subfield]; ok {
		return v
	}
	return genericTitleWords
}

// Scholar generates one synthetic Google Scholar page with ground truth.
// The page owner works in a randomly chosen computer-science subfield;
// correct publications share coauthors from the owner's collaborator pool
// and venues from the home field, while the injected intruders reproduce the
// three real-world error flavours described in ScholarOptions.
func Scholar(opts ScholarOptions) *entity.Group {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	u := newScholarUniverse()

	owner := opts.Owner
	if owner == "" {
		owner = pick(rng, givenNames) + " " + pick(rng, surnames)
	}
	homeField := "Computer Science"
	homeSubs := u.subfields[homeField]
	homeSub := pick(rng, homeSubs)

	// Collaborator pool: heavy-headed so frequent collaborators recur across
	// publications and the positive rule ov(Authors) ≥ 2 links them.
	collaborators := make([]string, 24)
	for i := range collaborators {
		collaborators[i] = pick(rng, givenNames) + " " + pick(rng, surnames)
	}

	g := entity.NewGroup(owner, ScholarSchema)
	seq := 0
	add := func(title string, authors []string, venue string, mis bool) {
		seq++
		id := fmt.Sprintf("p%04d", seq)
		g.MustAdd(entity.MustNewEntity(ScholarSchema, id, [][]string{
			{title},
			authors,
			{fmt.Sprintf("%d", 1995+rng.Intn(25))},
			{venue},
			{fmt.Sprintf("%d", 1+rng.Intn(40))},
			{fmt.Sprintf("%d", 1+rng.Intn(12))},
			{fmt.Sprintf("%d-%d", 1+rng.Intn(400), 401+rng.Intn(400))},
			{pick(rng, []string{"ACM", "IEEE", "Springer", "Elsevier", "VLDB Endowment"})},
		}))
		if mis {
			g.MarkMisCategorized(id)
		}
	}

	titleOf := func(sub string) string {
		words := wordsOf(rng, u.vocabOf(sub), 3+rng.Intn(3))
		words = append(words, pick(rng, genericTitleWords), pick(rng, genericTitleWords))
		return join(words)
	}
	coauthorsOf := func(n int) []string {
		set := map[string]bool{}
		out := []string{owner}
		for len(out) < n+1 {
			c := collaborators[zipfIndex(rng, len(collaborators))]
			if !set[c] && c != owner {
				set[c] = true
				out = append(out, c)
			}
		}
		return out
	}
	freshAuthors := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = pick(rng, givenNames) + " " + pick(rng, surnames)
		}
		return out
	}

	// Split the home field's subfields into the owner's home subfield, two
	// "excursion" subfields the main community also publishes in, and the
	// remaining "stray" subfields that only odd one-off publications touch.
	// ϕ+2 merges same-subfield publications (the owner is a shared author on
	// every correct publication), so this split controls which correct
	// publications join the pivot and which land in small partitions — the
	// structure Table I reports.
	var excursionSubs, straySubs []string
	for _, s := range homeSubs {
		if s == homeSub {
			continue
		}
		if len(excursionSubs) < 2 {
			excursionSubs = append(excursionSubs, s)
		} else {
			straySubs = append(straySubs, s)
		}
	}
	if len(straySubs) == 0 {
		straySubs = homeSubs
	}

	// The secondary community publishes in one fixed stray subfield with its
	// own collaborator pool; its members merge with each other (ϕ+2 via the
	// shared owner and same-subfield venues) but not with the pivot.
	secondarySub := pick(rng, straySubs)
	secondaryPool := make([]string, 6)
	for i := range secondaryPool {
		secondaryPool[i] = pick(rng, givenNames) + " " + pick(rng, surnames)
	}

	// Correct publications.
	nStray := int(float64(opts.NumPubs)*opts.StrayRate + 0.5)
	nNoise := int(float64(opts.NumPubs)*opts.NoiseRate + 0.5)
	nSecondary := int(float64(opts.NumPubs)*opts.SecondaryRate + 0.5)
	for i := 0; i < opts.NumPubs; i++ {
		switch {
		case i >= nNoise+nStray && i < nNoise+nStray+nSecondary:
			authors := append([]string{owner},
				sampleDistinct(rng, secondaryPool, 1+rng.Intn(3))...)
			add(titleOf(secondarySub), authors, pick(rng, u.venues[secondarySub]), false)
		case i < nNoise:
			// Scraper noise: corrupted owner name, fresh coauthors, home
			// venue. Shares no author token with the pivot → φ−1 flags it
			// (a false positive the paper also observes).
			authors := append([]string{corruptName(rng, owner)}, freshAuthors(1+rng.Intn(2))...)
			add(titleOf(homeSub), authors, pick(rng, u.venues[homeSub]), false)
		case i < nNoise+nStray:
			if rng.Float64() < 0.3 {
				// Cross-field stray: a correct but unusual publication in a
				// different field. φ−2 and φ−3 flag it (false positive).
				field := pick(rng, u.fields)
				for field == homeField {
					field = pick(rng, u.fields)
				}
				sub := pick(rng, u.subfields[field])
				authors := append([]string{owner}, freshAuthors(1+rng.Intn(3))...)
				add(titleOf(sub), authors, pick(rng, u.venues[sub]), false)
			} else {
				// Same-field stray: fresh coauthors, venue in a subfield the
				// main community does not publish in → a small partition
				// that only title-based rules (φ−3) can flag.
				sub := pick(rng, straySubs)
				authors := append([]string{owner}, freshAuthors(1+rng.Intn(3))...)
				add(titleOf(sub), authors, pick(rng, u.venues[sub]), false)
			}
		default:
			sub := homeSub
			if rng.Float64() < 0.15 {
				sub = pick(rng, excursionSubs) // same-community excursions
			}
			add(titleOf(sub), coauthorsOf(1+rng.Intn(4)), pick(rng, u.venues[sub]), false)
		}
	}

	// Intruders: the final group has roughly ErrorRate mis-categorized mass.
	nErr := int(float64(opts.NumPubs)*opts.ErrorRate/(1-opts.ErrorRate) + 0.5)
	totalShare := opts.CorruptShare + opts.FarFieldShare + opts.NearFieldShare
	nCorrupt := int(float64(nErr)*opts.CorruptShare/totalShare + 0.5)
	nFar := int(float64(nErr)*opts.FarFieldShare/totalShare + 0.5)
	nNear := nErr - nCorrupt - nFar
	if nNear < 0 {
		nNear = 0
	}

	otherFields := make([]string, 0, len(u.fields))
	for _, f := range u.fields {
		if f != homeField {
			otherFields = append(otherFields, f)
		}
	}

	for i := 0; i < nCorrupt; i++ {
		field := pick(rng, otherFields)
		sub := pick(rng, u.subfields[field])
		authors := append([]string{corruptName(rng, owner)}, freshAuthors(2+rng.Intn(3))...)
		add(titleOf(sub), authors, pick(rng, u.venues[sub]), true)
	}
	// The far-field intruders are the publications of ONE name doppelgänger
	// (like the chemist Nan Tang of Figure 1): they share that person's
	// collaborator pool and subfield, so they cluster into their own wrong
	// partition — mis-categorized entities can sit in mid-size partitions,
	// as Table I shows.
	doppelField := pick(rng, otherFields)
	doppelSub := pick(rng, u.subfields[doppelField])
	doppelPool := make([]string, 5)
	for i := range doppelPool {
		doppelPool[i] = pick(rng, givenNames) + " " + pick(rng, surnames)
	}
	for i := 0; i < nFar; i++ {
		authors := append([]string{owner}, sampleDistinct(rng, doppelPool, 2+rng.Intn(2))...)
		add(titleOf(doppelSub), authors, pick(rng, u.venues[doppelSub]), true)
	}
	for i := 0; i < nNear; i++ {
		sub := pick(rng, homeSubs)
		for sub == homeSub && len(homeSubs) > 1 {
			sub = pick(rng, homeSubs)
		}
		authors := append([]string{owner}, freshAuthors(2+rng.Intn(3))...)
		add(titleOf(sub), authors, pick(rng, u.venues[sub]), true)
	}
	return g
}

// ScholarPages generates n pages with consecutive seeds, mirroring the
// paper's 200-page corpus. Pages alternate between researchers with and
// without a secondary community, reproducing the per-page variance of the
// paper's Figure 8 (some pages punish aggressive negative rules badly,
// others not at all).
func ScholarPages(n int, numPubs int, errorRate float64, seed int64) []*entity.Group {
	pages := make([]*entity.Group, n)
	for i := range pages {
		secondary := -1.0
		if i%3 == 0 {
			secondary = 0.04 + float64(i%5)*0.02
		}
		pages[i] = Scholar(ScholarOptions{
			NumPubs:       numPubs,
			ErrorRate:     errorRate,
			SecondaryRate: secondary,
			Seed:          seed + int64(i)*7919,
		})
	}
	return pages
}
