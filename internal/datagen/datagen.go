// Package datagen generates the synthetic datasets the experiments run on,
// substituting for the paper's crawled Google Scholar pages, the McAuley
// Amazon product metadata, and the UT DBGen generator (see DESIGN.md for the
// substitution rationale). All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"
)

// pick returns a uniformly random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// sampleDistinct returns k distinct elements of xs (or all of xs when
// k ≥ len(xs)), in random order.
func sampleDistinct[T any](rng *rand.Rand, xs []T, k int) []T {
	if k >= len(xs) {
		k = len(xs)
	}
	idx := rng.Perm(len(xs))[:k]
	out := make([]T, k)
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// zipfIndex draws an index in [0, n) with a heavy head: index i has weight
// 1/(i+1). It models "frequent collaborators" and "popular products".
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	u := rng.Float64() * total
	for i := 0; i < n; i++ {
		u -= 1 / float64(i+1)
		if u <= 0 {
			return i
		}
	}
	return n - 1
}

// corruptName abbreviates a "Given Surname" style name the way scraped
// metadata often does ("Nan Tang" → "N Tang", "NJ Tang"), producing a token
// that no longer matches the original under element tokenization.
func corruptName(rng *rand.Rand, name string) string {
	runes := []rune(name)
	spaceAt := -1
	for i, r := range runes {
		if r == ' ' {
			spaceAt = i
			break
		}
	}
	if spaceAt <= 0 {
		return name + " Jr"
	}
	switch rng.Intn(3) {
	case 0: // initial only: "N Tang"
		return string(runes[0]) + string(runes[spaceAt:])
	case 1: // doubled initial: "NJ Tang"
		return string(runes[0]) + string(runes[1]) + string(runes[spaceAt:])
	default: // swapped order: "Tang Nan"
		return string(runes[spaceAt+1:]) + " " + string(runes[:spaceAt])
	}
}

// wordsOf draws n words from a vocabulary with replacement.
func wordsOf(rng *rand.Rand, vocab []string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = pick(rng, vocab)
	}
	return out
}

// join concatenates words with spaces without importing strings everywhere.
func join(words []string) string {
	s := ""
	for i, w := range words {
		if i > 0 {
			s += " "
		}
		s += w
	}
	return s
}

// idf formats a deterministic identifier.
func idf(prefix string, parts ...int) string {
	s := prefix
	for _, p := range parts {
		s += fmt.Sprintf("-%03d", p)
	}
	return s
}
