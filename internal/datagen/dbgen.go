package datagen

import (
	"fmt"
	"math/rand"

	"dime/internal/entity"
)

// DBGenSchema is the relation of the DBGen-style scalability generator: a
// perturbation-based record generator standing in for the UT DBGen tool the
// paper uses for its 20k–100k entity table.
var DBGenSchema = entity.MustSchema("Name", "Tags", "City", "Code")

// DBGenOptions parameterizes one large generated group.
type DBGenOptions struct {
	// NumEntities is the total group size (the paper sweeps 20k–100k).
	NumEntities int
	// ErrorRate is the fraction of entities drawn from a foreign population.
	ErrorRate float64
	// Seed drives generation.
	Seed int64
	// ClusterSize is the mean record-cluster size; 0 means 8.
	ClusterSize int
}

// DBGen generates a large group of perturbed record clusters. A dominant
// population shares a tag pool and name vocabulary, so positive
// entity-matching rules chain its clusters into one pivot partition; the
// injected foreign population shares nothing with it.
func DBGen(opts DBGenOptions) *entity.Group {
	if opts.NumEntities <= 0 {
		opts.NumEntities = 1000
	}
	if opts.ClusterSize <= 0 {
		opts.ClusterSize = 8
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := entity.NewGroup(fmt.Sprintf("dbgen-%d", opts.NumEntities), DBGenSchema)

	// Home population resources. homeTags deliberately has a heavy-headed
	// draw so clusters share tags and chain transitively.
	homeTags := make([]string, 40)
	for i := range homeTags {
		homeTags[i] = fmt.Sprintf("tag%02d", i)
	}
	foreignTags := make([]string, 40)
	for i := range foreignTags {
		foreignTags[i] = fmt.Sprintf("ftag%02d", i)
	}
	cities := []string{"Springfield", "Rivertown", "Lakeside", "Hillcrest", "Mapleton", "Brookfield"}

	nErr := int(float64(opts.NumEntities) * opts.ErrorRate)
	nHome := opts.NumEntities - nErr
	seq := 0

	emitCluster := func(tags []string, foreign bool, budget int) int {
		size := 1 + rng.Intn(opts.ClusterSize*2-1)
		if size > budget {
			size = budget
		}
		base := pick(rng, givenNames) + " " + pick(rng, surnames) + fmt.Sprintf(" %03d", rng.Intn(1000))
		clusterTags := make([]string, 0, 6)
		for len(clusterTags) < 5 {
			t := tags[zipfIndex(rng, len(tags))]
			dup := false
			for _, x := range clusterTags {
				if x == t {
					dup = true
					break
				}
			}
			if !dup {
				clusterTags = append(clusterTags, t)
			}
		}
		city := pick(rng, cities)
		code := fmt.Sprintf("%06d", rng.Intn(1000000))
		for i := 0; i < size; i++ {
			seq++
			name := base
			if i > 0 && rng.Float64() < 0.5 {
				name = perturb(rng, base)
			}
			id := fmt.Sprintf("r%06d", seq)
			g.MustAdd(entity.MustNewEntity(DBGenSchema, id, [][]string{
				{name},
				clusterTags,
				{city},
				{code},
			}))
			if foreign {
				g.MarkMisCategorized(id)
			}
		}
		return size
	}

	for emitted := 0; emitted < nHome; {
		emitted += emitCluster(homeTags, false, nHome-emitted)
	}
	for emitted := 0; emitted < nErr; {
		emitted += emitCluster(foreignTags, true, nErr-emitted)
	}
	return g
}

// perturb applies a single character-level edit to a string, emulating the
// typo perturbations of record-linkage generators.
func perturb(rng *rand.Rand, s string) string {
	r := []rune(s)
	if len(r) == 0 {
		return s
	}
	i := rng.Intn(len(r))
	switch rng.Intn(3) {
	case 0: // substitute
		r[i] = rune('a' + rng.Intn(26))
		return string(r)
	case 1: // delete
		return string(append(r[:i:i], r[i+1:]...))
	default: // insert
		out := make([]rune, 0, len(r)+1)
		out = append(out, r[:i]...)
		out = append(out, rune('a'+rng.Intn(26)))
		out = append(out, r[i:]...)
		return string(out)
	}
}
