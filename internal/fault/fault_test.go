package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestGlobMatch pins the '*' glob semantics rules match paths with.
func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"", "/anything", true},
		{"/v1/corpora", "/v1/corpora", true},
		{"/v1/corpora", "/v1/corpora/x", false},
		{"/v1/*", "/v1/corpora/x/discover", true},
		{"*/discover", "/v1/corpora/x/discover", true},
		{"*/discover", "/v1/corpora/x/entities", false},
		{"/v1/*/entities", "/v1/corpora/g/entities", true},
		{"*", "", true},
		{"/v1/*/a*b", "/v1/x/a-middle-b", true},
		{"/v1/*/a*b", "/v1/x/b-middle-a", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// TestDecideDeterministic pins the determinism contract: two injectors with
// the same seed and rules make identical decisions over the same sequential
// request stream.
func TestDecideDeterministic(t *testing.T) {
	rules := []Rule{
		{Name: "lat", P: 0.5, Kind: KindLatency, Latency: time.Millisecond},
		{Name: "s500", Method: "GET", P: 0.3, Kind: KindStatus, Status: 500},
		{Name: "reset", P: 0.2, Kind: KindReset},
	}
	a := NewInjector(Options{Seed: 42, Rules: rules})
	b := NewInjector(Options{Seed: 42, Rules: rules})
	for i := 0; i < 500; i++ {
		method := "GET"
		if i%3 == 0 {
			method = "POST"
		}
		la, pa := a.decide(method, "/v1/x")
		lb, pb := b.decide(method, "/v1/x")
		if la != lb {
			t.Fatalf("step %d: latency %v vs %v", i, la, lb)
		}
		if (pa == nil) != (pb == nil) {
			t.Fatalf("step %d: primary %v vs %v", i, pa, pb)
		}
		if pa != nil && pa.rule.Name != pb.rule.Name {
			t.Fatalf("step %d: rule %q vs %q", i, pa.rule.Name, pb.rule.Name)
		}
	}
	if a.Fired() != b.Fired() || a.Fired() == 0 {
		t.Fatalf("fire totals diverged or zero: %d vs %d", a.Fired(), b.Fired())
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("rule %d snapshot %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestBudgetCapsFires pins per-rule budgets: a budgeted always-fire rule
// stops firing once exhausted, and the budget consumption is counted.
func TestBudgetCapsFires(t *testing.T) {
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{
		{Name: "b", P: 1, Kind: KindStatus, Status: 500, Budget: 3},
	}})
	fires := 0
	for i := 0; i < 10; i++ {
		if _, p := inj.decide("GET", "/x"); p != nil {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("budgeted rule fired %d times, want 3", fires)
	}
	if got := inj.Snapshot()[0].Fired; got != 3 {
		t.Fatalf("snapshot fired = %d, want 3", got)
	}
}

// okHandler answers 200 with a fixed JSON body.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true,"pad":"0123456789012345678901234567890123456789"}`))
	})
}

// TestMiddlewareStatus pins the status fault at the server: the wrapped
// handler never runs and the synthesized body carries the rule's status and
// Retry-After.
func TestMiddlewareStatus(t *testing.T) {
	ran := false
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) { ran = true })
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{
		{Name: "s503", P: 1, Kind: KindStatus, Status: 503, RetryAfter: "7"},
	}})
	ts := httptest.NewServer(inj.Middleware(inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("status %d Retry-After %q, want 503/7", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "injected 503") {
		t.Fatalf("body %q missing injected marker", body)
	}
	if ran {
		t.Fatal("handler ran despite status fault")
	}
}

// TestMiddlewareReset pins the reset fault: the client observes a transport
// error, not a response.
func TestMiddlewareReset(t *testing.T) {
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{{Name: "r", P: 1, Kind: KindReset}}})
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset fault produced a response (status %d), want transport error", resp.StatusCode)
	}
}

// TestMiddlewareTruncate pins the truncate fault: the handler runs, the
// response declares its full length, and reading the body fails with an
// unexpected EOF.
func TestMiddlewareTruncate(t *testing.T) {
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{{Name: "t", P: 1, Kind: KindTruncate}}})
	ts := httptest.NewServer(inj.Middleware(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with no error, want unexpected EOF", len(body))
	}
	if int64(len(body)) >= resp.ContentLength {
		t.Fatalf("read %d bytes of declared %d, want a strict prefix", len(body), resp.ContentLength)
	}
}

// TestTransportStatus pins the client-side status fault: the response is
// synthesized without the request reaching the server.
func TestTransportStatus(t *testing.T) {
	reached := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) { reached = true }))
	defer ts.Close()
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{
		{Name: "s500", P: 1, Kind: KindStatus, Status: 500},
	}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 500 || !strings.Contains(string(body), "injected 500") {
		t.Fatalf("status %d body %q, want synthesized 500", resp.StatusCode, body)
	}
	if reached {
		t.Fatal("request reached the server despite client-side status fault")
	}
}

// TestTransportReset pins the client-side reset fault: a connection-reset
// error surfaces and wraps syscall.ECONNRESET.
func TestTransportReset(t *testing.T) {
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{{Name: "r", P: 1, Kind: KindReset}}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	_, err := hc.Get("http://127.0.0.1:0/never-dialed")
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("error %v does not wrap ECONNRESET", err)
	}
}

// TestTransportTruncate pins the client-side truncate fault: the real
// response arrives but its body ends in io.ErrUnexpectedEOF.
func TestTransportTruncate(t *testing.T) {
	ts := httptest.NewServer(okHandler())
	defer ts.Close()
	inj := NewInjector(Options{Seed: 1, Rules: []Rule{{Name: "t", P: 1, Kind: KindTruncate}}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestLatencyRespectsCancel pins that injected latency does not hold a
// canceled request: a latency sleep far above the test budget returns as
// soon as the context dies.
func TestLatencyRespectsCancel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	start := time.Now()
	sleepCtx(done, time.Hour)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("sleepCtx held a canceled context for %v", elapsed)
	}
}
