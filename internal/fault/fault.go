// Package fault is a seeded, deterministic fault injector for the dimed HTTP
// surface: a server middleware (Injector.Middleware) and a client-side
// http.RoundTripper wrapper (Injector.Transport) that fire composable rules —
// injected latency, synthesized 500/503 responses, connection resets and
// truncated bodies — with per-rule probabilities drawn from one injected
// *rand.Rand and optional per-rule fire budgets.
//
// # Determinism contract
//
// All randomness comes from the single seeded generator handed to
// NewInjector; the injector itself never reads the wall clock, the
// environment, or the process-global RNG. For a fixed seed, rule list and
// sequential request stream, the same faults fire at the same points — the
// property the chaos differential harness (internal/difftest, chaos variant)
// leans on to demand byte-identical discovery results under chaos at a known
// seed. Under concurrent requests the interleaving of draws is scheduler
// -dependent, but every draw still comes from the seeded stream, so
// aggregate behaviour (fire rates, budgets) stays reproducible in
// distribution.
//
// # Rule evaluation
//
// Rules are evaluated in declaration order on each request. A matching rule
// with remaining budget draws one uniform variate; all firing latency rules
// add up, and the first firing non-latency rule becomes the request's
// primary fault. Once a primary fires, later non-latency rules are skipped
// without drawing — at most one response-altering fault per request, and a
// shadowed rule neither consumes budget nor counts as fired.
package fault

import (
	"math/rand"
	"strings"
	"sync"
	"time"

	"dime/internal/obs"
)

// Kind classifies what a firing rule does to the request.
type Kind string

// The fault kinds.
const (
	// KindLatency sleeps Rule.Latency before the request proceeds.
	KindLatency Kind = "latency"
	// KindStatus short-circuits the request with Rule.Status and an
	// ErrorJSON-shaped body; the wrapped handler (or network) is never
	// reached, so retrying the request is always safe.
	KindStatus Kind = "status"
	// KindReset kills the connection without a response: the middleware
	// hijacks and closes the TCP connection, the transport returns a
	// connection-reset error. Clients see a transport-level failure.
	KindReset Kind = "reset"
	// KindTruncate lets the request execute, then delivers only a prefix of
	// the response body under the full Content-Length, so readers hit
	// io.ErrUnexpectedEOF. The handler HAS run — truncation is only safe to
	// retry for idempotent requests.
	KindTruncate Kind = "truncate"
)

// Rule is one composable fault: a (method, path) matcher, a fire
// probability, the fault kind with its parameters, and an optional budget.
type Rule struct {
	// Name labels the rule in counters and snapshots; it must be unique
	// within an injector and non-empty.
	Name string
	// Method matches the request method exactly; empty matches any.
	Method string
	// Path is a glob over the URL path where '*' matches any run of
	// characters (including '/'); empty matches any path.
	Path string
	// P is the fire probability in [0, 1], drawn per matching request.
	P float64
	// Kind selects the fault.
	Kind Kind
	// Latency is the injected delay for KindLatency.
	Latency time.Duration
	// Status is the synthesized response code for KindStatus (e.g. 500, 503).
	Status int
	// RetryAfter, when non-empty, is sent as the Retry-After header on
	// KindStatus responses — letting a chaos run steer client pacing.
	RetryAfter string
	// Budget caps how many times the rule fires; 0 means unlimited. A
	// budgeted rule guarantees chaos eventually quiesces on a path.
	Budget int
}

// matches reports whether the rule applies to (method, path).
func (r Rule) matches(method, path string) bool {
	if r.Method != "" && r.Method != method {
		return false
	}
	return globMatch(r.Path, path)
}

// globMatch matches pattern against s where '*' matches any run of
// characters. An empty pattern matches everything.
func globMatch(pattern, s string) bool {
	if pattern == "" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		idx := strings.Index(s, part)
		if idx < 0 {
			return false
		}
		s = s[idx+len(part):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

// RuleCount pairs a rule name with its fire count, in rule order.
type RuleCount struct {
	Name  string
	Fired int64
}

// Injector evaluates a fixed rule list with a seeded RNG and counts fires.
// It is safe for concurrent use; the RNG and budgets sit behind one mutex so
// draws are serialized (determinism for sequential request streams).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	fired []int64
	total int64

	reg *obs.Registry
}

// Options configures an Injector.
type Options struct {
	// Seed seeds the injector's private RNG.
	Seed int64
	// Rules is the ordered rule list.
	Rules []Rule
	// Registry, when non-nil, receives one "dime.fault.<rule-name>" counter
	// per rule plus "dime.fault.total", incremented as rules fire.
	Registry *obs.Registry
}

// NewInjector builds an injector over its own rand.Rand seeded with
// opts.Seed.
func NewInjector(opts Options) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(opts.Seed)),
		rules: append([]Rule(nil), opts.Rules...),
		fired: make([]int64, len(opts.Rules)),
		reg:   opts.Registry,
	}
}

// firing is one rule that fired for a request.
type firing struct {
	rule Rule
}

// decide draws for matching in-budget rules in declaration order and
// returns the total injected latency plus the primary (first-firing
// non-latency) fault, if any. Once a primary fires, later non-latency rules
// are not drawn at all — a shadowed rule takes no effect, so it must not
// consume budget or count as fired (latency rules keep drawing; their
// delays compose with any primary).
func (inj *Injector) decide(method, path string) (latency time.Duration, primary *firing) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i, r := range inj.rules {
		if r.Kind != KindLatency && primary != nil {
			continue
		}
		if !r.matches(method, path) {
			continue
		}
		if r.Budget > 0 && inj.fired[i] >= int64(r.Budget) {
			continue
		}
		if inj.rng.Float64() >= r.P {
			continue
		}
		inj.fired[i]++
		inj.total++
		if inj.reg != nil {
			inj.reg.Counter("dime.fault." + r.Name).Add(1)
			inj.reg.Counter("dime.fault.total").Add(1)
		}
		if r.Kind == KindLatency {
			latency += r.Latency
			continue
		}
		if primary == nil {
			primary = &firing{rule: r}
		}
	}
	return latency, primary
}

// Fired returns the total number of rule fires so far.
func (inj *Injector) Fired() int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.total
}

// Snapshot returns the per-rule fire counts in rule order.
func (inj *Injector) Snapshot() []RuleCount {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]RuleCount, len(inj.rules))
	for i, r := range inj.rules {
		out[i] = RuleCount{Name: r.Name, Fired: inj.fired[i]}
	}
	return out
}

// sleepCtx sleeps for d or until done is closed/canceled, whichever comes
// first.
func sleepCtx(done <-chan struct{}, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}
