package fault

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// Middleware wraps next with server-side fault injection. Per request it
// asks the injector's rules what to do:
//
//   - injected latency sleeps before anything else (bounded by the request
//     context, so canceled clients are not held);
//   - a status fault answers Rule.Status with an ErrorJSON-shaped body
//     WITHOUT invoking next — the handler observably never ran, so a client
//     may retry such a response regardless of method;
//   - a reset fault hijacks and closes the connection mid-request (clients
//     see EOF / connection reset). Handlers are not invoked. When the
//     ResponseWriter cannot hijack (e.g. HTTP/2), it degrades to a plain 500;
//   - a truncate fault runs next against a buffer, then relays the response
//     with the full Content-Length but only half the body — readers get
//     io.ErrUnexpectedEOF. The handler HAS run; only idempotent (or
//     idempotency-keyed) requests can safely retry.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		latency, primary := inj.decide(req.Method, req.URL.Path)
		sleepCtx(req.Context().Done(), latency)
		if primary == nil {
			next.ServeHTTP(w, req)
			return
		}
		switch r := primary.rule; r.Kind {
		case KindStatus:
			if r.RetryAfter != "" {
				w.Header().Set("Retry-After", r.RetryAfter)
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(r.Status)
			fmt.Fprintf(w, "{\n  \"error\": \"fault: injected %d (rule %s)\"\n}\n", r.Status, r.Name)
		case KindReset:
			hj, ok := w.(http.Hijacker)
			if !ok {
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
			// Closing without writing a response: the client's read fails
			// with EOF / connection reset.
			_ = conn.Close()
		case KindTruncate:
			rec := &recorder{header: make(http.Header)}
			next.ServeHTTP(rec, req)
			relayTruncated(w, rec)
		default:
			next.ServeHTTP(w, req)
		}
	})
}

// recorder buffers a handler's response so the middleware can replay a
// truncated version of it.
type recorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}

// relayTruncated forwards the recorded response declaring its full length
// but writing only the first half of the body. net/http notices the short
// write when the handler returns and closes the connection, so the client's
// body read ends in io.ErrUnexpectedEOF instead of a clean EOF.
func relayTruncated(w http.ResponseWriter, rec *recorder) {
	keys := make([]string, 0, len(rec.header))
	for k := range rec.header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, v := range rec.header[k] {
			w.Header().Add(k, v)
		}
	}
	full := rec.body.Bytes()
	w.Header().Set("Content-Length", strconv.Itoa(len(full)))
	code := rec.code
	if code == 0 {
		code = http.StatusOK
	}
	w.WriteHeader(code)
	_, _ = w.Write(full[:len(full)/2])
}
