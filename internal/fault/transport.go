package fault

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
)

// Transport wraps base (nil means http.DefaultTransport) with client-side
// fault injection. Per request:
//
//   - injected latency sleeps before the request leaves (bounded by the
//     request context);
//   - a status fault synthesizes the response locally — the request never
//     reaches the network, so retrying is always safe;
//   - a reset fault returns a connection-reset error without sending;
//   - a truncate fault performs the real round trip but wraps the response
//     body so it ends in io.ErrUnexpectedEOF halfway through.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: inj, base: base}
}

type transport struct {
	inj  *Injector
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	latency, primary := t.inj.decide(req.Method, req.URL.Path)
	sleepCtx(req.Context().Done(), latency)
	if primary == nil {
		return t.base.RoundTrip(req)
	}
	switch r := primary.rule; r.Kind {
	case KindStatus:
		if req.Body != nil {
			_ = req.Body.Close()
		}
		body := fmt.Sprintf("{\n  \"error\": \"fault: injected %d (rule %s)\"\n}\n", r.Status, r.Name)
		resp := &http.Response{
			Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			StatusCode:    r.Status,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        make(http.Header),
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		resp.Header.Set("Content-Type", "application/json; charset=utf-8")
		if r.RetryAfter != "" {
			resp.Header.Set("Retry-After", r.RetryAfter)
		}
		return resp, nil
	case KindReset:
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, fmt.Errorf("fault: injected connection reset (rule %s): %w", r.Name, syscall.ECONNRESET)
	case KindTruncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: resp.ContentLength / 2}
		return resp, nil
	default:
		return t.base.RoundTrip(req)
	}
}

// truncatedBody delivers at most remaining bytes of rc, then fails with
// io.ErrUnexpectedEOF — the same failure shape a connection dropped mid-body
// produces. With an unknown Content-Length (remaining <= 0 from -1/2) it
// fails on the first read.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		err = nil
	}
	if err == nil && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
