// Package rules defines DIME's positive and negative rules: conjunctions of
// similarity predicates over the attributes of a multi-valued relation
// (Section II of the paper).
//
// A positive rule ϕ+(e, e') = ⋀ f_i(A_i) ≥ θ_i evaluates to true when the
// two entities are similar enough to be categorized together; a negative
// rule φ−(e, e') = ⋀ f_i(A_i) ≤ σ_i evaluates to true when they must not be.
//
// Predicates evaluate against Records — precomputed per-entity views holding
// tokens, joined strings, and ontology-node mappings — so that repeated rule
// application over a group never re-tokenizes.
package rules

import (
	"fmt"
	"math"
	"strings"

	"dime/internal/entity"
	"dime/internal/ontology"
	"dime/internal/sim"
)

// Func identifies a similarity function family.
type Func int

// Similarity function identifiers. Overlap counts common tokens (thresholds
// are integral); Jaccard, Dice, Cosine, EditSim and Ontology are in [0, 1];
// EditDist is a distance (lower means more similar).
const (
	Overlap Func = iota
	Jaccard
	Dice
	Cosine
	EditSim
	EditDist
	Ontology
)

// String returns the DSL name of the function.
func (f Func) String() string {
	switch f {
	case Overlap:
		return "ov"
	case Jaccard:
		return "jac"
	case Dice:
		return "dice"
	case Cosine:
		return "cos"
	case EditSim:
		return "eds"
	case EditDist:
		return "ed"
	case Ontology:
		return "on"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// DistanceLike reports whether lower values of the function mean more
// similar (true only for EditDist).
func (f Func) DistanceLike() bool { return f == EditDist }

// Op is a predicate comparison operator.
type Op int

// Comparison operators for predicates.
const (
	GE Op = iota // f(A) ≥ θ
	LE           // f(A) ≤ σ
)

// String returns the operator's DSL spelling.
func (o Op) String() string {
	if o == GE {
		return ">="
	}
	return "<="
}

// Predicate is a single f_i(A_i) op θ_i term of a rule.
type Predicate struct {
	// Attr is the attribute index in the schema.
	Attr int
	// AttrName is the attribute name, kept for display and DSL round-trips.
	AttrName string
	// Fn is the similarity function.
	Fn Func
	// Op compares the similarity against Threshold (GE for positive-rule
	// predicates, LE for negative-rule predicates, by convention).
	Op Op
	// Threshold is θ (or σ). For Overlap and EditDist it holds an integer.
	Threshold float64
	// Tree is the ontology used when Fn == Ontology; nil otherwise.
	Tree *ontology.Tree
	// Q is the gram length for EditSim/EditDist signatures; 0 means 2.
	Q int
}

// Similarity computes the raw similarity (or distance, for EditDist) of the
// predicate's attribute between two records.
func (p Predicate) Similarity(a, b *Record) float64 {
	switch p.Fn {
	case Overlap:
		return float64(sim.Overlap(a.Tokens[p.Attr], b.Tokens[p.Attr]))
	case Jaccard:
		return sim.Jaccard(a.Tokens[p.Attr], b.Tokens[p.Attr])
	case Dice:
		return sim.Dice(a.Tokens[p.Attr], b.Tokens[p.Attr])
	case Cosine:
		return sim.Cosine(a.Tokens[p.Attr], b.Tokens[p.Attr])
	case EditSim:
		return sim.EditSimilarity(a.Joined[p.Attr], b.Joined[p.Attr])
	case EditDist:
		return float64(sim.EditDistance(a.Joined[p.Attr], b.Joined[p.Attr]))
	case Ontology:
		if p.Tree == nil {
			return 0
		}
		return p.Tree.Similarity(a.Nodes[p.Attr], b.Nodes[p.Attr])
	default:
		return 0
	}
}

// Eval reports whether the predicate holds between two records. EditDist
// with Op GE/LE compares the raw distance; all other functions compare the
// similarity value. The GE comparison on EditDist predicates uses the banded
// verifier when possible.
func (p Predicate) Eval(a, b *Record) bool {
	if p.Fn == EditDist {
		bound := int(p.Threshold)
		d, within := sim.EditDistanceBounded(a.Joined[p.Attr], b.Joined[p.Attr], bound)
		if p.Op == LE {
			return within && d <= bound
		}
		// GE over a distance: "at least θ edits apart".
		return !within || d >= bound
	}
	s := p.Similarity(a, b)
	// Epsilon-tolerant comparisons: a similarity that is mathematically equal
	// to the threshold can round to either side of it, and rule semantics
	// must not depend on that noise.
	if p.Op == GE {
		return sim.AtLeast(s, p.Threshold)
	}
	return sim.AtMost(s, p.Threshold)
}

// Cost estimates the verification cost of evaluating the predicate on a pair
// of records, following the paper's cost model (Section IV-C): edit distance
// costs θ·min(|e|,|e'|); set similarity costs |e|+|e'|; ontology similarity
// costs d_e + d_e'.
func (p Predicate) Cost(a, b *Record) float64 {
	switch p.Fn {
	case EditSim, EditDist:
		la, lb := len(a.Joined[p.Attr]), len(b.Joined[p.Attr])
		m := la
		if lb < m {
			m = lb
		}
		t := p.Threshold
		if p.Fn == EditSim {
			t = (1 - p.Threshold) * float64(la+lb) / 2
		}
		if t < 1 {
			t = 1
		}
		return t * float64(m)
	case Ontology:
		da, db := 0, 0
		if n := a.Nodes[p.Attr]; n != nil {
			da = n.Depth
		}
		if n := b.Nodes[p.Attr]; n != nil {
			db = n.Depth
		}
		return float64(da + db)
	default:
		return float64(len(a.Tokens[p.Attr]) + len(b.Tokens[p.Attr]))
	}
}

// String renders the predicate in DSL form, e.g. "ov(Authors) >= 2".
func (p Predicate) String() string {
	return fmt.Sprintf("%s(%s) %s %g", p.Fn, p.AttrName, p.Op, p.Threshold)
}

// Rule is a named conjunction of predicates. Positive rules conventionally
// use GE predicates, negative rules LE predicates; Kind records the intent.
type Rule struct {
	// Name labels the rule for display (e.g. "phi+1").
	Name string
	// Kind distinguishes positive from negative rules.
	Kind Kind
	// Predicates is the conjunction body; empty rules evaluate to false.
	Predicates []Predicate
}

// Kind tags a rule as positive or negative.
type Kind int

// Rule kinds.
const (
	Positive Kind = iota
	Negative
)

// String returns "positive" or "negative".
func (k Kind) String() string {
	if k == Positive {
		return "positive"
	}
	return "negative"
}

// Eval reports whether all predicates hold between the two records. An empty
// rule evaluates to false (it carries no evidence either way).
func (r Rule) Eval(a, b *Record) bool {
	if len(r.Predicates) == 0 {
		return false
	}
	for _, p := range r.Predicates {
		if !p.Eval(a, b) {
			return false
		}
	}
	return true
}

// Cost is the summed predicate verification cost for a pair.
func (r Rule) Cost(a, b *Record) float64 {
	var c float64
	for _, p := range r.Predicates {
		c += p.Cost(a, b)
	}
	return c
}

// String renders the rule in DSL form, predicates joined by " && ".
func (r Rule) String() string {
	parts := make([]string, len(r.Predicates))
	for i, p := range r.Predicates {
		parts[i] = p.String()
	}
	body := strings.Join(parts, " && ")
	if r.Name == "" {
		return body
	}
	return r.Name + ": " + body
}

// RuleSet bundles the positive rules (applied as a disjunction) and the
// negative rules (applied in sequence as growing disjunctions).
type RuleSet struct {
	Positive []Rule
	Negative []Rule
}

// Validate checks that rule kinds and attribute indexes are consistent with
// the given schema and that ontology predicates carry trees.
func (rs RuleSet) Validate(schema *entity.Schema) error {
	check := func(r Rule, kind Kind) error {
		if r.Kind != kind {
			return fmt.Errorf("rules: rule %q has kind %v, expected %v", r.Name, r.Kind, kind)
		}
		if len(r.Predicates) == 0 {
			return fmt.Errorf("rules: rule %q has no predicates", r.Name)
		}
		for _, p := range r.Predicates {
			if p.Attr < 0 || p.Attr >= schema.Len() {
				return fmt.Errorf("rules: rule %q: attribute index %d out of range", r.Name, p.Attr)
			}
			if got := schema.Name(p.Attr); p.AttrName != "" && got != p.AttrName {
				return fmt.Errorf("rules: rule %q: attribute %d is %q, predicate says %q", r.Name, p.Attr, got, p.AttrName)
			}
			if p.Fn == Ontology && p.Tree == nil {
				return fmt.Errorf("rules: rule %q: ontology predicate on %q has no tree", r.Name, p.AttrName)
			}
			if p.Threshold < 0 {
				return fmt.Errorf("rules: rule %q: negative threshold %g", r.Name, p.Threshold)
			}
			if math.IsNaN(p.Threshold) || math.IsInf(p.Threshold, 0) {
				// NaN compares false with everything and ±Inf can never be
				// crossed, so such predicates silently evaluate to a constant.
				return fmt.Errorf("rules: rule %q: non-finite threshold %g", r.Name, p.Threshold)
			}
		}
		return nil
	}
	for _, r := range rs.Positive {
		if err := check(r, Positive); err != nil {
			return err
		}
	}
	for _, r := range rs.Negative {
		if err := check(r, Negative); err != nil {
			return err
		}
	}
	return nil
}
