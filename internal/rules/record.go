package rules

import (
	"fmt"
	"sync"

	"dime/internal/entity"
	"dime/internal/ontology"
	"dime/internal/tokenize"
)

// TokenMode selects how an attribute's value list is turned into tokens for
// set-based similarity.
type TokenMode int

const (
	// Elements treats each list element (normalized) as one token — right
	// for genuinely multi-valued attributes such as Authors or Also_viewed,
	// where overlap must count common elements, not common words.
	Elements TokenMode = iota
	// WordsMode splits every element into lower-cased word tokens — right
	// for free-text attributes such as Title or Description.
	WordsMode
)

// NodeMapper maps an attribute's value list to an ontology node. The default
// mapper looks the joined value (then each element) up in the tree; topic
// models install mappers that infer a node from content.
type NodeMapper func(values []string) *ontology.Node

// Config describes how entities of a schema are compiled into Records:
// per-attribute token modes, ontology trees, and custom node mappers.
type Config struct {
	// Schema is the relation the rules and records are defined over.
	Schema *entity.Schema
	// Trees maps attribute name → ontology tree for ontology predicates.
	Trees map[string]*ontology.Tree
	// TokenModes overrides the default Elements mode per attribute name.
	TokenModes map[string]TokenMode
	// Mappers overrides the default lookup-based node mapping per attribute
	// name. A mapper is only consulted for attributes that also have a Tree.
	Mappers map[string]NodeMapper

	// mu guards lazy compilation: configs are built single-threaded (the
	// With* setters are not concurrency-safe) but are then shared across
	// goroutines by batch discovery, whose first record compilations can
	// race to compile.
	mu        sync.Mutex
	compiled  bool
	treeAt    []*ontology.Tree
	modeAt    []TokenMode
	mapperAt  []NodeMapper
	attrCount int
}

// NewConfig returns a Config over the schema with all-default settings.
func NewConfig(schema *entity.Schema) *Config {
	return &Config{Schema: schema}
}

// WithTree registers an ontology tree for an attribute and returns the
// config for chaining.
func (c *Config) WithTree(attr string, t *ontology.Tree) *Config {
	if c.Trees == nil {
		c.Trees = make(map[string]*ontology.Tree)
	}
	c.Trees[attr] = t
	c.compiled = false
	return c
}

// WithTokenMode sets the token mode for an attribute and returns the config.
func (c *Config) WithTokenMode(attr string, m TokenMode) *Config {
	if c.TokenModes == nil {
		c.TokenModes = make(map[string]TokenMode)
	}
	c.TokenModes[attr] = m
	c.compiled = false
	return c
}

// WithMapper sets a custom node mapper for an attribute and returns the
// config.
func (c *Config) WithMapper(attr string, m NodeMapper) *Config {
	if c.Mappers == nil {
		c.Mappers = make(map[string]NodeMapper)
	}
	c.Mappers[attr] = m
	c.compiled = false
	return c
}

// Tree returns the ontology tree registered for the named attribute, if any.
func (c *Config) Tree(attr string) *ontology.Tree {
	return c.Trees[attr]
}

func (c *Config) compile() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.compiled {
		return nil
	}
	if c.Schema == nil {
		return fmt.Errorf("rules: config has no schema")
	}
	n := c.Schema.Len()
	c.treeAt = make([]*ontology.Tree, n)
	c.modeAt = make([]TokenMode, n)
	c.mapperAt = make([]NodeMapper, n)
	for name, t := range c.Trees {
		i, ok := c.Schema.Index(name)
		if !ok {
			return fmt.Errorf("rules: tree registered for unknown attribute %q", name)
		}
		c.treeAt[i] = t
	}
	for name, m := range c.TokenModes {
		i, ok := c.Schema.Index(name)
		if !ok {
			return fmt.Errorf("rules: token mode for unknown attribute %q", name)
		}
		c.modeAt[i] = m
	}
	for name, m := range c.Mappers {
		i, ok := c.Schema.Index(name)
		if !ok {
			return fmt.Errorf("rules: mapper for unknown attribute %q", name)
		}
		c.mapperAt[i] = m
	}
	c.attrCount = n
	c.compiled = true
	return nil
}

// Record is the precomputed per-entity view predicates evaluate against.
type Record struct {
	// Entity is the underlying entity.
	Entity *entity.Entity
	// Index is the entity's position within its group (set by callers that
	// build record slices; -1 when unknown).
	Index int
	// Tokens[i] holds the deduplicated tokens of attribute i.
	Tokens [][]string
	// Joined[i] holds the attribute's values joined by single spaces, the
	// view character-based similarity uses.
	Joined []string
	// Nodes[i] is the ontology node attribute i maps to (nil when the
	// attribute has no tree or the value has no node).
	Nodes []*ontology.Node
}

// NewRecord compiles an entity into a Record under the config.
func (c *Config) NewRecord(e *entity.Entity) (*Record, error) {
	if err := c.compile(); err != nil {
		return nil, err
	}
	r := &Record{
		Entity: e,
		Index:  -1,
		Tokens: make([][]string, c.attrCount),
		Joined: make([]string, c.attrCount),
		Nodes:  make([]*ontology.Node, c.attrCount),
	}
	if err := c.fillRecord(r, e); err != nil {
		return nil, err
	}
	return r, nil
}

// fillRecord compiles e into r, whose Tokens/Joined/Nodes slices are already
// sized to the schema's attribute count.
func (c *Config) fillRecord(r *Record, e *entity.Entity) error {
	if len(e.Values) != c.attrCount {
		return fmt.Errorf("rules: entity %q has %d attributes, schema has %d",
			e.ID, len(e.Values), c.attrCount)
	}
	for i, values := range e.Values {
		r.Joined[i] = e.Joined(i)
		switch c.modeAt[i] {
		case WordsMode:
			r.Tokens[i] = tokenize.Set(r.Joined[i])
		default:
			tokens := make([]string, 0, len(values))
			for _, v := range values {
				tokens = append(tokens, ontology.Normalize(v))
			}
			r.Tokens[i] = tokenize.Dedup(tokens)
		}
		if tree := c.treeAt[i]; tree != nil {
			if mapper := c.mapperAt[i]; mapper != nil {
				r.Nodes[i] = mapper(values)
			} else {
				r.Nodes[i] = defaultMap(tree, values, r.Joined[i])
			}
		}
	}
	return nil
}

// NewRecords compiles a whole group, setting Index on every record. The
// record structs and their per-attribute slice headers come from three
// group-wide arenas, so compiling n records costs O(1) container allocations
// instead of O(n·attrs).
func (c *Config) NewRecords(g *entity.Group) ([]*Record, error) {
	if !c.Schema.Equal(g.Schema) {
		return nil, fmt.Errorf("rules: group %q schema does not match config schema", g.Name)
	}
	if err := c.compile(); err != nil {
		return nil, err
	}
	n := len(g.Entities)
	na := c.attrCount
	recs := make([]*Record, n)
	backing := make([]Record, n)
	tokens := make([][]string, n*na)
	joined := make([]string, n*na)
	nodes := make([]*ontology.Node, n*na)
	for i, e := range g.Entities {
		r := &backing[i]
		r.Entity = e
		r.Index = i
		r.Tokens = tokens[i*na : (i+1)*na : (i+1)*na]
		r.Joined = joined[i*na : (i+1)*na : (i+1)*na]
		r.Nodes = nodes[i*na : (i+1)*na : (i+1)*na]
		if err := c.fillRecord(r, e); err != nil {
			return nil, err
		}
		recs[i] = r
	}
	return recs, nil
}

// defaultMap looks the joined value, then each element, up in the tree.
func defaultMap(tree *ontology.Tree, values []string, joined string) *ontology.Node {
	if n := tree.Lookup(joined); n != nil {
		return n
	}
	for _, v := range values {
		if n := tree.Lookup(v); n != nil {
			return n
		}
	}
	return nil
}
