package rules

import (
	"math"
	"strings"
	"testing"

	"dime/internal/entity"
	"dime/internal/ontology"
	"dime/internal/sim"
)

var testSchema = entity.MustSchema("Title", "Authors", "Venue")

func testConfig() *Config {
	return NewConfig(testSchema).
		WithTokenMode("Title", WordsMode).
		WithTree("Venue", ontology.VenueTree())
}

func mustRecord(t *testing.T, cfg *Config, id, title string, authors []string, venue string) *Record {
	t.Helper()
	e, err := entity.NewEntity(testSchema, id, [][]string{{title}, authors, {venue}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := cfg.NewRecord(e)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecordTokenModes(t *testing.T) {
	cfg := testConfig()
	r := mustRecord(t, cfg, "e", "A Data Cleaning System", []string{"Nan Tang", "Xu Chu"}, "SIGMOD")
	// Title uses word tokens.
	wantTitle := []string{"a", "data", "cleaning", "system"}
	if len(r.Tokens[0]) != len(wantTitle) {
		t.Fatalf("title tokens = %v", r.Tokens[0])
	}
	// Authors use element tokens: whole normalized names.
	if len(r.Tokens[1]) != 2 || r.Tokens[1][0] != "nan tang" {
		t.Fatalf("author tokens = %v", r.Tokens[1])
	}
	// Venue maps to the ontology node.
	if r.Nodes[2] == nil || r.Nodes[2].Label != "SIGMOD" {
		t.Fatalf("venue node = %v", r.Nodes[2])
	}
	// Title has no tree: nil node.
	if r.Nodes[0] != nil {
		t.Fatal("title should have no node")
	}
}

func TestPredicateOverlapAuthors(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "t", []string{"Nan Tang", "Xu Chu"}, "SIGMOD")
	b := mustRecord(t, cfg, "b", "t", []string{"Nan Tang", "Ihab F. Ilyas"}, "VLDB")
	p := Predicate{Attr: 1, AttrName: "Authors", Fn: Overlap, Op: GE, Threshold: 1}
	if !p.Eval(a, b) {
		t.Fatal("one common author should satisfy ov >= 1")
	}
	p.Threshold = 2
	if p.Eval(a, b) {
		t.Fatal("ov >= 2 should fail with a single common author")
	}
	// A single-element author list must count as ONE token, not word tokens.
	c := mustRecord(t, cfg, "c", "t", []string{"Nan Tang"}, "ICDE")
	p1 := Predicate{Attr: 1, Fn: Overlap, Op: GE, Threshold: 1}
	if got := p1.Similarity(a, c); !sim.Eq(got, 1) {
		t.Fatalf("single-author overlap = %v, want 1", got)
	}
}

func TestPredicateOntology(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "t", []string{"X"}, "SIGMOD")
	b := mustRecord(t, cfg, "b", "t", []string{"Y"}, "VLDB")
	c := mustRecord(t, cfg, "c", "t", []string{"Z"}, "RSC Advances")
	p := Predicate{Attr: 2, AttrName: "Venue", Fn: Ontology, Op: GE, Threshold: 0.75, Tree: cfg.Tree("Venue")}
	if !p.Eval(a, b) {
		t.Fatal("SIGMOD/VLDB should satisfy on >= 0.75")
	}
	if p.Eval(a, c) {
		t.Fatal("SIGMOD/RSC should not satisfy on >= 0.75")
	}
	neg := Predicate{Attr: 2, Fn: Ontology, Op: LE, Threshold: 0.25, Tree: cfg.Tree("Venue")}
	if !neg.Eval(a, c) {
		t.Fatal("SIGMOD/RSC should satisfy on <= 0.25")
	}
	if neg.Eval(a, b) {
		t.Fatal("SIGMOD/VLDB should not satisfy on <= 0.25")
	}
}

func TestPredicateEditDistance(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "katara", nil, "SIGMOD")
	b := mustRecord(t, cfg, "b", "kataras", nil, "SIGMOD")
	p := Predicate{Attr: 0, Fn: EditDist, Op: LE, Threshold: 1}
	if !p.Eval(a, b) {
		t.Fatal("one edit apart should satisfy ed <= 1")
	}
	pGE := Predicate{Attr: 0, Fn: EditDist, Op: GE, Threshold: 3}
	if pGE.Eval(a, b) {
		t.Fatal("one edit apart should not satisfy ed >= 3")
	}
	c := mustRecord(t, cfg, "c", "completely different", nil, "SIGMOD")
	if !pGE.Eval(a, c) {
		t.Fatal("distant strings should satisfy ed >= 3")
	}
}

func TestPredicateJaccardTitle(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "data cleaning system", nil, "SIGMOD")
	b := mustRecord(t, cfg, "b", "data cleaning framework", nil, "SIGMOD")
	p := Predicate{Attr: 0, Fn: Jaccard, Op: GE, Threshold: 0.5}
	if got := p.Similarity(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("jaccard = %v", got)
	}
	if !p.Eval(a, b) {
		t.Fatal("jac >= 0.5 should hold")
	}
}

func TestRuleConjunction(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "t", []string{"Nan Tang"}, "SIGMOD")
	b := mustRecord(t, cfg, "b", "t", []string{"Nan Tang"}, "VLDB")
	c := mustRecord(t, cfg, "c", "t", []string{"Nan Tang"}, "RSC Advances")
	r := MustParse(cfg, "phi+2", Positive, "ov(Authors) >= 1 && on(Venue) >= 0.75")
	if !r.Eval(a, b) {
		t.Fatal("both predicates hold")
	}
	if r.Eval(a, c) {
		t.Fatal("venue predicate fails; conjunction must fail")
	}
	if (Rule{}).Eval(a, b) {
		t.Fatal("empty rule must evaluate to false")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cfg := testConfig()
	r := MustParse(cfg, "phi-2", Negative, "ov(Authors) <= 1 && on(Venue) <= 0.25")
	s := r.String()
	if !strings.Contains(s, "ov(Authors) <= 1") || !strings.Contains(s, "on(Venue) <= 0.25") {
		t.Fatalf("String = %q", s)
	}
	if len(r.Predicates) != 2 {
		t.Fatalf("predicates = %d", len(r.Predicates))
	}
	if r.Predicates[1].Tree == nil {
		t.Fatal("ontology predicate should carry the tree")
	}
}

func TestParseEqualsZero(t *testing.T) {
	cfg := testConfig()
	r := MustParse(cfg, "phi-1", Negative, "ov(Authors) = 0")
	if r.Predicates[0].Op != LE || r.Predicates[0].Threshold != 0 {
		t.Fatalf("= 0 should parse as <= 0: %+v", r.Predicates[0])
	}
}

func TestParseErrors(t *testing.T) {
	cfg := testConfig()
	bad := []string{
		"ov(Authors >= 1",        // missing paren
		"nosuch(Authors) >= 1",   // unknown fn
		"ov(Missing) >= 1",       // unknown attribute
		"ov(Authors) > 1",        // unsupported op
		"ov(Authors) >= notanum", // bad threshold
		"on(Title) >= 0.5",       // no tree for Title
		"ov(Authors) = 1",        // '=' only with 0
		"ov(Authors) >= -1",      // negative threshold
		"",                       // empty
		"ov(Authors) >= 1 && xx", // bad second predicate
	}
	for _, dsl := range bad {
		if _, err := Parse(cfg, "r", Negative, dsl); err == nil {
			t.Errorf("Parse(%q) should fail", dsl)
		}
	}
}

func TestRuleSetValidate(t *testing.T) {
	cfg := testConfig()
	rs := RuleSet{
		Positive: []Rule{MustParse(cfg, "p", Positive, "ov(Authors) >= 1")},
		Negative: []Rule{MustParse(cfg, "n", Negative, "ov(Authors) = 0")},
	}
	if err := rs.Validate(testSchema); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Kind mismatch must fail.
	rsBad := RuleSet{Positive: []Rule{MustParse(cfg, "n", Negative, "ov(Authors) = 0")}}
	if err := rsBad.Validate(testSchema); err == nil {
		t.Fatal("kind mismatch should fail validation")
	}
}

func TestPredicateCostModel(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "short", []string{"X", "Y"}, "SIGMOD")
	b := mustRecord(t, cfg, "b", "longer title here", []string{"X"}, "VLDB")
	set := Predicate{Attr: 1, Fn: Overlap, Op: GE, Threshold: 1}
	if got := set.Cost(a, b); !sim.Eq(got, 3) {
		t.Fatalf("set cost = %v, want |a|+|b| = 3", got)
	}
	ont := Predicate{Attr: 2, Fn: Ontology, Op: GE, Threshold: 0.75, Tree: cfg.Tree("Venue")}
	if got := ont.Cost(a, b); !sim.Eq(got, 8) {
		t.Fatalf("ontology cost = %v, want 4+4", got)
	}
	ed := Predicate{Attr: 0, Fn: EditDist, Op: LE, Threshold: 2}
	if got := ed.Cost(a, b); !sim.Eq(got, 2*float64(len("short"))) {
		t.Fatalf("edit cost = %v", got)
	}
}

func TestNewRecordsSetsIndexes(t *testing.T) {
	cfg := testConfig()
	g := entity.NewGroup("g", testSchema)
	for _, id := range []string{"a", "b", "c"} {
		e, _ := entity.NewEntity(testSchema, id, [][]string{{"t"}, {"x"}, {"SIGMOD"}})
		g.MustAdd(e)
	}
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
	}
	// Schema mismatch must fail.
	other := entity.NewGroup("o", entity.MustSchema("X"))
	if _, err := cfg.NewRecords(other); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestCustomMapper(t *testing.T) {
	tree := ontology.NewTree("Topics")
	sports := tree.AddPath("Sports")
	cfg := NewConfig(testSchema).
		WithTree("Title", tree).
		WithMapper("Title", func(values []string) *ontology.Node { return sports })
	r := mustRecord(t, cfg, "a", "anything at all", nil, "x")
	if r.Nodes[0] != sports {
		t.Fatal("custom mapper should drive node mapping")
	}
}

func TestFuncStrings(t *testing.T) {
	names := map[Func]string{
		Overlap: "ov", Jaccard: "jac", Dice: "dice", Cosine: "cos",
		EditSim: "eds", EditDist: "ed", Ontology: "on",
	}
	for fn, want := range names {
		if fn.String() != want {
			t.Errorf("Func %d String = %q, want %q", fn, fn.String(), want)
		}
	}
	if GE.String() != ">=" || LE.String() != "<=" {
		t.Fatal("op strings")
	}
	if Positive.String() != "positive" || Negative.String() != "negative" {
		t.Fatal("kind strings")
	}
}
