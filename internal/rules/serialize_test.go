package rules

import (
	"strings"
	"testing"
)

func TestRuleSetRoundTrip(t *testing.T) {
	cfg := testConfig()
	rs := RuleSet{
		Positive: []Rule{
			MustParse(cfg, "phi+1", Positive, "ov(Authors) >= 2"),
			MustParse(cfg, "phi+2", Positive, "ov(Authors) >= 1 && on(Venue) >= 0.75"),
		},
		Negative: []Rule{
			MustParse(cfg, "phi-1", Negative, "ov(Authors) = 0"),
			MustParse(cfg, "phi-2", Negative, "ov(Authors) <= 1 && on(Venue) <= 0.25"),
		},
	}
	data, err := MarshalRuleSet(rs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadRuleSet(cfg, data)
	if err != nil {
		t.Fatalf("LoadRuleSet: %v\npayload:\n%s", err, data)
	}
	if len(back.Positive) != 2 || len(back.Negative) != 2 {
		t.Fatalf("rule counts after round trip: %d/%d", len(back.Positive), len(back.Negative))
	}
	// Semantics must survive: evaluate all rules on a pair and compare.
	a := mustRecord(t, cfg, "a", "t", []string{"Nan Tang", "Xu Chu"}, "SIGMOD")
	b := mustRecord(t, cfg, "b", "t", []string{"Nan Tang"}, "VLDB")
	for i := range rs.Positive {
		if rs.Positive[i].Eval(a, b) != back.Positive[i].Eval(a, b) {
			t.Fatalf("positive rule %d changed semantics", i)
		}
	}
	for i := range rs.Negative {
		if rs.Negative[i].Eval(a, b) != back.Negative[i].Eval(a, b) {
			t.Fatalf("negative rule %d changed semantics", i)
		}
	}
	if back.Negative[0].Name != "phi-1" {
		t.Fatalf("name lost: %q", back.Negative[0].Name)
	}
}

func TestLoadRuleSetHandWritten(t *testing.T) {
	cfg := testConfig()
	data := []byte(`{
		"positive": [{"rule": "ov(Authors) >= 2"}],
		"negative": [{"name": "no-authors", "rule": "ov(Authors) = 0"}]
	}`)
	rs, err := LoadRuleSet(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Positive[0].Name != "pos1" {
		t.Fatalf("default name = %q", rs.Positive[0].Name)
	}
	if rs.Negative[0].Name != "no-authors" {
		t.Fatalf("explicit name = %q", rs.Negative[0].Name)
	}
}

func TestLoadRuleSetErrors(t *testing.T) {
	cfg := testConfig()
	cases := []string{
		`not json`,
		`{"positive": [{"rule": "bogus(A) >= 1"}]}`,
		`{}`,
	}
	for _, c := range cases {
		if _, err := LoadRuleSet(cfg, []byte(c)); err == nil {
			t.Errorf("LoadRuleSet(%q) should fail", c)
		}
	}
}

func TestMarshalEqualsZeroForm(t *testing.T) {
	cfg := testConfig()
	rs := RuleSet{Negative: []Rule{MustParse(cfg, "n", Negative, "ov(Authors) = 0")}}
	data, err := MarshalRuleSet(rs)
	if err != nil {
		t.Fatal(err)
	}
	// The "= 0" shorthand serializes as "<= 0", which parses back fine.
	if !strings.Contains(string(data), "ov(Authors) <= 0") {
		t.Fatalf("payload:\n%s", data)
	}
	if _, err := LoadRuleSet(cfg, data); err != nil {
		t.Fatal(err)
	}
}
