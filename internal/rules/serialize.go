package rules

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// jsonRuleSet is the serialized form of a rule set: DSL strings keyed by
// rule name, in application order. The format is deliberately hand-editable:
//
//	{
//	  "positive": [
//	    {"name": "phi+1", "rule": "ov(Authors) >= 2"}
//	  ],
//	  "negative": [
//	    {"name": "phi-1", "rule": "ov(Authors) = 0"}
//	  ]
//	}
type jsonRuleSet struct {
	Positive []jsonRule `json:"positive"`
	Negative []jsonRule `json:"negative"`
}

type jsonRule struct {
	Name string `json:"name"`
	Rule string `json:"rule"`
}

// MarshalRuleSet serializes a rule set as hand-editable JSON of DSL strings
// (with HTML escaping off, so ">=" stays readable).
func MarshalRuleSet(rs RuleSet) ([]byte, error) {
	var out jsonRuleSet
	for _, r := range rs.Positive {
		out.Positive = append(out.Positive, jsonRule{Name: r.Name, Rule: dslOf(r)})
	}
	for _, r := range rs.Negative {
		out.Negative = append(out.Negative, jsonRule{Name: r.Name, Rule: dslOf(r)})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// dslOf renders a rule body (without the name prefix Rule.String adds).
func dslOf(r Rule) string {
	parts := make([]string, len(r.Predicates))
	for i, p := range r.Predicates {
		parts[i] = p.String()
	}
	return strings.Join(parts, " && ")
}

// LoadRuleSet parses a serialized rule set against a config (the config
// supplies the schema and the ontology trees `on` predicates bind to).
func LoadRuleSet(cfg *Config, data []byte) (RuleSet, error) {
	var in jsonRuleSet
	if err := json.Unmarshal(data, &in); err != nil {
		return RuleSet{}, fmt.Errorf("rules: parsing rule set: %w", err)
	}
	var rs RuleSet
	for i, jr := range in.Positive {
		name := jr.Name
		if name == "" {
			name = fmt.Sprintf("pos%d", i+1)
		}
		r, err := Parse(cfg, name, Positive, jr.Rule)
		if err != nil {
			return RuleSet{}, err
		}
		rs.Positive = append(rs.Positive, r)
	}
	for i, jr := range in.Negative {
		name := jr.Name
		if name == "" {
			name = fmt.Sprintf("neg%d", i+1)
		}
		r, err := Parse(cfg, name, Negative, jr.Rule)
		if err != nil {
			return RuleSet{}, err
		}
		rs.Negative = append(rs.Negative, r)
	}
	if len(rs.Positive) == 0 && len(rs.Negative) == 0 {
		return RuleSet{}, fmt.Errorf("rules: rule set file contains no rules")
	}
	return rs, nil
}
