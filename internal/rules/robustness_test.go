package rules

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dime/internal/sim"
)

// TestParseNeverPanics feeds the DSL parser random garbage; it must return
// errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	cfg := testConfig()
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = Parse(cfg, "fuzz", Positive, s)
		_, _ = Parse(cfg, "fuzz", Negative, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Structured near-misses, beyond purely random strings.
	rng := rand.New(rand.NewSource(8))
	fragments := []string{"ov", "jac", "on", "(", ")", "Authors", "Venue", ">=", "<=", "=",
		"0", "1", "0.5", "&&", " ", "-1", "NaN", "Inf", "((", "))"}
	for i := 0; i < 500; i++ {
		var b strings.Builder
		for k := 0; k < 1+rng.Intn(8); k++ {
			b.WriteString(fragments[rng.Intn(len(fragments))])
		}
		f(b.String())
	}
}

// TestEditSimilarityPredicates covers the eds function end to end.
func TestEditSimilarityPredicates(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "data cleaning", nil, "SIGMOD")
	b := mustRecord(t, cfg, "b", "data cleanings", nil, "SIGMOD")
	c := mustRecord(t, cfg, "c", "quantum entanglement", nil, "SIGMOD")

	p := MustParse(cfg, "p", Positive, "eds(Title) >= 0.9")
	if !p.Eval(a, b) {
		t.Fatal("near-identical titles should pass eds >= 0.9")
	}
	if p.Eval(a, c) {
		t.Fatal("unrelated titles should fail eds >= 0.9")
	}
	n := MustParse(cfg, "n", Negative, "eds(Title) <= 0.4")
	if !n.Eval(a, c) {
		t.Fatal("unrelated titles should pass eds <= 0.4")
	}
	if n.Eval(a, b) {
		t.Fatal("near-identical titles should fail eds <= 0.4")
	}
}

// TestDiceCosinePredicates covers the dice and cos families through the DSL.
func TestDiceCosinePredicates(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "alpha beta gamma", nil, "SIGMOD")
	b := mustRecord(t, cfg, "b", "alpha beta delta", nil, "SIGMOD")
	dice := MustParse(cfg, "d", Positive, "dice(Title) >= 0.6")
	if !dice.Eval(a, b) { // dice = 2·2/(3+3) = 0.667
		t.Fatal("dice 0.667 should pass >= 0.6")
	}
	cos := MustParse(cfg, "c", Positive, "cos(Title) >= 0.6")
	if !cos.Eval(a, b) { // cos = 2/3
		t.Fatal("cos 0.667 should pass >= 0.6")
	}
}

// TestRecordWithEmptyValues: empty attribute values must flow through every
// similarity family without panicking.
func TestRecordWithEmptyValues(t *testing.T) {
	cfg := testConfig()
	empty := mustRecord(t, cfg, "e", "", nil, "")
	full := mustRecord(t, cfg, "f", "some title", []string{"A B"}, "SIGMOD")
	for _, dsl := range []string{
		"ov(Authors) >= 1", "jac(Title) >= 0.5", "dice(Title) >= 0.5",
		"cos(Title) >= 0.5", "eds(Title) >= 0.5", "ed(Title) <= 2",
		"on(Venue) >= 0.5",
	} {
		r := MustParse(cfg, "r", Positive, dsl)
		_ = r.Eval(empty, full)
		_ = r.Eval(empty, empty)
		_ = r.Cost(empty, full)
	}
}

// TestPredicateSimilaritySymmetry: every DSL function is symmetric on
// records.
func TestPredicateSimilaritySymmetry(t *testing.T) {
	cfg := testConfig()
	a := mustRecord(t, cfg, "a", "alpha beta", []string{"X", "Y"}, "SIGMOD")
	b := mustRecord(t, cfg, "b", "beta gamma delta", []string{"Y", "Z"}, "RSC Advances")
	for _, dsl := range []string{
		"ov(Authors) >= 1", "jac(Title) >= 0.1", "dice(Title) >= 0.1",
		"cos(Title) >= 0.1", "eds(Title) >= 0.1", "ed(Title) <= 5",
		"on(Venue) >= 0.1",
	} {
		p := MustParse(cfg, "p", Positive, dsl).Predicates[0]
		if !sim.Eq(p.Similarity(a, b), p.Similarity(b, a)) {
			t.Errorf("%s asymmetric: %v vs %v", dsl, p.Similarity(a, b), p.Similarity(b, a))
		}
	}
}
