package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Rule from its DSL form. The grammar is a conjunction of
// predicates joined by "&&":
//
//	rule      := predicate { "&&" predicate }
//	predicate := fn "(" attribute ")" op number
//	fn        := "ov" | "jac" | "dice" | "cos" | "eds" | "ed" | "on"
//	op        := ">=" | "<=" | "="
//
// "=" is sugar for a two-sided equality and is accepted only with 0 on
// overlap predicates (the paper's f_ov(A) = 0 form), where it means "<= 0".
// Attribute names may contain any characters except ')'. Ontology predicates
// require a tree registered for the attribute in cfg.
func Parse(cfg *Config, name string, kind Kind, dsl string) (Rule, error) {
	r := Rule{Name: name, Kind: kind}
	parts := strings.Split(dsl, "&&")
	for _, part := range parts {
		p, err := parsePredicate(cfg, strings.TrimSpace(part))
		if err != nil {
			return Rule{}, fmt.Errorf("rules: parsing %q: %w", dsl, err)
		}
		r.Predicates = append(r.Predicates, p)
	}
	if err := (RuleSet{}).validateOne(r, cfg); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// MustParse is Parse that panics on error, for preset rule tables.
func MustParse(cfg *Config, name string, kind Kind, dsl string) Rule {
	r, err := Parse(cfg, name, kind, dsl)
	if err != nil {
		panic(err)
	}
	return r
}

func parsePredicate(cfg *Config, s string) (Predicate, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return Predicate{}, fmt.Errorf("predicate %q: missing '('", s)
	}
	closeIdx := strings.IndexByte(s, ')')
	if closeIdx < open {
		return Predicate{}, fmt.Errorf("predicate %q: missing ')'", s)
	}
	fnName := strings.TrimSpace(s[:open])
	attr := strings.TrimSpace(s[open+1 : closeIdx])
	rest := strings.TrimSpace(s[closeIdx+1:])

	var fn Func
	switch fnName {
	case "ov":
		fn = Overlap
	case "jac":
		fn = Jaccard
	case "dice":
		fn = Dice
	case "cos":
		fn = Cosine
	case "eds":
		fn = EditSim
	case "ed":
		fn = EditDist
	case "on":
		fn = Ontology
	default:
		return Predicate{}, fmt.Errorf("predicate %q: unknown function %q", s, fnName)
	}

	var op Op
	var numStr string
	switch {
	case strings.HasPrefix(rest, ">="):
		op, numStr = GE, rest[2:]
	case strings.HasPrefix(rest, "<="):
		op, numStr = LE, rest[2:]
	case strings.HasPrefix(rest, "="):
		op, numStr = LE, rest[1:]
		if strings.TrimSpace(numStr) != "0" {
			return Predicate{}, fmt.Errorf("predicate %q: '=' only supported as '= 0'", s)
		}
	default:
		return Predicate{}, fmt.Errorf("predicate %q: expected >=, <= or = after ')'", s)
	}
	threshold, err := strconv.ParseFloat(strings.TrimSpace(numStr), 64)
	if err != nil {
		return Predicate{}, fmt.Errorf("predicate %q: bad threshold: %v", s, err)
	}

	if cfg.Schema == nil {
		return Predicate{}, fmt.Errorf("predicate %q: config has no schema", s)
	}
	idx, ok := cfg.Schema.Index(attr)
	if !ok {
		return Predicate{}, fmt.Errorf("predicate %q: unknown attribute %q", s, attr)
	}
	p := Predicate{Attr: idx, AttrName: attr, Fn: fn, Op: op, Threshold: threshold}
	if fn == Ontology {
		p.Tree = cfg.Tree(attr)
		if p.Tree == nil {
			return Predicate{}, fmt.Errorf("predicate %q: no ontology tree registered for %q", s, attr)
		}
	}
	return p, nil
}

// validateOne reuses RuleSet.Validate's per-rule checks for a single rule.
func (RuleSet) validateOne(r Rule, cfg *Config) error {
	rs := RuleSet{}
	if r.Kind == Positive {
		rs.Positive = []Rule{r}
	} else {
		rs.Negative = []Rule{r}
	}
	return rs.Validate(cfg.Schema)
}
