package rules

import (
	"strings"
	"testing"
)

// FuzzParseRule drives the rule-DSL parser with arbitrary input. Two
// invariants: Parse never panics (garbage must come back as an error), and
// every accepted rule round-trips — rendering it with String() and
// re-parsing yields the same predicates. The seeds mix every preset rule
// shipped in internal/presets with the near-miss shapes the robustness test
// exercises.
func FuzzParseRule(f *testing.F) {
	seeds := []string{
		// Preset corpora (Scholar and DBGen rule tables).
		"ov(Authors) >= 2",
		"ov(Authors) >= 1 && on(Venue) >= 0.75",
		"ov(Authors) = 0",
		"ov(Authors) <= 1 && on(Venue) <= 0.25",
		"ov(Authors) <= 1 && jac(Title) <= 0.25",
		"eds(Title) >= 0.9",
		"jac(Title) >= 0.6 && ov(Authors) >= 2",
		"ed(Title) <= 3",
		"dice(Title) >= 0.5 && cos(Title) >= 0.5",
		// Near-misses and hostile shapes.
		"",
		"ov(Authors)",
		"ov(Authors) >=",
		"ov(Authors) = 1",
		"ov() >= 2",
		"zz(Authors) >= 2",
		"ov(Missing) >= 2",
		"on(Title) >= 0.5",
		"ov(Authors) >= NaN",
		"ov(Authors) >= Inf",
		"ov(Authors) >= -1",
		"ov(Authors) >= 1e309",
		"ov(Authors) >= 2 && ",
		"(( && ))",
		"ov(Aut)hors) >= 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cfg := testConfig()
	f.Fuzz(func(t *testing.T, dsl string) {
		for _, kind := range []Kind{Positive, Negative} {
			r, err := Parse(cfg, "fuzz", kind, dsl)
			if err != nil {
				continue
			}
			if len(r.Predicates) == 0 {
				t.Fatalf("Parse(%q) accepted a rule with no predicates", dsl)
			}
			rendered := strings.TrimPrefix(r.String(), "fuzz: ")
			back, err := Parse(cfg, "fuzz", kind, rendered)
			if err != nil {
				t.Fatalf("round trip of %q failed: rendered %q, err %v", dsl, rendered, err)
			}
			if len(back.Predicates) != len(r.Predicates) {
				t.Fatalf("round trip of %q changed arity: %d vs %d", dsl, len(r.Predicates), len(back.Predicates))
			}
			for i := range r.Predicates {
				p, q := r.Predicates[i], back.Predicates[i]
				//lint:ignore float-threshold the DSL round trip is bit-exact by design (%g renders the shortest unique form)
				if p.Attr != q.Attr || p.Fn != q.Fn || p.Op != q.Op || p.Threshold != q.Threshold {
					t.Fatalf("round trip of %q changed predicate %d: %+v vs %+v", dsl, i, p, q)
				}
			}
		}
	})
}
