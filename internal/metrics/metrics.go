// Package metrics provides the evaluation machinery of Section VI:
// precision / recall / F-measure over discovered mis-categorized entity
// sets, per-group and averaged scores, and k-fold cross-validation splits
// for the rule-generation experiments.
package metrics

import (
	"fmt"
)

// PRF holds precision, recall and F-measure.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	// TP, FP, FN are the raw counts the scores derive from.
	TP, FP, FN int
}

// Score compares a discovered ID set against the ground-truth ID set.
// Conventions match the paper: precision = |found ∩ truth| / |found| (1 when
// nothing was found and nothing should be), recall = |found ∩ truth| /
// |truth| (1 when nothing should be found).
func Score(found, truth []string) PRF {
	truthSet := make(map[string]bool, len(truth))
	for _, id := range truth {
		truthSet[id] = true
	}
	foundSet := make(map[string]bool, len(found))
	var tp, fp int
	for _, id := range found {
		if foundSet[id] {
			continue
		}
		foundSet[id] = true
		if truthSet[id] {
			tp++
		} else {
			fp++
		}
	}
	fn := 0
	for _, id := range truth {
		if !foundSet[id] {
			fn++
		}
	}
	return FromCounts(tp, fp, fn)
}

// FromCounts builds a PRF from raw true-positive / false-positive /
// false-negative counts.
func FromCounts(tp, fp, fn int) PRF {
	p := PRF{TP: tp, FP: fp, FN: fn}
	switch {
	case tp+fp == 0:
		p.Precision = 1
	default:
		p.Precision = float64(tp) / float64(tp+fp)
	}
	switch {
	case tp+fn == 0:
		p.Recall = 1
	default:
		p.Recall = float64(tp) / float64(tp+fn)
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// String renders "P=0.94 R=0.96 F=0.95".
func (p PRF) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F=%.2f", p.Precision, p.Recall, p.F1)
}

// Average returns the arithmetic mean of per-group scores (macro averaging,
// which is what the paper reports across Scholar pages). An empty input
// yields the zero PRF.
func Average(scores []PRF) PRF {
	if len(scores) == 0 {
		return PRF{}
	}
	var out PRF
	for _, s := range scores {
		out.Precision += s.Precision
		out.Recall += s.Recall
		out.TP += s.TP
		out.FP += s.FP
		out.FN += s.FN
	}
	n := float64(len(scores))
	out.Precision /= n
	out.Recall /= n
	if out.Precision+out.Recall > 0 {
		out.F1 = 2 * out.Precision * out.Recall / (out.Precision + out.Recall)
	}
	return out
}

// Micro returns the micro-averaged score: pool all counts, then compute.
func Micro(scores []PRF) PRF {
	var tp, fp, fn int
	for _, s := range scores {
		tp += s.TP
		fp += s.FP
		fn += s.FN
	}
	return FromCounts(tp, fp, fn)
}

// Folds splits n items into k contiguous folds of near-equal size for
// cross-validation. It returns, for each fold, the held-out index range
// [start, end). k is clamped to [1, n]; n must be positive.
func Folds(n, k int) ([][2]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("metrics: cannot fold %d items", n)
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	folds := make([][2]int, 0, k)
	base, rem := n/k, n%k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		folds = append(folds, [2]int{start, start + size})
		start += size
	}
	return folds, nil
}

// TrainTest materializes the train/test index lists for one fold over n
// items.
func TrainTest(n int, fold [2]int) (train, test []int) {
	for i := 0; i < n; i++ {
		if i >= fold[0] && i < fold[1] {
			test = append(test, i)
		} else {
			train = append(train, i)
		}
	}
	return train, test
}
