package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScoreBasic(t *testing.T) {
	s := Score([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if s.TP != 2 || s.FP != 1 || s.FN != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if !almost(s.Precision, 2.0/3) || !almost(s.Recall, 2.0/3) {
		t.Fatalf("P/R: %+v", s)
	}
	if !almost(s.F1, 2.0/3) {
		t.Fatalf("F1: %v", s.F1)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	if s := Score(nil, nil); !almost(s.Precision, 1) || !almost(s.Recall, 1) {
		t.Fatalf("empty/empty: %+v", s)
	}
	if s := Score(nil, []string{"x"}); !almost(s.Precision, 1) || s.Recall != 0 {
		t.Fatalf("empty found: %+v", s)
	}
	if s := Score([]string{"x"}, nil); s.Precision != 0 || !almost(s.Recall, 1) {
		t.Fatalf("empty truth: %+v", s)
	}
	// Duplicates in found count once.
	if s := Score([]string{"a", "a"}, []string{"a"}); s.TP != 1 || s.FP != 0 {
		t.Fatalf("dup found: %+v", s)
	}
}

func TestFromCounts(t *testing.T) {
	s := FromCounts(8, 2, 2)
	if !almost(s.Precision, 0.8) || !almost(s.Recall, 0.8) || !almost(s.F1, 0.8) {
		t.Fatalf("%+v", s)
	}
	if s := FromCounts(0, 0, 0); !almost(s.Precision, 1) || !almost(s.Recall, 1) {
		t.Fatalf("zero counts: %+v", s)
	}
}

func TestAverageAndMicro(t *testing.T) {
	a := FromCounts(1, 0, 1) // P=1, R=0.5
	b := FromCounts(1, 1, 0) // P=0.5, R=1
	avg := Average([]PRF{a, b})
	if !almost(avg.Precision, 0.75) || !almost(avg.Recall, 0.75) {
		t.Fatalf("avg: %+v", avg)
	}
	micro := Micro([]PRF{a, b})
	if micro.TP != 2 || micro.FP != 1 || micro.FN != 1 {
		t.Fatalf("micro: %+v", micro)
	}
	if z := Average(nil); z.Precision != 0 {
		t.Fatalf("empty average: %+v", z)
	}
}

func TestFolds(t *testing.T) {
	folds, err := Folds(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("folds = %v", folds)
	}
	total := 0
	prevEnd := 0
	for _, f := range folds {
		if f[0] != prevEnd {
			t.Fatalf("folds not contiguous: %v", folds)
		}
		total += f[1] - f[0]
		prevEnd = f[1]
	}
	if total != 10 {
		t.Fatalf("folds cover %d of 10", total)
	}
	// Sizes differ by at most one.
	if folds[0][1]-folds[0][0] != 4 {
		t.Fatalf("first fold size: %v", folds)
	}
	if _, err := Folds(0, 3); err == nil {
		t.Fatal("n=0 should fail")
	}
	if f, _ := Folds(3, 10); len(f) != 3 {
		t.Fatal("k should clamp to n")
	}
	if f, _ := Folds(5, 0); len(f) != 1 {
		t.Fatal("k<1 should clamp to 1")
	}
}

func TestTrainTest(t *testing.T) {
	train, test := TrainTest(5, [2]int{1, 3})
	if len(train) != 3 || len(test) != 2 {
		t.Fatalf("train=%v test=%v", train, test)
	}
	if test[0] != 1 || test[1] != 2 {
		t.Fatalf("test = %v", test)
	}
	if train[0] != 0 || train[1] != 3 || train[2] != 4 {
		t.Fatalf("train = %v", train)
	}
}

func TestPRFString(t *testing.T) {
	s := FromCounts(1, 1, 1)
	if got := s.String(); got != "P=0.50 R=0.50 F=0.50" {
		t.Fatalf("String = %q", got)
	}
}
