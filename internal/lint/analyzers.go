package lint

// All returns the full analyzer suite in a stable order: the per-package
// analyzers first, then the interprocedural ones that run over the module
// call graph.
func All() []Analyzer {
	return []Analyzer{
		MapIter{},
		FloatCmp{},
		ErrCheck{},
		Concurrency{},
		PanicFree{},
		DeterSafe{},
		PanicProp{},
		ResultPkgs{},
		AllocLint{},
		LockOrder{},
		HeldCall{},
		GoLeak{},
		CtxFlow{},
	}
}
