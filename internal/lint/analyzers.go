package lint

// All returns the full analyzer suite in a stable order.
func All() []Analyzer {
	return []Analyzer{
		MapIter{},
		FloatCmp{},
		ErrCheck{},
		Concurrency{},
		PanicFree{},
	}
}
