package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diag(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	diags := []Diagnostic{
		diag(filepath.Join(dir, "a.go"), 10, "detersafe", "clock"),
		diag(filepath.Join(dir, "a.go"), 20, "detersafe", "clock"),
		diag(filepath.Join(dir, "sub", "b.go"), 5, "panicprop", "boom"),
	}
	b := NewBaseline(diags, dir)
	if len(b.Findings) != 2 {
		t.Fatalf("got %d findings, want 2 (identical ones merge): %+v", len(b.Findings), b.Findings)
	}
	if f := b.Findings[0]; f.File != "a.go" || f.Count != 2 {
		t.Errorf("merged finding = %+v, want a.go with count 2", f)
	}
	if f := b.Findings[1]; f.File != "sub/b.go" || f.Count != 0 {
		t.Errorf("single finding = %+v, want sub/b.go with omitted count", f)
	}

	path := filepath.Join(dir, "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 2 || got.Findings[0] != b.Findings[0] || got.Findings[1] != b.Findings[1] {
		t.Errorf("round trip mismatch: %+v vs %+v", got.Findings, b.Findings)
	}
}

func TestBaselineApplySplitsFreshAndStale(t *testing.T) {
	dir := t.TempDir()
	b := &Baseline{Version: 1, Findings: []BaselineFinding{
		{File: "a.go", Analyzer: "detersafe", Message: "clock", Count: 2},
		{File: "gone.go", Analyzer: "panicprop", Message: "boom"},
	}}
	diags := []Diagnostic{
		// Line numbers deliberately differ from anything recorded: matching
		// must be position-independent.
		diag(filepath.Join(dir, "a.go"), 100, "detersafe", "clock"),
		diag(filepath.Join(dir, "a.go"), 200, "detersafe", "clock"),
		diag(filepath.Join(dir, "a.go"), 300, "detersafe", "clock"), // exceeds count 2
		diag(filepath.Join(dir, "new.go"), 1, "float-threshold", "eq"),
	}
	fresh, stale := b.Apply(diags, dir)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want the third clock finding and new.go", fresh)
	}
	if fresh[0].Pos.Line != 300 || fresh[1].Pos.Filename != filepath.Join(dir, "new.go") {
		t.Errorf("fresh = %v", fresh)
	}
	if len(stale) != 1 || stale[0].File != "gone.go" {
		t.Errorf("stale = %+v, want the gone.go entry", stale)
	}
}

func TestBaselineApplyEmptyBaselinePassesEverythingThrough(t *testing.T) {
	b := &Baseline{Version: 1}
	diags := []Diagnostic{diag("/x/a.go", 1, "detersafe", "clock")}
	fresh, stale := b.Apply(diags, "/x")
	if len(fresh) != 1 || len(stale) != 0 {
		t.Errorf("fresh=%v stale=%v", fresh, stale)
	}
}

func TestReadBaselineRejectsBadVersionAndJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":9,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Errorf("want version error, got %v", err)
	}
	if err := os.WriteFile(bad, []byte(`{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Error("want JSON error for truncated file")
	}
	if _, err := ReadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("want error for missing file")
	}
}
