package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide static call graph the interprocedural
// analyzers (detersafe, panicprop, resultpkgs) run on. The graph is
// stdlib-only and intentionally conservative:
//
//   - static calls (f(), pkg.F(), concrete method calls) become EdgeCall;
//   - interface method calls become one EdgeIface per module type whose
//     method set satisfies the interface (method-set resolution over every
//     named type declared in the loaded packages and their module imports);
//   - a reference to a module function outside call position (passed as a
//     callback, stored in a variable or field) becomes EdgeRef from the
//     referencing function — the value may be invoked downstream, so the
//     referencing call tree is treated as a potential caller. Function
//     literals are not separate nodes: a literal's body is attributed to the
//     enclosing declared function, which both spawns and (transitively)
//     owns it.
//
// Known over-approximations (EdgeRef, all-implementations dispatch) err on
// the side of reporting; known under-approximations are documented on
// BuildCallGraph. Alongside edges, the walk records per-node facts the
// analyzers consume: direct panic sites, deferred recover guards, and the
// nondeterminism sources detersafe taints (wall clock, process-global RNG,
// environment reads, map iteration order escaping into a slice or output,
// goroutine fan-out whose results are not folded into per-index slots).

// EdgeKind classifies a call-graph edge.
type EdgeKind uint8

const (
	// EdgeCall is a statically resolved call.
	EdgeCall EdgeKind = iota
	// EdgeIface is an interface-dispatch candidate: the callee is one of
	// the module types implementing the called interface method.
	EdgeIface
	// EdgeRef is a conservative edge to a function referenced as a value
	// (callback argument, assignment, composite literal field).
	EdgeRef
)

// String renders the edge kind for diagnostics and tests.
func (k EdgeKind) String() string {
	switch k {
	case EdgeIface:
		return "iface"
	case EdgeRef:
		return "ref"
	}
	return "call"
}

// Edge is one outgoing call-graph edge.
type Edge struct {
	// Callee is the target node.
	Callee *Node
	// Pos is the call or reference site in the caller.
	Pos token.Pos
	// Kind classifies how the edge was resolved.
	Kind EdgeKind
}

// Fact is one nondeterminism source recorded on a node for detersafe.
type Fact struct {
	// Pos is the source location of the nondeterministic operation.
	Pos token.Pos
	// What names the source ("time.Now", "math/rand.Intn (process-global
	// RNG)", "map iteration order escapes ...", ...).
	What string
}

// Node is one declared function or method in the call graph.
type Node struct {
	// ID is the stable identifier: pkgpath.Func or pkgpath.Recv.Method,
	// with an "‹xtest›" marker inserted for external-test declarations so
	// they cannot shadow same-named library functions.
	ID string
	// PkgPath is the declaring package's import path (module root for the
	// root package; no ".test" suffix).
	PkgPath string
	// RecvName is the receiver's base type name, "" for plain functions.
	RecvName string
	// Name is the function or method name.
	Name string
	// Pkg is the lint unit holding the declaration.
	Pkg *Package
	// Decl is the declaration; its body has been walked for edges/facts.
	Decl *ast.FuncDecl
	// Test marks declarations in _test.go files or external test units.
	Test bool
	// Main marks declarations in package main (commands, examples).
	Main bool
	// Exported reports an exported function, or an exported method on an
	// exported receiver type.
	Exported bool
	// Out holds the outgoing edges in source order (interface candidates
	// in sorted-callee order), deterministic across runs.
	Out []Edge

	// Panics holds direct panic call sites (builtin panic, including in
	// attributed function literals).
	Panics []token.Pos
	// Recovers reports a deferred recover in the function, which stops
	// panic propagation to callers.
	Recovers bool
	// Nondet holds the nondeterminism sources recorded for detersafe.
	Nondet []Fact
}

// String returns the node's short display name: package path relative to
// the module plus receiver and name ("internal/core.Session.Result").
func (n *Node) String() string {
	path := n.PkgPath
	if n.Pkg != nil {
		if path == n.Pkg.Module {
			path = lastSegment(n.Pkg.Module)
		} else {
			path = strings.TrimPrefix(path, n.Pkg.Module+"/")
		}
	}
	if n.RecvName != "" {
		return path + "." + n.RecvName + "." + n.Name
	}
	return path + "." + n.Name
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CallGraph is the module-wide static call graph.
type CallGraph struct {
	// Module is the module path the graph was built for.
	Module string
	nodes  map[string]*Node
}

// Node returns the node with the given ID, or nil.
func (g *CallGraph) Node(id string) *Node { return g.nodes[id] }

// Nodes returns every node sorted by ID.
func (g *CallGraph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup resolves a types.Func object (from any of the module's
// type-checking universes) to its node, or nil.
func (g *CallGraph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[funcID(fn)]
}

// BuildCallGraph constructs the call graph over the loaded lint units.
// Packages must share one FileSet (as Load guarantees).
//
// Bodies are only available for the loaded units, so calls into packages
// outside the load (and the standard library) terminate at the caller;
// function literals stored in package-level variables and method values
// passed as plain function values are attributed to the function that
// creates them, not to later callers in other call trees.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	module := ""
	if len(pkgs) > 0 {
		module = pkgs[0].Module
	}
	b := &graphBuilder{
		g:         &CallGraph{Module: module, nodes: map[string]*Node{}},
		implCache: map[*types.Func][]string{},
	}
	b.collectTypes(pkgs)
	for _, pkg := range pkgs {
		xtest := strings.HasSuffix(pkg.Path, ".test")
		for _, f := range pkg.Files {
			test := xtest || strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go")
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				b.addNode(pkg, fd, test, xtest)
			}
		}
	}
	for _, n := range b.g.Nodes() {
		b.walkBody(n)
	}
	return b.g
}

// graphBuilder carries the state of one BuildCallGraph run.
type graphBuilder struct {
	g *CallGraph
	// candidates are the named non-interface types considered for
	// interface dispatch, sorted by (package path, name). The same type
	// may appear once per type-checking universe; edge IDs collapse the
	// duplicates.
	candidates []*types.TypeName
	// implCache memoizes interface-method resolution per method object.
	implCache map[*types.Func][]string
}

// funcID computes the stable node ID for a function object.
func funcID(fn *types.Func) string {
	fn = fn.Origin()
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if base := recvBaseName(sig.Recv().Type()); base != "" {
			return path + "." + base + "." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

// xtestID marks an external-test declaration's ID so it cannot collide with
// a same-named declaration of the package under test.
func xtestID(id string) string { return id + "‹xtest›" }

// recvBaseName returns the base type name of a receiver type ("" when the
// receiver is not a named type).
func recvBaseName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// addNode creates the node for one function declaration.
func (b *graphBuilder) addNode(pkg *Package, fd *ast.FuncDecl, test, xtest bool) {
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	id := funcID(fn)
	if xtest {
		id = xtestID(id)
	}
	if _, exists := b.g.nodes[id]; exists {
		return // duplicate declaration (type errors); keep the first
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvBaseName(sig.Recv().Type())
	}
	pkgPath := pkg.Path
	pkgPath = strings.TrimSuffix(pkgPath, ".test")
	b.g.nodes[id] = &Node{
		ID:       id,
		PkgPath:  pkgPath,
		RecvName: recv,
		Name:     fn.Name(),
		Pkg:      pkg,
		Decl:     fd,
		Test:     test,
		Main:     pkg.Types != nil && pkg.Types.Name() == "main",
		Exported: fd.Name.IsExported() && (recv == "" || ast.IsExported(recv)),
	}
}

// collectTypes gathers the interface-dispatch candidates: every named
// non-interface type declared in a loaded unit or in a module package those
// units import (the importable universes cross-package call sites see).
func (b *graphBuilder) collectTypes(pkgs []*Package) {
	seen := map[*types.TypeName]bool{}
	var visit func(tp *types.Package, module string)
	visit = func(tp *types.Package, module string) {
		if tp == nil {
			return
		}
		scope := tp.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || seen[tn] {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			seen[tn] = true
			b.candidates = append(b.candidates, tn)
		}
		for _, imp := range tp.Imports() {
			if imp.Path() == module || strings.HasPrefix(imp.Path(), module+"/") {
				visit(imp, module)
			}
		}
	}
	for _, pkg := range pkgs {
		visit(pkg.Types, pkg.Module)
	}
	sort.Slice(b.candidates, func(i, j int) bool {
		a, c := b.candidates[i], b.candidates[j]
		ap, cp := "", ""
		if a.Pkg() != nil {
			ap = a.Pkg().Path()
		}
		if c.Pkg() != nil {
			cp = c.Pkg().Path()
		}
		if ap != cp {
			return ap < cp
		}
		return a.Name() < c.Name()
	})
}

// walkBody records the node's outgoing edges and facts.
func (b *graphBuilder) walkBody(n *Node) {
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	xtest := strings.HasSuffix(n.Pkg.Path, ".test")
	// calleeIdents tracks identifiers consumed as the function position of
	// a call, so the reference pass below only sees value uses.
	calleeIdents := map[*ast.Ident]bool{}

	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			b.handleCall(n, info, xtest, nd, calleeIdents)
		case *ast.GoStmt:
			b.goroutineFact(n, info, nd)
		case *ast.DeferStmt:
			if callsRecover(info, nd.Call) {
				n.Recovers = true
			}
		case *ast.BlockStmt:
			for _, esc := range mapEscapes(info, nd) {
				n.Nondet = append(n.Nondet, Fact{Pos: esc.pos, What: esc.what()})
			}
		}
		return true
	})

	// Reference pass: module functions used as values.
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		b.addEdge(n, fn, xtest, id.Pos(), EdgeRef)
		return true
	})
}

// handleCall resolves one call expression into edges and facts.
func (b *graphBuilder) handleCall(n *Node, info *types.Info, xtest bool, call *ast.CallExpr, calleeIdents map[*ast.Ident]bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		calleeIdents[fun] = true
		obj := info.Uses[fun]
		if obj == types.Universe.Lookup("panic") {
			n.Panics = append(n.Panics, call.Pos())
			return
		}
		if fn, ok := obj.(*types.Func); ok {
			b.addEdge(n, fn, xtest, call.Pos(), EdgeCall)
			b.nondetCall(n, fn, call.Pos())
		}
	case *ast.SelectorExpr:
		calleeIdents[fun.Sel] = true
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		if sel, selOK := info.Selections[fun]; selOK && sel.Kind() == types.MethodVal {
			if iface, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				b.addIfaceEdges(n, fn, iface, call.Pos())
				return
			}
		}
		b.addEdge(n, fn, xtest, call.Pos(), EdgeCall)
		b.nondetCall(n, fn, call.Pos())
	}
	// Indirect calls through function values are covered conservatively by
	// the EdgeRef reference pass.
}

// addEdge links n to the module function fn (no-op for functions outside
// the loaded units: stdlib, or packages not covered by the load patterns).
func (b *graphBuilder) addEdge(n *Node, fn *types.Func, xtest bool, pos token.Pos, kind EdgeKind) {
	id := funcID(fn)
	// Within an external-test unit, objects belonging to the unit's own
	// check are the test package's declarations; the package under test is
	// reached through its importable universe and keeps the plain ID.
	if xtest && fn.Pkg() != nil && fn.Pkg() == n.Pkg.Types {
		id = xtestID(id)
	}
	callee := b.g.nodes[id]
	if callee == nil || callee == n {
		return
	}
	n.Out = append(n.Out, Edge{Callee: callee, Pos: pos, Kind: kind})
}

// addIfaceEdges links n to every module implementation of the called
// interface method, in sorted candidate order.
func (b *graphBuilder) addIfaceEdges(n *Node, m *types.Func, iface *types.Interface, pos token.Pos) {
	ids, cached := b.implCache[m]
	if !cached {
		seen := map[string]bool{}
		for _, tn := range b.candidates {
			t := tn.Type()
			impl := t
			if !types.Implements(t, iface) {
				pt := types.NewPointer(t)
				if !types.Implements(pt, iface) {
					continue
				}
				impl = pt
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, tn.Pkg(), m.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			id := funcID(fn)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		b.implCache[m] = ids
	}
	for _, id := range ids {
		callee := b.g.nodes[id]
		if callee == nil || callee == n {
			continue
		}
		n.Out = append(n.Out, Edge{Callee: callee, Pos: pos, Kind: EdgeIface})
	}
}

// nondetCall records a fact when the callee is one of the process-global
// nondeterminism sources. Seeded generators (rand.New(rand.NewSource(s)))
// are deterministic given their seed and are deliberately not sources; only
// the package-level math/rand functions backed by the global generator
// taint a path.
func (b *graphBuilder) nondetCall(n *Node, fn *types.Func, pos token.Pos) {
	if fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return // methods (e.g. *rand.Rand) are seed-deterministic
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			n.Nondet = append(n.Nondet, Fact{Pos: pos, What: "time." + name + " (wall clock)"})
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(name, "New") {
			n.Nondet = append(n.Nondet, Fact{Pos: pos, What: fn.Pkg().Path() + "." + name + " (process-global RNG)"})
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			n.Nondet = append(n.Nondet, Fact{Pos: pos, What: "os." + name + " (environment read)"})
		}
	}
}

// goroutineFact flags `go func() {...}()` statements whose closure writes
// shared state without per-index slotting: a plain assignment, increment or
// channel send targeting a variable declared outside the closure. Writes to
// x[i] are per-slot and order-independent (the fold order is the indexing
// order, not goroutine scheduling), which is exactly the ordered-replay
// shape the parallel phases use. Named-function goroutines are covered by
// their own node's facts through the call edge.
func (b *graphBuilder) goroutineFact(n *Node, info *types.Info, g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	offending := false
	shared := func(e ast.Expr) bool {
		if _, isIndex := ast.Unparen(e).(*ast.IndexExpr); isIndex {
			return false // per-slot write
		}
		obj := rootObject(info, e)
		if obj == nil {
			return true // unresolvable target: assume shared
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if offending {
			return false
		}
		switch s := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent && id.Name == "_" {
					continue
				}
				if shared(lhs) {
					offending = true
				}
			}
		case *ast.IncDecStmt:
			if shared(s.X) {
				offending = true
			}
		case *ast.SendStmt:
			if shared(s.Chan) {
				offending = true
			}
		}
		return true
	})
	if offending {
		n.Nondet = append(n.Nondet, Fact{Pos: g.Pos(), What: "goroutine fan-out writes shared state without per-index slots"})
	}
}

// callsRecover reports whether the deferred call is recover() itself or a
// function literal whose body calls recover.
func callsRecover(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("recover") {
		return true
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("recover") {
			found = true
		}
		return !found
	})
	return found
}
