package lint

import (
	"strings"
	"testing"
)

// --- lockorder ---

func TestLockOrderFlagsABBAInversion(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var a, b sync.Mutex
func AB() {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
}
func BA() {
	b.Lock()
	defer b.Unlock()
	a.Lock()
	defer a.Unlock()
}`)
	diags := expect(t, pkg, LockOrder{}, 2)
	for _, d := range diags {
		if !strings.Contains(d.Message, "lock order inversion") || !strings.Contains(d.Message, "cycle: dime.a -> dime.b") {
			t.Errorf("want inversion with cycle members, got: %s", d.Message)
		}
	}
}

func TestLockOrderCleanOnConsistentOrder(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var a, b sync.Mutex
func AB() {
	a.Lock()
	defer a.Unlock()
	b.Lock()
	defer b.Unlock()
}
func AlsoAB() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}`)
	expect(t, pkg, LockOrder{}, 0)
}

func TestLockOrderFlagsDirectReacquisition(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Twice() {
	mu.Lock()
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}`)
	diags := expect(t, pkg, LockOrder{}, 1)
	if !strings.Contains(diags[0].Message, "self-deadlock") || !strings.Contains(diags[0].Message, "dime.mu is Locked while dime.Twice already holds it") {
		t.Errorf("want direct self-deadlock, got: %s", diags[0].Message)
	}
}

func TestLockOrderFlagsReacquisitionThroughCallChain(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Outer() {
	mu.Lock()
	defer mu.Unlock()
	helper()
}
func helper() {
	mu.Lock()
	defer mu.Unlock()
}`)
	diags := expect(t, pkg, LockOrder{}, 1)
	msg := diags[0].Message
	if !strings.Contains(msg, "via the call to dime.helper") || !strings.Contains(msg, "chain:") {
		t.Errorf("want interprocedural re-acquisition with chain, got: %s", msg)
	}
}

func TestLockOrderFlagsReadToWriteUpgrade(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.RWMutex
func Upgrade() {
	mu.RLock()
	defer mu.RUnlock()
	mu.Lock()
	defer mu.Unlock()
}`)
	diags := expect(t, pkg, LockOrder{}, 1)
	if !strings.Contains(diags[0].Message, "read-to-write upgrade") {
		t.Errorf("want upgrade finding, got: %s", diags[0].Message)
	}
}

func TestLockOrderSuppressedByIgnore(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Twice() {
	mu.Lock()
	//lint:ignore lockorder intentional for the test
	mu.Lock()
	mu.Unlock()
	mu.Unlock()
}`)
	expect(t, pkg, LockOrder{}, 0)
}

// --- heldcall ---

func TestHeldCallFlagsSleepUnderLock(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import (
	"sync"
	"time"
)
var mu sync.Mutex
func Slow() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond)
}`)
	diags := expect(t, pkg, HeldCall{}, 1)
	if !strings.Contains(diags[0].Message, "time.Sleep while dime.Slow holds dime.mu") {
		t.Errorf("want sleep-under-lock, got: %s", diags[0].Message)
	}
}

func TestHeldCallCleanWhenLockReleasedFirst(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import (
	"sync"
	"time"
)
var mu sync.Mutex
func Quick() {
	mu.Lock()
	mu.Unlock()
	time.Sleep(time.Millisecond)
}`)
	expect(t, pkg, HeldCall{}, 0)
}

func TestHeldCallFlagsChannelSendUnderLock(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Send(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1
}`)
	diags := expect(t, pkg, HeldCall{}, 1)
	if !strings.Contains(diags[0].Message, "channel send outside a select with default") {
		t.Errorf("want channel-send finding, got: %s", diags[0].Message)
	}
}

func TestHeldCallCleanOnSelectWithDefault(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func TrySend(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}`)
	expect(t, pkg, HeldCall{}, 0)
}

func TestHeldCallFlagsBlockingCallee(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
var wg sync.WaitGroup
func Flush() {
	mu.Lock()
	defer mu.Unlock()
	drain()
}
func drain() {
	wg.Wait()
}`)
	diags := expect(t, pkg, HeldCall{}, 1)
	msg := diags[0].Message
	if !strings.Contains(msg, "call to dime.drain may block") || !strings.Contains(msg, "sync.WaitGroup.Wait") {
		t.Errorf("want blocking-callee with cause, got: %s", msg)
	}
}

// --- goleak ---

func TestGoLeakFlagsUncancellableLoop(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
func Serve() {
	go func() {
		for {
			step()
		}
	}()
}
func step() {}`)
	diags := expect(t, pkg, GoLeak{}, 1)
	if !strings.Contains(diags[0].Message, "no cancellation path") || !strings.Contains(diags[0].Message, "dime.Serve") {
		t.Errorf("want uncancellable-loop finding, got: %s", diags[0].Message)
	}
}

func TestGoLeakCleanOnQuitChannel(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
func Serve(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
			step()
		}
	}()
}
func step() {}`)
	expect(t, pkg, GoLeak{}, 0)
}

func TestGoLeakCleanWhenUnreachableFromEntries(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
func spin() {
	go func() {
		for {
		}
	}()
}`)
	// spin is unexported and uncalled: not reachable from the serving roots.
	expect(t, pkg, GoLeak{}, 0)
}

func TestGoLeakFlagsNamedGoCallee(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
func Serve() {
	go pump()
}
func pump() {
	for {
	}
}`)
	expect(t, pkg, GoLeak{}, 1)
}

// --- ctxflow ---

func TestCtxFlowFlagsBackgroundOnReachablePath(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "context"
func Handle() {
	fetch(context.Background())
}
func fetch(ctx context.Context) { _ = ctx }`)
	diags := expect(t, pkg, CtxFlow{}, 1)
	if !strings.Contains(diags[0].Message, "context.Background() in dime.Handle discards the caller's context") {
		t.Errorf("want background-drop finding, got: %s", diags[0].Message)
	}
}

func TestCtxFlowFlagsUnusedCtxParam(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import (
	"context"
	"time"
)
func Wait(ctx context.Context) {
	time.Sleep(time.Millisecond)
}`)
	diags := expect(t, pkg, CtxFlow{}, 1)
	if !strings.Contains(diags[0].Message, `parameter "ctx" in dime.Wait is received but never used`) {
		t.Errorf("want unused-ctx finding, got: %s", diags[0].Message)
	}
}

func TestCtxFlowCleanWhenCtxThreaded(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "context"
func Handle(ctx context.Context) {
	fetch(ctx)
}
func fetch(ctx context.Context) { _ = ctx }`)
	expect(t, pkg, CtxFlow{}, 0)
}

func TestCtxFlowCleanOnUnreachableBackground(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "context"
func scratch() context.Context {
	return context.Background()
}`)
	// scratch is unexported and uncalled: Background here is not on any
	// request path.
	expect(t, pkg, CtxFlow{}, 0)
}

func TestCtxFlowSuppressedByIgnore(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "context"
func Handle() {
	//lint:ignore ctxflow detached span lifetime is deliberate here
	fetch(context.Background())
}
func fetch(ctx context.Context) { _ = ctx }`)
	expect(t, pkg, CtxFlow{}, 0)
}
