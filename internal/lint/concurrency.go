package lint

import (
	"go/ast"
	"go/types"
)

// Concurrency is the mutex-copy/goroutine-capture analyzer guarding the
// fan-out code paths (internal/core/batch.go and friends). It flags
//
//   - function parameters, results and receivers whose type is a struct
//     containing a sync.Mutex / RWMutex / WaitGroup / Once / Cond by value
//     (copying one silently forks the lock state), and
//   - `go func() { ... }()` statements whose closure captures an enclosing
//     loop variable instead of receiving it as an argument. Go ≥ 1.22 makes
//     loop variables per-iteration, but fan-out code in this repo passes
//     indexes explicitly so the data flow is auditable and the code stays
//     correct under earlier toolchains.
type Concurrency struct{}

// Name implements Analyzer.
func (Concurrency) Name() string { return "mutex-copy" }

// Doc implements Analyzer.
func (Concurrency) Doc() string {
	return "sync primitives passed by value, and goroutine closures capturing loop variables"
}

// Run implements Analyzer.
func (c Concurrency) Run(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				c.checkSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				c.checkSignature(pass, nil, n.Type)
			}
			return true
		})
		c.checkGoCaptures(pass, f)
	}
}

// checkSignature flags by-value lock-carrying params, results and receivers.
func (c Concurrency) checkSignature(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	for _, list := range lists {
		if list == nil {
			continue
		}
		for _, field := range list.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if name := lockIn(t, map[types.Type]bool{}); name != "" {
				pass.Reportf(field.Type.Pos(), "%s passed by value copies its %s; use a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)), name)
			}
		}
	}
}

// lockIn returns the name of a sync primitive held by value inside t
// (recursively through struct fields), or "".
func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if name := lockIn(st.Field(i).Type(), seen); name != "" {
			return name
		}
	}
	return ""
}

// checkGoCaptures flags `go` closures that use an enclosing loop variable.
func (c Concurrency) checkGoCaptures(pass *Pass, f *ast.File) {
	// loopVars maps each loop-variable object to true while its loop is on
	// the traversal stack; a manual stack walk keeps the scoping exact.
	var walk func(n ast.Node, loopVars map[types.Object]bool)
	walk = func(n ast.Node, loopVars map[types.Object]bool) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			inner := extendLoopVars(pass, loopVars, n.Key, n.Value)
			walkChildren(n.Body, func(ch ast.Node) { walk(ch, inner) })
			return
		case *ast.ForStmt:
			var idents []ast.Expr
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				idents = init.Lhs
			}
			inner := extendLoopVars(pass, loopVars, idents...)
			walkChildren(n.Body, func(ch ast.Node) { walk(ch, inner) })
			if n.Cond != nil {
				walk(n.Cond, loopVars)
			}
			return
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && len(loopVars) > 0 {
				c.reportCaptures(pass, n, lit, loopVars)
			}
			// Arguments evaluate in the spawning goroutine; only the closure
			// body is a capture hazard.
			for _, arg := range n.Call.Args {
				walk(arg, loopVars)
			}
			return
		}
		walkChildren(n, func(ch ast.Node) { walk(ch, loopVars) })
	}
	walk(f, map[types.Object]bool{})
}

// reportCaptures reports each loop variable the closure body references.
func (c Concurrency) reportCaptures(pass *Pass, g *ast.GoStmt, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj != nil && loopVars[obj] && !reported[obj] {
			reported[obj] = true
			pass.Reportf(id.Pos(), "goroutine closure captures loop variable %q; pass it as an argument instead", id.Name)
		}
		return true
	})
}

// extendLoopVars returns loopVars plus the objects defined by the given
// loop-header expressions.
func extendLoopVars(pass *Pass, loopVars map[types.Object]bool, exprs ...ast.Expr) map[types.Object]bool {
	inner := make(map[types.Object]bool, len(loopVars)+len(exprs))
	for k := range loopVars {
		inner[k] = true
	}
	for _, e := range exprs {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				inner[obj] = true
			}
		}
	}
	return inner
}

// walkChildren visits the direct children of n.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	if n == nil {
		return
	}
	first := true
	ast.Inspect(n, func(ch ast.Node) bool {
		if first {
			first = false
			return true
		}
		if ch != nil {
			visit(ch)
		}
		return false
	})
}
