package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fixture type-checks one in-memory source file as a module package and
// returns it as a lint unit. path controls package-scoped analyzer behavior
// (e.g. mapiter-determinism only fires in result-producing packages);
// filename controls test-file exemptions.
func fixture(t *testing.T, path, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	pkg := &Package{
		Path:   path,
		Module: "dime",
		Fset:   fset,
		Files:  []*ast.File{f},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, fset, pkg.Files, pkg.Info)
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	return pkg
}

// expect runs the analyzer and asserts the diagnostic count, returning the
// diagnostics for further checks.
func expect(t *testing.T, pkg *Package, a Analyzer, want int) []Diagnostic {
	t.Helper()
	diags := Run([]*Package{pkg}, []Analyzer{a})
	if len(diags) != want {
		t.Fatalf("%s: got %d diagnostics, want %d:\n%v", a.Name(), len(diags), want, diags)
	}
	return diags
}

func TestMapIterFlagsUnsortedAppend(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func emit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	diags := expect(t, pkg, MapIter{}, 1)
	if !strings.Contains(diags[0].Message, `"out"`) {
		t.Errorf("message should name the slice: %s", diags[0].Message)
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("finding at line %d, want 4", diags[0].Pos.Line)
	}
}

func TestMapIterAllowsSortedAppendAndPerKeyWrites(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
import "sort"
func emit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
func grow(m map[string][]int) {
	for k := range m {
		m[k] = append(m[k], 0)
	}
}`)
	expect(t, pkg, MapIter{}, 0)
}

func TestMapIterIgnoresNonResultPackages(t *testing.T) {
	pkg := fixture(t, "dime/internal/metrics", "fixture.go", `package metrics
func emit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	expect(t, pkg, MapIter{}, 0)
}

func TestFloatCmpFlagsEqualityAndThresholds(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
type pred struct{ Threshold float64 }
func eval(s float64, p pred) bool {
	if s == 0.75 {
		return true
	}
	return s >= p.Threshold
}`)
	diags := expect(t, pkg, FloatCmp{}, 2)
	if !strings.Contains(diags[0].Message, "sim.Eq") {
		t.Errorf("equality finding should point at sim.Eq: %s", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "sim.AtLeast") {
		t.Errorf("threshold finding should point at sim.AtLeast: %s", diags[1].Message)
	}
}

func TestFloatCmpAllowsIntAndOrdinaryComparisons(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
func eval(n int, s, limit float64) bool {
	if n == 3 {
		return true
	}
	if s == 0 || limit <= 0 {
		return false // exact-zero guards are exempt
	}
	return s > limit && s < 2*limit
}`)
	expect(t, pkg, FloatCmp{}, 0)
}

func TestErrCheckFlagsDroppedModuleErrors(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
import "fmt"
func Parse(s string) (int, error) { return 0, nil }
func use() {
	Parse("x")
	fmt.Println("stdlib calls are out of scope")
}`)
	diags := expect(t, pkg, ErrCheck{}, 1)
	if !strings.Contains(diags[0].Message, "rules.Parse") {
		t.Errorf("finding should name the callee: %s", diags[0].Message)
	}
}

func TestErrCheckAllowsHandledAndExplicitlyIgnoredErrors(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
func Parse(s string) (int, error) { return 0, nil }
func use() error {
	if _, err := Parse("x"); err != nil {
		return err
	}
	_, _ = Parse("y")
	return nil
}`)
	expect(t, pkg, ErrCheck{}, 0)
}

func TestConcurrencyFlagsMutexCopyAndLoopCapture(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
import "sync"
type state struct{ mu sync.Mutex; n int }
func byValue(s state) int { return s.n }
func fanOut(jobs []int) {
	for i := range jobs {
		go func() {
			_ = jobs[i]
		}()
	}
}`)
	diags := expect(t, pkg, Concurrency{}, 2)
	if !strings.Contains(diags[0].Message, "sync.Mutex") {
		t.Errorf("copy finding should name the lock: %s", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, `"i"`) {
		t.Errorf("capture finding should name the loop variable: %s", diags[1].Message)
	}
}

func TestConcurrencyAllowsPointerAndArgumentPassing(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
import "sync"
type state struct{ mu sync.Mutex; n int }
func byPointer(s *state) int { return s.n }
func fanOut(jobs []int) {
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = jobs[i]
		}(i)
	}
	wg.Wait()
}`)
	expect(t, pkg, Concurrency{}, 0)
}

func TestPanicFreeFlagsLibraryPanics(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
func Load(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}`)
	diags := expect(t, pkg, PanicFree{}, 1)
	if !strings.Contains(diags[0].Message, "Load") {
		t.Errorf("finding should name the function: %s", diags[0].Message)
	}
}

func TestPanicFreeAllowsMustConstructorsAndTests(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
func MustLoad(s string) int {
	check := func() {
		if s == "" {
			panic("empty")
		}
	}
	check()
	return len(s)
}`)
	expect(t, pkg, PanicFree{}, 0)

	pkg = fixture(t, "dime/internal/rules", "fixture_test.go", `package rules
func helper(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}`)
	expect(t, pkg, PanicFree{}, 0)
}

func TestIgnoreDirectiveSuppressesFinding(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
func eval(s float64) bool {
	return s == 0.5 //lint:ignore float-threshold quantiles are copied, not recomputed
}
func evalAbove(s float64) bool {
	//lint:ignore all epsilon would change documented semantics here
	return s == 1
}`)
	expect(t, pkg, FloatCmp{}, 0)
}

func TestIgnoreDirectiveScopedToAnalyzerAndLine(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
func eval(s float64) bool {
	return s == 0.5 //lint:ignore mapiter-determinism wrong analyzer name
}
func evalNext(s float64) bool {
	return s == 1
}`)
	expect(t, pkg, FloatCmp{}, 2)
}

func TestLoadResolvesModulePackages(t *testing.T) {
	pkgs, err := Load(".", []string{"./internal/sim", "./internal/lint"})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: unexpected type errors: %v", p.Path, p.TypeErrors)
		}
	}
	simPkg := byPath["dime/internal/sim"]
	if simPkg == nil {
		t.Fatalf("missing dime/internal/sim in %v", pkgs)
	}
	if simPkg.Module != "dime" {
		t.Errorf("module = %q, want dime", simPkg.Module)
	}
	// internal/lint imports go/types etc. and internal/sim has in-package
	// tests; both must resolve through the stdlib source importer.
	if byPath["dime/internal/lint"] == nil {
		t.Error("missing dime/internal/lint")
	}
}

func TestMalformedIgnoreDirectiveIsItselfAFinding(t *testing.T) {
	pkg := fixture(t, "dime/internal/rules", "fixture.go", `package rules
//lint:ignore float-threshold
func eval() {}`)
	diags := Run([]*Package{pkg}, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("want one malformed-directive diagnostic, got %v", diags)
	}
}
