package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline records accepted findings so CI fails only on new ones. Matching
// is a multiset over (module-relative file, analyzer, message) — line
// numbers are deliberately excluded so unrelated edits that shift a finding
// do not invalidate the baseline, while a *second* instance of a recorded
// finding in the same file still fails.
type Baseline struct {
	// Version is the format version, currently 1.
	Version int `json:"version"`
	// Findings holds the accepted findings, sorted by (file, analyzer,
	// message).
	Findings []BaselineFinding `json:"findings"`
}

// BaselineFinding is one accepted diagnostic shape.
type BaselineFinding struct {
	// File is the module-relative slash path of the file.
	File string `json:"file"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message is the diagnostic message.
	Message string `json:"message"`
	// Count is how many identical findings are accepted (defaults to 1 when
	// absent from the JSON).
	Count int `json:"count,omitempty"`
}

// baselineKey is the matching identity of a finding.
type baselineKey struct {
	file, analyzer, message string
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want 1)", path, b.Version)
	}
	return &b, nil
}

// Write saves the baseline as indented JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NewBaseline records the diagnostics as a baseline, relativizing file paths
// against dir (the module root).
func NewBaseline(diags []Diagnostic, dir string) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[diagKey(d, dir)]++
	}
	b := &Baseline{Version: 1, Findings: make([]BaselineFinding, 0, len(counts))}
	for k, n := range counts {
		f := BaselineFinding{File: k.file, Analyzer: k.analyzer, Message: k.message}
		if n > 1 {
			f.Count = n
		}
		b.Findings = append(b.Findings, f)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Apply splits diagnostics into fresh findings (not covered by the baseline,
// in input order) and stale baseline entries (accepted findings that no
// longer occur — candidates for removal). Paths are relativized against dir
// before matching.
func (b *Baseline) Apply(diags []Diagnostic, dir string) (fresh []Diagnostic, stale []BaselineFinding) {
	budget := map[baselineKey]int{}
	for _, f := range b.Findings {
		n := f.Count
		if n <= 0 {
			n = 1
		}
		budget[baselineKey{f.File, f.Analyzer, f.Message}] += n
	}
	for _, d := range diags {
		k := diagKey(d, dir)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, f := range b.Findings {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if budget[k] > 0 {
			stale = append(stale, f)
			budget[k] = 0 // report a multi-count entry once
		}
	}
	return fresh, stale
}

// diagKey computes the baseline identity of a diagnostic.
func diagKey(d Diagnostic, dir string) baselineKey {
	return baselineKey{relPath(d.Pos.Filename, dir), d.Analyzer, d.Message}
}

// relPath renders path relative to dir with forward slashes, falling back to
// the input when it is not under dir.
func relPath(path, dir string) string {
	if dir != "" {
		if rel, err := filepath.Rel(dir, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}
