package lint

import (
	"os"
	"strings"
	"testing"
)

// allocFixtureFiles is a module whose hot path (Discover → scan/emit)
// exercises every alloclint classification, with a cold function and a
// test-only function that must stay unreported.
var allocFixtureFiles = map[string]string{
	"go.mod": "module allocfix\n\ngo 1.22\n",
	"hot.go": `package allocfix

import (
	"fmt"
	"strings"
)

type item struct{ name string }

// Discover is the hot entry point.
func Discover(labels []string) []string {
	out := scan(labels)
	emit(out)
	return out
}

func scan(labels []string) []string {
	var out []string // no preallocation evidence
	seen := make(map[string]bool, len(labels)) // make: sized, still a site
	for _, l := range labels {
		if seen[l] {
			continue
		}
		seen[l] = true
		b := []byte(l)        // conv in a loop
		out = append(out, string(b)) // append without evidence + conv
	}
	return out
}

func emit(out []string) {
	buf := make([]string, 0, len(out))
	for _, l := range out {
		buf = append(buf, fmt.Sprintf("%d", len(l))) // format + boxing in loop
		defer fmt.Println(l)                         // defer in loop
	}
	it := &item{name: strings.Join(buf, ",")} // composite + format at depth 0
	use(func() string { return it.name })     // closure capturing a local
	p := new(item)                            // new
	_ = p
}

func use(f func() string) { _ = f() }

// cold is unreachable from Discover: none of its sites may be reported.
func cold() []int {
	xs := []int{1, 2, 3}
	return append(xs, 4)
}
`,
	"hot_test.go": `package allocfix

import "testing"

func TestDiscover(t *testing.T) {
	got := Discover([]string{"a", "b"})
	if len(got) != 2 {
		t.Fatal(got)
	}
	_ = cold()
}
`,
}

// TestAnalyzeAllocsClassifications checks every classification fires on the
// fixture hot path and that cold and test code stay silent.
func TestAnalyzeAllocsClassifications(t *testing.T) {
	pkgs := loadFixtureModule(t, allocFixtureFiles)
	g := BuildCallGraph(pkgs)
	sites := AnalyzeAllocs(g, rootEntry)

	byKind := map[AllocKind][]AllocSite{}
	for _, s := range sites {
		byKind[s.Kind] = append(byKind[s.Kind], s)
		if strings.Contains(s.Func, "cold") {
			t.Errorf("cold function reported: %+v", s)
		}
		if strings.HasSuffix(s.Pos.Filename, "_test.go") {
			t.Errorf("test file reported: %+v", s)
		}
	}
	for _, kind := range []AllocKind{
		AllocComposite, AllocMake, AllocNew, AllocAppend, AllocConv,
		AllocFormat, AllocBox, AllocClosure, AllocDeferLoop,
	} {
		if len(byKind[kind]) == 0 {
			t.Errorf("no %s site found; all sites: %+v", kind, sites)
		}
	}

	// Loop-depth and weight spot checks: the in-loop conversion ranks above
	// the depth-0 composite literal in the same reachability ring.
	for _, s := range byKind[AllocConv] {
		if s.LoopDepth != 1 {
			t.Errorf("conv site at loop depth %d, want 1: %+v", s.LoopDepth, s)
		}
	}
	for _, s := range byKind[AllocComposite] {
		if s.LoopDepth != 0 {
			t.Errorf("composite site at loop depth %d, want 0: %+v", s.LoopDepth, s)
		}
	}
	if len(byKind[AllocConv]) > 0 && len(byKind[AllocComposite]) > 0 {
		if byKind[AllocConv][0].Weight <= byKind[AllocComposite][0].Weight {
			t.Errorf("in-loop conv weight %d not above depth-0 composite weight %d",
				byKind[AllocConv][0].Weight, byKind[AllocComposite][0].Weight)
		}
	}

	// Ranking is weight-descending and deterministic.
	for i := 1; i < len(sites); i++ {
		if sites[i].Weight > sites[i-1].Weight {
			t.Errorf("sites not weight-sorted at %d: %d after %d", i, sites[i].Weight, sites[i-1].Weight)
		}
	}

	// Messages are budget-stable: function + loop depth, no line numbers.
	for _, s := range sites {
		if !strings.Contains(s.Message, "loop depth") || !strings.Contains(s.Message, s.Func) {
			t.Errorf("message missing function/loop depth: %q", s.Message)
		}
	}
}

// TestAnalyzeAllocsPreallocEvidence checks that sized-make and reslice
// evidence suppresses the append classification.
func TestAnalyzeAllocsPreallocEvidence(t *testing.T) {
	pkgs := loadFixtureModule(t, map[string]string{
		"go.mod": "module allocfix\n\ngo 1.22\n",
		"lib.go": `package allocfix

func Discover(xs []int) []int {
	buf := make([]int, 0, len(xs))
	for _, x := range xs {
		buf = append(buf, x) // evidence: sized make
	}
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, x*2) // evidence: reslice reuse
	}
	var bad []int
	for _, x := range xs {
		bad = append(bad, x) // no evidence
	}
	return append(buf, bad...)
}
`,
	})
	sites := AnalyzeAllocs(BuildCallGraph(pkgs), rootEntry)
	var appends []AllocSite
	for _, s := range sites {
		if s.Kind == AllocAppend {
			appends = append(appends, s)
		}
	}
	if len(appends) != 1 {
		t.Fatalf("want 1 append site (only bad lacks evidence), got %d: %+v", len(appends), appends)
	}
	if appends[0].LoopDepth != 1 {
		t.Errorf("append site at loop depth %d, want the bad append at depth 1", appends[0].LoopDepth)
	}
}

// TestAnalyzeAllocsErrorPathFormat checks that formatting calls inside error
// handling are not reported.
func TestAnalyzeAllocsErrorPathFormat(t *testing.T) {
	pkgs := loadFixtureModule(t, map[string]string{
		"go.mod": "module allocfix\n\ngo 1.22\n",
		"lib.go": `package allocfix

import (
	"fmt"
	"strconv"
)

func Discover(s string) (string, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return "", fmt.Errorf("bad input %s: %w", fmt.Sprintf("%q", s), err)
	}
	return fmt.Sprintf("%d", n), nil
}
`,
	})
	sites := AnalyzeAllocs(BuildCallGraph(pkgs), rootEntry)
	var formats []AllocSite
	for _, s := range sites {
		if s.Kind == AllocFormat {
			formats = append(formats, s)
		}
	}
	if len(formats) != 1 {
		t.Fatalf("want 1 non-error-path format site, got %d: %+v", len(formats), formats)
	}
	if formats[0].Pos.Line != 13 {
		t.Errorf("format site at line %d, want the success-path Sprintf on line 13", formats[0].Pos.Line)
	}
}

// TestAllocLintBudgetable runs the analyzer through lint.Run and checks the
// diagnostics round-trip through a baseline (the alloc.budget.json format).
func TestAllocLintBudgetable(t *testing.T) {
	pkgs := loadFixtureModule(t, allocFixtureFiles)
	diags := Run(pkgs, []Analyzer{AllocLint{Entries: rootEntry}})
	if len(diags) == 0 {
		t.Fatal("no diagnostics from AllocLint over the alloc fixture")
	}
	dir := t.TempDir()
	b := NewBaseline(diags, dir)
	path := dir + "/alloc.budget.json"
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := rb.Apply(diags, dir)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("budget round-trip: %d fresh, %d stale, want 0/0", len(fresh), len(stale))
	}
}

// TestAllocLintHotEntryPointsMatchDerivation keeps DefaultHotEntryPoints in
// sync with DeriveHotEntryPoints over the real module, mirroring the
// resultpkgs drift test.
func TestAllocLintHotEntryPointsMatchDerivation(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(cwd, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := DeriveHotEntryPoints(BuildCallGraph(pkgs))
	if len(got) != len(DefaultHotEntryPoints) {
		t.Fatalf("derived %d entry points, DefaultHotEntryPoints lists %d:\nderived: %v\nlisted:  %v",
			len(got), len(DefaultHotEntryPoints), got, DefaultHotEntryPoints)
	}
	for i := range got {
		if got[i] != DefaultHotEntryPoints[i] {
			t.Errorf("entry %d: derived %+v, listed %+v", i, got[i], DefaultHotEntryPoints[i])
		}
	}
}
