package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements alloclint, the hot-path allocation-site analyzer. It
// reuses the module call graph: every function reachable from the hot entry
// points (DefaultHotEntryPoints, derived from DefaultEntryPoints — see
// DeriveHotEntryPoints) is scanned for allocation-shaped expressions, each
// site is classified and weighted by syntactic loop depth × reachability
// proximity, and the sites surface two ways:
//
//   - as ranked AllocSites (AnalyzeAllocs) for cmd/dimelint's -alloc-report;
//   - as position-independent diagnostics (AllocLint) matched against the
//     checked-in alloc.budget.json, so `make check` fails when a hot-path
//     allocation site is *added* — a static perf-regression gate.
//
// The analysis is syntactic and deliberately over-approximate: a composite
// literal that escape analysis would keep on the stack still counts, because
// the budget tracks allocation *sites*, not runtime behavior. What matters is
// that the classification is deterministic and stable under unrelated edits
// (messages carry the function name and loop depth, never line numbers).

// HotPackages lists the module-relative packages whose internals form the
// measured DIME/DIME+ hot path — the positive/negative phase loops and the
// kernels they drive. It is the one hand-maintained input of the hot-path
// derivation; the entry-point list itself is derived (DeriveHotEntryPoints)
// and drift-tested against DefaultHotEntryPoints.
var HotPackages = []string{
	"internal/core",
	"internal/partition",
	"internal/sim",
	"internal/signature",
}

// AllocKind classifies one allocation-shaped expression.
type AllocKind string

// The allocation classifications alloclint reports.
const (
	// AllocComposite is a composite literal (&T{...}, []T{...}, map{...}).
	AllocComposite AllocKind = "composite"
	// AllocMake is a make call.
	AllocMake AllocKind = "make"
	// AllocNew is a new call.
	AllocNew AllocKind = "new"
	// AllocAppend is an append whose base slice shows no preallocation
	// evidence (no make-with-size or reslice of a reused buffer in the same
	// function).
	AllocAppend AllocKind = "append"
	// AllocConv is a string<->[]byte (or []rune) conversion.
	AllocConv AllocKind = "conv"
	// AllocFormat is a fmt.Sprint* or strings.Join call in a non-error path.
	AllocFormat AllocKind = "format"
	// AllocBox is interface boxing of a concrete non-pointer value inside a
	// loop (depth-0 boxing is dominated by the callee's own sites).
	AllocBox AllocKind = "box"
	// AllocClosure is a function literal capturing enclosing locals.
	AllocClosure AllocKind = "closure"
	// AllocDeferLoop is a defer inside a loop (one _defer record per
	// iteration).
	AllocDeferLoop AllocKind = "defer-loop"
)

// AllocSite is one classified allocation site on the hot path.
type AllocSite struct {
	// Pos locates the site.
	Pos token.Position
	// pos is the raw position in the module FileSet, for Reportf.
	pos token.Pos
	// Kind classifies the allocation.
	Kind AllocKind
	// Func is the containing function's display name
	// ("internal/core.plusMarkPartition").
	Func string
	// LoopDepth is the syntactic loop nesting depth at the site (0 = not in
	// a loop; loops outside an enclosing function literal still count).
	LoopDepth int
	// Dist is the BFS distance (call-graph hops) from the nearest hot entry
	// point to the containing function.
	Dist int
	// Entry is the display name of the hot entry point whose BFS tree
	// reached the function.
	Entry string
	// Weight ranks the site: (1 + 2·LoopDepth) · max(1, 8−Dist). Loop depth
	// multiplies per-op cost; proximity to an entry approximates how often
	// the surrounding function runs per operation.
	Weight int
	// Message is the budget-stable diagnostic text (no positions, no
	// weights — only kind, function and loop depth).
	Message string
}

// allocWeight computes the ranking weight of a site.
func allocWeight(loopDepth, dist int) int {
	prox := 8 - dist
	if prox < 1 {
		prox = 1
	}
	return (1 + 2*loopDepth) * prox
}

// AnalyzeAllocs scans every non-test, non-main function reachable from the
// entry points (nil means DefaultHotEntryPoints) and returns the classified
// allocation sites ranked by weight (descending), position-tiebroken. The
// result is deterministic for a given module.
func AnalyzeAllocs(g *CallGraph, entries []EntryPoint) []AllocSite {
	if entries == nil {
		entries = DefaultHotEntryPoints
	}
	roots := entryNodes(g, entries)
	visited, parent := reachableFrom(roots)
	ids := make([]string, 0, len(visited))
	for id := range visited {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sites []AllocSite
	for _, id := range ids {
		n := visited[id]
		if n.Test || n.Main || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		dist := distOf(n, parent)
		entry := rootOf(n, parent).String()
		for _, raw := range classifyAllocs(n) {
			sites = append(sites, AllocSite{
				Pos:       n.Pkg.Fset.Position(raw.pos),
				pos:       raw.pos,
				Kind:      raw.kind,
				Func:      n.String(),
				LoopDepth: raw.depth,
				Dist:      dist,
				Entry:     entry,
				Weight:    allocWeight(raw.depth, dist),
				Message:   allocMessage(raw, n.String()),
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Kind < b.Kind
	})
	return sites
}

// allocMessage renders the budget-stable diagnostic text of a site. It must
// not contain positions, distances or weights: the budget matches on
// (file, analyzer, message) multisets and has to survive unrelated edits and
// call-graph refactors that shift lines or BFS distances.
func allocMessage(raw rawAllocSite, fn string) string {
	return fmt.Sprintf("%s in hot-path function %s (loop depth %d); hoist it, reuse a buffer, or record it in the alloc budget",
		raw.desc, fn, raw.depth)
}

// distOf counts the BFS hops from the entry that reached n.
func distOf(n *Node, parent map[string]*Node) int {
	d := 0
	for hop := n; parent[hop.ID] != nil; hop = parent[hop.ID] {
		d++
	}
	return d
}

// rawAllocSite is one classified site before graph context is attached.
type rawAllocSite struct {
	pos   token.Pos
	kind  AllocKind
	desc  string
	depth int
}

// classifyAllocs walks one function body and returns its allocation-shaped
// expressions in source order.
func classifyAllocs(n *Node) []rawAllocSite {
	info := n.Pkg.Info
	body := n.Decl.Body
	w := &allocWalker{
		info:      info,
		declPos:   n.Decl.Pos(),
		declEnd:   n.Decl.End(),
		loopSpans: collectLoopSpans(body),
		errSpans:  collectErrorSpans(info, body),
		prealloc:  collectPreallocEvidence(info, body),
	}
	// Parent tracking: ast.Inspect signals post-order with nil.
	var stack []ast.Node
	ast.Inspect(body, func(nd ast.Node) bool {
		if nd == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		w.visit(nd, stack)
		stack = append(stack, nd)
		return true
	})
	sort.Slice(w.sites, func(i, j int) bool { return w.sites[i].pos < w.sites[j].pos })
	return w.sites
}

// span is a half-open source interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

// allocWalker carries one function's classification state.
type allocWalker struct {
	info             *types.Info
	declPos, declEnd token.Pos
	loopSpans        []span
	errSpans         []span
	prealloc         map[types.Object]bool
	sites            []rawAllocSite
}

// depthAt counts the loop bodies containing pos.
func (w *allocWalker) depthAt(pos token.Pos) int {
	d := 0
	for _, s := range w.loopSpans {
		if s.contains(pos) {
			d++
		}
	}
	return d
}

// inErrorPath reports whether pos sits inside error-handling code (an
// err-guarded if block or the arguments of fmt.Errorf / errors.New).
func (w *allocWalker) inErrorPath(pos token.Pos) bool {
	for _, s := range w.errSpans {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

func (w *allocWalker) add(pos token.Pos, kind AllocKind, desc string) {
	w.sites = append(w.sites, rawAllocSite{pos: pos, kind: kind, desc: desc, depth: w.depthAt(pos)})
}

// visit classifies one AST node. stack holds the ancestors (outermost first).
func (w *allocWalker) visit(nd ast.Node, stack []ast.Node) {
	switch nd := nd.(type) {
	case *ast.CompositeLit:
		// Only the outermost literal of a nested value allocates once; inner
		// literals are stored into the outer one's memory.
		if len(stack) > 0 {
			switch stack[len(stack)-1].(type) {
			case *ast.CompositeLit, *ast.KeyValueExpr, *ast.ArrayType:
				return
			}
		}
		w.add(nd.Pos(), AllocComposite, "composite literal allocation")
	case *ast.CallExpr:
		w.visitCall(nd)
	case *ast.DeferStmt:
		if w.depthAt(nd.Pos()) >= 1 {
			w.add(nd.Pos(), AllocDeferLoop, "defer inside a loop")
		}
	case *ast.FuncLit:
		if w.captures(nd) {
			w.add(nd.Pos(), AllocClosure, "closure capturing locals")
		}
	}
}

// visitCall classifies call expressions: builtin allocators, conversions,
// formatting helpers and interface boxing.
func (w *allocWalker) visitCall(call *ast.CallExpr) {
	// Conversions: T(x) where the call position is a type.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isStringBytesConv(tv.Type, w.info.TypeOf(call.Args[0])) {
			w.add(call.Pos(), AllocConv, "string/[]byte conversion allocation")
		}
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch w.info.Uses[fun] {
		case types.Universe.Lookup("make"):
			w.add(call.Pos(), AllocMake, "make allocation")
			return
		case types.Universe.Lookup("new"):
			w.add(call.Pos(), AllocNew, "new allocation")
			return
		case types.Universe.Lookup("append"):
			w.visitAppend(call)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := w.info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			path, name := fn.Pkg().Path(), fn.Name()
			isFormat := path == "fmt" && (name == "Sprintf" || name == "Sprint" || name == "Sprintln") ||
				path == "strings" && name == "Join"
			if isFormat && !w.inErrorPath(call.Pos()) {
				w.add(call.Pos(), AllocFormat, path+"."+name+" in a non-error path")
				return
			}
		}
	}
	w.visitBoxing(call)
}

// visitAppend flags appends without preallocation evidence: the base slice's
// root identifier was never assigned a sized make or a reslice (buf[:0]-style
// reuse) in this function. Non-identifier bases (indexed or field slices)
// carry no evidence by construction.
func (w *allocWalker) visitAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
		if obj := w.info.ObjectOf(id); obj != nil && w.prealloc[obj] {
			return
		}
	}
	w.add(call.Pos(), AllocAppend, "append without preallocation evidence")
}

// visitBoxing flags concrete non-pointer values passed to interface
// parameters inside loops. Depth-0 boxing is deliberately not reported: its
// cost is dominated by whatever the called function does.
func (w *allocWalker) visitBoxing(call *ast.CallExpr) {
	if w.depthAt(call.Pos()) < 1 {
		return
	}
	sig, ok := w.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // a ...slice pass-through does not box per element
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := w.info.Types[arg]
		if !ok || tv.Value != nil || tv.Type == nil {
			continue // constants and untyped values intern or fold
		}
		at := tv.Type
		if types.IsInterface(at) || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Info()&types.IsUntyped != 0 {
			continue
		}
		w.add(arg.Pos(), AllocBox, "interface boxing of a concrete value in a loop")
	}
}

// captures reports whether the literal references a variable declared in the
// enclosing function but outside the literal itself.
func (w *allocWalker) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		id, ok := nd.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		p := v.Pos()
		if p >= w.declPos && p < w.declEnd && !(p >= lit.Pos() && p < lit.End()) {
			found = true
		}
		return true
	})
	return found
}

// collectLoopSpans gathers the body spans of every for/range statement.
func collectLoopSpans(body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.ForStmt:
			spans = append(spans, span{nd.Body.Pos(), nd.Body.End()})
		case *ast.RangeStmt:
			spans = append(spans, span{nd.Body.Pos(), nd.Body.End()})
		}
		return true
	})
	return spans
}

// collectErrorSpans gathers the error-path regions: if statements whose
// condition reads an error-typed variable, and the argument lists of
// fmt.Errorf / errors.New calls.
func collectErrorSpans(info *types.Info, body *ast.BlockStmt) []span {
	errType := types.Universe.Lookup("error").Type()
	var spans []span
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.IfStmt:
			condErr := false
			ast.Inspect(nd.Cond, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if t := info.TypeOf(id); t != nil && types.Identical(t, errType) {
						condErr = true
					}
				}
				return !condErr
			})
			if condErr {
				spans = append(spans, span{nd.Pos(), nd.End()})
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(nd.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					p, name := fn.Pkg().Path(), fn.Name()
					if p == "fmt" && name == "Errorf" || p == "errors" && name == "New" {
						spans = append(spans, span{nd.Lparen, nd.End()})
					}
				}
			}
		}
		return true
	})
	return spans
}

// collectPreallocEvidence returns the slice variables that show
// preallocation evidence somewhere in the function: assigned a make with an
// explicit size or capacity, or assigned a slice expression (the buf[:0]
// reuse idiom and subslice views).
func collectPreallocEvidence(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	evidence := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if fn, ok := ast.Unparen(r.Fun).(*ast.Ident); ok &&
				info.Uses[fn] == types.Universe.Lookup("make") && len(r.Args) >= 2 {
				evidence[obj] = true
			}
		case *ast.SliceExpr:
			evidence[obj] = true
		}
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		if as, ok := nd.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i := range as.Lhs {
				record(as.Lhs[i], as.Rhs[i])
			}
		}
		return true
	})
	return evidence
}

// isStringBytesConv reports a string <-> []byte/[]rune conversion in either
// direction.
func isStringBytesConv(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return isStringType(to) && isByteOrRuneSlice(from) ||
		isByteOrRuneSlice(to) && isStringType(from)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// DeriveHotEntryPoints computes the hot-path roots from DefaultEntryPoints
// and HotPackages: every result entry point that (transitively) reaches a
// hot package, plus a package-wide "*" entry for each hot package the result
// roots reach (the phase internals are exported within the module and
// callable directly). DefaultHotEntryPoints materializes this derivation and
// TestAllocLintHotEntryPointsMatchDerivation keeps the two in sync, so the
// list cannot drift by hand-editing.
func DeriveHotEntryPoints(g *CallGraph) []EntryPoint {
	hotSet := map[string]bool{}
	for _, p := range HotPackages {
		hotSet[p] = true
	}
	relPkg := func(path string) string { return strings.TrimPrefix(path, g.Module+"/") }

	reachedHot := map[string]bool{}
	visited, _ := reachableFrom(entryNodes(g, DefaultEntryPoints))
	for _, n := range visited {
		if rel := relPkg(n.PkgPath); hotSet[rel] {
			reachedHot[rel] = true
		}
	}

	var out []EntryPoint
	for _, ep := range DefaultEntryPoints {
		if hotSet[ep.Pkg] {
			continue // subsumed by the package-wide entry below
		}
		epVisited, _ := reachableFrom(entryNodes(g, []EntryPoint{ep}))
		reaches := false
		for _, n := range epVisited {
			if hotSet[relPkg(n.PkgPath)] {
				reaches = true
				break
			}
		}
		if reaches {
			out = append(out, ep)
		}
	}
	for _, p := range HotPackages {
		if reachedHot[p] {
			out = append(out, EntryPoint{Pkg: p, Name: "*"})
		}
	}
	return out
}

// DefaultHotEntryPoints is the materialized output of DeriveHotEntryPoints
// over the module: the result entry points that reach the hot packages, plus
// the hot packages' own exported surface (phase internals). Drift against
// the derivation fails TestAllocLintHotEntryPointsMatchDerivation.
var DefaultHotEntryPoints = []EntryPoint{
	{Pkg: "", Name: "Discover"},
	{Pkg: "", Name: "DiscoverBasic"},
	{Pkg: "", Name: "DiscoverAll"},
	{Pkg: "", Name: "DiscoverAllStats"},
	{Pkg: "", Name: "GenerateRules"},
	{Pkg: "", Name: "NewSession"},
	{Pkg: "", Name: "Profile"},
	// RankBySeparability is deliberately absent: it never reaches a hot
	// package (it ranks rules over precomputed per-rule results).
	{Pkg: "internal/rulegen", Name: "*"},
	{Pkg: "internal/difftest", Name: "*"},
	{Pkg: "internal/core", Name: "*"},
	{Pkg: "internal/partition", Name: "*"},
	{Pkg: "internal/sim", Name: "*"},
	{Pkg: "internal/signature", Name: "*"},
}

// AllocLint is the alloclint analyzer: hot-path allocation sites as budgeted
// diagnostics. Sites are classified by AnalyzeAllocs; the diagnostics carry
// only the classification, containing function and loop depth, so the
// alloc.budget.json multiset stays valid across unrelated line shifts.
type AllocLint struct {
	// Entries holds the hot-path roots; nil means DefaultHotEntryPoints.
	Entries []EntryPoint
}

// Name implements Analyzer.
func (AllocLint) Name() string { return "alloclint" }

// Doc implements Analyzer.
func (AllocLint) Doc() string {
	return "allocation-shaped expression (composite/make/new/append/conversion/boxing/closure/defer-in-loop) in a function reachable from the hot entry points; gate against alloc.budget.json"
}

// Run implements Analyzer; alloclint is interprocedural, see RunModule.
func (AllocLint) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (a AllocLint) RunModule(mp *ModulePass) {
	for _, site := range AnalyzeAllocs(mp.Graph, a.Entries) {
		mp.Reportf(site.pos, "%s", site.Message)
	}
}
