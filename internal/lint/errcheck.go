package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is the errcheck-lite analyzer: it flags calls to this module's
// own error-returning functions (rules.Parse, entity.NewEntity, the readers
// and writers behind dime's IO surface, ...) whose error result is silently
// dropped — a bare expression statement, or a `go` / `defer` of such a
// call. Assigning the error to `_` is the explicit, visible opt-out and is
// not flagged. Standard-library calls are out of scope: the module's own
// contracts are what DIME's correctness rests on.
type ErrCheck struct{}

// Name implements Analyzer.
func (ErrCheck) Name() string { return "errcheck-lite" }

// Doc implements Analyzer.
func (ErrCheck) Doc() string {
	return "dropped error results from this module's own functions"
}

// Run implements Analyzer.
func (ErrCheck) Run(pass *Pass) {
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = stmt.Call
			case *ast.DeferStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !pass.InModule(fn) {
				return true
			}
			if _, ok := errorResult(fn); ok {
				pass.Reportf(call.Pos(), "error result of %s.%s dropped; handle it or assign to _ explicitly", fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
}

// calleeFunc resolves the called function object, looking through method
// values and package selectors. Returns nil for builtins, type conversions
// and indirect calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// errorResult reports whether fn returns an error and at which result index.
func errorResult(fn *types.Func) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return i, true
		}
	}
	return 0, false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
