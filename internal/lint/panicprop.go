package lint

import (
	"strings"
)

// PanicProp is the panicprop analyzer: it lifts the per-function
// panic-in-library rule (panicfree) to call-graph reachability. An exported
// library function or method is flagged when a builtin panic in some callee
// is reachable from it through the call graph, outside the two sanctioned
// conventions: the panicking path runs under a deferred recover, or it goes
// through a MustX-named function (whose name is the documented
// panic-on-error contract). Direct panics in the flagged function itself are
// panicfree's per-function finding and are not repeated here.
//
// A //lint:ignore panic-in-library suppression on a panic site silences the
// direct finding but does not stop propagation: callers of that function
// still surface the reachability unless they are themselves suppressed or
// behind a recover/MustX boundary.
type PanicProp struct{}

// Name implements Analyzer.
func (PanicProp) Name() string { return "panicprop" }

// Doc implements Analyzer.
func (PanicProp) Doc() string {
	return "exported API from which a panic is transitively reachable outside recover/MustX conventions"
}

// Run implements Analyzer; panicprop is interprocedural, see RunModule.
func (PanicProp) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (PanicProp) RunModule(mp *ModulePass) {
	nodes := mp.Graph.Nodes()

	// canPanic[n]: a panic can escape out of a call to n. Computed as a
	// monotone fixpoint so cycles converge: absorbers (MustX names, deferred
	// recover) never escape a panic; otherwise a direct panic or any
	// escaping callee makes n escape.
	canPanic := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if canPanic[n.ID] || isPanicAbsorber(n) {
				continue
			}
			escaped := len(n.Panics) > 0
			for _, e := range n.Out {
				if canPanic[e.Callee.ID] {
					escaped = true
					break
				}
			}
			if escaped {
				canPanic[n.ID] = true
				changed = true
			}
		}
	}

	for _, n := range nodes {
		if !n.Exported || n.Test || n.Main || isPanicAbsorber(n) {
			continue
		}
		for _, e := range n.Out {
			if !canPanic[e.Callee.ID] {
				continue
			}
			// Point at the function declaration, not the call site: the
			// finding is about n's exported contract.
			mp.Reportf(n.Decl.Name.Pos(), "exported %s can reach panic via %s (chain: %s); return an error or absorb the panic behind recover/MustX",
				n.String(), e.Callee.String(), panicChain(n, e.Callee, canPanic))
			break
		}
	}
}

// isPanicAbsorber reports whether panics never escape a call to n: a
// deferred recover catches them, or the MustX name documents the panic as
// the function's contract.
func isPanicAbsorber(n *Node) bool {
	return n.Recovers || strings.HasPrefix(n.Name, "Must")
}

// panicChain renders a deterministic sample path from via to a direct panic
// site, following the first canPanic edge at each hop (edges are in source
// order, so the path is stable across runs).
func panicChain(from, via *Node, canPanic map[string]bool) string {
	names := []string{from.String()}
	seen := map[string]bool{from.ID: true}
	for n := via; n != nil && !seen[n.ID]; {
		seen[n.ID] = true
		names = append(names, n.String())
		if len(n.Panics) > 0 {
			break
		}
		var next *Node
		for _, e := range n.Out {
			if canPanic[e.Callee.ID] && !seen[e.Callee.ID] {
				next = e.Callee
				break
			}
		}
		n = next
	}
	return strings.Join(names, " -> ")
}
