package lint

import (
	"strings"
	"testing"
)

// The fixtures below exercise the //lint:ignore directive's edge cases:
// single-line block comments, a directive as the first line of a file,
// the diagnostic for a reasonless directive, and a directive scoped to one
// analyzer on a line where a second analyzer also fires.

func TestIgnoreBlockCommentTrailing(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func emit(m map[string]int) []string {
	var out []string
	for k := range m { /*lint:ignore mapiter-determinism fixture: order-insensitive consumer*/
		out = append(out, k)
	}
	return out
}`)
	expect(t, pkg, MapIter{}, 0)
}

func TestIgnoreBlockCommentStandalone(t *testing.T) {
	// A block-comment directive alone on its line applies to the next line,
	// exactly like the line-comment form.
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func emit(m map[string]int) []string {
	var out []string
	/*lint:ignore mapiter-determinism fixture: order-insensitive consumer*/
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	expect(t, pkg, MapIter{}, 0)
}

func TestIgnoreOnFirstLineOfFile(t *testing.T) {
	// A directive as the file's first line (before the package clause) must
	// parse, bind to line 2, and not leak onto findings further down.
	pkg := fixture(t, "dime/internal/core", "fixture.go", `//lint:ignore mapiter-determinism fixture: binds to the package clause, not the loop
package core
func emit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	diags := expect(t, pkg, MapIter{}, 1)
	if diags[0].Pos.Line != 5 {
		t.Errorf("finding at line %d, want 5 (directive must not reach it)", diags[0].Pos.Line)
	}
}

func TestIgnoreWithoutReasonIsADiagnosticAtTheDirective(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func emit(m map[string]int) []string {
	var out []string
	//lint:ignore mapiter-determinism
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	diags := expect(t, pkg, MapIter{}, 2)
	if diags[0].Analyzer != "lint" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("want malformed-directive diagnostic first, got %v", diags[0])
	}
	if diags[0].Pos.Line != 4 || diags[0].Pos.Column != 2 {
		t.Errorf("malformed directive reported at %d:%d, want 4:2 (the directive itself)",
			diags[0].Pos.Line, diags[0].Pos.Column)
	}
	// And crucially the reasonless directive suppresses nothing.
	if diags[1].Analyzer != (MapIter{}).Name() || diags[1].Pos.Line != 5 {
		t.Errorf("map-range finding should survive, got %v", diags[1])
	}
}

func TestIgnoreScopedToOneAnalyzerLeavesOthersFiring(t *testing.T) {
	// One source line triggering two analyzers: the float comparison and the
	// map range sit on the same line, the directive names only one of them.
	src := `package core
func emit(m map[string]int, x float64) []string {
	var out []string
	//lint:ignore float-threshold fixture: bit-exact sentinel comparison
	if x == 0.5 { for k := range m { out = append(out, k) } }
	return out
}`
	pkg := fixture(t, "dime/internal/core", "fixture.go", src)
	diags := Run([]*Package{pkg}, []Analyzer{MapIter{}, FloatCmp{}})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want only the mapiter one: %v", len(diags), diags)
	}
	if diags[0].Analyzer != (MapIter{}).Name() || diags[0].Pos.Line != 5 {
		t.Errorf("surviving finding = %v, want mapiter-determinism at line 5", diags[0])
	}

	// Widening the directive to "all" silences both.
	pkg = fixture(t, "dime/internal/core", "fixture.go", strings.Replace(src, "float-threshold fixture", "all fixture", 1))
	if diags := Run([]*Package{pkg}, []Analyzer{MapIter{}, FloatCmp{}}); len(diags) != 0 {
		t.Errorf("all-scoped directive should silence both analyzers, got %v", diags)
	}
}
