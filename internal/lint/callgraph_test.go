package lint

import (
	"strings"
	"testing"
)

// edgeIDs collects the callee IDs of a node's edges of one kind, in order.
func edgeIDs(n *Node, kind EdgeKind) []string {
	var out []string
	for _, e := range n.Out {
		if e.Kind == kind {
			out = append(out, e.Callee.ID)
		}
	}
	return out
}

func TestCallGraphStaticEdgesAndFacts(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
import "time"
func Top() int64 { return step() }
func step() int64 {
	if time.Now().IsZero() {
		panic("impossible")
	}
	return time.Now().UnixNano()
}
type S struct{}
func (s *S) Go() int64 { return step() }`)
	g := BuildCallGraph([]*Package{pkg})

	top := g.Node("dime/internal/core.Top")
	step := g.Node("dime/internal/core.step")
	method := g.Node("dime/internal/core.S.Go")
	if top == nil || step == nil || method == nil {
		t.Fatalf("missing nodes, have %v", g.Nodes())
	}
	if got := edgeIDs(top, EdgeCall); len(got) != 1 || got[0] != step.ID {
		t.Errorf("Top edges = %v, want [%s]", got, step.ID)
	}
	if got := edgeIDs(method, EdgeCall); len(got) != 1 || got[0] != step.ID {
		t.Errorf("S.Go edges = %v, want [%s]", got, step.ID)
	}
	if len(step.Panics) != 1 {
		t.Errorf("step.Panics = %v, want one site", step.Panics)
	}
	if len(step.Nondet) != 2 || !strings.Contains(step.Nondet[0].What, "time.Now") {
		t.Errorf("step.Nondet = %+v, want two time.Now facts", step.Nondet)
	}
	if method.RecvName != "S" || !method.Exported {
		t.Errorf("S.Go node = %+v, want receiver S, exported", method)
	}
	if step.String() != "internal/core.step" {
		t.Errorf("step.String() = %q", step.String())
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
type Scorer interface{ Score() int }
type fast struct{}
func (fast) Score() int { return 1 }
type slow struct{}
func (s *slow) Score() int { return 2 }
func Total(s Scorer) int { return s.Score() }`)
	g := BuildCallGraph([]*Package{pkg})

	total := g.Node("dime/internal/core.Total")
	if total == nil {
		t.Fatal("missing Total node")
	}
	got := edgeIDs(total, EdgeIface)
	want := []string{"dime/internal/core.fast.Score", "dime/internal/core.slow.Score"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("interface dispatch edges = %v, want %v", got, want)
	}
}

func TestCallGraphRefEdgeForFunctionValues(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func helper() {}
func apply(f func()) { f() }
func Run() { apply(helper) }`)
	g := BuildCallGraph([]*Package{pkg})

	run := g.Node("dime/internal/core.Run")
	if run == nil {
		t.Fatal("missing Run node")
	}
	if got := edgeIDs(run, EdgeRef); len(got) != 1 || got[0] != "dime/internal/core.helper" {
		t.Errorf("ref edges = %v, want [dime/internal/core.helper]", got)
	}
	if got := edgeIDs(run, EdgeCall); len(got) != 1 || got[0] != "dime/internal/core.apply" {
		t.Errorf("call edges = %v, want [dime/internal/core.apply]", got)
	}
}

func TestCallGraphRecoverAndGoroutineFacts(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func Guarded() {
	defer func() { recover() }()
}
func FanOut(n int) []int {
	out := make([]int, n)
	total := 0
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			out[i] = i      // per-index slot: fine
			total += i      // shared write: flagged
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	_ = total
	return out
}`)
	g := BuildCallGraph([]*Package{pkg})

	if n := g.Node("dime/internal/core.Guarded"); n == nil || !n.Recovers {
		t.Errorf("Guarded should have Recovers set, got %+v", n)
	}
	fan := g.Node("dime/internal/core.FanOut")
	if fan == nil || len(fan.Nondet) != 1 || !strings.Contains(fan.Nondet[0].What, "goroutine fan-out") {
		t.Errorf("FanOut.Nondet = %+v, want one goroutine fan-out fact", fan.Nondet)
	}
}

func TestCallGraphMapEscapeFact(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	g := BuildCallGraph([]*Package{pkg})
	n := g.Node("dime/internal/core.Keys")
	if n == nil || len(n.Nondet) != 1 || !strings.Contains(n.Nondet[0].What, `map iteration order escapes into slice "out"`) {
		t.Errorf("Keys.Nondet = %+v, want one map-escape fact", n.Nondet)
	}
}
