package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultResultPackages lists the package-path suffixes whose emission order
// reaches users: the scrollbar levels in internal/core, rule evaluation and
// serialization in internal/rules, profiling output in internal/analysis,
// the entity and signature packages whose ID lists feed those paths, the
// observability exports in internal/obs (trace JSON, /metrics text), which
// must be byte-stable so traces and metric dumps diff cleanly across runs,
// and the differential harness in internal/difftest, whose comparisons and
// failure messages must themselves be deterministic to make divergences
// reproducible.
var DefaultResultPackages = []string{
	"internal/core",
	"internal/rules",
	"internal/analysis",
	"internal/entity",
	"internal/signature",
	"internal/obs",
	"internal/difftest",
}

// MapIter is the mapiter-determinism analyzer: in result-producing packages
// it flags `range` over a map whose body appends to a slice or writes
// output, unless a later statement in the same block sorts the collected
// slice. Go map iteration order is random per run, so an unsorted
// map-ranged append makes the scrollbar (Level.EntityIDs and friends)
// nondeterministic across identical runs.
type MapIter struct {
	// Packages holds package-path suffixes to analyze; nil means
	// DefaultResultPackages. The module root package is always analyzed.
	Packages []string
}

// Name implements Analyzer.
func (MapIter) Name() string { return "mapiter-determinism" }

// Doc implements Analyzer.
func (MapIter) Doc() string {
	return "range over a map that appends to a slice or writes output without a following sort, in result-producing packages"
}

// Run implements Analyzer.
func (a MapIter) Run(pass *Pass) {
	pkgs := a.Packages
	if pkgs == nil {
		pkgs = DefaultResultPackages
	}
	path := strings.TrimSuffix(pass.Pkg.Path, ".test")
	match := path == pass.Pkg.Module // module root emits results too
	for _, suffix := range pkgs {
		if strings.HasSuffix(path, suffix) {
			match = true
		}
	}
	if !match {
		return
	}
	for _, f := range pass.Files() {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(pass.Info.TypeOf(rng.X)) {
					continue
				}
				a.checkRange(pass, rng, block.List[i+1:])
			}
			return true
		})
	}
}

// checkRange inspects one map-range statement. rest holds the statements
// following it in the enclosing block, where a redeeming sort may appear.
func (a MapIter) checkRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	keyObj := rangeKeyObject(pass, rng)
	appended := map[types.Object]bool{}
	writes := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && pass.Info.Uses[id] == types.Universe.Lookup("append") {
					if len(n.Lhs) > 0 {
						if indexedByKey(pass, n.Lhs[0], keyObj) {
							continue // m[k] = append(m[k], ...) is per-key, order-independent
						}
						if obj := rootObject(pass, n.Lhs[0]); obj != nil {
							appended[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isOutputCall(pass, n) {
				writes = true
			}
		}
		return true
	})
	if writes {
		pass.Reportf(rng.Pos(), "map iteration writes output in random order; collect and sort keys first")
		return
	}
	if len(appended) == 0 {
		return
	}
	for obj := range appended {
		if !sortedLater(pass, obj, rest) {
			pass.Reportf(rng.Pos(), "map iteration appends to %q in random order without a following sort; sort the slice (or range over sorted keys) before emitting results", obj.Name())
		}
	}
}

// sortedLater reports whether any statement in rest passes obj to a
// sort.* / slices.* call (directly or nested inside the statement).
func sortedLater(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(pass, arg) == obj {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// rangeKeyObject returns the object of the range statement's key variable,
// or nil.
func rangeKeyObject(pass *Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id] // `for k = range` with a pre-declared variable
}

// indexedByKey reports whether e is an index expression whose index is the
// range key (writes to m[k] are per-key and therefore order-independent).
func indexedByKey(pass *Pass, e ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && pass.Info.Uses[id] == keyObj
}

// rootObject resolves the base identifier of an expression (x, x.f, x[i],
// &x, x.f[i].g ...) to its object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isOutputCall reports calls that emit user-visible output: fmt.Print*/
// fmt.Fprint* and Write/WriteString methods.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgID, ok := sel.X.(*ast.Ident); ok && pkgID.Name == "fmt" {
		if obj, ok := pass.Info.Uses[pkgID].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
		}
	}
	return sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString"
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// Files returns the package's parsed files (helper so analyzers read
// pass.Files() uniformly).
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }
