package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultResultPackages lists the package-path suffixes whose emission order
// reaches users, so mapiter-determinism lints them. The list is no longer
// hand-curated: the resultpkgs analyzer derives the same set from the module
// call graph (packages reachable from the result-producing entry points in
// DefaultEntryPoints) and fails when this list drifts from the derivation,
// in either direction. Each entry, and why its ordering is user-visible:
//
//   - internal/core: the scrollbar levels, partitions and witnesses;
//   - internal/rules: rule evaluation and serialization order;
//   - internal/rulegen: the order of generated rules in a RuleSet;
//   - internal/analysis: profiling output;
//   - internal/entity, internal/signature, internal/partition,
//     internal/tokenize, internal/sim, internal/ontology: the ID lists,
//     token streams and similarity values feeding those paths;
//   - internal/obs: trace JSON and /metrics text, byte-stable so dumps diff
//     cleanly across runs;
//   - internal/difftest: differential comparisons and failure messages,
//     deterministic so divergences reproduce;
//   - internal/datagen, internal/presets: the seeded corpora the
//     differential harness compares over — a derivation catch the
//     hand-maintained list had missed;
//   - internal/serve: the HTTP JSON API bodies (corpus listings, scrollbar
//     levels, witness reports), whose encoding order clients see — reachable
//     from the difftest entry points via the HTTP-backed runner;
//   - internal/client, internal/fault: the resilient API client and the
//     fault injector, reachable from the difftest entry points via the
//     chaos runner — the client relays wire bodies and the injector's
//     middleware replays recorded response headers, both user-visible.
var DefaultResultPackages = []string{
	"internal/analysis",
	"internal/client",
	"internal/core",
	"internal/datagen",
	"internal/difftest",
	"internal/entity",
	"internal/fault",
	"internal/obs",
	"internal/ontology",
	"internal/partition",
	"internal/presets",
	"internal/rulegen",
	"internal/rules",
	"internal/serve",
	"internal/signature",
	"internal/sim",
	"internal/tokenize",
}

// MapIter is the mapiter-determinism analyzer: in result-producing packages
// it flags `range` over a map whose body appends to a slice or writes
// output, unless a later statement in the same block sorts the collected
// slice. Go map iteration order is random per run, so an unsorted
// map-ranged append makes the scrollbar (Level.EntityIDs and friends)
// nondeterministic across identical runs.
type MapIter struct {
	// Packages holds package-path suffixes to analyze; nil means
	// DefaultResultPackages. The module root package is always analyzed.
	Packages []string
}

// Name implements Analyzer.
func (MapIter) Name() string { return "mapiter-determinism" }

// Doc implements Analyzer.
func (MapIter) Doc() string {
	return "range over a map that appends to a slice or writes output without a following sort, in result-producing packages"
}

// Run implements Analyzer.
func (a MapIter) Run(pass *Pass) {
	pkgs := a.Packages
	if pkgs == nil {
		pkgs = DefaultResultPackages
	}
	path := strings.TrimSuffix(pass.Pkg.Path, ".test")
	match := path == pass.Pkg.Module // module root emits results too
	for _, suffix := range pkgs {
		if strings.HasSuffix(path, suffix) {
			match = true
		}
	}
	if !match {
		return
	}
	for _, f := range pass.Files() {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for _, esc := range mapEscapes(pass.Info, block) {
				if esc.output {
					pass.Reportf(esc.pos, "map iteration writes output in random order; collect and sort keys first")
				} else {
					pass.Reportf(esc.pos, "map iteration appends to %q in random order without a following sort; sort the slice (or range over sorted keys) before emitting results", esc.slice)
				}
			}
			return true
		})
	}
}

// mapEscape is one map-range statement whose iteration order escapes: into
// a slice (slice holds the appended variable's name) or into output writes
// (output true). The call graph turns these into detersafe facts; MapIter
// turns them into per-package diagnostics.
type mapEscape struct {
	pos    token.Pos
	slice  string
	output bool
}

// what renders the escape as a detersafe fact description.
func (e mapEscape) what() string {
	if e.output {
		return "map iteration order escapes into output writes"
	}
	return fmt.Sprintf("map iteration order escapes into slice %q", e.slice)
}

// mapEscapes scans the statements of one block for map ranges whose
// iteration order escapes. Only direct children of the block are
// considered, so walking every BlockStmt of a file visits each range
// exactly once; the statements following the range in the same block are
// where a redeeming sort may appear.
func mapEscapes(info *types.Info, block *ast.BlockStmt) []mapEscape {
	var escapes []mapEscape
	for i, stmt := range block.List {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(info.TypeOf(rng.X)) {
			continue
		}
		escapes = append(escapes, rangeEscapes(info, rng, block.List[i+1:])...)
	}
	return escapes
}

// rangeEscapes inspects one map-range statement. rest holds the statements
// following it in the enclosing block, where a redeeming sort may appear.
func rangeEscapes(info *types.Info, rng *ast.RangeStmt, rest []ast.Stmt) []mapEscape {
	keyObj := rangeKeyObject(info, rng)
	appended := map[types.Object]bool{}
	writes := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && info.Uses[id] == types.Universe.Lookup("append") {
					if len(n.Lhs) > 0 {
						if indexedByKey(info, n.Lhs[0], keyObj) {
							continue // m[k] = append(m[k], ...) is per-key, order-independent
						}
						if obj := rootObject(info, n.Lhs[0]); obj != nil {
							appended[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isOutputCall(info, n) {
				writes = true
			}
		}
		return true
	})
	if writes {
		return []mapEscape{{pos: rng.Pos(), output: true}}
	}
	var escapes []mapEscape
	for obj := range appended {
		if !sortedLater(info, obj, rest) {
			escapes = append(escapes, mapEscape{pos: rng.Pos(), slice: obj.Name()})
		}
	}
	// Map iteration builds `appended` in nondeterministic order; sort the
	// escapes so diagnostics and call-graph facts are byte-stable.
	sortEscapes(escapes)
	return escapes
}

func sortEscapes(escapes []mapEscape) {
	for i := 1; i < len(escapes); i++ {
		for j := i; j > 0 && escapes[j].slice < escapes[j-1].slice; j-- {
			escapes[j], escapes[j-1] = escapes[j-1], escapes[j]
		}
	}
}

// sortedLater reports whether any statement in rest passes obj to a
// sort.* / slices.* call (directly or nested inside the statement).
func sortedLater(info *types.Info, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(info, arg) == obj {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// rangeKeyObject returns the object of the range statement's key variable,
// or nil.
func rangeKeyObject(info *types.Info, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id] // `for k = range` with a pre-declared variable
}

// indexedByKey reports whether e is an index expression whose index is the
// range key (writes to m[k] are per-key and therefore order-independent).
func indexedByKey(info *types.Info, e ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ix.Index.(*ast.Ident)
	return ok && info.Uses[id] == keyObj
}

// rootObject resolves the base identifier of an expression (x, x.f, x[i],
// &x, x.f[i].g ...) to its object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isOutputCall reports calls that emit user-visible output: fmt.Print*/
// fmt.Fprint* and Write/WriteString methods.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgID, ok := sel.X.(*ast.Ident); ok && pkgID.Name == "fmt" {
		if obj, ok := info.Uses[pkgID].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			return strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
		}
	}
	return sel.Sel.Name == "Write" || sel.Sel.Name == "WriteString"
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// Files returns the package's parsed files (helper so analyzers read
// pass.Files() uniformly).
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }
