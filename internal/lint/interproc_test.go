package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureModule writes files (slash-relative paths, including go.mod)
// into a temp dir and loads the whole module as lint units.
func loadFixtureModule(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir, nil)
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture package %s has type errors: %v", p.Path, p.TypeErrors)
		}
	}
	return pkgs
}

var rootEntry = []EntryPoint{{Pkg: "", Name: "Discover"}}

func TestDeterSafeFlagsReachableWallClock(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "time"
func Discover() int64 { return tick() }
func tick() int64 { return time.Now().UnixNano() }`)
	diags := expect(t, pkg, DeterSafe{Entries: rootEntry}, 1)
	msg := diags[0].Message
	if !strings.Contains(msg, "time.Now (wall clock)") || !strings.Contains(msg, "dime.Discover -> dime.tick") {
		t.Errorf("message should name the source and chain: %s", msg)
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("finding at line %d, want 4 (the source site)", diags[0].Pos.Line)
	}
}

func TestDeterSafeDefaultEntriesCoverRootDiscover(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "os"
func Discover() string { return os.Getenv("HOME") }`)
	expect(t, pkg, DeterSafe{}, 1)
}

func TestDeterSafeCleanOnPureCode(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sort"
func Discover(xs []string) []string {
	out := append([]string(nil), xs...)
	sort.Strings(out)
	return out
}
// unreferenced from any entry point: its clock read is not a finding.
func debugStamp() int64 { return 0 }`)
	expect(t, pkg, DeterSafe{Entries: rootEntry}, 0)
}

func TestDeterSafeNotTaintedByUnreachableSource(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "time"
func Discover() int { return 1 }
func stamp() int64 { return time.Now().UnixNano() }`)
	expect(t, pkg, DeterSafe{Entries: rootEntry}, 0)
}

func TestDeterSafeTaintsThroughInterfaceDispatch(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "math/rand"
type order interface{ next() int }
type shuffled struct{}
func (shuffled) next() int { return rand.Int() }
type fixed struct{}
func (fixed) next() int { return 7 }
func Discover(o order) int { return o.next() }`)
	diags := expect(t, pkg, DeterSafe{Entries: rootEntry}, 1)
	if !strings.Contains(diags[0].Message, "process-global RNG") || !strings.Contains(diags[0].Message, "dime.shuffled.next") {
		t.Errorf("want global-RNG finding through interface dispatch, got: %s", diags[0].Message)
	}
}

func TestDeterSafeSeededRandIsNotASource(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "math/rand"
func Discover(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int()
}`)
	expect(t, pkg, DeterSafe{Entries: rootEntry}, 0)
}

func TestDeterSafeSuppressedAtSource(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "time"
func Discover() int64 { return tick() }
func tick() int64 {
	//lint:ignore detersafe fixture: timing metadata only
	return time.Now().UnixNano()
}`)
	expect(t, pkg, DeterSafe{Entries: rootEntry}, 0)
}

func TestDeterSafeHonorsMapIterSuppression(t *testing.T) {
	// A mapiter-determinism ignore asserts the order is harmless, so the
	// same site must not surface again through the call graph.
	pkg := fixture(t, "dime", "fixture.go", `package dime
func Discover(m map[string]int) []string {
	var out []string
	//lint:ignore mapiter-determinism fixture: order does not matter here
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	expect(t, pkg, DeterSafe{Entries: rootEntry}, 0)
}

func TestDeterSafeFlagsMapEscapeAndFanOut(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
func Discover(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	diags := expect(t, pkg, DeterSafe{Entries: rootEntry}, 1)
	if !strings.Contains(diags[0].Message, "map iteration order escapes") {
		t.Errorf("want map-escape finding, got: %s", diags[0].Message)
	}
}

func TestPanicPropFlagsReachablePanic(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func Outer() { inner() }
func inner() { panic("boom") }`)
	diags := expect(t, pkg, PanicProp{}, 1)
	if diags[0].Pos.Line != 2 {
		t.Errorf("finding at line %d, want 2 (the exported decl)", diags[0].Pos.Line)
	}
	if !strings.Contains(diags[0].Message, "internal/core.Outer -> internal/core.inner") {
		t.Errorf("message should show the chain: %s", diags[0].Message)
	}
}

func TestPanicPropDirectPanicIsPanicfreeTerritory(t *testing.T) {
	// A panic in the exported function itself is panicfree's per-function
	// finding; panicprop only reports reachability through calls.
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func Outer() { panic("boom") }`)
	expect(t, pkg, PanicProp{}, 0)
}

func TestPanicPropMustAndRecoverAbsorb(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func MustParse(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}
func FromMust() int { return MustParse("x") }
func Guarded() {
	defer func() { recover() }()
	inner()
}
func inner() { panic("boom") }`)
	expect(t, pkg, PanicProp{}, 0)
}

func TestPanicPropThroughInterfaceDispatch(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
type codec interface{ decode(string) int }
type strict struct{}
func (strict) decode(s string) int { panic("bad input") }
func Decode(c codec, s string) int { return c.decode(s) }`)
	diags := expect(t, pkg, PanicProp{}, 1)
	if !strings.Contains(diags[0].Message, "internal/core.strict.decode") {
		t.Errorf("want panic reached through interface dispatch, got: %s", diags[0].Message)
	}
}

func TestPanicPropTransitiveChain(t *testing.T) {
	pkg := fixture(t, "dime/internal/core", "fixture.go", `package core
func Top() { mid() }
func mid() { deep() }
func deep() { panic("boom") }`)
	diags := expect(t, pkg, PanicProp{}, 1)
	want := "internal/core.Top -> internal/core.mid -> internal/core.deep"
	if !strings.Contains(diags[0].Message, want) {
		t.Errorf("chain = %s, want %s", diags[0].Message, want)
	}
}

// fixtureModuleFiles is a three-package module: Discover reaches alpha
// (statically) and beta (through an interface), gamma is dead code.
var fixtureModuleFiles = map[string]string{
	"go.mod": "module fixturemod\n\ngo 1.22\n",
	"root.go": `package fixturemod

import (
	"fixturemod/internal/alpha"
	"fixturemod/internal/beta"
)

// Discover is the fixture's result entry point.
func Discover(n int) int {
	var s alpha.Step = alpha.Double{}
	return s.Apply(beta.Inc(n))
}
`,
	"internal/alpha/alpha.go": `package alpha

// Step is dispatched through an interface from the module root.
type Step interface{ Apply(int) int }

// Double is the only implementation.
type Double struct{}

// Apply implements Step.
func (Double) Apply(n int) int { return 2 * n }
`,
	"internal/beta/beta.go": `package beta

// Inc is called statically from the module root.
func Inc(n int) int { return n + 1 }
`,
	"internal/gamma/gamma.go": `package gamma

// Dead is referenced by nothing.
func Dead() int { return 0 }
`,
}

func TestResultPkgsDerivationAcrossPackages(t *testing.T) {
	pkgs := loadFixtureModule(t, fixtureModuleFiles)
	g := BuildCallGraph(pkgs)
	got := deriveResultPackages(g, rootEntry)
	want := []string{"internal/alpha", "internal/beta"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("derived packages = %v, want %v (alpha via interface dispatch, beta via static call, gamma dead)", got, want)
	}
}

func TestResultPkgsCleanWhenListMatches(t *testing.T) {
	pkgs := loadFixtureModule(t, fixtureModuleFiles)
	a := ResultPkgs{Entries: rootEntry, Expected: []string{"internal/alpha", "internal/beta"}}
	if diags := Run(pkgs, []Analyzer{a}); len(diags) != 0 {
		t.Errorf("want clean, got %v", diags)
	}
}

func TestResultPkgsFlagsMissingAndStaleEntries(t *testing.T) {
	pkgs := loadFixtureModule(t, fixtureModuleFiles)
	a := ResultPkgs{Entries: rootEntry, Expected: []string{"internal/beta", "internal/gamma"}}
	diags := Run(pkgs, []Analyzer{a})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `"internal/alpha" is reachable`) {
		t.Errorf("want missing-entry finding for alpha, got: %s", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, `"internal/gamma" in DefaultResultPackages is not reachable`) {
		t.Errorf("want stale-entry finding for gamma, got: %s", diags[1].Message)
	}
}

func TestResultPkgsSkipsPartialLoads(t *testing.T) {
	// With a nil Expected the analyzer validates DefaultResultPackages,
	// which is only meaningful on a whole-module load including
	// internal/lint; a fixture module must stay silent.
	pkgs := loadFixtureModule(t, fixtureModuleFiles)
	if diags := Run(pkgs, []Analyzer{ResultPkgs{}}); len(diags) != 0 {
		t.Errorf("partial load should be silent, got %v", diags)
	}
}

// TestDefaultResultPackagesMatchesDerivation is the drift regression test:
// loading the real module and deriving the result packages from the call
// graph must reproduce DefaultResultPackages exactly. A new package wired
// into the result path fails here (and in `make lint`) until registered.
func TestDefaultResultPackagesMatchesDerivation(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(cwd, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := deriveResultPackages(BuildCallGraph(pkgs), DefaultEntryPoints)
	if len(got) != len(DefaultResultPackages) {
		t.Fatalf("derived %d packages, DefaultResultPackages lists %d:\nderived: %v\nlisted:  %v",
			len(got), len(DefaultResultPackages), got, DefaultResultPackages)
	}
	for i := range got {
		if got[i] != DefaultResultPackages[i] {
			t.Errorf("entry %d: derived %q, listed %q", i, got[i], DefaultResultPackages[i])
		}
	}
}
