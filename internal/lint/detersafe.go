package lint

import (
	"sort"
	"strings"
)

// EntryPoint names a function or method the interprocedural analyzers treat
// as a result-producing root: detersafe proves nondeterminism sources are
// unreachable from it, resultpkgs derives the result-package list from its
// call-graph closure.
type EntryPoint struct {
	// Pkg is a package-path suffix ("internal/core"); "" matches the module
	// root package.
	Pkg string
	// Name matches a function ("DiscoverAll"), a method ("Session.Result"),
	// or "*" for every exported non-test function of the package.
	Name string
}

// DefaultEntryPoints lists the module's result-producing API surface. The
// list is intentionally small and curated — these are the functions whose
// outputs the paper's scrollbar semantics promise to be reproducible — and
// everything else result-related is *derived* from it by call-graph
// reachability (see ResultPkgs), not hand-maintained.
var DefaultEntryPoints = []EntryPoint{
	// Root facade: discovery, sessions, rule generation, profiling.
	{Pkg: "", Name: "Discover"},
	{Pkg: "", Name: "DiscoverBasic"},
	{Pkg: "", Name: "DiscoverAll"},
	{Pkg: "", Name: "DiscoverAllStats"},
	{Pkg: "", Name: "GenerateRules"},
	{Pkg: "", Name: "NewSession"},
	{Pkg: "", Name: "Profile"},
	{Pkg: "", Name: "RankBySeparability"},
	// Core algorithms behind the facade (callable directly in-module).
	{Pkg: "internal/core", Name: "DIME"},
	{Pkg: "internal/core", Name: "DIMEPlus"},
	{Pkg: "internal/core", Name: "DiscoverAll"},
	{Pkg: "internal/core", Name: "DiscoverAllStats"},
	{Pkg: "internal/core", Name: "NewSession"},
	{Pkg: "internal/core", Name: "Session.Add"},
	{Pkg: "internal/core", Name: "Session.Result"},
	// Rule generation emits ordered rule sets; the differential harness
	// emits comparison verdicts that must reproduce across runs.
	{Pkg: "internal/rulegen", Name: "*"},
	{Pkg: "internal/difftest", Name: "*"},
}

// matches reports whether the node is named by the entry point.
func (ep EntryPoint) matches(n *Node, module string) bool {
	if n.Test || n.Main {
		return false
	}
	if ep.Pkg == "" {
		if n.PkgPath != module {
			return false
		}
	} else if n.PkgPath != ep.Pkg && !strings.HasSuffix(n.PkgPath, "/"+ep.Pkg) {
		return false
	}
	if ep.Name == "*" {
		return n.Exported
	}
	key := n.Name
	if n.RecvName != "" {
		key = n.RecvName + "." + n.Name
	}
	return key == ep.Name
}

// entryNodes returns the graph nodes matching the entry points, sorted by ID.
func entryNodes(g *CallGraph, entries []EntryPoint) []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		for _, ep := range entries {
			if ep.matches(n, g.Module) {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// reachableFrom walks the graph forward from the entry nodes, skipping test
// declarations, and returns every visited node keyed by ID plus the
// deterministic BFS parent of each non-entry node (for sample call chains).
func reachableFrom(entries []*Node) (map[string]*Node, map[string]*Node) {
	visited := map[string]*Node{}
	parent := map[string]*Node{}
	queue := append([]*Node(nil), entries...)
	for _, n := range entries {
		visited[n.ID] = n
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if c.Test || visited[c.ID] != nil {
				continue
			}
			visited[c.ID] = c
			parent[c.ID] = n
			queue = append(queue, c)
		}
	}
	return visited, parent
}

// chainTo renders the entry-to-node call chain recorded by reachableFrom.
func chainTo(n *Node, parent map[string]*Node) string {
	var names []string
	for hop := n; hop != nil; hop = parent[hop.ID] {
		names = append(names, hop.String())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// DeterSafe is the detersafe analyzer: taint analysis proving the
// result-producing entry points cannot transitively reach a nondeterminism
// source — wall-clock reads, the process-global RNG, environment reads, map
// iteration whose order escapes into results, or goroutine fan-out that
// writes shared state without per-index slots. A finding is reported at the
// source site with the entry it taints and a sample call chain; suppressing
// it there (//lint:ignore detersafe <reason>) accepts the source for every
// entry that reaches it.
type DeterSafe struct {
	// Entries holds the result-producing roots; nil means DefaultEntryPoints.
	Entries []EntryPoint
}

// Name implements Analyzer.
func (DeterSafe) Name() string { return "detersafe" }

// Doc implements Analyzer.
func (DeterSafe) Doc() string {
	return "nondeterminism source (wall clock, global RNG, env, map-order escape, unordered goroutine fan-out) reachable from a result-producing entry point"
}

// Run implements Analyzer; detersafe is interprocedural, see RunModule.
func (DeterSafe) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (a DeterSafe) RunModule(mp *ModulePass) {
	entries := a.Entries
	if entries == nil {
		entries = DefaultEntryPoints
	}
	roots := entryNodes(mp.Graph, entries)
	visited, parent := reachableFrom(roots)
	ids := make([]string, 0, len(visited))
	for id := range visited {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := visited[id]
		for _, f := range n.Nondet {
			// A mapiter-determinism suppression at the site asserts the
			// iteration order is in fact harmless, so it clears the taint
			// too; the remaining sources have no per-package analyzer and
			// are suppressed as detersafe directly.
			if strings.HasPrefix(f.What, "map iteration") && mp.SuppressedFor(f.Pos, (MapIter{}).Name()) {
				continue
			}
			mp.Reportf(f.Pos, "%s in %s is reachable from result entry point %s; results must not depend on it (chain: %s)",
				f.What, n.String(), rootOf(n, parent).String(), chainTo(n, parent))
		}
	}
}

// rootOf follows BFS parents back to the entry node that reached n.
func rootOf(n *Node, parent map[string]*Node) *Node {
	for parent[n.ID] != nil {
		n = parent[n.ID]
	}
	return n
}
