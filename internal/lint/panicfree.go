package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree is the panic-in-library analyzer: library code must return
// errors, not panic — a panic inside Discover or a generator takes down a
// whole serving process. `panic` is allowed only inside Must*-named
// constructors (whose contract is to panic on bad static input) and in
// _test.go files.
type PanicFree struct{}

// Name implements Analyzer.
func (PanicFree) Name() string { return "panic-in-library" }

// Doc implements Analyzer.
func (PanicFree) Doc() string {
	return "panic outside Must* constructors and test files"
}

// Run implements Analyzer.
func (PanicFree) Run(pass *Pass) {
	for _, f := range pass.Files() {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, "Must") {
				continue // Must* constructors panic by contract, closures included
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" || pass.Info.Uses[id] != types.Universe.Lookup("panic") {
					return true
				}
				pass.Reportf(call.Pos(), "panic in library function %s; return an error or move the panic into a Must* constructor", fd.Name.Name)
				return true
			})
		}
	}
}
