package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FloatCmp is the float-threshold analyzer. Similarity values are float64s
// built from divisions and square roots, so exact comparison against another
// float or a rule threshold is a latent bug: a value mathematically equal to
// the threshold may sit a few ULPs away. The analyzer flags
//
//   - `==` / `!=` where either operand is a float (typed or untyped), and
//   - `>=` / `<=` where one operand is a rule threshold (a selector or
//     identifier named "Threshold"/"threshold"/"theta"/"sigma"),
//
// everywhere except internal/sim, which hosts the designated epsilon helpers
// (sim.Eq, sim.AtLeast, sim.AtMost) that such comparisons must go through.
type FloatCmp struct{}

// Name implements Analyzer.
func (FloatCmp) Name() string { return "float-threshold" }

// Doc implements Analyzer.
func (FloatCmp) Doc() string {
	return "exact ==/!= on floats, or raw >=/<= against rule thresholds, outside the sim epsilon helpers"
}

// Run implements Analyzer.
func (FloatCmp) Run(pass *Pass) {
	path := strings.TrimSuffix(pass.Pkg.Path, ".test")
	if strings.HasSuffix(path, "internal/sim") {
		return // the epsilon helpers themselves live here
	}
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.EQL, token.NEQ:
				if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
					return true // exact-zero sentinels and divide-by-zero guards are exact by nature
				}
				if isFloat(pass.Info.TypeOf(bin.X)) || isFloat(pass.Info.TypeOf(bin.Y)) {
					pass.Reportf(bin.OpPos, "exact %s on float values; use sim.Eq (epsilon %s) instead", bin.Op, "1e-9")
				}
			case token.GEQ, token.LEQ:
				if isZeroConst(pass, bin.X) || isZeroConst(pass, bin.Y) {
					return true // θ ≤ 0 style range guards, not threshold matching
				}
				if (isThresholdExpr(bin.X) || isThresholdExpr(bin.Y)) &&
					(isFloat(pass.Info.TypeOf(bin.X)) || isFloat(pass.Info.TypeOf(bin.Y))) {
					helper := "sim.AtLeast"
					if bin.Op == token.LEQ {
						helper = "sim.AtMost"
					}
					pass.Reportf(bin.OpPos, "raw %s against a rule threshold; use %s for epsilon-tolerant comparison", bin.Op, helper)
				}
			}
			return true
		})
	}
}

// isZeroConst reports whether the expression is a compile-time constant
// equal to zero (0 is exactly representable, so comparing against it is not
// an epsilon hazard).
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isThresholdExpr reports whether the expression names a rule threshold.
func isThresholdExpr(e ast.Expr) bool {
	var name string
	switch x := e.(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return false
	}
	switch name {
	case "Threshold", "threshold", "theta", "sigma":
		return true
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
