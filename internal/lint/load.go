package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one lint unit: a module package (augmented with its in-package
// test files, mirroring how `go test` compiles them together), or the
// external _test package of a directory.
type Package struct {
	// Path is the import path ("dime/internal/core"); external test packages
	// carry a ".test" suffix for display.
	Path string
	// Dir is the absolute directory.
	Dir string
	// Module is the module path from go.mod ("dime").
	Module string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files holds the parsed files, sorted by file name.
	Files []*ast.File
	// Info holds type-check results. Analyzers must tolerate missing entries:
	// a package with type errors is still linted on a best-effort basis.
	Info *types.Info
	// Types is the checked package object.
	Types *types.Package
	// TypeErrors collects type-check errors (informational; Load only fails
	// on parse errors and I/O problems).
	TypeErrors []error
}

// Load parses and type-checks every package under root (the module root or a
// subdirectory containing go.mod further up). Patterns follow a small subset
// of the go tool's syntax: "./..." loads the whole module, "./dir" or
// "./dir/..." load a directory (recursively with "/...").
//
// Mirroring the go tool's compilation model, imports resolve to the package
// built from non-test files only; the returned lint units additionally
// type-check each package together with its in-package _test.go files, and
// external _test packages as their own unit, so test code is linted too.
// Standard-library imports are type-checked from GOROOT source via
// go/importer — no toolchain invocation, no x/tools.
func Load(root string, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	dirs, err := selectDirs(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		parsed:  map[string]*dirFiles{},
		imports: map[string]*importable{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		units, err := ld.lintUnits(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// ModuleRoot returns the root directory of the module enclosing dir (the
// directory holding go.mod). Baselines relativize finding paths against it.
func ModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	return root, err
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// selectDirs expands patterns into package directories (directories holding
// at least one .go file).
func selectDirs(modRoot string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(modRoot, pat)
		}
		if !recursive {
			add(filepath.Clean(base))
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// dirFiles is the parse result of one directory, split the way the go tool
// splits compilation units.
type dirFiles struct {
	base    []*ast.File // non-test files
	inTests []*ast.File // _test.go files in the same package
	xtests  []*ast.File // _test.go files in the external _test package
}

// importable memoizes the base-only (no test files) type-check of a
// directory — the unit other packages import.
type importable struct {
	pkg      *types.Package
	err      error
	checking bool // cycle guard
}

type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	parsed  map[string]*dirFiles
	imports map[string]*importable
}

// Import implements types.Importer: module-local paths resolve to the
// base-only package built from source within the module; everything else is
// delegated to the standard-library source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
		return ld.importBase(filepath.Join(ld.modRoot, filepath.FromSlash(rel)))
	}
	return ld.std.Import(path)
}

// importBase type-checks (and memoizes) the non-test files of dir.
func (ld *loader) importBase(dir string) (*types.Package, error) {
	dir = filepath.Clean(dir)
	if imp, ok := ld.imports[dir]; ok {
		if imp.checking {
			return nil, fmt.Errorf("lint: import cycle through %s", dir)
		}
		return imp.pkg, imp.err
	}
	imp := &importable{checking: true}
	ld.imports[dir] = imp
	defer func() { imp.checking = false }()

	files, err := ld.parseDir(dir)
	if err != nil {
		imp.err = err
		return nil, err
	}
	if len(files.base) == 0 {
		imp.err = fmt.Errorf("lint: no non-test Go files in %s", dir)
		return nil, imp.err
	}
	unit := ld.check(ld.importPathFor(dir), dir, files.base)
	imp.pkg = unit.Types
	return imp.pkg, nil
}

// lintUnits builds the units linted for one directory: the package together
// with its in-package test files, and the external test package if any.
func (ld *loader) lintUnits(dir string) ([]*Package, error) {
	dir = filepath.Clean(dir)
	files, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	importPath := ld.importPathFor(dir)
	var units []*Package
	if len(files.base) > 0 {
		// Resolve the importable package first so augmented units see the
		// same dependency universe other packages import.
		if _, err := ld.importBase(dir); err != nil {
			return nil, err
		}
		units = append(units, ld.check(importPath, dir, append(append([]*ast.File{}, files.base...), files.inTests...)))
	}
	if len(files.xtests) > 0 {
		units = append(units, ld.check(importPath+".test", dir, files.xtests))
	}
	return units, nil
}

// parseDir parses every .go file of dir once, splitting base, in-package
// test and external test files.
func (ld *loader) parseDir(dir string) (*dirFiles, error) {
	if f, ok := ld.parsed[dir]; ok {
		return f, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	files := &dirFiles{}
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			files.xtests = append(files.xtests, f)
		case strings.HasSuffix(name, "_test.go"):
			files.inTests = append(files.inTests, f)
		default:
			files.base = append(files.base, f)
		}
	}
	ld.parsed[dir] = files
	return files, nil
}

func (ld *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(ld.modRoot, dir)
	if err != nil || rel == "." {
		return ld.modPath
	}
	return ld.modPath + "/" + filepath.ToSlash(rel)
}

// check type-checks one unit. Type errors are collected, not fatal: the
// analyzers run best-effort on whatever Info was produced.
func (ld *loader) check(path, dir string, files []*ast.File) *Package {
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Module: ld.modPath,
		Fset:   ld.fset,
		Files:  files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: ld,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(strings.TrimSuffix(path, ".test"), ld.fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg
}
