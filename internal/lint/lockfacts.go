package lint

// This file builds the lock-fact layer shared by the locklint analyzers
// (lockorder, heldcall, goleak, ctxflow — see locklint.go) and cmd/dimelint's
// -graph dump. For every call-graph node it extracts, stdlib-only:
//
//   - lock acquisitions and releases of sync.Mutex / sync.RWMutex values
//     (including promoted methods on embedded mutexes and `defer
//     mu.Unlock()` pairing, with the RLock/Lock distinction), keyed by the
//     receiver's declared identity — "pkg.Type.field" for field mutexes,
//     "pkg.var" for package-level ones, a per-function key for locals;
//   - direct blocking operations: channel sends/receives outside a select,
//     `select` without a default, sync.WaitGroup.Wait, time.Sleep, and a
//     curated list of network/file I/O calls;
//   - statically resolved calls to other module functions, so lock sets and
//     blocking behavior propagate interprocedurally (EdgeCall only — iface
//     and ref edges are deliberately excluded as too coarse);
//   - goroutine spawns, context.Background()/TODO() sites, and whether a
//     declared ctx parameter is actually used.
//
// A function body is split into single-goroutine *units*: the declared body
// (with immediately-invoked literals, sync.Once.Do literals and deferred
// literals inlined, defers flushed at their owning frame's exit in LIFO
// order) is the root unit; each `go func(){...}` body and each literal
// passed or stored as a value becomes its own unit. Goroutine and callback
// units are excluded from the parent's lock/blocking summary — they run on
// another goroutine (or later), so e.g. a pool task re-acquiring the mutex
// its submitter holds is not a self-deadlock.
//
// Known approximations, all documented trade-offs: the held-set walk is a
// source-order flow approximation (an early conditional Unlock+return makes
// the code after it look lock-free); interface dispatch and function values
// do not propagate lock facts; a callback invoked synchronously by its
// receiver (sort.Slice style) is not charged to the caller.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// lockMode distinguishes write (Lock) from read (RLock) acquisitions of an
// RWMutex; plain Mutexes always acquire in write mode.
type lockMode uint8

const (
	modeWrite lockMode = iota
	modeRead
)

// verb renders the acquisition verb for diagnostics.
func (m lockMode) verb() string {
	if m == modeRead {
		return "RLock"
	}
	return "Lock"
}

// evKind classifies one lock-relevant event in a function unit.
type evKind uint8

const (
	evAcquire evKind = iota
	evRelease
	evCall  // statically resolved call to another module function
	evBlock // direct blocking operation
	evGo    // goroutine spawn
)

// lockEvent is one event in a unit's execution-order approximation.
type lockEvent struct {
	kind evKind
	pos  token.Pos
	// key/mode identify the lock for evAcquire/evRelease.
	key  string
	mode lockMode
	// callee is the module target for evCall, or the named goroutine body
	// for evGo when resolvable.
	callee *Node
	// block describes the operation for evBlock.
	block string
	// lit is the spawned literal for evGo (nil for named goroutines).
	lit *ast.FuncLit
	// deferred marks events scheduled at frame exit.
	deferred bool
}

// unitKind classifies how a unit comes to run.
type unitKind uint8

const (
	unitRoot     unitKind = iota
	unitGo                // `go func(){...}` body: its own goroutine
	unitCallback          // literal passed or stored as a value: runs elsewhere
)

// funcUnit is one single-goroutine analysis unit of a declared function.
type funcUnit struct {
	node   *Node
	kind   unitKind
	lit    *ast.FuncLit // non-nil for unitGo/unitCallback
	events []lockEvent
}

// acqInfo records how a node may come to acquire a lock: directly at pos,
// or transitively through a call to next.
type acqInfo struct {
	mode lockMode
	pos  token.Pos
	next *Node
}

// blockInfo records how a node may come to block.
type blockInfo struct {
	desc string
	pos  token.Pos
	next *Node
}

// LockEdge is one lock-acquisition-order edge: To was acquired (directly at
// Pos, or transitively via a call to Via at Pos) while From was held in N.
type LockEdge struct {
	From, To           string
	FromMode, ToMode   lockMode
	N                  *Node
	Pos                token.Pos
	Via                *Node
}

// selfAcqFinding records a lock acquired while the same lock is already held
// in one unit (directly, or via a call chain when via is non-nil).
type selfAcqFinding struct {
	n          *Node
	pos        token.Pos
	key        string
	heldMode   lockMode
	againMode  lockMode
	via        *Node
}

// deferLoopFinding records a `defer mu.Unlock()` registered inside a loop:
// the release runs at function exit, so the next iteration self-deadlocks.
type deferLoopFinding struct {
	n   *Node
	pos token.Pos
	key string
}

// heldCallFinding records a blocking operation (op) or a call into a
// may-block function (callee) executed while held locks were held.
type heldCallFinding struct {
	n      *Node
	pos    token.Pos
	op     string
	callee *Node
	held   []string
}

// ctxDropFinding records a ctx parameter that is declared but never used in
// a function that does blocking or context-aware work.
type ctxDropFinding struct {
	n    *Node
	pos  token.Pos
	name string
}

// LockFacts is the module-wide lock-fact layer.
type LockFacts struct {
	module string
	graph  *CallGraph

	units      map[string][]*funcUnit // node ID → units, root unit first
	mayAcquire map[string]map[string]*acqInfo
	mayBlock   map[string]*blockInfo

	edges     []*LockEdge
	selfAcq   []selfAcqFinding
	deferLoop []deferLoopFinding
	heldCalls []heldCallFinding

	bgCalls  map[string][]Fact // context.Background()/TODO() sites per node
	wantsCtx map[string]bool   // node does blocking or context-aware work
	ctxDrops []ctxDropFinding
}

// LockFacts returns the lazily built, cached lock-fact layer for the module.
func (mp *ModulePass) LockFacts() *LockFacts {
	if mp.lockFacts == nil {
		mp.lockFacts = BuildLockFacts(mp.Graph)
	}
	return mp.lockFacts
}

// BuildLockFacts extracts the lock-fact layer from the call graph's nodes.
func BuildLockFacts(g *CallGraph) *LockFacts {
	lf := &LockFacts{
		module:     g.Module,
		graph:      g,
		units:      map[string][]*funcUnit{},
		mayAcquire: map[string]map[string]*acqInfo{},
		mayBlock:   map[string]*blockInfo{},
		bgCalls:    map[string][]Fact{},
		wantsCtx:   map[string]bool{},
	}
	for _, n := range g.Nodes() {
		c := &lockCollector{lf: lf, g: g, n: n, info: n.Pkg.Info,
			xtest: strings.HasSuffix(n.Pkg.Path, ".test")}
		root := &funcUnit{node: n, kind: unitRoot}
		c.pending = []*funcUnit{root}
		if n.Decl.Body != nil {
			// Literals discovered while walking enqueue further units.
			for i := 0; i < len(c.pending); i++ {
				u := c.pending[i]
				body := ast.Node(n.Decl.Body)
				if u.lit != nil {
					body = u.lit.Body
				}
				w := &frameWalker{c: c}
				w.walk(body, nil, 0, nil)
				u.events = w.flush()
			}
		}
		lf.units[n.ID] = c.pending
		lf.bgCalls[n.ID] = c.bg
		lf.wantsCtx[n.ID] = c.wantsCtx
	}
	lf.computeSummaries()
	lf.heldWalk()
	lf.computeCtxDrops()
	return lf
}

// lockCollector carries per-node state while extracting events.
type lockCollector struct {
	lf    *LockFacts
	g     *CallGraph
	n     *Node
	info  *types.Info
	xtest bool

	pending  []*funcUnit // work queue; index 0 is the root unit
	bg       []Fact
	wantsCtx bool
}

// addUnit enqueues a separately executed literal as its own unit.
func (c *lockCollector) addUnit(kind unitKind, lit *ast.FuncLit) {
	c.pending = append(c.pending, &funcUnit{node: c.n, kind: kind, lit: lit})
}

// frameWalker walks one frame (a declared body or an inlined literal) in
// source order; deferred groups flush at the frame's exit in LIFO order.
type frameWalker struct {
	c        *lockCollector
	events   []lockEvent
	deferred [][]lockEvent
}

// flush returns the frame's events with deferred groups appended in reverse
// registration order (Go's defer semantics), marked deferred.
func (w *frameWalker) flush() []lockEvent {
	out := w.events
	for i := len(w.deferred) - 1; i >= 0; i-- {
		for _, ev := range w.deferred[i] {
			ev.deferred = true
			out = append(out, ev)
		}
	}
	return out
}

// emit appends an event to the deferred group d, or to the frame's normal
// event stream when d is nil.
func (w *frameWalker) emit(d *[]lockEvent, ev lockEvent) {
	if d != nil {
		*d = append(*d, ev)
		return
	}
	w.events = append(w.events, ev)
}

// walk visits nd in source order. d routes events into a deferred group,
// loop counts enclosing loops in this frame, and nbc marks send/receive
// nodes that are select comm clauses (already accounted for).
func (w *frameWalker) walk(nd ast.Node, d *[]lockEvent, loop int, nbc map[ast.Node]bool) {
	if nd == nil {
		return
	}
	switch x := nd.(type) {
	case *ast.DeferStmt:
		w.handleDefer(x, d, loop, nbc)
	case *ast.GoStmt:
		w.handleGo(x, d, loop, nbc)
	case *ast.SelectStmt:
		w.handleSelect(x, d, loop, nbc)
	case *ast.ForStmt:
		w.walk(x.Init, d, loop, nbc)
		w.walk(x.Cond, d, loop+1, nbc)
		w.walk(x.Body, d, loop+1, nbc)
		w.walk(x.Post, d, loop+1, nbc)
	case *ast.RangeStmt:
		w.walk(x.X, d, loop, nbc)
		if t := w.c.info.TypeOf(x.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.emit(d, lockEvent{kind: evBlock, pos: x.Pos(), block: "receive ranging over a channel"})
			}
		}
		w.walk(x.Body, d, loop+1, nbc)
	case *ast.CallExpr:
		w.handleCall(x, d, loop, nbc)
	case *ast.FuncLit:
		w.c.addUnit(unitCallback, x)
	case *ast.SendStmt:
		if !nbc[x] {
			w.emit(d, lockEvent{kind: evBlock, pos: x.Pos(), block: "channel send outside a select with default"})
		}
		w.walk(x.Chan, d, loop, nbc)
		w.walk(x.Value, d, loop, nbc)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW && !nbc[x] {
			w.emit(d, lockEvent{kind: evBlock, pos: x.Pos(), block: "channel receive outside a select with default"})
		}
		w.walk(x.X, d, loop, nbc)
	default:
		ast.Inspect(nd, func(child ast.Node) bool {
			if child == nil || child == nd {
				return true
			}
			switch child.(type) {
			case *ast.DeferStmt, *ast.GoStmt, *ast.SelectStmt, *ast.ForStmt,
				*ast.RangeStmt, *ast.CallExpr, *ast.FuncLit, *ast.SendStmt,
				*ast.UnaryExpr:
				w.walk(child, d, loop, nbc)
				return false
			}
			return true
		})
	}
}

// handleDefer collects the deferred call's events into a new deferred group
// of the current frame. Arguments (and a deferred literal's captures) are
// evaluated at the defer statement, so they are walked in normal context.
func (w *frameWalker) handleDefer(x *ast.DeferStmt, d *[]lockEvent, loop int, nbc map[ast.Node]bool) {
	var grp []lockEvent
	if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
		sub := &frameWalker{c: w.c}
		sub.walk(lit.Body, nil, 0, nil)
		grp = sub.flush()
	} else if ev, ok := w.c.classifyCall(x.Call); ok {
		grp = append(grp, ev)
	}
	for _, f := range grp {
		if f.kind == evRelease && loop > 0 {
			w.c.lf.deferLoop = append(w.c.lf.deferLoop,
				deferLoopFinding{n: w.c.n, pos: x.Pos(), key: f.key})
		}
	}
	w.walkCallOperands(x.Call, d, loop, nbc)
	w.deferred = append(w.deferred, grp)
}

// handleGo records the spawn and routes the goroutine body into its own unit.
func (w *frameWalker) handleGo(x *ast.GoStmt, d *[]lockEvent, loop int, nbc map[ast.Node]bool) {
	ev := lockEvent{kind: evGo, pos: x.Pos()}
	if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
		ev.lit = lit
		w.c.addUnit(unitGo, lit)
	} else if fn := w.c.staticCallee(x.Call); fn != nil {
		ev.callee = w.c.resolveModuleCallee(fn)
	}
	w.emit(d, ev)
	w.walkCallOperands(x.Call, d, loop, nbc)
}

// handleSelect emits one blocking event for a default-less select and marks
// the comm-clause sends/receives as accounted for.
func (w *frameWalker) handleSelect(x *ast.SelectStmt, d *[]lockEvent, loop int, nbc map[ast.Node]bool) {
	hasDefault := false
	for _, cl := range x.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.emit(d, lockEvent{kind: evBlock, pos: x.Pos(), block: "select without a default case"})
	}
	marked := map[ast.Node]bool{}
	for k, v := range nbc {
		marked[k] = v
	}
	for _, cl := range x.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			marked[comm] = true
		case *ast.ExprStmt:
			marked[ast.Unparen(comm.X)] = true
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				marked[ast.Unparen(comm.Rhs[0])] = true
			}
		}
	}
	for _, cl := range x.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		w.walk(cc.Comm, d, loop, marked)
		for _, s := range cc.Body {
			w.walk(s, d, loop, nbc)
		}
	}
}

// handleCall classifies one call and walks its operands. Immediately
// invoked literals and sync.Once.Do literals run synchronously on this
// goroutine and are inlined; literal arguments to anything else become
// callback units.
func (w *frameWalker) handleCall(x *ast.CallExpr, d *[]lockEvent, loop int, nbc map[ast.Node]bool) {
	if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
		sub := &frameWalker{c: w.c}
		sub.walk(lit.Body, nil, 0, nil)
		for _, ev := range sub.flush() {
			ev.deferred = false
			w.emit(d, ev)
		}
		for _, a := range x.Args {
			w.walk(a, d, loop, nbc)
		}
		return
	}
	if w.c.isOnceDo(x) && len(x.Args) == 1 {
		if lit, ok := ast.Unparen(x.Args[0]).(*ast.FuncLit); ok {
			sub := &frameWalker{c: w.c}
			sub.walk(lit.Body, nil, 0, nil)
			for _, ev := range sub.flush() {
				ev.deferred = false
				w.emit(d, ev)
			}
		} else if fn := w.c.funcValue(x.Args[0]); fn != nil {
			if callee := w.c.resolveModuleCallee(fn); callee != nil {
				w.emit(d, lockEvent{kind: evCall, pos: x.Pos(), callee: callee})
			}
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			w.walk(sel.X, d, loop, nbc)
		}
		return
	}
	if ev, ok := w.c.classifyCall(x); ok {
		w.emit(d, ev)
	}
	w.walkCallOperands(x, d, loop, nbc)
}

// walkCallOperands walks a call's receiver expression and arguments;
// literal arguments become callback units via the FuncLit case in walk.
func (w *frameWalker) walkCallOperands(x *ast.CallExpr, d *[]lockEvent, loop int, nbc map[ast.Node]bool) {
	if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
		w.walk(sel.X, d, loop, nbc)
	}
	for _, a := range x.Args {
		w.walk(a, d, loop, nbc)
	}
}

// staticCallee resolves the called function object, or nil for indirect
// calls through function values.
func (c *lockCollector) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := c.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcValue resolves a function-typed expression used as a value.
func (c *lockCollector) funcValue(e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := c.info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// resolveModuleCallee maps a function object to its call-graph node, with
// the same external-test ID handling the graph builder uses.
func (c *lockCollector) resolveModuleCallee(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	id := funcID(fn)
	if c.xtest && fn.Pkg() != nil && fn.Pkg() == c.n.Pkg.Types {
		id = xtestID(id)
	}
	callee := c.g.nodes[id]
	if callee == c.n {
		return nil
	}
	return callee
}

// isOnceDo reports a (*sync.Once).Do call.
func (c *lockCollector) isOnceDo(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Do" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && recvBaseName(sig.Recv().Type()) == "Once"
}

// classifyCall turns one call into a lock, blocking or module-call event.
// It also records context.Background()/TODO() sites and whether the node
// calls anything that takes a context (for ctxflow).
func (c *lockCollector) classifyCall(call *ast.CallExpr) (lockEvent, bool) {
	if ev, ok := c.lockOp(call); ok {
		return ev, true
	}
	fn := c.staticCallee(call)
	if fn == nil {
		return lockEvent{}, false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && hasCtxParam(sig) {
		c.wantsCtx = true
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
		if name := fn.Name(); name == "Background" || name == "TODO" {
			c.bg = append(c.bg, Fact{Pos: call.Pos(), What: "context." + name + "()"})
		}
	}
	if desc, ok := blockingStdlibCall(c.info, fn, call); ok {
		return lockEvent{kind: evBlock, pos: call.Pos(), block: desc}, true
	}
	if callee := c.resolveModuleCallee(fn); callee != nil {
		return lockEvent{kind: evCall, pos: call.Pos(), callee: callee}, true
	}
	return lockEvent{}, false
}

// lockOp recognizes sync.Mutex / sync.RWMutex acquire and release calls,
// including promoted methods on embedded mutexes.
func (c *lockCollector) lockOp(call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return lockEvent{}, false
	}
	recv := recvBaseName(sig.Recv().Type())
	if recv != "Mutex" && recv != "RWMutex" {
		return lockEvent{}, false
	}
	var kind evKind
	var mode lockMode
	switch fn.Name() {
	case "Lock", "TryLock":
		kind, mode = evAcquire, modeWrite
	case "Unlock":
		kind, mode = evRelease, modeWrite
	case "RLock", "TryRLock":
		kind, mode = evAcquire, modeRead
	case "RUnlock":
		kind, mode = evRelease, modeRead
	default:
		return lockEvent{}, false
	}
	return lockEvent{kind: kind, pos: call.Pos(), key: c.lockKeyFor(sel), mode: mode}, true
}

// lockKeyFor derives the lock's stable identity from the method selector.
func (c *lockCollector) lockKeyFor(sel *ast.SelectorExpr) string {
	// Promoted method on an embedded mutex: key by the receiver's named
	// type plus the embedded field path ("pkg.T.Mutex").
	if s, ok := c.info.Selections[sel]; ok && len(s.Index()) > 1 {
		recv := s.Recv()
		if name := namedDisplay(recv, c.lf.module); name != "" {
			idx := s.Index()
			cur := recv
			var path []string
			for _, i := range idx[:len(idx)-1] {
				st, ok := derefType(cur).Underlying().(*types.Struct)
				if !ok || i >= st.NumFields() {
					path = nil
					break
				}
				f := st.Field(i)
				path = append(path, f.Name())
				cur = f.Type()
			}
			if len(path) > 0 {
				return name + "." + strings.Join(path, ".")
			}
		}
	}
	return c.keyForExpr(sel.X)
}

// keyForExpr derives a lock key from the mutex-valued receiver expression.
func (c *lockCollector) keyForExpr(e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[x]
		if obj == nil {
			obj = c.info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return relModPath(v.Pkg().Path(), c.lf.module) + "." + v.Name()
			}
			return c.n.String() + "." + v.Name() + " (local)"
		}
	case *ast.SelectorExpr:
		if v, ok := c.info.Uses[x.Sel].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				// Qualified package-level var: pkg.mu.
				return relModPath(v.Pkg().Path(), c.lf.module) + "." + v.Name()
			}
			if t := c.info.TypeOf(x.X); t != nil {
				if name := namedDisplay(t, c.lf.module); name != "" {
					return name + "." + v.Name()
				}
			}
			if v.Pkg() != nil {
				return relModPath(v.Pkg().Path(), c.lf.module) + "." + v.Name()
			}
		}
	}
	return c.n.String() + "." + types.ExprString(e) + " (expr)"
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedDisplay renders a (possibly pointer-to) named type as
// "module-relative-pkg.TypeName", or "" for unnamed types.
func namedDisplay(t types.Type, module string) string {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return relModPath(obj.Pkg().Path(), module) + "." + obj.Name()
}

// relModPath renders a package path relative to the module, matching
// Node.String's display convention.
func relModPath(path, module string) string {
	if path == module {
		return lastSegment(module)
	}
	return strings.TrimPrefix(path, module+"/")
}

// hasCtxParam reports whether the signature takes a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if named, ok := sig.Params().At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// blockingStdlibCall recognizes standard-library operations that can block:
// synchronization waits, sleeps, and a curated network/file I/O list.
// fmt.Fprint* counts only when the destination is not an in-memory buffer.
func blockingStdlibCall(info *types.Info, fn *types.Func, call *ast.CallExpr) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := recvBaseName(sig.Recv().Type())
		full := pkg + "." + recv + "." + name
		switch pkg {
		case "sync":
			if (recv == "WaitGroup" || recv == "Cond") && name == "Wait" {
				return full, true
			}
		case "io":
			switch recv {
			case "Reader", "Writer", "ReadWriter", "ReadCloser", "WriteCloser", "ReadWriteCloser":
				if name == "Read" || name == "Write" {
					return full + " (potentially blocking I/O)", true
				}
			}
		case "net":
			switch name {
			case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
				return full, true
			}
		case "net/http":
			if recv == "Client" {
				switch name {
				case "Do", "Get", "Post", "PostForm", "Head":
					return full, true
				}
			}
			if recv == "Server" {
				switch name {
				case "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS", "Shutdown":
					return full, true
				}
			}
			if recv == "ResponseWriter" && name == "Write" {
				return full + " (network write)", true
			}
		case "os":
			if recv == "File" {
				switch name {
				case "Read", "ReadAt", "Write", "WriteAt", "Sync", "ReadDir":
					return full, true
				}
			}
		case "os/exec":
			if recv == "Cmd" {
				switch name {
				case "Run", "Wait", "Output", "CombinedOutput":
					return full, true
				}
			}
		case "bufio":
			switch {
			case recv == "Writer" && (name == "Flush" || name == "Write" || name == "WriteString"),
				recv == "Reader" && (name == "Read" || name == "ReadString" || name == "ReadBytes"),
				recv == "Scanner" && name == "Scan":
				return full + " (I/O through the buffered stream)", true
			}
		}
		return "", false
	}
	switch pkg {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "WriteString":
			return "io." + name, true
		}
	case "os":
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir",
			"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "Stat", "Lstat":
			return "os." + name, true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenPacket",
			"LookupHost", "LookupAddr", "LookupIP", "LookupPort":
			return "net." + name, true
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head",
			"ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
			return "net/http." + name, true
		}
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 && !inMemoryWriter(info, call.Args[0]) {
				return "fmt." + name + " to a non-memory io.Writer", true
			}
		}
	}
	return "", false
}

// inMemoryWriter reports destinations that cannot block: bytes.Buffer and
// strings.Builder.
func inMemoryWriter(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := derefType(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// computeSummaries seeds each node's may-acquire/may-block summary from its
// root unit (goroutine and callback units run elsewhere) and propagates
// transitively over statically resolved module calls to a fixpoint.
func (lf *LockFacts) computeSummaries() {
	nodes := lf.graph.Nodes()
	for _, n := range nodes {
		acq := map[string]*acqInfo{}
		for _, ev := range lf.rootEvents(n) {
			switch ev.kind {
			case evAcquire:
				if acq[ev.key] == nil {
					acq[ev.key] = &acqInfo{mode: ev.mode, pos: ev.pos}
				}
			case evBlock:
				if lf.mayBlock[n.ID] == nil {
					lf.mayBlock[n.ID] = &blockInfo{desc: ev.block, pos: ev.pos}
				}
			}
		}
		lf.mayAcquire[n.ID] = acq
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			acq := lf.mayAcquire[n.ID]
			for _, ev := range lf.rootEvents(n) {
				if ev.kind != evCall {
					continue
				}
				for _, key := range sortedKeys(lf.mayAcquire[ev.callee.ID]) {
					if acq[key] == nil {
						ci := lf.mayAcquire[ev.callee.ID][key]
						acq[key] = &acqInfo{mode: ci.mode, pos: ev.pos, next: ev.callee}
						changed = true
					}
				}
				if lf.mayBlock[ev.callee.ID] != nil && lf.mayBlock[n.ID] == nil {
					lf.mayBlock[n.ID] = &blockInfo{pos: ev.pos, next: ev.callee}
					changed = true
				}
			}
		}
	}
}

// rootEvents returns the node's root-unit events (same-goroutine behavior).
func (lf *LockFacts) rootEvents(n *Node) []lockEvent {
	us := lf.units[n.ID]
	if len(us) == 0 {
		return nil
	}
	return us[0].events
}

// sortedKeys returns the map's keys in sorted order for determinism.
func sortedKeys(m map[string]*acqInfo) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// heldWalk runs the held-set approximation over every unit of every
// non-test node, producing lock-order edges, self-acquisition findings and
// blocking-under-lock findings.
func (lf *LockFacts) heldWalk() {
	type heldLock struct {
		key   string
		mode  lockMode
		count int
	}
	seenEdge := map[string]bool{}
	for _, n := range lf.graph.Nodes() {
		if n.Test {
			continue
		}
		for _, u := range lf.units[n.ID] {
			var held []heldLock
			heldKeys := func() []string {
				out := make([]string, 0, len(held))
				for _, h := range held {
					out = append(out, h.key)
				}
				sort.Strings(out)
				return out
			}
			for _, ev := range u.events {
				switch ev.kind {
				case evAcquire:
					nested := false
					for i := range held {
						h := &held[i]
						if h.key == ev.key {
							lf.selfAcq = append(lf.selfAcq, selfAcqFinding{
								n: n, pos: ev.pos, key: ev.key,
								heldMode: h.mode, againMode: ev.mode,
							})
							h.count++
							nested = true
							continue
						}
						ek := h.key + "\x00" + ev.key + "\x00" + n.ID
						if !seenEdge[ek] {
							seenEdge[ek] = true
							lf.edges = append(lf.edges, &LockEdge{
								From: h.key, To: ev.key,
								FromMode: h.mode, ToMode: ev.mode,
								N: n, Pos: ev.pos,
							})
						}
					}
					if !nested {
						held = append(held, heldLock{key: ev.key, mode: ev.mode, count: 1})
					}
				case evRelease:
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].key == ev.key {
							held[i].count--
							if held[i].count == 0 {
								held = append(held[:i], held[i+1:]...)
							}
							break
						}
					}
				case evCall:
					if len(held) == 0 {
						continue
					}
					sum := lf.mayAcquire[ev.callee.ID]
					for _, key2 := range sortedKeys(sum) {
						for i := range held {
							h := &held[i]
							if h.key == key2 {
								lf.selfAcq = append(lf.selfAcq, selfAcqFinding{
									n: n, pos: ev.pos, key: key2,
									heldMode: h.mode, againMode: sum[key2].mode,
									via: ev.callee,
								})
								continue
							}
							ek := h.key + "\x00" + key2 + "\x00" + n.ID
							if !seenEdge[ek] {
								seenEdge[ek] = true
								lf.edges = append(lf.edges, &LockEdge{
									From: h.key, To: key2,
									FromMode: h.mode, ToMode: sum[key2].mode,
									N: n, Pos: ev.pos, Via: ev.callee,
								})
							}
						}
					}
					if lf.mayBlock[ev.callee.ID] != nil {
						lf.heldCalls = append(lf.heldCalls, heldCallFinding{
							n: n, pos: ev.pos, callee: ev.callee, held: heldKeys(),
						})
					}
				case evBlock:
					if len(held) > 0 {
						lf.heldCalls = append(lf.heldCalls, heldCallFinding{
							n: n, pos: ev.pos, op: ev.block, held: heldKeys(),
						})
					}
				}
			}
		}
	}
}

// computeCtxDrops flags non-test functions that declare a ctx parameter,
// never use it, and still do blocking or context-aware work.
func (lf *LockFacts) computeCtxDrops() {
	for _, n := range lf.graph.Nodes() {
		if n.Test || n.Decl.Body == nil || n.Decl.Type.Params == nil {
			continue
		}
		works := lf.wantsCtx[n.ID]
		if !works {
			for _, u := range lf.units[n.ID] {
				for _, ev := range u.events {
					if ev.kind == evBlock || ev.kind == evGo {
						works = true
					}
				}
			}
		}
		if !works {
			continue
		}
		info := n.Pkg.Info
		for _, field := range n.Decl.Type.Params.List {
			named, ok := derefType(info.TypeOf(field.Type)).(*types.Named)
			if !ok || named.Obj().Pkg() == nil ||
				named.Obj().Pkg().Path() != "context" || named.Obj().Name() != "Context" {
				continue
			}
			for _, nameID := range field.Names {
				if nameID.Name == "_" {
					continue
				}
				obj := info.Defs[nameID]
				if obj == nil {
					continue
				}
				used := false
				ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
					if id, ok := nd.(*ast.Ident); ok && info.Uses[id] == obj {
						used = true
					}
					return !used
				})
				if !used {
					lf.ctxDrops = append(lf.ctxDrops, ctxDropFinding{
						n: n, pos: nameID.Pos(), name: nameID.Name,
					})
				}
			}
		}
	}
}

// acquireChain renders the call chain from start to the function that
// directly acquires key, per the may-acquire sample links.
func (lf *LockFacts) acquireChain(start *Node, key string) string {
	names := []string{start.String()}
	cur := start
	for i := 0; i < 64; i++ {
		info := lf.mayAcquire[cur.ID][key]
		if info == nil || info.next == nil {
			break
		}
		cur = info.next
		names = append(names, cur.String())
	}
	return strings.Join(names, " -> ")
}

// blockPath renders what blocks and through whom, per the may-block links.
func (lf *LockFacts) blockPath(start *Node) (desc, chain string) {
	names := []string{start.String()}
	cur := lf.mayBlock[start.ID]
	for i := 0; cur != nil && i < 64; i++ {
		if cur.next == nil {
			return cur.desc, strings.Join(names, " -> ")
		}
		names = append(names, cur.next.String())
		cur = lf.mayBlock[cur.next.ID]
	}
	return "blocking operation", strings.Join(names, " -> ")
}

// WriteDOT dumps the lock-acquisition graph in Graphviz DOT form: one node
// per lock key, one edge per distinct acquired-while-held pair, labeled
// with a sample function.
func (lf *LockFacts) WriteDOT(w io.Writer) error {
	type edge struct{ from, to, label string }
	seen := map[string]bool{}
	var edges []edge
	keys := map[string]bool{}
	for _, e := range lf.edges {
		keys[e.From], keys[e.To] = true, true
		k := e.From + "\x00" + e.To
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, edge{from: e.From, to: e.To, label: e.N.String()})
	}
	for _, f := range lf.selfAcq {
		keys[f.key] = true
		k := f.key + "\x00" + f.key
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, edge{from: f.key, to: f.key, label: f.n.String()})
	}
	sortedK := make([]string, 0, len(keys))
	for k := range keys {
		sortedK = append(sortedK, k)
	}
	sort.Strings(sortedK)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	if _, err := fmt.Fprintln(w, "digraph lockgraph {"); err != nil {
		return err
	}
	for _, k := range sortedK {
		if _, err := fmt.Fprintf(w, "  %q;\n", k); err != nil {
			return err
		}
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n", e.from, e.to, e.label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOT dumps the call graph in Graphviz DOT form, test declarations
// excluded, edges deduplicated per (caller, callee, kind).
func (g *CallGraph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph callgraph {"); err != nil {
		return err
	}
	for _, n := range g.Nodes() {
		if n.Test {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %q;\n", n.String()); err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, e := range n.Out {
			if e.Callee.Test {
				continue
			}
			k := e.Callee.ID + "\x00" + e.Kind.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			if _, err := fmt.Fprintf(w, "  %q -> %q [label=%q];\n",
				n.String(), e.Callee.String(), e.Kind.String()); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
