package lint

import (
	"strings"
	"testing"
)

// buildFacts type-checks one fixture package and returns its lock facts.
func buildFacts(t *testing.T, src string) *LockFacts {
	t.Helper()
	pkg := fixture(t, "dime", "fixture.go", src)
	return BuildLockFacts(BuildCallGraph([]*Package{pkg}))
}

func TestLockFactsDeferUnlockInLoopFlagged(t *testing.T) {
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Drain(xs []int) {
	for range xs {
		mu.Lock()
		defer mu.Unlock()
	}
}`)
	diags := expect(t, pkg, LockOrder{}, 1)
	if !strings.Contains(diags[0].Message, "defer releases dime.mu inside a loop") {
		t.Errorf("want defer-in-loop finding, got: %s", diags[0].Message)
	}
}

func TestLockFactsIIFEInLoopNotFlagged(t *testing.T) {
	// The per-iteration IIFE is its own frame: its deferred unlock runs at
	// the end of every iteration, so the idiom is correct and must be clean.
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Drain(xs []int) {
	for range xs {
		func() {
			mu.Lock()
			defer mu.Unlock()
		}()
	}
}`)
	expect(t, pkg, LockOrder{}, 0)
}

func TestLockFactsRLockRLockUnderWriterPressure(t *testing.T) {
	// A re-entrant RLock deadlocks only when a writer queues between the two
	// reads; the message must say so rather than claim a plain self-deadlock.
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.RWMutex
func Nested() {
	mu.RLock()
	defer mu.RUnlock()
	mu.RLock()
	defer mu.RUnlock()
}`)
	diags := expect(t, pkg, LockOrder{}, 1)
	if !strings.Contains(diags[0].Message, "deadlocks if a writer is waiting between the two RLocks") {
		t.Errorf("want reader-reader warning, got: %s", diags[0].Message)
	}
}

func TestLockFactsOnceDoLiteralInlined(t *testing.T) {
	// The sync.Once.Do literal runs on the caller's stack with the caller's
	// locks held: an acquisition inside it is charged to the enclosing
	// function, so the a→b edge must exist in the lock graph.
	lf := buildFacts(t, `package dime
import "sync"
var (
	a, b sync.Mutex
	once sync.Once
)
func Init() {
	a.Lock()
	defer a.Unlock()
	once.Do(func() {
		b.Lock()
		defer b.Unlock()
	})
}`)
	found := false
	for _, e := range lf.edges {
		if e.From == "dime.a" && e.To == "dime.b" {
			found = true
		}
	}
	if !found {
		t.Errorf("want a->b lock edge from the inlined Once.Do literal, got edges: %+v", lf.edges)
	}
}

func TestLockFactsGoroutineBodyNotChargedToParent(t *testing.T) {
	// A `go func(){...}` body runs on its own stack after the parent
	// returns: its acquisition of the same mutex is concurrency, not
	// re-entrance, and must not produce a self-deadlock finding.
	pkg := fixture(t, "dime", "fixture.go", `package dime
import "sync"
var mu sync.Mutex
func Spawn(done chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	go func() {
		mu.Lock()
		mu.Unlock()
		close(done)
	}()
}`)
	expect(t, pkg, LockOrder{}, 0)
}

func TestLockFactsCopiedMutexGetsDistinctLocalKey(t *testing.T) {
	// A mutex value copied into a local is a different lock (vet's copylocks
	// catches the copy itself); the fact layer keys it as a local of the
	// copying function so it cannot alias the field's key across functions.
	lf := buildFacts(t, `package dime
import "sync"
type box struct{ mu sync.Mutex }
func Field(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
}
func Copied(b *box) {
	mu := b.mu
	mu.Lock()
	mu.Unlock()
}`)
	keys := map[string]bool{}
	for _, byKey := range lf.mayAcquire {
		for k := range byKey {
			keys[k] = true
		}
	}
	if !keys["dime.box.mu"] {
		t.Errorf("field mutex should key by receiver type, got keys: %v", keys)
	}
	local := ""
	for k := range keys {
		if strings.Contains(k, "(local)") {
			local = k
		}
	}
	if local == "" || local == "dime.box.mu" {
		t.Errorf("copied mutex should get a distinct local key, got keys: %v", keys)
	}
}

func TestLockFactsPromotedEmbeddedMutexKeysByOuterType(t *testing.T) {
	// s.Lock() through an embedded sync.Mutex is the outer value's lock:
	// both the promoted call and the explicit field path must agree on one
	// key, or ordering across the two spellings would be invisible.
	lf := buildFacts(t, `package dime
import "sync"
type store struct{ sync.Mutex }
func Promoted(s *store) {
	s.Lock()
	s.Unlock()
}
func Explicit(s *store) {
	s.Mutex.Lock()
	s.Mutex.Unlock()
}`)
	keys := map[string]bool{}
	for _, byKey := range lf.mayAcquire {
		for k := range byKey {
			keys[k] = true
		}
	}
	if len(keys) != 1 || !keys["dime.store.Mutex"] {
		t.Errorf("promoted and explicit spellings should share one key, got: %v", keys)
	}
}

func TestLockFactsSummaryPropagatesThroughChain(t *testing.T) {
	// mayAcquire reaches a fixpoint through static call chains: Top never
	// touches a mutex directly but may acquire dime.mu two hops down.
	lf := buildFacts(t, `package dime
import "sync"
var mu sync.Mutex
func Top() { mid() }
func mid() { leaf() }
func leaf() {
	mu.Lock()
	mu.Unlock()
}`)
	if _, ok := lf.mayAcquire["dime.Top"]["dime.mu"]; !ok {
		t.Errorf("Top should inherit leaf's acquisition, got: %+v", lf.mayAcquire["dime.Top"])
	}
}
