package lint

// The locklint suite: four interprocedural concurrency-safety analyzers over
// the shared lock-fact layer (lockfacts.go).
//
//   - lockorder: lock-acquisition-order cycles (potential deadlocks),
//     same-lock re-acquisition (direct or via a call chain), and
//     `defer mu.Unlock()` registered inside a loop.
//   - heldcall: blocking operations — channel ops outside a select with
//     default, WaitGroup.Wait, sleeps, network/file I/O, or calls into
//     functions that themselves block — executed while a lock is held.
//   - goleak: goroutines reachable from the serving-era entry points whose
//     bodies loop forever with no cancellation path (no channel or
//     ctx.Done receive anywhere in the body).
//   - ctxflow: request paths that drop the caller's context — a
//     context.Background()/TODO() reachable from an entry point, or a ctx
//     parameter received but never used by a function doing blocking or
//     context-aware work.
//
// lockorder and heldcall scan every non-test function in the module (a
// deadlock does not care how the code was reached); goleak and ctxflow are
// rooted at entry points, detersafe-style. Findings are suppressed with the
// standard //lint:ignore directive or recorded in cmd/dimelint's
// lock.baseline.json (kept empty: fix or carry a reasoned ignore instead).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockLintNames lists the locklint analyzer names — the group behind
// cmd/dimelint's `-only locklint` alias and its -lock-baseline split.
func LockLintNames() []string {
	return []string{"lockorder", "heldcall", "goleak", "ctxflow"}
}

// DefaultServeEntryPoints roots goleak at the serving-era surfaces: the
// module-root facade plus every exported function of the server, the
// resilient client and the fault injector.
var DefaultServeEntryPoints = []EntryPoint{
	{Pkg: "", Name: "*"},
	{Pkg: "internal/serve", Name: "*"},
	{Pkg: "internal/client", Name: "*"},
	{Pkg: "internal/fault", Name: "*"},
}

// DefaultCtxEntryPoints roots ctxflow at the serving surfaces plus the
// differential harness, whose replays must respect caller deadlines.
var DefaultCtxEntryPoints = []EntryPoint{
	{Pkg: "", Name: "*"},
	{Pkg: "internal/serve", Name: "*"},
	{Pkg: "internal/client", Name: "*"},
	{Pkg: "internal/fault", Name: "*"},
	{Pkg: "internal/difftest", Name: "*"},
}

// LockOrder is the lockorder analyzer: interprocedural lock-acquisition
// graph cycles and same-lock re-acquisition, reported as potential
// deadlocks with sample call chains.
type LockOrder struct{}

// Name implements Analyzer.
func (LockOrder) Name() string { return "lockorder" }

// Doc implements Analyzer.
func (LockOrder) Doc() string {
	return "lock-acquisition-order cycle, same-lock re-acquisition, or deferred unlock in a loop: potential deadlock"
}

// Run implements Analyzer; lockorder is interprocedural, see RunModule.
func (LockOrder) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (LockOrder) RunModule(mp *ModulePass) {
	lf := mp.LockFacts()
	for _, f := range lf.deferLoop {
		mp.Reportf(f.pos, "defer releases %s inside a loop: the unlock only runs at function exit, so the next iteration deadlocks against it", f.key)
	}
	for _, f := range lf.selfAcq {
		what := "self-deadlock"
		switch {
		case f.heldMode == modeRead && f.againMode == modeRead:
			what = "deadlocks if a writer is waiting between the two RLocks"
		case f.heldMode == modeRead && f.againMode == modeWrite:
			what = "read-to-write upgrade: deadlocks against the held read lock"
		}
		if f.via != nil {
			mp.Reportf(f.pos, "%s may be %sed again via the call to %s while %s already holds it (%s then %s): %s (chain: %s)",
				f.key, f.againMode.verb(), f.via.String(), f.n.String(),
				f.heldMode.verb(), f.againMode.verb(), what, lf.acquireChain(f.via, f.key))
		} else {
			mp.Reportf(f.pos, "%s is %sed while %s already holds it (%s then %s): %s",
				f.key, f.againMode.verb(), f.n.String(), f.heldMode.verb(), f.againMode.verb(), what)
		}
	}
	// Acquisition-order cycles: strongly connected components of size > 1
	// on the deduplicated lock graph.
	adj := map[string][]string{}
	seen := map[string]bool{}
	for _, e := range lf.edges {
		k := e.From + "\x00" + e.To
		if !seen[k] {
			seen[k] = true
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	comp := sccComponents(adj)
	for _, e := range lf.edges {
		cf, ct := comp[e.From], comp[e.To]
		if cf == "" || cf != ct {
			continue
		}
		cycle := cycleMembers(comp, cf)
		via := ""
		if e.Via != nil {
			via = " via " + lf.acquireChain(e.Via, e.To)
		}
		mp.Reportf(e.Pos, "lock order inversion: %s acquired%s while %s holds %s, but another path acquires them in the opposite order (cycle: %s): potential deadlock",
			e.To, via, e.N.String(), e.From, strings.Join(cycle, " -> "))
	}
}

// sccComponents runs Tarjan's algorithm and returns, for every key in a
// strongly connected component of size > 1, the component's smallest member
// as its identifier ("" — absent — for keys outside any cycle).
func sccComponents(adj map[string][]string) map[string]string {
	keys := make([]string, 0, len(adj))
	inAdj := map[string]bool{}
	for k, outs := range adj {
		if !inAdj[k] {
			inAdj[k] = true
			keys = append(keys, k)
		}
		for _, o := range outs {
			if !inAdj[o] {
				inAdj[o] = true
				keys = append(keys, o)
			}
		}
	}
	sort.Strings(keys)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	comp := map[string]string{}
	var strongconnect func(v string)
	strongconnect = func(v string) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				sort.Strings(members)
				for _, m := range members {
					comp[m] = members[0]
				}
			}
		}
	}
	for _, k := range keys {
		if index[k] == 0 {
			strongconnect(k)
		}
	}
	return comp
}

// cycleMembers returns the sorted members of the component identified by id.
func cycleMembers(comp map[string]string, id string) []string {
	var out []string
	for k, c := range comp {
		if c == id {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// HeldCall is the heldcall analyzer: blocking operations under a held lock,
// the latency-amplification class that turns one slow request into a
// stalled pool.
type HeldCall struct{}

// Name implements Analyzer.
func (HeldCall) Name() string { return "heldcall" }

// Doc implements Analyzer.
func (HeldCall) Doc() string {
	return "blocking operation (channel op, Wait, sleep, network/file I/O, or a call that blocks) while holding a lock"
}

// Run implements Analyzer; heldcall is interprocedural, see RunModule.
func (HeldCall) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (HeldCall) RunModule(mp *ModulePass) {
	lf := mp.LockFacts()
	for _, f := range lf.heldCalls {
		held := strings.Join(f.held, ", ")
		if f.callee != nil {
			desc, chain := lf.blockPath(f.callee)
			mp.Reportf(f.pos, "call to %s may block (%s; chain: %s) while %s holds %s",
				f.callee.String(), desc, chain, f.n.String(), held)
		} else {
			mp.Reportf(f.pos, "%s while %s holds %s", f.op, f.n.String(), held)
		}
	}
}

// GoLeak is the goleak analyzer: goroutines spawned on paths reachable from
// the serving entry points whose bodies loop forever with no cancellation
// path.
type GoLeak struct {
	// Entries holds the roots; nil means DefaultServeEntryPoints.
	Entries []EntryPoint
}

// Name implements Analyzer.
func (GoLeak) Name() string { return "goleak" }

// Doc implements Analyzer.
func (GoLeak) Doc() string {
	return "goroutine reachable from a serving entry point runs an unbounded loop with no cancellation path (no channel or ctx.Done receive)"
}

// Run implements Analyzer; goleak is interprocedural, see RunModule.
func (GoLeak) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (a GoLeak) RunModule(mp *ModulePass) {
	entries := a.Entries
	if entries == nil {
		entries = DefaultServeEntryPoints
	}
	lf := mp.LockFacts()
	roots := entryNodes(mp.Graph, entries)
	visited, parent := reachableFrom(roots)
	ids := make([]string, 0, len(visited))
	for id := range visited {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := visited[id]
		for _, u := range lf.units[n.ID] {
			for _, ev := range u.events {
				if ev.kind != evGo {
					continue
				}
				var body ast.Node
				info := n.Pkg.Info
				switch {
				case ev.lit != nil:
					body = ev.lit.Body
				case ev.callee != nil && ev.callee.Decl.Body != nil:
					body = ev.callee.Decl.Body
					info = ev.callee.Pkg.Info
				default:
					continue
				}
				if !uncancellableLoop(info, body) {
					continue
				}
				mp.Reportf(ev.pos, "goroutine spawned in %s runs an unbounded loop with no cancellation path (no channel or ctx.Done receive anywhere in its body); it outlives the request — reachable from %s (chain: %s)",
					n.String(), rootOf(n, parent).String(), chainTo(n, parent))
			}
		}
	}
}

// uncancellableLoop reports a `for` loop with no condition in body while the
// whole body contains no channel receive of any kind (select cases and
// range-over-channel included — each is a cancellation or completion path).
func uncancellableLoop(info *types.Info, body ast.Node) bool {
	hasRecv := false
	hasLoop := false
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				hasRecv = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					hasRecv = true
				}
			}
		case *ast.ForStmt:
			if x.Cond == nil {
				hasLoop = true
			}
		}
		return !hasRecv
	})
	return hasLoop && !hasRecv
}

// CtxFlow is the ctxflow analyzer: request paths that drop the caller's
// context, so work outlives its deadline.
type CtxFlow struct {
	// Entries holds the roots; nil means DefaultCtxEntryPoints.
	Entries []EntryPoint
}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "request path drops the caller's context: context.Background()/TODO() reachable from an entry point, or a ctx parameter received but never used"
}

// Run implements Analyzer; ctxflow is interprocedural, see RunModule.
func (CtxFlow) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (a CtxFlow) RunModule(mp *ModulePass) {
	entries := a.Entries
	if entries == nil {
		entries = DefaultCtxEntryPoints
	}
	lf := mp.LockFacts()
	roots := entryNodes(mp.Graph, entries)
	visited, parent := reachableFrom(roots)
	ids := make([]string, 0, len(visited))
	for id := range visited {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := visited[id]
		for _, f := range lf.bgCalls[n.ID] {
			mp.Reportf(f.Pos, "%s in %s discards the caller's context on a path reachable from entry point %s (chain: %s); thread the caller's ctx through instead",
				f.What, n.String(), rootOf(n, parent).String(), chainTo(n, parent))
		}
	}
	for _, f := range lf.ctxDrops {
		if visited[f.n.ID] == nil {
			continue
		}
		mp.Reportf(f.pos, "parameter %q in %s is received but never used, yet the function does blocking or context-aware work; pass the caller's ctx to the downstream calls or drop the parameter",
			f.name, f.n.String())
	}
}
