package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ResultPkgs is the resultpkgs analyzer: it derives the set of
// result-producing packages from the call graph — the packages holding code
// reachable from the result entry points (DefaultEntryPoints) — and fails
// when DefaultResultPackages is stale in either direction. This closes the
// manual-list drift: a new package wired into the discovery or
// rule-generation path joins mapiter-determinism coverage by failing the
// lint until it is added, and a package dropped from the result path must be
// removed.
type ResultPkgs struct {
	// Entries holds the result-producing roots; nil means DefaultEntryPoints.
	Entries []EntryPoint
	// Expected is the list to validate; nil means DefaultResultPackages. With
	// a nil Expected the analyzer only runs when the load includes both the
	// module root package and internal/lint (i.e. a whole-module lint): on a
	// partial load the derivation would be truncated and every comparison
	// spurious.
	Expected []string
}

// Name implements Analyzer.
func (ResultPkgs) Name() string { return "resultpkgs" }

// Doc implements Analyzer.
func (ResultPkgs) Doc() string {
	return "DefaultResultPackages out of sync with the packages reachable from the result entry points"
}

// Run implements Analyzer; resultpkgs is interprocedural, see RunModule.
func (ResultPkgs) Run(*Pass) {}

// RunModule implements ModuleAnalyzer.
func (a ResultPkgs) RunModule(mp *ModulePass) {
	expected := a.Expected
	anchor := token.NoPos
	if expected == nil {
		lintPkg := findPackage(mp.Pkgs, mp.Module+"/internal/lint")
		if findPackage(mp.Pkgs, mp.Module) == nil || lintPkg == nil {
			return // partial load: the derivation would be meaningless
		}
		expected = DefaultResultPackages
		anchor = varDeclPos(lintPkg, "DefaultResultPackages")
	}
	entries := a.Entries
	if entries == nil {
		entries = DefaultEntryPoints
	}
	derived := deriveResultPackages(mp.Graph, entries)
	if anchor == token.NoPos {
		if roots := entryNodes(mp.Graph, entries); len(roots) > 0 {
			anchor = roots[0].Decl.Name.Pos()
		} else if len(mp.Pkgs) > 0 && len(mp.Pkgs[0].Files) > 0 {
			anchor = mp.Pkgs[0].Files[0].Pos()
		} else {
			return
		}
	}

	want := map[string]bool{}
	for _, p := range expected {
		want[p] = true
	}
	got := map[string]bool{}
	for _, p := range derived {
		got[p] = true
	}
	for _, p := range derived {
		if !want[p] {
			mp.Reportf(anchor, "package %q is reachable from the result entry points but missing from DefaultResultPackages; add it so mapiter-determinism covers it", p)
		}
	}
	missing := make([]string, 0, len(want))
	for p := range want {
		if !got[p] {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	for _, p := range missing {
		mp.Reportf(anchor, "package %q in DefaultResultPackages is not reachable from the result entry points; remove it (or add the entry point that makes it result-producing)", p)
	}
}

// deriveResultPackages returns the module-relative paths of the packages
// holding code reachable from the entry points, sorted. The module root is
// excluded (mapiter always analyzes it) and so are main packages.
func deriveResultPackages(g *CallGraph, entries []EntryPoint) []string {
	visited, _ := reachableFrom(entryNodes(g, entries))
	set := map[string]bool{}
	for _, n := range visited {
		if n.Main || n.PkgPath == g.Module {
			continue
		}
		set[strings.TrimPrefix(n.PkgPath, g.Module+"/")] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// findPackage returns the loaded base (non-test) unit with the given path.
func findPackage(pkgs []*Package, path string) *Package {
	for _, p := range pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// varDeclPos locates the declaration of a package-level variable.
func varDeclPos(pkg *Package, name string) token.Pos {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == name {
						return id.Pos()
					}
				}
			}
		}
	}
	return token.NoPos
}
