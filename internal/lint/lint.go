// Package lint is a stdlib-only static-analysis framework (go/parser +
// go/ast + go/types, no x/tools) that enforces DIME's code-level correctness
// invariants: deterministic result emission, epsilon-safe float threshold
// comparisons, no silently dropped errors from this module's own functions,
// lock-copy and goroutine-capture hygiene in fan-out code, and panic-free
// library paths.
//
// The framework walks every package in the module (see Load), runs each
// Analyzer over the type-checked syntax, and reports file:line diagnostics.
// A finding can be suppressed with a comment on the same line or the line
// directly above it:
//
//	//lint:ignore <analyzer|all> <reason>
//
// The reason is mandatory; an ignore directive without one is itself a
// diagnostic. cmd/dimelint is the CLI front end.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a file:line:col.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced it.
	Analyzer string
	// Message describes the violation and the expected fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one lint pass. Run inspects the package via the Pass and
// reports findings through Pass.Reportf.
type Analyzer interface {
	// Name is the short identifier used in diagnostics and ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run analyzes one package.
	Run(pass *Pass)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Fset translates token positions.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Info holds the package's type-check results (possibly partial if the
	// package had type errors).
	Info *types.Info

	analyzer string
	sink     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InModule reports whether obj is declared in this module (as opposed to the
// standard library or the universe scope).
func (p *Pass) InModule(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == p.Pkg.Module || strings.HasPrefix(path, p.Pkg.Module+"/")
}

// IsTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		ignores, malformed := collectIgnores(pkg)
		all = append(all, malformed...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Info:     pkg.Info,
				analyzer: a.Name(),
				sink:     &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !ignores.suppresses(d) {
				all = append(all, d)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// ignoreSet maps file -> line -> analyzer names suppressed at that line
// ("all" suppresses every analyzer).
type ignoreSet map[string]map[int][]string

func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, name := range lines[d.Pos.Line] {
		if name == "all" || name == d.Analyzer {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment in the package for lint:ignore
// directives. A directive suppresses findings on its own line; a directive
// that is the only thing on its line suppresses the line below instead.
// Malformed directives (no analyzer name or no reason) are returned as
// diagnostics so they cannot silently disable nothing.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer|all> <reason>\"",
					})
					continue
				}
				line := pos.Line
				if standsAlone(pkg.Fset, f, c) {
					line++
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				byLine[line] = append(byLine[line], fields[0])
			}
		}
	}
	return set, bad
}

// standsAlone reports whether the comment is the first token on its line
// (i.e. not trailing a statement).
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.Pos() == token.NoPos {
			return true
		}
		p := fset.Position(n.Pos())
		if _, isFile := n.(*ast.File); !isFile && p.Line == cpos.Line && p.Column < cpos.Column {
			alone = false
			return false
		}
		return true
	})
	return alone
}
