// Package lint is a stdlib-only static-analysis framework (go/parser +
// go/ast + go/types, no x/tools) that enforces DIME's code-level correctness
// invariants: deterministic result emission, epsilon-safe float threshold
// comparisons, no silently dropped errors from this module's own functions,
// lock-copy and goroutine-capture hygiene in fan-out code, and panic-free
// library paths.
//
// The framework walks every package in the module (see Load), runs each
// Analyzer over the type-checked syntax, and reports file:line diagnostics.
// On top of the per-package passes, a module-wide static call graph (see
// BuildCallGraph) powers three interprocedural analyzers: detersafe proves
// the result-producing entry points cannot transitively reach
// nondeterminism sources, panicprop lifts the panic-in-library rule to
// call-graph reachability from exported API, and resultpkgs derives the
// result-producing package list and fails when DefaultResultPackages is
// stale.
//
// A finding can be suppressed with a comment on the same line or the line
// directly above it:
//
//	//lint:ignore <analyzer|all> <reason>
//
// The same directive inside a single-line /* */ comment works too. The
// reason is mandatory; an ignore directive without one is itself a
// diagnostic. Accepted findings that cannot or should not be fixed in-source
// can instead be recorded in a baseline file (see Baseline), which
// cmd/dimelint consumes so CI fails only on new findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a file:line:col.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced it.
	Analyzer string
	// Message describes the violation and the expected fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one lint pass. Run inspects the package via the Pass and
// reports findings through Pass.Reportf.
type Analyzer interface {
	// Name is the short identifier used in diagnostics and ignore directives.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Run analyzes one package. Interprocedural analyzers implement
	// ModuleAnalyzer instead and leave Run a no-op.
	Run(pass *Pass)
}

// ModuleAnalyzer is an Analyzer that runs once over the whole loaded
// package set with the module call graph, instead of package by package.
type ModuleAnalyzer interface {
	Analyzer
	// RunModule analyzes the module via the ModulePass.
	RunModule(mp *ModulePass)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Fset translates token positions.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Info holds the package's type-check results (possibly partial if the
	// package had type errors).
	Info *types.Info

	analyzer string
	sink     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InModule reports whether obj is declared in this module (as opposed to the
// standard library or the universe scope).
func (p *Pass) InModule(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == p.Pkg.Module || strings.HasPrefix(path, p.Pkg.Module+"/")
}

// IsTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ModulePass carries the whole loaded package set and its call graph to a
// ModuleAnalyzer. All packages share one FileSet (as Load guarantees).
type ModulePass struct {
	// Fset translates token positions for every loaded package.
	Fset *token.FileSet
	// Pkgs holds the loaded lint units, sorted by path.
	Pkgs []*Package
	// Module is the module path.
	Module string
	// Graph is the module call graph over Pkgs.
	Graph *CallGraph

	ignores   ignoreSet
	analyzer  string
	sink      *[]Diagnostic
	lockFacts *LockFacts
}

// Reportf records a finding at pos.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*mp.sink = append(*mp.sink, Diagnostic{
		Pos:      mp.Fset.Position(pos),
		Analyzer: mp.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuppressedFor reports whether a //lint:ignore directive for the named
// analyzer (or "all") covers pos. Interprocedural analyzers use it to honor
// a per-package suppression at a fact site: a mapiter-determinism ignore
// asserts the iteration is in fact order-safe, so detersafe must not taint
// paths through it.
func (mp *ModulePass) SuppressedFor(pos token.Pos, analyzer string) bool {
	return mp.ignores.suppresses(Diagnostic{Pos: mp.Fset.Position(pos), Analyzer: analyzer})
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
// Per-package analyzers run package by package; ModuleAnalyzers run once
// over the full set with the call graph built on demand.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var all []Diagnostic
	merged := ignoreSet{}
	for _, pkg := range pkgs {
		ignores, malformed := collectIgnores(pkg)
		all = append(all, malformed...)
		for file, lines := range ignores {
			if existing, ok := merged[file]; ok {
				for line, names := range lines {
					existing[line] = append(existing[line], names...)
				}
			} else {
				merged[file] = lines
			}
		}
	}
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			if _, isModule := a.(ModuleAnalyzer); isModule {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Pkg:      pkg,
				Info:     pkg.Info,
				analyzer: a.Name(),
				sink:     &raw,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !merged.suppresses(d) {
				all = append(all, d)
			}
		}
	}
	var moduleAnalyzers []ModuleAnalyzer
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			moduleAnalyzers = append(moduleAnalyzers, ma)
		}
	}
	if len(moduleAnalyzers) > 0 && len(pkgs) > 0 {
		mp := &ModulePass{
			Fset:    pkgs[0].Fset,
			Pkgs:    pkgs,
			Module:  pkgs[0].Module,
			Graph:   BuildCallGraph(pkgs),
			ignores: merged,
		}
		for _, ma := range moduleAnalyzers {
			var raw []Diagnostic
			mp.analyzer = ma.Name()
			mp.sink = &raw
			ma.RunModule(mp)
			for _, d := range raw {
				if !merged.suppresses(d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// ignoreSet maps file -> line -> analyzer names suppressed at that line
// ("all" suppresses every analyzer).
type ignoreSet map[string]map[int][]string

func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, name := range lines[d.Pos.Line] {
		if name == "all" || name == d.Analyzer {
			return true
		}
	}
	return false
}

// collectIgnores scans every comment in the package for lint:ignore
// directives, in both line-comment and single-line block-comment form. A
// directive sharing its line with code suppresses findings on that line; a
// directive alone on its line suppresses the line below instead. Malformed
// directives (no analyzer name or no reason) are returned as diagnostics so
// they cannot silently disable nothing.
func collectIgnores(pkg *Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer|all> <reason>\"",
					})
					continue
				}
				line := pos.Line
				if standsAlone(pkg.Fset, f, c) {
					line++
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				byLine[line] = append(byLine[line], fields[0])
			}
		}
	}
	return set, bad
}

// directiveText extracts the text after "lint:ignore" from a line comment
// ("//lint:ignore ...") or a block comment ("/*lint:ignore ...*/"),
// reporting whether the comment is a directive at all.
func directiveText(comment string) (string, bool) {
	if rest, ok := strings.CutPrefix(comment, "//lint:ignore"); ok {
		return rest, true
	}
	if body, ok := strings.CutPrefix(comment, "/*"); ok {
		body = strings.TrimSuffix(body, "*/")
		if rest, ok := strings.CutPrefix(body, "lint:ignore"); ok {
			return rest, true
		}
	}
	return "", false
}

// standsAlone reports whether the comment shares its line with no syntax
// node — code before it (a trailing directive) and code after it (a leading
// /* */ directive) both bind the directive to its own line.
func standsAlone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cline := fset.Position(c.Pos()).Line
	alone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !alone {
			return false
		}
		if n.Pos() == token.NoPos {
			return true
		}
		if _, isFile := n.(*ast.File); !isFile && fset.Position(n.Pos()).Line == cline {
			alone = false
			return false
		}
		return true
	})
	return alone
}
