// Package tokenize provides the tokenizers and global token orderings used by
// set-based similarity functions and by prefix-signature generation.
//
// Signature schemes for set similarity need a single global ordering over all
// tokens so that the "first k tokens" of any two values are comparable. The
// usual choice — and the one the DIME paper uses — is increasing document
// frequency: rare tokens first, which makes prefixes maximally selective.
package tokenize

import (
	"slices"
	"sort"
	"strings"
	"unicode"
)

// Words splits a value into lower-cased word tokens. Any run of letters or
// digits is a token; everything else separates tokens. Duplicates are
// preserved (callers that need sets use Set). Tokens are substrings of one
// lower-cased copy of the input, so the whole split costs O(1) allocations
// beyond that copy instead of one per token.
func Words(v string) []string {
	s := lower(v)
	// First pass counts tokens so the result is allocated exactly once
	// instead of growing through append doublings.
	n := 0
	inTok := false
	for _, r := range s {
		alnum := unicode.IsLetter(r) || unicode.IsDigit(r)
		if alnum && !inTok {
			n++
		}
		inTok = alnum
	}
	if n == 0 {
		return nil
	}
	tokens := make([]string, 0, n)
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			tokens = append(tokens, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, s[start:])
	}
	return tokens
}

// lower is strings.ToLower with a zero-allocation fast path for inputs that
// contain no upper-case ASCII and no non-ASCII bytes (the overwhelmingly
// common case for attribute values).
func lower(v string) string {
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c >= 0x80 || c >= 'A' && c <= 'Z' {
			return strings.ToLower(v)
		}
	}
	return v
}

// Set returns the distinct tokens of Words(v), order-preserving on first
// occurrence.
func Set(v string) []string {
	return Dedup(Words(v))
}

// Dedup removes duplicate tokens, keeping first occurrences in order. Small
// inputs are deduplicated by linear scan and duplicate-free inputs are
// returned as-is, so the common case allocates nothing; only inputs that
// actually shrink allocate a fresh slice (the input is never mutated).
func Dedup(tokens []string) []string {
	if len(tokens) <= 32 {
		for i, t := range tokens {
			if indexOf(tokens[:i], t) >= 0 {
				return dedupFrom(tokens, i)
			}
		}
		return tokens
	}
	seen := make(map[string]struct{}, len(tokens))
	for i, t := range tokens {
		if _, ok := seen[t]; ok {
			return dedupSlow(tokens, i)
		}
		seen[t] = struct{}{}
	}
	return tokens
}

// dedupFrom copies tokens into a fresh slice, skipping duplicates; dup is the
// index of the first duplicate (everything before it is unique).
func dedupFrom(tokens []string, dup int) []string {
	out := make([]string, dup, len(tokens)-1)
	copy(out, tokens[:dup])
	for _, t := range tokens[dup+1:] {
		if indexOf(out, t) < 0 {
			out = append(out, t)
		}
	}
	return out
}

// dedupSlow is dedupFrom with a map, for large inputs.
func dedupSlow(tokens []string, dup int) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := make([]string, dup, len(tokens)-1)
	copy(out, tokens[:dup])
	for _, t := range tokens[:dup] {
		seen[t] = struct{}{}
	}
	for _, t := range tokens[dup+1:] {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// indexOf returns the position of t in xs or -1.
func indexOf(xs []string, t string) int {
	for i, x := range xs {
		if x == t {
			return i
		}
	}
	return -1
}

// QGrams returns the q-grams of s. Strings shorter than q yield a single gram
// holding the whole string (padded semantics are not needed for the DIME
// signature scheme; the count lower bound still holds). The empty string
// yields no grams.
func QGrams(s string, q int) []string {
	if q <= 0 {
		q = 2
	}
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= q {
		return []string{string(r)}
	}
	grams := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		grams = append(grams, string(r[i:i+q]))
	}
	return grams
}

// Ordering is a global token ordering. Tokens compare first by the recorded
// rank (lower rank = earlier = rarer) and unknown tokens compare by their
// literal value after all known tokens, so the ordering is total and
// deterministic even for tokens never seen while building it.
type Ordering struct {
	rank map[string]int
}

// BuildOrdering constructs a document-frequency ordering from token
// multisets: each slice is one "document"; a token's document frequency is
// the number of documents containing it at least once. Ties break
// lexicographically so the ordering is deterministic.
func BuildOrdering(docs [][]string) *Ordering {
	df := make(map[string]int)
	for _, doc := range docs {
		if len(doc) <= 32 {
			// Small documents: linear duplicate scan beats allocating a
			// per-document set.
			for i, t := range doc {
				if indexOf(doc[:i], t) < 0 {
					df[t]++
				}
			}
			continue
		}
		seen := make(map[string]struct{}, len(doc))
		for _, t := range doc {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			df[t]++
		}
	}
	tokens := make([]string, 0, len(df))
	for t := range df {
		tokens = append(tokens, t)
	}
	sort.Slice(tokens, func(i, j int) bool {
		if df[tokens[i]] != df[tokens[j]] {
			return df[tokens[i]] < df[tokens[j]]
		}
		return tokens[i] < tokens[j]
	})
	o := &Ordering{rank: make(map[string]int, len(tokens))}
	for i, t := range tokens {
		o.rank[t] = i
	}
	return o
}

// Rank returns the rank of a token and whether the token was seen while
// building the ordering.
func (o *Ordering) Rank(t string) (int, bool) {
	r, ok := o.rank[t]
	return r, ok
}

// Less reports whether token a precedes token b in the global ordering.
func (o *Ordering) Less(a, b string) bool {
	return o.Compare(a, b) < 0
}

// Compare orders two tokens by the global ordering, returning a negative,
// zero or positive value as a sorts before, equal to, or after b. Zero only
// for equal tokens, so the ordering is strict and sort stability is moot.
func (o *Ordering) Compare(a, b string) int {
	ra, oka := o.rank[a]
	rb, okb := o.rank[b]
	switch {
	case oka && okb:
		if ra != rb {
			return ra - rb
		}
		return strings.Compare(a, b)
	case oka:
		return -1 // known tokens precede unknown ones
	case okb:
		return 1
	default:
		return strings.Compare(a, b)
	}
}

// Sort sorts tokens in place by the global ordering and returns the slice.
// slices.SortFunc keeps the sort allocation-free (sort.Slice pays for a
// reflect-based swapper on every call).
func (o *Ordering) Sort(tokens []string) []string {
	slices.SortFunc(tokens, o.Compare)
	return tokens
}

// Sorted returns a new slice holding tokens sorted by the global ordering.
func (o *Ordering) Sorted(tokens []string) []string {
	out := append([]string(nil), tokens...)
	return o.Sort(out)
}
