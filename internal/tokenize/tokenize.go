// Package tokenize provides the tokenizers and global token orderings used by
// set-based similarity functions and by prefix-signature generation.
//
// Signature schemes for set similarity need a single global ordering over all
// tokens so that the "first k tokens" of any two values are comparable. The
// usual choice — and the one the DIME paper uses — is increasing document
// frequency: rare tokens first, which makes prefixes maximally selective.
package tokenize

import (
	"sort"
	"strings"
	"unicode"
)

// Words splits a value into lower-cased word tokens. Any run of letters or
// digits is a token; everything else separates tokens. Duplicates are
// preserved (callers that need sets use Set).
func Words(v string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range v {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// Set returns the distinct tokens of Words(v), order-preserving on first
// occurrence.
func Set(v string) []string {
	return Dedup(Words(v))
}

// Dedup removes duplicate tokens, keeping first occurrences in order.
func Dedup(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := tokens[:0:0]
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// QGrams returns the q-grams of s. Strings shorter than q yield a single gram
// holding the whole string (padded semantics are not needed for the DIME
// signature scheme; the count lower bound still holds). The empty string
// yields no grams.
func QGrams(s string, q int) []string {
	if q <= 0 {
		q = 2
	}
	r := []rune(s)
	if len(r) == 0 {
		return nil
	}
	if len(r) <= q {
		return []string{string(r)}
	}
	grams := make([]string, 0, len(r)-q+1)
	for i := 0; i+q <= len(r); i++ {
		grams = append(grams, string(r[i:i+q]))
	}
	return grams
}

// Ordering is a global token ordering. Tokens compare first by the recorded
// rank (lower rank = earlier = rarer) and unknown tokens compare by their
// literal value after all known tokens, so the ordering is total and
// deterministic even for tokens never seen while building it.
type Ordering struct {
	rank map[string]int
}

// BuildOrdering constructs a document-frequency ordering from token
// multisets: each slice is one "document"; a token's document frequency is
// the number of documents containing it at least once. Ties break
// lexicographically so the ordering is deterministic.
func BuildOrdering(docs [][]string) *Ordering {
	df := make(map[string]int)
	for _, doc := range docs {
		seen := make(map[string]struct{}, len(doc))
		for _, t := range doc {
			if _, ok := seen[t]; ok {
				continue
			}
			seen[t] = struct{}{}
			df[t]++
		}
	}
	tokens := make([]string, 0, len(df))
	for t := range df {
		tokens = append(tokens, t)
	}
	sort.Slice(tokens, func(i, j int) bool {
		if df[tokens[i]] != df[tokens[j]] {
			return df[tokens[i]] < df[tokens[j]]
		}
		return tokens[i] < tokens[j]
	})
	o := &Ordering{rank: make(map[string]int, len(tokens))}
	for i, t := range tokens {
		o.rank[t] = i
	}
	return o
}

// Rank returns the rank of a token and whether the token was seen while
// building the ordering.
func (o *Ordering) Rank(t string) (int, bool) {
	r, ok := o.rank[t]
	return r, ok
}

// Less reports whether token a precedes token b in the global ordering.
func (o *Ordering) Less(a, b string) bool {
	ra, oka := o.rank[a]
	rb, okb := o.rank[b]
	switch {
	case oka && okb:
		if ra != rb {
			return ra < rb
		}
		return a < b
	case oka:
		return true // known tokens precede unknown ones
	case okb:
		return false
	default:
		return a < b
	}
}

// Sort sorts tokens in place by the global ordering and returns the slice.
func (o *Ordering) Sort(tokens []string) []string {
	sort.Slice(tokens, func(i, j int) bool { return o.Less(tokens[i], tokens[j]) })
	return tokens
}

// Sorted returns a new slice holding tokens sorted by the global ordering.
func (o *Ordering) Sorted(tokens []string) []string {
	out := append([]string(nil), tokens...)
	return o.Sort(out)
}
