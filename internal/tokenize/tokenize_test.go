package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"", nil},
		{"a-b_c", []string{"a", "b", "c"}},
		{"WiFi 802.11n", []string{"wifi", "802", "11n"}},
		{"ünïcode Tökens", []string{"ünïcode", "tökens"}},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSetDedups(t *testing.T) {
	got := Set("the cat and the hat")
	want := []string{"the", "cat", "and", "hat"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Set = %v, want %v", got, want)
	}
}

func TestDedup(t *testing.T) {
	got := Dedup([]string{"a", "b", "a", "c", "b"})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Dedup = %v", got)
	}
	if Dedup(nil) != nil {
		// Dedup(nil) returns an empty non-nil or nil slice; both are fine,
		// but it must be empty.
		if len(Dedup(nil)) != 0 {
			t.Fatal("Dedup(nil) should be empty")
		}
	}
}

func TestQGrams(t *testing.T) {
	if got := QGrams("abcd", 2); !reflect.DeepEqual(got, []string{"ab", "bc", "cd"}) {
		t.Fatalf("QGrams = %v", got)
	}
	if got := QGrams("ab", 2); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("short QGrams = %v", got)
	}
	if got := QGrams("a", 2); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("tiny QGrams = %v", got)
	}
	if got := QGrams("", 2); got != nil {
		t.Fatalf("empty QGrams = %v", got)
	}
	if got := QGrams("abc", 0); !reflect.DeepEqual(got, []string{"ab", "bc"}) {
		t.Fatalf("q<=0 should default to 2, got %v", got)
	}
}

func TestQGramsUnicode(t *testing.T) {
	got := QGrams("日本語", 2)
	want := []string{"日本", "本語"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QGrams unicode = %v, want %v", got, want)
	}
}

func TestBuildOrderingByDocumentFrequency(t *testing.T) {
	docs := [][]string{
		{"rare", "common"},
		{"common", "mid"},
		{"common", "mid"},
	}
	o := BuildOrdering(docs)
	// rare (df 1) < mid (df 2) < common (df 3)
	if !o.Less("rare", "mid") || !o.Less("mid", "common") {
		t.Fatal("ordering should be ascending document frequency")
	}
	if r, ok := o.Rank("rare"); !ok || r != 0 {
		t.Fatalf("Rank(rare) = %d, %v", r, ok)
	}
	if _, ok := o.Rank("unseen"); ok {
		t.Fatal("unseen token should have no rank")
	}
}

func TestOrderingUnknownTokens(t *testing.T) {
	o := BuildOrdering([][]string{{"a"}})
	if !o.Less("a", "zzz") {
		t.Fatal("known tokens should precede unknown")
	}
	if o.Less("zzz", "a") {
		t.Fatal("unknown should not precede known")
	}
	if !o.Less("unseen1", "unseen2") {
		t.Fatal("unknown tokens should compare lexicographically")
	}
}

func TestOrderingDuplicatesCountOncePerDoc(t *testing.T) {
	docs := [][]string{
		{"x", "x", "x"}, // df(x) = 1
		{"y"},           // df(y) = 1
		{"y"},           // df(y) = 2
	}
	o := BuildOrdering(docs)
	if !o.Less("x", "y") {
		t.Fatal("x (df 1) should precede y (df 2)")
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	o := BuildOrdering([][]string{{"b"}, {"b"}, {"a"}})
	in := []string{"b", "a"}
	out := o.Sorted(in)
	if !reflect.DeepEqual(in, []string{"b", "a"}) {
		t.Fatal("Sorted mutated its input")
	}
	if !reflect.DeepEqual(out, []string{"a", "b"}) {
		t.Fatalf("Sorted = %v", out)
	}
}

// Property: the ordering is a strict weak order — irreflexive and
// antisymmetric on distinct tokens.
func TestOrderingTotalProperty(t *testing.T) {
	o := BuildOrdering([][]string{{"a", "b"}, {"b", "c"}, {"c"}})
	f := func(x, y string) bool {
		if x == y {
			return !o.Less(x, y)
		}
		return o.Less(x, y) != o.Less(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
