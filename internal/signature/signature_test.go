package signature

import (
	"fmt"
	"math/rand"
	"testing"

	"dime/internal/entity"
	"dime/internal/fixtures"
	"dime/internal/ontology"
	"dime/internal/rules"
)

// buildScholar compiles the Figure 1 group and its rule set.
func buildScholar(t *testing.T) (*rules.Config, []*rules.Record, rules.RuleSet, *Context) {
	t.Helper()
	g := fixtures.Figure1Group()
	cfg := fixtures.ScholarConfig()
	rs := fixtures.PaperRules(cfg)
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, recs, rs, NewContext(cfg, recs, rs)
}

func shares(a, b []string) bool {
	set := make(map[string]struct{}, len(a))
	for _, s := range a {
		set[s] = struct{}{}
	}
	for _, s := range b {
		if _, ok := set[s]; ok {
			return true
		}
	}
	return false
}

func hasUniversal(sigs []string) bool {
	for _, s := range sigs {
		if s == Universal {
			return true
		}
	}
	return false
}

// TestSimilarSideGuarantee: for every positive-rule predicate and every pair
// of Figure-1 records, if the predicate holds, the records share a signature
// (or one is a wildcard).
func TestSimilarSideGuarantee(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	for _, rule := range rs.Positive {
		for _, p := range rule.Predicates {
			for i := range recs {
				for j := i + 1; j < len(recs); j++ {
					if !p.Eval(recs[i], recs[j]) {
						continue
					}
					si := ctx.Signatures(p, recs[i])
					sj := ctx.Signatures(p, recs[j])
					if !shares(si, sj) && !hasUniversal(si) && !hasUniversal(sj) {
						t.Errorf("pred %v holds for (%s,%s) but signatures disjoint: %v vs %v",
							p, recs[i].Entity.ID, recs[j].Entity.ID, si, sj)
					}
				}
			}
		}
	}
}

// TestDissimilarSideGuarantee: for every negative-rule predicate, records
// with disjoint signature sets (no wildcards) must satisfy the predicate.
func TestDissimilarSideGuarantee(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	for _, rule := range rs.Negative {
		for _, p := range rule.Predicates {
			for i := range recs {
				for j := i + 1; j < len(recs); j++ {
					si := ctx.Signatures(p, recs[i])
					sj := ctx.Signatures(p, recs[j])
					if hasUniversal(si) || hasUniversal(sj) || shares(si, sj) {
						continue
					}
					if !p.Eval(recs[i], recs[j]) {
						t.Errorf("pred %v: (%s,%s) signatures disjoint but predicate false",
							p, recs[i].Entity.ID, recs[j].Entity.ID)
					}
				}
			}
		}
	}
}

// TestPositiveCandidatesComplete: every pair satisfying a positive rule is a
// candidate of that rule's index (paper-example group).
func TestPositiveCandidatesComplete(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	for _, rule := range rs.Positive {
		ix := BuildPositive(ctx, rule, recs)
		cands := make(map[[2]int]bool)
		for _, c := range ix.Candidates() {
			cands[[2]int{c.I, c.J}] = true
		}
		for i := range recs {
			for j := i + 1; j < len(recs); j++ {
				if rule.Eval(recs[i], recs[j]) && !cands[[2]int{i, j}] {
					t.Errorf("rule %s: satisfied pair (%s,%s) missing from candidates",
						rule.Name, recs[i].Entity.ID, recs[j].Entity.ID)
				}
			}
		}
	}
}

// TestExample8Candidates reproduces Example 8: ϕ+1 generates candidates
// {(e1,e3),(e2,e5)}; ϕ+2 generates ⊇ {(e1,e2),(e1,e3),(e2,e3)}.
func TestExample8Candidates(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	ix1 := BuildPositive(ctx, rs.Positive[0], recs)
	got := map[string]bool{}
	for _, c := range ix1.Candidates() {
		got[fmt.Sprintf("%s-%s", recs[c.I].Entity.ID, recs[c.J].Entity.ID)] = true
	}
	for _, want := range []string{"e1-e3", "e2-e5"} {
		if !got[want] {
			t.Errorf("phi+1 candidates missing %s (got %v)", want, got)
		}
	}
	// No pair with zero shared authors may appear for phi+1 (overlap >= 2
	// prefixes are selective); e4 shares no author with anyone.
	for pair := range got {
		if pair[:2] == "e4" || pair[3:] == "e4" {
			t.Errorf("phi+1 candidates should not include e4: %v", got)
		}
	}
}

// TestNegativeFilterPaperExample reproduces Example 9: P2 = {e4} is provably
// mis-categorized under φ−1 by signatures alone, and P3 = {e6} under φ−2.
func TestNegativeFilterPaperExample(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	pivot := []*rules.Record{recs[0], recs[1], recs[2], recs[4]} // e1,e2,e3,e5

	nf1 := BuildNegative(ctx, rs.Negative[0], pivot)
	if !nf1.PartitionMustSatisfy([]*rules.Record{recs[3]}) {
		t.Error("φ−1: partition {e4} should be provably mis-categorized by signatures")
	}
	if nf1.PartitionMustSatisfy([]*rules.Record{recs[5]}) {
		t.Error("φ−1: partition {e6} shares the author Nan Tang with the pivot")
	}

	nf2 := BuildNegative(ctx, rs.Negative[1], pivot)
	if !nf2.PartitionMustSatisfy([]*rules.Record{recs[5]}) {
		t.Error("φ−2: partition {e6} should be provably mis-categorized by signatures")
	}
}

// TestProbeCertain: probing e4 against the pivot under φ−1 finds a certain
// pair; probing e1 (a pivot-like record) does not.
func TestProbeCertain(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	pivot := []*rules.Record{recs[0], recs[1], recs[2], recs[4]}
	nf := BuildNegative(ctx, rs.Negative[0], pivot)
	if pr := nf.Probe(recs[3]); pr.Certain < 0 {
		t.Error("probe(e4) should find a certainly-dissimilar pivot record")
	}
	if pr := nf.Probe(recs[0]); pr.Certain >= 0 {
		t.Errorf("probe(e1) should not be certainly dissimilar from the pivot")
	}
}

// randomGroup builds a random group over a small schema with token sets and
// ontology venues for property testing.
func randomGroup(rng *rand.Rand, n int) (*entity.Group, *rules.Config, rules.RuleSet) {
	schema := entity.MustSchema("Name", "Tags", "Venue")
	tree := ontology.VenueTree()
	leaves := tree.Leaves()
	cfg := rules.NewConfig(schema).
		WithTokenMode("Name", rules.WordsMode).
		WithTree("Venue", tree)
	g := entity.NewGroup("rand", schema)
	words := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"}
	for i := 0; i < n; i++ {
		name := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		var tags []string
		for k := 0; k < 1+rng.Intn(4); k++ {
			tags = append(tags, words[rng.Intn(len(words))])
		}
		venue := leaves[rng.Intn(len(leaves))].Label
		e, err := entity.NewEntity(schema, fmt.Sprintf("r%d", i), [][]string{{name}, tags, {venue}})
		if err != nil {
			panic(err)
		}
		g.MustAdd(e)
	}
	rs := rules.RuleSet{
		Positive: []rules.Rule{
			rules.MustParse(cfg, "p1", rules.Positive, "ov(Tags) >= 2"),
			rules.MustParse(cfg, "p2", rules.Positive, "jac(Name) >= 0.5 && on(Venue) >= 0.75"),
			rules.MustParse(cfg, "p3", rules.Positive, "ed(Name) <= 2"),
		},
		Negative: []rules.Rule{
			rules.MustParse(cfg, "n1", rules.Negative, "ov(Tags) = 0"),
			rules.MustParse(cfg, "n2", rules.Negative, "ov(Tags) <= 1 && on(Venue) <= 0.25"),
			rules.MustParse(cfg, "n3", rules.Negative, "jac(Name) <= 0.2 && ed(Name) >= 4"),
		},
	}
	return g, cfg, rs
}

// TestGuaranteesRandomized re-checks both signature guarantees over random
// groups, exercising set, edit and ontology schemes together.
func TestGuaranteesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g, cfg, rs := randomGroup(rng, 3+rng.Intn(20))
		recs, err := cfg.NewRecords(g)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(cfg, recs, rs)
		var preds []rules.Predicate
		var sides []bool // true = similar side
		for _, r := range rs.Positive {
			for _, p := range r.Predicates {
				preds, sides = append(preds, p), append(sides, true)
			}
		}
		for _, r := range rs.Negative {
			for _, p := range r.Predicates {
				preds, sides = append(preds, p), append(sides, false)
			}
		}
		for pi, p := range preds {
			for i := range recs {
				for j := i + 1; j < len(recs); j++ {
					si := ctx.Signatures(p, recs[i])
					sj := ctx.Signatures(p, recs[j])
					wild := hasUniversal(si) || hasUniversal(sj)
					if sides[pi] {
						if p.Eval(recs[i], recs[j]) && !wild && !shares(si, sj) {
							t.Fatalf("trial %d: similar-side violation on %v for (%d,%d)", trial, p, i, j)
						}
					} else {
						if !wild && !shares(si, sj) && !p.Eval(recs[i], recs[j]) {
							t.Fatalf("trial %d: dissimilar-side violation on %v for (%d,%d)", trial, p, i, j)
						}
					}
				}
			}
		}
	}
}

// TestCandidatesCompleteRandomized: index candidates cover all satisfied
// pairs on random groups.
func TestCandidatesCompleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g, cfg, rs := randomGroup(rng, 3+rng.Intn(25))
		recs, err := cfg.NewRecords(g)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(cfg, recs, rs)
		for _, rule := range rs.Positive {
			ix := BuildPositive(ctx, rule, recs)
			cands := make(map[[2]int]bool)
			for _, c := range ix.Candidates() {
				cands[[2]int{c.I, c.J}] = true
			}
			for i := range recs {
				for j := i + 1; j < len(recs); j++ {
					if rule.Eval(recs[i], recs[j]) && !cands[[2]int{i, j}] {
						t.Fatalf("trial %d rule %s: pair (%d,%d) satisfied but not candidate",
							trial, rule.Name, i, j)
					}
				}
			}
		}
	}
}

// TestNegativeFilterSoundRandomized: PartitionMustSatisfy never lies — when
// it returns true, some (indeed every) pair satisfies the rule.
func TestNegativeFilterSoundRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g, cfg, rs := randomGroup(rng, 4+rng.Intn(16))
		recs, err := cfg.NewRecords(g)
		if err != nil {
			t.Fatal(err)
		}
		ctx := NewContext(cfg, recs, rs)
		mid := len(recs) / 2
		pivot, rest := recs[:mid], recs[mid:]
		if len(pivot) == 0 || len(rest) == 0 {
			continue
		}
		for _, rule := range rs.Negative {
			nf := BuildNegative(ctx, rule, pivot)
			if nf.PartitionMustSatisfy(rest) {
				for _, e := range rest {
					for _, p := range pivot {
						if !rule.Eval(e, p) {
							t.Fatalf("trial %d rule %s: filter claimed certain but pair fails", trial, rule.Name)
						}
					}
				}
			}
			for _, e := range rest {
				pr := nf.Probe(e)
				if pr.Certain >= 0 {
					if !rule.Eval(e, pivot[pr.Certain]) {
						t.Fatalf("trial %d rule %s: probe certain pair fails verification", trial, rule.Name)
					}
				}
			}
		}
	}
}

func TestContextValidate(t *testing.T) {
	_, recs, _, ctx := buildScholar(t)
	if err := ctx.Validate(recs); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Validate(recs[:2]); err == nil {
		t.Fatal("mismatched record count should fail")
	}
}

// TestContextConcurrentReads asserts the concurrent-read guarantee the
// Context documents (and parallel DIME+ relies on): after NewContext,
// Signatures for every predicate of the rule set is a pure read, so
// concurrent calls are race-free and agree with a sequential baseline. The
// race detector (make check runs the suite with -race) turns any lazily
// populated cache left behind by NewContext into a failure here.
func TestContextConcurrentReads(t *testing.T) {
	_, recs, rs, ctx := buildScholar(t)
	var preds []rules.Predicate
	for _, r := range append(append([]rules.Rule(nil), rs.Positive...), rs.Negative...) {
		preds = append(preds, r.Predicates...)
	}
	// Sequential baseline on a fresh context (same construction is
	// deterministic, so cross-context signatures must match too).
	want := make(map[string][]string)
	key := func(pi, ri int) string { return fmt.Sprintf("%d/%d", pi, ri) }
	for pi, p := range preds {
		for ri, r := range recs {
			want[key(pi, ri)] = ctx.Signatures(p, r)
		}
	}
	const goroutines = 8
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		go func(w int) {
			for round := 0; round < 20; round++ {
				for pi, p := range preds {
					for ri, r := range recs {
						got := ctx.Signatures(p, r)
						if fmt.Sprint(got) != fmt.Sprint(want[key(pi, ri)]) {
							errs <- fmt.Errorf("goroutine %d: signatures diverged for predicate %d record %d: %v vs %v",
								w, pi, ri, got, want[key(pi, ri)])
							return
						}
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < goroutines; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
