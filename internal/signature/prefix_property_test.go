package signature

import (
	"fmt"
	"math/rand"
	"testing"

	"dime/internal/entity"
	"dime/internal/rules"
	"dime/internal/sim"
	"dime/internal/tokenize"
)

// TestPrefixLemmaDirect checks the prefix-filter lemma at the token level
// for every set-similarity family: for random token sets a, b and random
// thresholds, if the similarity meets the threshold then the per-side
// prefixes (under a shared document-frequency ordering) intersect.
func TestPrefixLemmaDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	universe := make([]string, 40)
	for i := range universe {
		universe[i] = fmt.Sprintf("tok%02d", i)
	}
	randSet := func() []string {
		n := 1 + rng.Intn(10)
		perm := rng.Perm(len(universe))[:n]
		out := make([]string, n)
		for i, j := range perm {
			out[i] = universe[j]
		}
		return out
	}

	for trial := 0; trial < 3000; trial++ {
		a, b := randSet(), randSet()
		ord := tokenize.BuildOrdering([][]string{a, b, randSet(), randSet()})
		sa, sb := ord.Sorted(a), ord.Sorted(b)

		check := func(fn rules.Func, value, theta float64) {
			if value < theta {
				return
			}
			ta := overlapBound(fn, theta, len(a))
			tb := overlapBound(fn, theta, len(b))
			if ta < 1 || tb < 1 {
				return // universal signature: never prunes
			}
			ka, kb := len(a)-ta+1, len(b)-tb+1
			if ka <= 0 || kb <= 0 {
				t.Fatalf("trial %d %v: satisfied pair with empty prefix (value=%v θ=%v)", trial, fn, value, theta)
			}
			if !sharesTokens(sa[:ka], sb[:kb]) {
				t.Fatalf("trial %d %v: sim=%v ≥ θ=%v but prefixes disjoint\na=%v\nb=%v",
					trial, fn, value, theta, sa[:ka], sb[:kb])
			}
		}

		ov := float64(sim.Overlap(a, b))
		check(rules.Overlap, ov, float64(1+rng.Intn(5)))
		theta := 0.05 + rng.Float64()*0.9
		check(rules.Jaccard, sim.Jaccard(a, b), theta)
		check(rules.Dice, sim.Dice(a, b), theta)
		check(rules.Cosine, sim.Cosine(a, b), theta)
	}
}

func sharesTokens(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// TestGramPrefixLemmaDirect checks the q-gram prefix lemma: strings within
// edit distance b share a gram among their first q·b+1 grams (when both have
// enough grams for the bound to be meaningful).
func TestGramPrefixLemmaDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(54321))
	alphabet := []rune("abcdefgh")
	randStr := func(n int) string {
		out := make([]rune, n)
		for i := range out {
			out[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(out)
	}
	const q = 2
	for trial := 0; trial < 2000; trial++ {
		s1 := randStr(6 + rng.Intn(12))
		// Derive s2 by a few random edits so small distances actually occur.
		s2 := []rune(s1)
		edits := rng.Intn(4)
		for e := 0; e < edits && len(s2) > 1; e++ {
			i := rng.Intn(len(s2))
			switch rng.Intn(3) {
			case 0:
				s2[i] = alphabet[rng.Intn(len(alphabet))]
			case 1:
				s2 = append(s2[:i], s2[i+1:]...)
			default:
				s2 = append(s2[:i], append([]rune{alphabet[rng.Intn(len(alphabet))]}, s2[i:]...)...)
			}
		}
		str2 := string(s2)
		d := sim.EditDistance(s1, str2)
		for bound := d; bound <= d+2; bound++ {
			g1 := tokenize.Dedup(tokenize.QGrams(s1, q))
			g2 := tokenize.Dedup(tokenize.QGrams(str2, q))
			k := q*bound + 1
			if len(g1) < k || len(g2) < k {
				continue // vacuous: the scheme emits Universal here
			}
			ord := tokenize.BuildOrdering([][]string{g1, g2})
			p1 := ord.Sorted(g1)[:k]
			p2 := ord.Sorted(g2)[:k]
			if !sharesTokens(p1, p2) {
				t.Fatalf("trial %d: ed(%q,%q)=%d ≤ %d but gram prefixes disjoint", trial, s1, str2, d, bound)
			}
		}
	}
}

// TestForEachMapDedupPath exercises the hash-set dedup branch used for very
// large groups by running the same group through both paths and comparing.
func TestForEachMapDedupPath(t *testing.T) {
	schema := entity.MustSchema("Tags")
	cfg := rules.NewConfig(schema)
	g := entity.NewGroup("g", schema)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		tags := []string{fmt.Sprintf("t%d", rng.Intn(12)), fmt.Sprintf("t%d", rng.Intn(12)), fmt.Sprintf("u%d", i/3)}
		e, err := entity.NewEntity(schema, fmt.Sprintf("e%02d", i), [][]string{tags})
		if err != nil {
			t.Fatal(err)
		}
		g.MustAdd(e)
	}
	rs := rules.RuleSet{
		Positive: []rules.Rule{rules.MustParse(cfg, "p", rules.Positive, "ov(Tags) >= 2")},
		Negative: []rules.Rule{rules.MustParse(cfg, "n", rules.Negative, "ov(Tags) = 0")},
	}
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(cfg, recs, rs)
	ix := BuildPositive(ctx, rs.Positive[0], recs)

	fromBitset := ix.Candidates()

	old := bitsetLimit
	bitsetLimit = 1 // force the map path
	defer func() { bitsetLimit = old }()
	ix2 := BuildPositive(ctx, rs.Positive[0], recs)
	fromMap := ix2.Candidates()

	if len(fromBitset) != len(fromMap) {
		t.Fatalf("bitset path %d candidates, map path %d", len(fromBitset), len(fromMap))
	}
	for i := range fromBitset {
		if fromBitset[i] != fromMap[i] {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, fromBitset[i], fromMap[i])
		}
	}
}
