package signature

import (
	"slices"
	"sort"

	"dime/internal/rules"
)

// Candidate is an unordered record pair (I < J) that shares signatures under
// a positive rule and therefore must be verified. Shared counts the shared
// signatures summed over the rule's predicates; the verification scheduler
// turns it into a similarity probability estimate.
type Candidate struct {
	I, J   int
	Shared int
}

// bitsetLimit is the group size up to which pair dedup uses a bitset
// (n² bits ≈ 256 MB at the limit); it is a variable only so tests can force
// the hash-set path.
var bitsetLimit = 45000

func pairKey(i, j int) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(i)<<32 | uint64(uint32(j))
}

// PosIndex holds the inverted indexes of one positive rule over a group's
// records and produces the candidate pairs of DIME+'s filter step. A pair is
// a candidate iff for every predicate of the rule the two records share a
// signature (the tuple-signature semantics of Section IV-B) or one of them
// is a wildcard on that predicate.
//
// Candidate generation enumerates co-occurrence pairs only for the cheapest
// predicate (fewest expected pairs) and filters them against the remaining
// predicates by intersecting the two records' signature sets directly, so a
// rule with one selective predicate stays fast even when another predicate's
// inverted lists are long.
type PosIndex struct {
	// Rule is the positive rule the index serves.
	Rule rules.Rule

	n         int
	perPred   []predIndex
	sigCounts []int // total signatures per record across predicates
}

// predIndex is the inverted index of one predicate. Signatures are interned
// to dense int32 ids (first-seen order, deterministic), so per-pair
// intersection compares integers rather than strings.
type predIndex struct {
	ids       map[string]int32
	lists     [][]int   // signature id -> record indexes (ascending)
	sigs      [][]int32 // per record: its signature ids, sorted ascending
	wildcards []int     // records whose signature set contains Universal
	isWild    []bool
	pairEst   int // Σ len(list)² + wildcards·n — enumeration cost estimate
}

// BuildPositive constructs the signature index of a positive rule over all
// records of a group.
func BuildPositive(ctx *Context, rule rules.Rule, recs []*rules.Record) *PosIndex {
	ix := &PosIndex{Rule: rule, n: len(recs)}
	ix.perPred = make([]predIndex, len(rule.Predicates))
	ix.sigCounts = make([]int, len(recs))
	for pi, p := range rule.Predicates {
		pd := predIndex{
			ids:    make(map[string]int32),
			sigs:   make([][]int32, len(recs)),
			isWild: make([]bool, len(recs)),
		}
		// All per-record id sets share one arena sized by the total signature
		// count (an upper bound: wildcards are skipped), so the build costs
		// one allocation here instead of one per record.
		total := 0
		for _, r := range recs {
			total += len(ctx.Signatures(p, r))
		}
		backing := make([]int32, 0, total)
		for ri, r := range recs {
			sigs := ctx.Signatures(p, r)
			ix.sigCounts[ri] += len(sigs)
			start := len(backing)
			for _, s := range sigs {
				if s == Universal {
					pd.isWild[ri] = true
					continue
				}
				id, ok := pd.ids[s]
				if !ok {
					id = int32(len(pd.lists))
					pd.ids[s] = id
					pd.lists = append(pd.lists, nil)
				}
				backing = append(backing, id)
				pd.lists[id] = append(pd.lists[id], ri)
			}
			kept := backing[start:len(backing):len(backing)]
			slices.Sort(kept)
			pd.sigs[ri] = kept
			if pd.isWild[ri] {
				pd.wildcards = append(pd.wildcards, ri)
			}
		}
		for _, list := range pd.lists {
			pd.pairEst += len(list) * (len(list) - 1) / 2
		}
		pd.pairEst += len(pd.wildcards) * len(recs)
		ix.perPred[pi] = pd
	}
	return ix
}

// SigCount returns the total signature count of record i across the rule's
// predicates (used to estimate similarity probability).
func (ix *PosIndex) SigCount(i int) int { return ix.sigCounts[i] }

// sharedCount intersects the (sorted, interned) signature-id sets of records
// i and j on this predicate by a merge walk — no allocation, integer
// comparisons only. The second return value is true when the pair passes the
// predicate's filter (shares a signature or a wildcard is involved).
func (pd *predIndex) sharedCount(i, j int) (int, bool) {
	if pd.isWild[i] || pd.isWild[j] {
		return 0, true
	}
	a, b := pd.sigs[i], pd.sigs[j]
	n := 0
	for x, y := 0, 0; x < len(a) && y < len(b); {
		switch {
		case a[x] == b[y]:
			n++
			x++
			y++
		case a[x] < b[y]:
			x++
		default:
			y++
		}
	}
	return n, n > 0
}

// ForEach streams the candidate pairs of the rule in a deterministic order
// (base-predicate signatures sorted, then list position), calling fn once
// per unique pair. Pairs not visited cannot satisfy the rule. The Shared
// count sums shared signatures across all predicates.
func (ix *PosIndex) ForEach(fn func(Candidate)) {
	if len(ix.perPred) == 0 || ix.n < 2 {
		return
	}
	// Enumerate pairs for the predicate with the smallest pair estimate.
	base := 0
	for pi := range ix.perPred {
		if ix.perPred[pi].pairEst < ix.perPred[base].pairEst {
			base = pi
		}
	}
	bp := &ix.perPred[base]

	// Pair dedup: a bitset over i·n+j while the n² bits stay within ~256 MB
	// (n ≤ 45k). Beyond that a bitset is still the right call when the pair
	// estimate is large (a hash set with tens of millions of entries costs
	// far more than zeroing ~1–2 GB once); only large-n sparse runs use the
	// hash set.
	var bitset []uint64
	var seen map[uint64]struct{}
	denseBits := int64(ix.n)*int64(ix.n)/8 <= 2<<30 && bp.pairEst > 8_000_000
	if ix.n <= bitsetLimit || denseBits {
		bitset = make([]uint64, (ix.n*ix.n+63)/64)
	} else {
		seen = make(map[uint64]struct{}, bp.pairEst/2+1)
	}
	dup := func(i, j int) bool {
		if bitset != nil {
			bit := uint(i*ix.n + j)
			word, mask := bit/64, uint64(1)<<(bit%64)
			if bitset[word]&mask != 0 {
				return true
			}
			bitset[word] |= mask
			return false
		}
		key := pairKey(i, j)
		if _, ok := seen[key]; ok {
			return true
		}
		seen[key] = struct{}{}
		return false
	}
	emit := func(i, j, sharedBase int) {
		if i > j {
			i, j = j, i
		}
		if dup(i, j) {
			return
		}
		shared := sharedBase
		for pi := range ix.perPred {
			if pi == base {
				continue
			}
			c, pass := ix.perPred[pi].sharedCount(i, j)
			if !pass {
				return
			}
			shared += c
		}
		fn(Candidate{I: min(i, j), J: max(i, j), Shared: shared})
	}
	for _, list := range bp.lists {
		for a := 0; a < len(list); a++ {
			for b := a + 1; b < len(list); b++ {
				if list[a] == list[b] {
					continue
				}
				// Base shared count: re-intersect so duplicates across
				// several shared base signatures are counted once, at emit.
				c, _ := bp.sharedCount(list[a], list[b])
				emit(list[a], list[b], c)
			}
		}
	}
	for _, w := range bp.wildcards {
		for o := 0; o < ix.n; o++ {
			if o != w {
				emit(w, o, 0)
			}
		}
	}
}

// Candidates materializes ForEach's stream ordered by (I, J).
func (ix *PosIndex) Candidates() []Candidate {
	var out []Candidate
	ix.ForEach(func(c Candidate) { out = append(out, c) })
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// NegFilter is the signature filter of one negative rule against the pivot
// partition P*: per-predicate inverted indexes over the pivot's records
// (Section IV-D). For a pair (e, e*), sharing no signature on every
// predicate proves φ−(e, e*) is true.
type NegFilter struct {
	// Rule is the negative rule the filter serves.
	Rule rules.Rule

	ctx     *Context
	pivot   []*rules.Record
	perPred []negPredIndex
}

type negPredIndex struct {
	lists     map[string][]int // signature -> positions within pivot slice
	wildcards []int
	sigUnion  map[string]struct{}
	anyWild   bool
}

// BuildNegative indexes the pivot partition's records under a negative rule.
func BuildNegative(ctx *Context, rule rules.Rule, pivot []*rules.Record) *NegFilter {
	nf := &NegFilter{Rule: rule, ctx: ctx, pivot: pivot}
	nf.perPred = make([]negPredIndex, len(rule.Predicates))
	for pi, p := range rule.Predicates {
		pd := negPredIndex{
			lists:    make(map[string][]int),
			sigUnion: make(map[string]struct{}),
		}
		for ri, r := range pivot {
			sigs := ctx.Signatures(p, r)
			for _, s := range sigs {
				if s == Universal {
					pd.wildcards = append(pd.wildcards, ri)
				} else {
					pd.lists[s] = append(pd.lists[s], ri)
					pd.sigUnion[s] = struct{}{}
				}
			}
		}
		pd.anyWild = len(pd.wildcards) > 0
		nf.perPred[pi] = pd
	}
	return nf
}

// PartitionMustSatisfy reports whether every pair (e ∈ part, e* ∈ pivot)
// provably satisfies the negative rule via signatures alone: for every
// predicate, the partition's signature union is disjoint from the pivot's
// and neither side has wildcards (lines 18–19 of Algorithm 2).
func (nf *NegFilter) PartitionMustSatisfy(part []*rules.Record) bool {
	if len(part) == 0 || len(nf.pivot) == 0 {
		return false
	}
	for pi, p := range nf.Rule.Predicates {
		pd := &nf.perPred[pi]
		if pd.anyWild {
			return false
		}
		for _, r := range part {
			for _, s := range nf.ctx.Signatures(p, r) {
				if s == Universal {
					return false
				}
				if _, shared := pd.sigUnion[s]; shared {
					return false
				}
			}
		}
	}
	return true
}

// ProbeResult describes one outside record probed against the pivot.
type ProbeResult struct {
	// Certain is the position (within the pivot slice) of some pivot record
	// whose pair with the probed record provably satisfies the rule, or -1
	// when no such record exists.
	Certain int
	// Shared maps pivot position -> shared-signature count summed over
	// predicates, for the pivot records that share something somewhere. Only
	// meaningful when Certain == -1.
	Shared map[int]int
}

// Probe checks one record of an outside partition against the pivot. If some
// pivot record shares no signatures with r on any predicate (and no
// wildcards interfere), the pair provably satisfies the rule and its pivot
// position is returned in Certain. Otherwise Shared carries the per-pivot
// shared counts used to order verification.
//
// Probe allocates its result map on every call; hot loops that probe many
// records against the same pivot should hold a ProbeScratch and call
// ProbeInto instead.
func (nf *NegFilter) Probe(r *rules.Record) ProbeResult {
	var sc ProbeScratch
	res := ProbeResult{Certain: nf.ProbeInto(r, &sc), Shared: make(map[int]int, sc.nonzero)}
	for pi, c := range sc.shared {
		if c != 0 {
			res.Shared[pi] = int(c)
		}
	}
	return res
}

// ProbeScratch holds the per-probe working buffers of ProbeInto so repeated
// probes against the same (or smaller) pivot allocate nothing. The zero value
// is ready to use; a scratch must not be shared between goroutines.
type ProbeScratch struct {
	matched []bool
	shared  []int32
	nonzero int
}

// SharedCount returns the shared-signature count of pivot position pi from
// the most recent ProbeInto (ProbeResult.Shared[pi], with 0 for absent keys).
func (sc *ProbeScratch) SharedCount(pi int) int { return int(sc.shared[pi]) }

// NonzeroShared returns the number of pivot positions with a nonzero shared
// count in the most recent ProbeInto — exactly len(ProbeResult.Shared) of the
// allocating Probe.
func (sc *ProbeScratch) NonzeroShared() int { return sc.nonzero }

// ProbeInto is Probe with caller-owned buffers: it returns the Certain pivot
// position (or -1) and leaves the per-pivot shared counts readable through
// sc. Results are identical to Probe's for the same inputs.
func (nf *NegFilter) ProbeInto(r *rules.Record, sc *ProbeScratch) int {
	n := len(nf.pivot)
	if cap(sc.matched) < n {
		sc.matched = make([]bool, n)
		sc.shared = make([]int32, n)
	}
	sc.matched = sc.matched[:n]
	sc.shared = sc.shared[:n]
	for i := range sc.matched {
		sc.matched[i] = false
		sc.shared[i] = 0
	}
	sc.nonzero = 0
	// matched[ri] = true when the pair (r, pivot[ri]) shares a signature (or
	// hits a wildcard) on at least one predicate and thus cannot be proven
	// dissimilar by the filter.
	selfWildAll := false
	for pi, p := range nf.Rule.Predicates {
		pd := &nf.perPred[pi]
		sigs := nf.ctx.Signatures(p, r)
		selfWild := false
		for _, s := range sigs {
			if s == Universal {
				selfWild = true
				continue
			}
			for _, ri := range pd.lists[s] {
				sc.matched[ri] = true
				if sc.shared[ri] == 0 {
					sc.nonzero++
				}
				sc.shared[ri]++
			}
		}
		if selfWild {
			selfWildAll = true
		}
		for _, ri := range pd.wildcards {
			sc.matched[ri] = true
		}
	}
	if selfWildAll {
		for ri := range sc.matched {
			sc.matched[ri] = true
		}
	}
	for ri, m := range sc.matched {
		if !m {
			return ri
		}
	}
	return -1
}
