// Package signature implements DIME+'s filter step (Section IV of the
// paper): per-predicate signature generation for set-based, character-based
// and ontology-based similarity functions, in both the "similar side" used
// by positive rules (share a signature ⇒ candidate pair) and the "dissimilar
// side" used by negative rules (no shared signature ⇒ the predicate must
// hold), plus the inverted indexes built over those signatures.
//
// Guarantees, per predicate p and records a, b:
//
//   - similar side: if p.Eval(a, b) is true then Signatures(p, a) and
//     Signatures(p, b) intersect;
//   - dissimilar side: if Signatures(p, a) and Signatures(p, b) do NOT
//     intersect then p.Eval(a, b) is true.
//
// Set-based predicates use prefix signatures under a global
// document-frequency token ordering; character-based predicates use q-gram
// prefixes; ontology predicates use the τ-ancestor node signatures of
// Lemmas 4.1/4.2.
package signature

import (
	"fmt"
	"math"

	"dime/internal/ontology"
	"dime/internal/rules"
	"dime/internal/tokenize"
)

// Universal is the signature emitted when a predicate is trivially satisfied
// by every pair (e.g. threshold 0 on the similar side): every entity shares
// it, so no pair is pruned.
const Universal = "\x00*"

// Context carries the group-level state signature generation needs: global
// token and q-gram orderings per attribute, and the global τ_min depths for
// ontology node signatures. Build one per group with NewContext.
//
// Concurrency: after NewContext returns, the context is read-only for every
// predicate of the rule set it was built with — NewContext precomputes the
// gram lists, gram orderings, τ_min values and ontology depth floors those
// predicates need, so Signatures, RuleSignatures and the NegFilter/PosIndex
// methods built on them may be called from multiple goroutines concurrently
// (parallel DIME+ relies on this). Two exceptions, both single-goroutine by
// contract: Signatures on a predicate *outside* the original rule set may
// lazily build orderings, and the incremental Append/Accepts path mutates
// the context. Neither may run concurrently with other context use.
type Context struct {
	cfg       *rules.Config
	tokenOrd  []*tokenize.Ordering // per attribute
	gramOrd   map[gramKey]*tokenize.Ordering
	tauMin    map[tauKey]int
	minDepth  map[int]int            // per attribute: shallowest mapped node
	gramCache map[gramKey][][]string // per attribute+q: grams per record index
	// sortedTok caches, per attribute, every record's token list sorted by
	// the global ordering; the prefix signatures of all set predicates on
	// that attribute are subslices of it, so a rule set with several
	// thresholds over one attribute sorts (and allocates) once per record.
	sortedTok map[int][][]string
	// sigCache holds, per rule-set predicate, every record's signature set.
	// NewContext fills it eagerly so that DIME+'s filter phases — index
	// build, partition filtering, and the per-entity probes of the negative
	// phase — are pure lookups instead of recomputing (and reallocating)
	// signatures at every call. Entries are extended by Append.
	sigCache map[rules.Predicate][][]string
	records  []*rules.Record
}

// universalSigs is the shared one-element Universal signature set; callers
// treat signature sets as read-only, so every trivially-satisfied predicate
// can return the same backing array.
var universalSigs = []string{Universal}

type gramKey struct {
	attr int
	q    int
}

type tauKey struct {
	attr  int
	theta float64
}

// NewContext builds the signature context for a compiled group. The rule set
// determines which gram lengths and ontology thresholds need precomputation;
// signatures for predicates outside the rule set are still generated, just
// with lazily built orderings.
func NewContext(cfg *rules.Config, recs []*rules.Record, rs rules.RuleSet) *Context {
	c := &Context{
		cfg:       cfg,
		gramOrd:   make(map[gramKey]*tokenize.Ordering),
		tauMin:    make(map[tauKey]int),
		minDepth:  make(map[int]int),
		gramCache: make(map[gramKey][][]string),
		sortedTok: make(map[int][][]string),
		sigCache:  make(map[rules.Predicate][][]string),
		records:   recs,
	}
	nAttr := cfg.Schema.Len()
	c.tokenOrd = make([]*tokenize.Ordering, nAttr)
	for attr := 0; attr < nAttr; attr++ {
		docs := make([][]string, len(recs))
		for i, r := range recs {
			docs[i] = r.Tokens[attr]
		}
		c.tokenOrd[attr] = tokenize.BuildOrdering(docs)
	}
	for _, r := range rs.Positive {
		for _, p := range r.Predicates {
			c.prepare(p)
		}
	}
	for _, r := range rs.Negative {
		for _, p := range r.Predicates {
			c.prepare(p)
		}
	}
	return c
}

// prepare precomputes every lazily-built cache a predicate's signature
// generation can touch — and the predicate's per-record signature sets —
// so that Signatures is a pure read afterwards (the concurrent-read
// guarantee documented on Context).
func (c *Context) prepare(p rules.Predicate) {
	switch p.Fn {
	case rules.Overlap, rules.Jaccard, rules.Dice, rules.Cosine:
		c.sortedTokensFor(p.Attr)
	case rules.EditSim, rules.EditDist:
		c.gramsFor(p.Attr, qOf(p))
	case rules.Ontology:
		c.tauMinFor(p)
		// The dissimilar side signs with the group's depth floor; warm it
		// here so concurrent probes never race to write the cache.
		c.minDepthFor(p.Attr)
	}
	if _, ok := c.sigCache[p]; !ok {
		sets := make([][]string, len(c.records))
		for i, r := range c.records {
			sets[i] = c.computeSignatures(p, r)
		}
		c.sigCache[p] = sets
	}
}

// sortedTokensFor builds (once) the globally-ordered token lists of every
// record on an attribute.
func (c *Context) sortedTokensFor(attr int) [][]string {
	if s, ok := c.sortedTok[attr]; ok {
		return s
	}
	s := make([][]string, len(c.records))
	for i, r := range c.records {
		s[i] = c.tokenOrd[attr].Sorted(r.Tokens[attr])
	}
	c.sortedTok[attr] = s
	return s
}

func qOf(p rules.Predicate) int {
	if p.Q > 0 {
		return p.Q
	}
	return 2
}

// gramsFor builds (once) the q-gram lists for every record on an attribute
// and the document-frequency ordering over those grams.
func (c *Context) gramsFor(attr, q int) ([][]string, *tokenize.Ordering) {
	key := gramKey{attr, q}
	if g, ok := c.gramCache[key]; ok {
		return g, c.gramOrd[key]
	}
	grams := make([][]string, len(c.records))
	for i, r := range c.records {
		grams[i] = tokenize.QGrams(r.Joined[attr], q)
	}
	c.gramCache[key] = grams
	ord := tokenize.BuildOrdering(grams)
	c.gramOrd[key] = ord
	return grams, ord
}

// tauMinFor computes (once) the global τ_min for an ontology predicate's
// generation threshold over the group's mapped nodes.
func (c *Context) tauMinFor(p rules.Predicate) int {
	theta := genThreshold(p)
	key := tauKey{p.Attr, theta}
	if v, ok := c.tauMin[key]; ok {
		return v
	}
	nodes := make([]*ontology.Node, 0, len(c.records))
	for _, r := range c.records {
		nodes = append(nodes, r.Nodes[p.Attr])
	}
	v := ontology.TauMin(nodes, theta)
	c.tauMin[key] = v
	return v
}

// genThreshold maps a predicate to the similarity threshold its signatures
// are generated at. Similar-side predicates use their own threshold;
// dissimilar-side predicates use the smallest value strictly above σ
// (σ+1 for the integral overlap function, σ+ε for continuous similarities,
// σ−1 as the gram bound for edit distance).
func genThreshold(p rules.Predicate) float64 {
	const eps = 1e-9
	if similarSide(p) {
		return p.Threshold
	}
	switch p.Fn {
	case rules.Overlap:
		return p.Threshold + 1
	case rules.EditDist:
		// dissimilar side of a distance: ed ≥ σ; grams generated at bound σ−1.
		return p.Threshold - 1
	default:
		return p.Threshold + eps
	}
}

// similarSide reports whether the predicate asserts similarity (true for
// GE on similarity functions and LE on EditDist).
func similarSide(p rules.Predicate) bool {
	if p.Fn.DistanceLike() {
		return p.Op == rules.LE
	}
	return p.Op == rules.GE
}

// Signatures returns the signature set of a record w.r.t. one predicate.
// A nil result means the record can never be on the "sharing" side: for a
// similar-side predicate it can never satisfy it; for a dissimilar-side
// predicate it satisfies it against every partner.
//
// For predicates of the rule set the context was built with, the result is a
// cached slice shared across calls; callers must treat it as read-only.
func (c *Context) Signatures(p rules.Predicate, r *rules.Record) []string {
	if sets, ok := c.sigCache[p]; ok && r.Index >= 0 && r.Index < len(sets) && c.records[r.Index] == r {
		return sets[r.Index]
	}
	return c.computeSignatures(p, r)
}

// computeSignatures generates a record's signature set from scratch; the
// sigCache fill and records outside the context go through it.
func (c *Context) computeSignatures(p rules.Predicate, r *rules.Record) []string {
	switch p.Fn {
	case rules.Overlap, rules.Jaccard, rules.Dice, rules.Cosine:
		return c.setSignatures(p, r)
	case rules.EditSim, rules.EditDist:
		return c.gramSignatures(p, r)
	case rules.Ontology:
		return c.ontologySignatures(p, r)
	default:
		return nil
	}
}

// setSignatures returns the prefix signature of the record's token set under
// the global document-frequency ordering. The per-side overlap lower bound t
// follows the function family; the prefix keeps the first len−t+1 tokens.
func (c *Context) setSignatures(p rules.Predicate, r *rules.Record) []string {
	tokens := r.Tokens[p.Attr]
	theta := genThreshold(p)
	if theta <= 0 {
		return universalSigs
	}
	n := len(tokens)
	t := overlapBound(p.Fn, theta, n)
	if t < 1 {
		return universalSigs
	}
	k := n - t + 1
	if k <= 0 {
		return nil
	}
	// Records of the context share one globally-sorted token list per
	// attribute; every threshold's prefix is a subslice of it.
	if s := c.sortedTok[p.Attr]; r.Index >= 0 && r.Index < len(s) && c.records[r.Index] == r {
		return s[r.Index][:k]
	}
	sorted := c.tokenOrd[p.Attr].Sorted(tokens)
	return sorted[:k]
}

// overlapBound returns the guaranteed minimum overlap t for a record of n
// tokens when the set similarity is ≥ theta. The ceil is taken with a small
// negative epsilon so exact products (0.75·4) do not round up; rounding t
// down only lengthens the prefix, preserving completeness.
func overlapBound(fn rules.Func, theta float64, n int) int {
	ceil := func(x float64) int { return int(math.Ceil(x - 1e-9)) }
	switch fn {
	case rules.Overlap:
		return ceil(theta)
	case rules.Jaccard:
		return ceil(theta * float64(n))
	case rules.Dice:
		return ceil(theta * float64(n) / 2)
	case rules.Cosine:
		return ceil(theta * theta * float64(n))
	default:
		return 1
	}
}

// gramSignatures returns the q-gram prefix signature for edit-based
// predicates: for an edit-distance bound b, values within b edits share a
// gram among the first q·b+1 grams (Gravano et al.).
func (c *Context) gramSignatures(p rules.Predicate, r *rules.Record) []string {
	q := qOf(p)
	gramsAll, ord := c.gramsFor(p.Attr, q)
	var grams []string
	if r.Index >= 0 && r.Index < len(gramsAll) {
		grams = gramsAll[r.Index]
	} else {
		grams = tokenize.QGrams(r.Joined[p.Attr], q)
	}
	bound := editBound(p, len([]rune(r.Joined[p.Attr])))
	if bound < 0 {
		// Dissimilar side with σ ≤ 0 edits: the predicate is trivially true
		// against every partner; a bound of 0 keeps exact-match pruning.
		bound = 0
	}
	k := q*bound + 1
	grams = tokenize.Dedup(append([]string(nil), grams...))
	if len(grams) < k {
		// The q-gram count guarantee is vacuous for strings this short
		// (fewer than q·b+1 grams): emit the wildcard so the record pairs
		// with everything instead of being pruned incorrectly.
		return universalSigs
	}
	ord.Sort(grams)
	return grams[:k]
}

// editBound converts an edit predicate's generation threshold to an integer
// edit-distance bound for a value of rune length n.
func editBound(p rules.Predicate, n int) int {
	theta := genThreshold(p)
	switch p.Fn {
	case rules.EditDist:
		return int(theta)
	case rules.EditSim:
		if theta <= 0 {
			return n // universal-ish: keep all grams
		}
		if theta > 1 {
			return 0
		}
		// sim ≥ θ ⇒ ed ≤ (1−θ)·max and max ≤ n/θ ⇒ ed ≤ (1−θ)·n/θ.
		return int(math.Floor((1-theta)*float64(n)/theta + 1e-9))
	default:
		return 0
	}
}

// ontologySignatures returns the node signatures of the record's mapped
// node. On the similar side they are the τ-ancestor node signatures of
// Lemma 4.2: nodes with similarity ≥ θ share their ancestor at depth
// min(τ_n, τ_min).
//
// On the dissimilar side the τ scheme is sound but weak (for small σ it
// degenerates to the root, which everything shares). We instead sign with
// the ancestor at depth d = 1 + ⌊σ·minDepth⌋, where minDepth is the
// shallowest mapped node in the group: if two nodes of depths d_a, d_b ≥ d
// have different ancestors at depth d, their LCA has depth ≤ d−1, so their
// similarity is at most 2(d−1)/(d_a+d_b) ≤ (d−1)/minDepth ≤ σ — exactly the
// "no shared signature ⇒ predicate true" guarantee the negative filter
// needs. Nodes shallower than d emit the wildcard.
func (c *Context) ontologySignatures(p rules.Predicate, r *rules.Record) []string {
	node := r.Nodes[p.Attr]
	if node == nil {
		return nil
	}
	if similarSide(p) {
		theta := p.Threshold
		if theta <= 0 {
			return universalSigs
		}
		tmin := c.tauMinFor(p)
		sig := ontology.NodeSignature(node, theta, tmin)
		if sig == nil {
			return nil
		}
		return []string{sig.String()}
	}
	sigma := p.Threshold
	minDepth := c.minDepthFor(p.Attr)
	d := 1 + int(math.Floor(sigma*float64(minDepth)+1e-9))
	if node.Depth < d {
		return universalSigs
	}
	sig := node.AncestorAt(d)
	if sig == nil {
		return universalSigs
	}
	return []string{sig.String()}
}

// minDepthFor returns (and caches) the minimum depth of the group's mapped
// nodes on an attribute; attributes with no mapped nodes yield 1.
func (c *Context) minDepthFor(attr int) int {
	if v, ok := c.minDepth[attr]; ok {
		return v
	}
	min := math.MaxInt32
	for _, r := range c.records {
		if n := r.Nodes[attr]; n != nil && n.Depth < min {
			min = n.Depth
		}
	}
	if min == math.MaxInt32 {
		min = 1
	}
	c.minDepth[attr] = min
	return min
}

// RuleSignatures returns the per-predicate signature sets of a record w.r.t.
// a whole rule, in predicate order.
func (c *Context) RuleSignatures(r rules.Rule, rec *rules.Record) [][]string {
	out := make([][]string, len(r.Predicates))
	for i, p := range r.Predicates {
		out[i] = c.Signatures(p, rec)
	}
	return out
}

// Validate sanity-checks that the context was built over the given records.
func (c *Context) Validate(recs []*rules.Record) error {
	if len(recs) != len(c.records) {
		return fmt.Errorf("signature: context built over %d records, got %d", len(c.records), len(recs))
	}
	return nil
}
