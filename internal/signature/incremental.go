package signature

import (
	"sort"

	"dime/internal/ontology"
	"dime/internal/rules"
	"dime/internal/tokenize"
)

// Accepts reports whether a new record can be added to this context without
// invalidating the frozen group-level state. Two things can break:
//
//   - a node whose τ is below the frozen τ_min would make Lemma 4.2's node
//     signatures compare at different depths (similar pairs could stop
//     sharing signatures — an incompleteness bug);
//   - a node shallower than the frozen minimum depth would weaken the
//     dissimilar-side depth bound (provably-dissimilar conclusions could
//     become wrong — a soundness bug).
//
// Token and gram orderings never break: the frozen ordering remains one
// consistent global order (unseen tokens rank after all seen ones), which is
// all the prefix lemma needs.
func (c *Context) Accepts(rec *rules.Record, rs rules.RuleSet) bool {
	check := func(p rules.Predicate) bool {
		if p.Fn != rules.Ontology {
			return true
		}
		node := rec.Nodes[p.Attr]
		if node == nil {
			return true // nil nodes have no signatures on either side
		}
		if similarSide(p) {
			return ontology.Tau(node.Depth, genThreshold(p)) >= c.tauMinFor(p)
		}
		return node.Depth >= c.minDepthFor(p.Attr)
	}
	for _, r := range rs.Positive {
		for _, p := range r.Predicates {
			if !check(p) {
				return false
			}
		}
	}
	for _, r := range rs.Negative {
		for _, p := range r.Predicates {
			if !check(p) {
				return false
			}
		}
	}
	return true
}

// Append registers a new record with the context so signature generation can
// use its cached grams, sorted-token lists and per-predicate signature sets.
// The caller must have verified Accepts first.
func (c *Context) Append(rec *rules.Record) {
	for key := range c.gramCache {
		c.gramCache[key] = append(c.gramCache[key],
			appendGrams(rec, key))
	}
	for attr, s := range c.sortedTok {
		c.sortedTok[attr] = append(s, c.tokenOrd[attr].Sorted(rec.Tokens[attr]))
	}
	c.records = append(c.records, rec)
	// Extend each cached predicate's signature list; entries are independent,
	// so the map's iteration order cannot influence results.
	for p, sets := range c.sigCache {
		c.sigCache[p] = append(sets, c.computeSignatures(p, rec))
	}
}

func appendGrams(rec *rules.Record, key gramKey) []string {
	return tokenize.QGrams(rec.Joined[key.attr], key.q)
}

// Add indexes one new record (which must already carry its final Index,
// equal to the current record count) and returns the candidate pairs the
// new record forms with existing records, ordered by the partner's index.
// The completeness guarantee is unchanged: any existing record that could
// satisfy the rule together with the new one is returned.
func (ix *PosIndex) Add(ctx *Context, rec *rules.Record) []Candidate {
	ri := ix.n
	ix.n++
	ix.sigCounts = append(ix.sigCounts, 0)

	type predSigs struct {
		ids  []int32
		wild bool
	}
	perRec := make([]predSigs, len(ix.Rule.Predicates))
	for pi, p := range ix.Rule.Predicates {
		pd := &ix.perPred[pi]
		sigs := ctx.Signatures(p, rec)
		ix.sigCounts[ri] += len(sigs)
		kept := make([]int32, 0, len(sigs))
		wild := false
		for _, s := range sigs {
			if s == Universal {
				wild = true
				continue
			}
			id, ok := pd.ids[s]
			if !ok {
				id = int32(len(pd.lists))
				pd.ids[s] = id
				pd.lists = append(pd.lists, nil)
			}
			kept = append(kept, id)
		}
		sortInt32(kept)
		perRec[pi] = predSigs{ids: kept, wild: wild}
	}

	// Choose the probe predicate: the one where the new record is not a
	// wildcard and its signature lists are shortest.
	probe := -1
	probeCost := int(^uint(0) >> 1)
	for pi := range ix.Rule.Predicates {
		if perRec[pi].wild {
			continue
		}
		cost := 0
		for _, id := range perRec[pi].ids {
			cost += len(ix.perPred[pi].lists[id])
		}
		cost += len(ix.perPred[pi].wildcards)
		if cost < probeCost {
			probe, probeCost = pi, cost
		}
	}

	var matched []int
	if probe < 0 {
		// Wildcard on every predicate: the new record pairs with everyone.
		matched = make([]int, ri)
		for i := range matched {
			matched[i] = i
		}
	} else {
		seen := make(map[int]struct{})
		pd := &ix.perPred[probe]
		for _, id := range perRec[probe].ids {
			for _, other := range pd.lists[id] {
				seen[other] = struct{}{}
			}
		}
		for _, w := range pd.wildcards {
			seen[w] = struct{}{}
		}
		matched = make([]int, 0, len(seen))
		for other := range seen {
			matched = append(matched, other)
		}
		sort.Ints(matched)
	}

	// Register the new record in every predicate before intersecting so
	// sharedCount sees it.
	for pi := range ix.Rule.Predicates {
		pd := &ix.perPred[pi]
		pd.sigs = append(pd.sigs, perRec[pi].ids)
		pd.isWild = append(pd.isWild, perRec[pi].wild)
		if perRec[pi].wild {
			pd.wildcards = append(pd.wildcards, ri)
		}
		for _, id := range perRec[pi].ids {
			pd.lists[id] = append(pd.lists[id], ri)
		}
	}

	var out []Candidate
	for _, other := range matched {
		shared := 0
		ok := true
		for pi := range ix.Rule.Predicates {
			c, pass := ix.perPred[pi].sharedCount(other, ri)
			if !pass {
				ok = false
				break
			}
			shared += c
		}
		if ok {
			out = append(out, Candidate{I: other, J: ri, Shared: shared})
		}
	}
	return out
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
