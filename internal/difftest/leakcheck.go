package difftest

// Goroutine-leak checking for the differential suites: snapshot the count
// before standing a target up, assert it settles back after tearing it down.
// A leaked worker, long-poll handler or retry loop shows up as a count that
// never returns to baseline, and the failure carries every goroutine's stack
// so the leaked one is identifiable directly from the test log.

import (
	"runtime"
	"time"
)

// GoroutineSnapshot records the goroutine count at a moment the caller
// considers quiescent — before spawning servers, clients or workers.
type GoroutineSnapshot struct {
	// Baseline is the count at snapshot time.
	Baseline int
}

// Goroutines snapshots the current goroutine count.
func Goroutines() GoroutineSnapshot {
	var s GoroutineSnapshot
	s.Baseline = runtime.NumGoroutine()
	return s
}

// CheckReleased polls until the goroutine count returns to the snapshot's
// baseline (plus a small slack for runtime and net/http housekeeping
// goroutines that are not per-request), failing the test with a full stack
// dump if it has not settled within a 5s budget. Teardown is asynchronous —
// cancellation propagates, connections unwind — so a settle loop, not a
// single reading, is the correct assertion.
func (s GoroutineSnapshot) CheckReleased(t TB) {
	t.Helper()
	const (
		slack = 5
		tick  = 10 * time.Millisecond
		ticks = 500 // × 10ms = 5s budget
	)
	n := 0
	for i := 0; i <= ticks; i++ {
		runtime.GC() // nudge finalizer-driven conn cleanup
		n = runtime.NumGoroutine()
		if n <= s.Baseline+slack {
			return
		}
		time.Sleep(tick)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d (+%d slack) after %v\n--- all goroutine stacks ---\n%s",
		n, s.Baseline, slack, ticks*tick, stacks())
}

// stacks renders every goroutine's stack, growing the buffer until the dump
// fits. It runs only on the failure path, so its allocations do not matter.
func stacks() string {
	//lint:ignore alloclint failure-path stack dump; never runs on the green path
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			//lint:ignore alloclint failure-path stack dump; never runs on the green path
			return string(buf[:n])
		}
		//lint:ignore alloclint failure-path stack dump; never runs on the green path
		buf = make([]byte, 2*len(buf))
	}
}
