package difftest

// HTTP-backed differential runner: a Case executed end-to-end against a
// live dimed-style server (internal/serve) instead of in-process calls. The
// harness ingests the case group over the wire, triggers discovery jobs at
// several IntraWorkers settings, fetches the results back over HTTP and
// demands byte-identity with an in-process DIME+ run on the same group —
// partitions, pivot, levels, witnesses and Stats — extending the repo's
// determinism invariant across the serialization and service boundary. The
// scrollbar and witness endpoints are cross-checked against the same
// reference result.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"dime/internal/core"
	"dime/internal/serve"
)

// ServeTarget is a live server to run cases against. Svc registers
// per-case profiles (configs carry node-mapper functions, which do not
// serialize, so registration is programmatic); BaseURL/Client reach its
// HTTP surface.
type ServeTarget struct {
	Svc     *serve.Service
	BaseURL string
	Client  *http.Client
}

// NewServeTarget starts an httptest server over a fresh serve.Service and
// returns the target plus its closer. Jobs wait synchronously via
// ?wait=true, so a small pool suffices.
func NewServeTarget(opts serve.Options) (ServeTarget, func()) {
	svc := serve.NewService(opts)
	ts := httptest.NewServer(serve.Handler(svc))
	return ServeTarget{Svc: svc, BaseURL: ts.URL, Client: ts.Client()}, ts.Close
}

// CheckServe runs the case through DiffServe and fails the test with the
// case name and seed on the first divergence.
func CheckServe(t TB, tgt ServeTarget, c Case, workers ...int) {
	t.Helper()
	if err := c.DiffServe(tgt, workers...); err != nil {
		t.Fatalf("case %s (seed %d): %v", c.Name, c.Seed, err)
	}
}

// DiffServe executes the case against the target server: it registers the
// case profile, creates a corpus named after the case, ingests the group's
// entities over HTTP, and for every workers entry runs one discover →
// wait → results round trip, requiring the decoded result to be exactly —
// stats and witnesses included — the in-process sequential DIME+ result.
// The scrollbar (deepest level) and witness endpoints are checked against
// the same reference. The corpus is deleted before returning so a long
// corpus sweep holds one corpus at a time.
func (c Case) DiffServe(tgt ServeTarget, workers ...int) error {
	want, err := core.DIMEPlus(c.Group, core.Options{
		Config: c.Config, Rules: c.Rules, IntraWorkers: 1, Probe: c.Probe,
	})
	if err != nil {
		return fmt.Errorf("DIME+(in-process): %w", err)
	}

	profile := "case-" + c.Name
	if err := tgt.Svc.RegisterProfile(profile, serve.Profile{Config: c.Config, Rules: c.Rules}); err != nil {
		return err
	}
	if err := tgt.postJSON("/v1/corpora", serve.CreateCorpusRequest{
		ID: c.Name, Profile: profile, Name: c.Group.Name,
	}, http.StatusCreated, nil); err != nil {
		return fmt.Errorf("create corpus: %w", err)
	}
	ingest := serve.IngestRequest{}
	for _, e := range c.Group.Entities {
		ingest.Entities = append(ingest.Entities, serve.EntityJSON{ID: e.ID, Values: e.Values})
	}
	var ingested serve.IngestResponse
	if err := tgt.postJSON("/v1/corpora/"+c.Name+"/entities", ingest, http.StatusOK, &ingested); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if ingested.Size != len(c.Group.Entities) {
		return fmt.Errorf("ingest: size %d, want %d", ingested.Size, len(c.Group.Entities))
	}

	for _, w := range workers {
		if err := c.diffServeOnce(tgt, want, w); err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
	}
	if err := c.checkScrollbarAndWitnesses(tgt, want); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodDelete, tgt.BaseURL+"/v1/corpora/"+c.Name, nil)
	if err != nil {
		return err
	}
	resp, err := tgt.Client.Do(req)
	if err != nil {
		return fmt.Errorf("delete corpus: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete corpus: status %d", resp.StatusCode)
	}
	return nil
}

// diffServeOnce runs one discover→wait→results round trip and compares.
func (c Case) diffServeOnce(tgt ServeTarget, want *core.Result, workers int) error {
	var job serve.JobJSON
	if err := tgt.postJSON("/v1/corpora/"+c.Name+"/discover",
		serve.DiscoverRequest{IntraWorkers: workers}, http.StatusAccepted, &job); err != nil {
		return fmt.Errorf("discover: %w", err)
	}
	var status serve.JobJSON
	if err := tgt.getJSON("/v1/corpora/"+c.Name+"/status/"+job.Job+"?wait=true", &status); err != nil {
		return fmt.Errorf("status: %w", err)
	}
	if status.State != serve.JobDone {
		return fmt.Errorf("job %s finished %q (error %q)", job.Job, status.State, status.Error)
	}
	var wire serve.ResultJSON
	if err := tgt.getJSON("/v1/corpora/"+c.Name+"/results/"+job.Job, &wire); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	got, err := wire.Core(c.Group)
	if err != nil {
		return err
	}
	if err := exactDiff(want, got); err != nil {
		return fmt.Errorf("in-process vs over-HTTP: %w", err)
	}
	return nil
}

// checkScrollbarAndWitnesses cross-checks the query endpoints against the
// reference result.
func (c Case) checkScrollbarAndWitnesses(tgt ServeTarget, want *core.Result) error {
	deepest := len(want.Levels) - 1
	if deepest < 0 {
		return nil
	}
	var sb serve.ScrollbarJSON
	if err := tgt.getJSON(fmt.Sprintf("/v1/corpora/%s/scrollbar/%d", c.Name, deepest), &sb); err != nil {
		return fmt.Errorf("scrollbar: %w", err)
	}
	lv := want.Levels[deepest]
	if sb.Rule != lv.RuleName || !equalStrings(sb.EntityIDs, lv.EntityIDs) || !equalInts(sb.PartitionIndexes, lv.PartitionIndexes) {
		return fmt.Errorf("scrollbar level %d diverged:\n  got  %+v\n  want %+v", deepest, sb, lv)
	}
	for _, pi := range markedOf(want) {
		var wr serve.WitnessReportJSON
		if err := tgt.getJSON(fmt.Sprintf("/v1/corpora/%s/witnesses/%d", c.Name, pi), &wr); err != nil {
			return fmt.Errorf("witnesses/%d: %w", pi, err)
		}
		w := want.Witnesses[pi]
		if !wr.Marked || wr.Witness == nil ||
			wr.Witness.Rule != w.Rule || wr.Witness.EntityID != w.EntityID || wr.Witness.PivotID != w.PivotID {
			return fmt.Errorf("witness for partition %d diverged: got %+v, want %+v", pi, wr, w)
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// postJSON posts body and decodes the response into out (when non-nil),
// failing on an unexpected status.
func (tgt ServeTarget) postJSON(path string, body any, wantStatus int, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := tgt.Client.Post(tgt.BaseURL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	return decodeResponse(resp, wantStatus, out)
}

// getJSON fetches path expecting 200.
func (tgt ServeTarget) getJSON(path string, out any) error {
	resp, err := tgt.Client.Get(tgt.BaseURL + path)
	if err != nil {
		return err
	}
	return decodeResponse(resp, http.StatusOK, out)
}

// decodeResponse enforces the status and decodes the body.
func decodeResponse(resp *http.Response, wantStatus int, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, wantStatus, bytes.TrimSpace(raw))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}
