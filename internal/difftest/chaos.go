package difftest

// Chaos-backed differential runner: the HTTP conformance suite of http.go
// re-run with deterministic fault injection on BOTH sides of the wire — an
// internal/fault middleware in front of the server (injected latency, 503
// refusals, connection resets, truncated bodies) and an internal/fault
// transport under the resilient internal/client doing the talking. The
// invariant under test is the strongest form of the repo's determinism
// contract: with the client retrying through every injected failure, the
// results fetched over the faulty wire must still be byte-identical to an
// in-process DIME+ run, no discovery job may be duplicated (idempotency
// keys dedupe retried submissions), and no injected fault may surface to
// the caller.
//
// Fault rules are scoped by the replay-safety of each endpoint:
//
//   - injected latency and pre-handler 503 refusals are safe on every
//     route — the handler observably never ran, and the client always
//     retries refusals;
//   - connection resets and truncated bodies go only to GETs (idempotent
//     by HTTP semantics) and to POST .../discover, whose submissions carry
//     an Idempotency-Key so a retry returns the original job.
//
// Unkeyed mutations (corpus create, ingest, delete) see only latency and
// 503s: a transport-level failure there would be undecidable for the
// client (did the server apply it?), which is exactly why the client's
// retry policy refuses to retry them — the rules must not manufacture
// failures no correct client could absorb.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"dime/internal/client"
	"dime/internal/core"
	"dime/internal/fault"
	"dime/internal/obs"
	"dime/internal/serve"
)

// ChaosOptions seeds the fault plan.
type ChaosOptions struct {
	// Seed drives every RNG in the target: the server-side injector, the
	// client-side injector and the client's backoff jitter (offset so the
	// three streams differ). Same seed + same request sequence = same
	// faults.
	Seed int64
	// Rate is the per-rule fire probability; <= 0 uses 0.15.
	Rate float64
}

// ChaosTarget is a live server behind fault injection plus the resilient
// client pointed at it.
type ChaosTarget struct {
	Svc *serve.Service
	// Client is the resilient API client; every DiffChaos request goes
	// through its retry loop.
	Client *client.Client
	// ServerFaults injects at the server (middleware): 503s, resets,
	// truncations, latency.
	ServerFaults *fault.Injector
	// ClientFaults injects at the client (transport): synthesized 503s
	// before the request leaves, truncated reads of real responses.
	ClientFaults *fault.Injector
	// Registry holds the client's retry/breaker counters for assertions.
	Registry *obs.Registry
}

// NewChaosTarget starts an httptest server wrapped in fault middleware and
// builds the resilient client (with its own fault transport) against it.
// The returned closer shuts the server down.
func NewChaosTarget(opts serve.Options, chaos ChaosOptions) (ChaosTarget, func()) {
	rate := chaos.Rate
	if rate <= 0 {
		rate = 0.15
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.Flight == nil {
		opts.Flight = obs.NewFlightRecorder(obs.FlightOptions{})
	}
	svc := serve.NewService(opts)

	serverFaults := fault.NewInjector(fault.Options{
		Seed: chaos.Seed,
		Rules: []fault.Rule{
			{Name: "latency", P: rate, Kind: fault.KindLatency, Latency: 200 * time.Microsecond},
			{Name: "refuse-503", P: rate, Kind: fault.KindStatus, Status: http.StatusServiceUnavailable, RetryAfter: "0"},
			{Name: "get-reset", Method: http.MethodGet, P: rate, Kind: fault.KindReset},
			{Name: "get-truncate", Method: http.MethodGet, P: rate, Kind: fault.KindTruncate},
			{Name: "discover-truncate", Method: http.MethodPost, Path: "*/discover", P: rate, Kind: fault.KindTruncate},
		},
	})
	ts := httptest.NewServer(serverFaults.Middleware(serve.Handler(svc)))

	clientFaults := fault.NewInjector(fault.Options{
		Seed: chaos.Seed + 1,
		Rules: []fault.Rule{
			{Name: "local-503", P: rate / 2, Kind: fault.KindStatus, Status: http.StatusServiceUnavailable, RetryAfter: "0"},
			{Name: "local-get-truncate", Method: http.MethodGet, P: rate / 2, Kind: fault.KindTruncate},
		},
	})
	reg := obs.NewRegistry()
	cl := client.New(ts.URL, client.Options{
		HTTPClient:  &http.Client{Transport: clientFaults.Transport(nil)},
		MaxAttempts: 16,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(chaos.Seed + 2)),
		Breaker:     client.BreakerOptions{Threshold: 16, Cooldown: 10 * time.Millisecond},
		Registry:    reg,
	})
	tgt := ChaosTarget{
		Svc:          svc,
		Client:       cl,
		ServerFaults: serverFaults,
		ClientFaults: clientFaults,
		Registry:     reg,
	}
	return tgt, ts.Close
}

// CheckChaos runs the case through DiffChaos under the caller's context and
// fails the test with the case name and seed on the first divergence.
func CheckChaos(t TB, ctx context.Context, tgt ChaosTarget, c Case, workers ...int) {
	t.Helper()
	if err := c.DiffChaos(ctx, tgt, workers...); err != nil {
		t.Fatalf("case %s (seed %d): %v", c.Name, c.Seed, err)
	}
}

// DiffChaos executes the case end-to-end through the fault-wrapped server
// with the resilient client: create → ingest → per-workers keyed discover →
// wait → results, demanding byte-identity with the in-process sequential
// DIME+ result, exactly one job per (case, workers) submission — retried
// discovers must dedupe on their Idempotency-Key — and a verified replay of
// the first key. The scrollbar and witness endpoints are cross-checked like
// the fault-free suite. Every request runs under the caller's ctx, so a
// test deadline or cancellation cuts the replay short instead of letting
// retries grind on.
func (c Case) DiffChaos(ctx context.Context, tgt ChaosTarget, workers ...int) error {
	want, err := core.DIMEPlus(c.Group, core.Options{
		Config: c.Config, Rules: c.Rules, IntraWorkers: 1, Probe: c.Probe,
	})
	if err != nil {
		return fmt.Errorf("DIME+(in-process): %w", err)
	}

	profile := "case-" + c.Name
	if err := tgt.Svc.RegisterProfile(profile, serve.Profile{Config: c.Config, Rules: c.Rules}); err != nil {
		return err
	}
	if _, err := tgt.Client.CreateCorpus(ctx, serve.CreateCorpusRequest{
		ID: c.Name, Profile: profile, Name: c.Group.Name,
	}); err != nil {
		return fmt.Errorf("create corpus: %w", err)
	}
	ingest := serve.IngestRequest{}
	for _, e := range c.Group.Entities {
		ingest.Entities = append(ingest.Entities, serve.EntityJSON{ID: e.ID, Values: e.Values})
	}
	ingested, err := tgt.Client.Ingest(ctx, c.Name, ingest)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if ingested.Size != len(c.Group.Entities) {
		return fmt.Errorf("ingest: size %d, want %d", ingested.Size, len(c.Group.Entities))
	}

	firstKey, firstJob := "", ""
	for _, w := range workers {
		key := fmt.Sprintf("%s-w%d", c.Name, w)
		job, err := tgt.Client.Discover(ctx, c.Name, serve.DiscoverRequest{IntraWorkers: w}, key)
		if err != nil {
			return fmt.Errorf("workers=%d: discover: %w", w, err)
		}
		if firstKey == "" {
			firstKey, firstJob = key, job.Job
		}
		status, err := tgt.Client.WaitJob(ctx, c.Name, job.Job)
		if err != nil {
			return fmt.Errorf("workers=%d: wait: %w", w, err)
		}
		if status.State != serve.JobDone {
			return fmt.Errorf("workers=%d: job %s finished %q (error %q)", w, job.Job, status.State, status.Error)
		}
		wire, err := tgt.Client.JobResult(ctx, c.Name, job.Job)
		if err != nil {
			return fmt.Errorf("workers=%d: results: %w", w, err)
		}
		got, err := wire.Core(c.Group)
		if err != nil {
			return err
		}
		if err := exactDiff(want, got); err != nil {
			return fmt.Errorf("workers=%d: in-process vs over-chaos-HTTP: %w", w, err)
		}
	}

	// Idempotency under chaos: an explicit replay of the first key returns
	// the original job, and the corpus holds exactly one job per submission.
	replay, err := tgt.Client.Discover(ctx, c.Name, serve.DiscoverRequest{IntraWorkers: workers[0]}, firstKey)
	if err != nil {
		return fmt.Errorf("keyed replay: %w", err)
	}
	if replay.Job != firstJob {
		return fmt.Errorf("keyed replay enqueued a new job: %q, want %q", replay.Job, firstJob)
	}
	info, err := tgt.Client.Corpus(ctx, c.Name)
	if err != nil {
		return fmt.Errorf("corpus info: %w", err)
	}
	if info.Jobs != len(workers) {
		return fmt.Errorf("corpus ran %d jobs for %d submissions — retries duplicated work", info.Jobs, len(workers))
	}

	if err := c.checkChaosScrollbar(ctx, tgt, want); err != nil {
		return err
	}
	if err := tgt.Client.DeleteCorpus(ctx, c.Name); err != nil {
		return fmt.Errorf("delete corpus: %w", err)
	}
	return nil
}

// checkChaosScrollbar cross-checks the scrollbar and witness endpoints
// against the reference result, through the resilient client.
func (c Case) checkChaosScrollbar(ctx context.Context, tgt ChaosTarget, want *core.Result) error {
	deepest := len(want.Levels) - 1
	if deepest < 0 {
		return nil
	}
	sb, err := tgt.Client.Scrollbar(ctx, c.Name, deepest)
	if err != nil {
		return fmt.Errorf("scrollbar: %w", err)
	}
	lv := want.Levels[deepest]
	if sb.Rule != lv.RuleName || !equalStrings(sb.EntityIDs, lv.EntityIDs) || !equalInts(sb.PartitionIndexes, lv.PartitionIndexes) {
		return fmt.Errorf("scrollbar level %d diverged:\n  got  %+v\n  want %+v", deepest, sb, lv)
	}
	for _, pi := range markedOf(want) {
		wr, err := tgt.Client.Witness(ctx, c.Name, pi)
		if err != nil {
			return fmt.Errorf("witnesses/%d: %w", pi, err)
		}
		w := want.Witnesses[pi]
		if !wr.Marked || wr.Witness == nil ||
			wr.Witness.Rule != w.Rule || wr.Witness.EntityID != w.EntityID || wr.Witness.PivotID != w.PivotID {
			return fmt.Errorf("witness for partition %d diverged: got %+v, want %+v", pi, wr, w)
		}
	}
	return nil
}
