// Package difftest generates randomized discovery workloads and checks that
// every algorithm variant agrees on them: DIME (Algorithm 1) and DIME+
// (Algorithm 2) must produce the same partitions, pivot and scrollbar levels,
// and DIME+ must produce byte-identical results — stats and witnesses
// included — for every Options.IntraWorkers setting.
//
// The package is the differential harness behind dime_difftest_test.go and
// FuzzDiffDIMEPlus at the repository root: tests build a Corpus of seeded
// cases (cycling the Scholar, Amazon and DBGen generators of
// internal/datagen) and run Check over each; fuzzing feeds decoded groups
// through the same Diff comparison. Failures always carry the case seed so a
// divergence reproduces from a one-line test filter.
package difftest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"dime/internal/core"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/obs"
	"dime/internal/presets"
	"dime/internal/rules"
)

// Case is one generated discovery workload: a group plus the configuration
// and rule set to run it under. Seed reproduces the group via the generator
// named in Name.
type Case struct {
	// Name identifies the case: ordinal, generator flavour, and size.
	Name string
	// Seed is the generator seed the group was built from.
	Seed int64
	// Group is the input group.
	Group *entity.Group
	// Config compiles the group's entities into records.
	Config *rules.Config
	// Rules is the positive/negative rule set to discover with.
	Rules rules.RuleSet
	// Probe, when non-nil, is attached to every run Diff performs, so the
	// harness can prove instrumentation (e.g. the flight recorder) does not
	// perturb results. Probes must be safe for the concurrent spans the
	// parallel variants open.
	Probe obs.Probe
}

// Corpus generates n cases deterministically from baseSeed, cycling the
// Scholar, Amazon and DBGen generators with randomized sizes (roughly 30–150
// entities per group) and error rates. Amazon corpora produce one group per
// category, so consecutive Amazon cases drain one corpus before a fresh one
// is generated.
func Corpus(n int, baseSeed int64) []Case {
	rng := rand.New(rand.NewSource(baseSeed))
	cases := make([]Case, 0, n)
	var amz *amazonPool
	for i := 0; i < n; i++ {
		seed := rng.Int63()
		switch i % 3 {
		case 0:
			cases = append(cases, scholarCase(i, rng, seed))
		case 1:
			if amz == nil || amz.exhausted() {
				amz = newAmazonPool(rng, seed)
			}
			cases = append(cases, amz.take(i))
		default:
			cases = append(cases, dbgenCase(i, rng, seed))
		}
	}
	return cases
}

// scholarCase builds one synthetic Scholar page case.
func scholarCase(i int, rng *rand.Rand, seed int64) Case {
	numPubs := 30 + rng.Intn(91) // 30–120 correct publications
	errRate := 0.05 + 0.25*rng.Float64()
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: numPubs, ErrorRate: errRate, Seed: seed})
	cfg := presets.ScholarConfig()
	return Case{
		Name:   fmt.Sprintf("%03d-scholar-n%d", i, len(g.Entities)),
		Seed:   seed,
		Group:  g,
		Config: cfg,
		Rules:  presets.ScholarRules(cfg),
	}
}

// dbgenCase builds one DBGen-style perturbed-cluster case.
func dbgenCase(i int, rng *rand.Rand, seed int64) Case {
	num := 40 + rng.Intn(111) // 40–150 entities
	errRate := 0.05 + 0.25*rng.Float64()
	g := datagen.DBGen(datagen.DBGenOptions{NumEntities: num, ErrorRate: errRate, Seed: seed})
	cfg := presets.DBGenConfig()
	return Case{
		Name:   fmt.Sprintf("%03d-dbgen-n%d", i, len(g.Entities)),
		Seed:   seed,
		Group:  g,
		Config: cfg,
		Rules:  presets.DBGenRules(cfg),
	}
}

// amazonPool hands out the groups of one generated Amazon corpus one case at
// a time; a corpus covers every category, so one generation feeds dozens of
// cases.
type amazonPool struct {
	seed  int64
	cfg   *rules.Config
	rs    rules.RuleSet
	pages []*entity.Group
	next  int
}

func newAmazonPool(rng *rand.Rand, seed int64) *amazonPool {
	per := 20 + rng.Intn(21) // 20–40 native products per category
	errRate := 0.05 + 0.25*rng.Float64()
	c := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: per, ErrorRate: errRate, Seed: seed})
	cfg := presets.AmazonConfig(c.TrueTree, c.TrueMapper())
	return &amazonPool{seed: seed, cfg: cfg, rs: presets.AmazonRules(cfg), pages: c.Groups}
}

func (p *amazonPool) exhausted() bool { return p.next >= len(p.pages) }

func (p *amazonPool) take(i int) Case {
	g := p.pages[p.next]
	p.next++
	return Case{
		Name:   fmt.Sprintf("%03d-amazon-%s-n%d", i, g.Name, len(g.Entities)),
		Seed:   p.seed,
		Group:  g,
		Config: p.cfg,
		Rules:  p.rs,
	}
}

// TB is the subset of testing.TB the harness needs; both *testing.T and the
// fuzz-target T satisfy it.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Check runs the case through Diff and fails the test with the case name and
// seed on the first divergence, so any failure is reproducible offline.
func Check(t TB, c Case, workers ...int) {
	t.Helper()
	if err := c.Diff(workers...); err != nil {
		t.Fatalf("case %s (seed %d): %v", c.Name, c.Seed, err)
	}
}

// Diff runs DIME, sequential DIME+ (IntraWorkers=1), and one parallel DIME+
// per workers entry over the case, and returns an error describing the first
// divergence:
//
//   - DIME and DIME+ must agree semantically — partitions, pivot, every
//     scrollbar level, and the marked partitions with their marking rules.
//     Stats and witnessing pairs legitimately differ between the algorithms.
//   - Sequential and parallel DIME+ must agree exactly — the whole Result,
//     stats and witnesses included, must be deeply equal for every worker
//     count.
func (c Case) Diff(workers ...int) error {
	base := core.Options{Config: c.Config, Rules: c.Rules, Probe: c.Probe}
	want, err := core.DIME(c.Group, base)
	if err != nil {
		return fmt.Errorf("DIME: %w", err)
	}
	seqOpts := base
	seqOpts.IntraWorkers = 1
	seq, err := core.DIMEPlus(c.Group, seqOpts)
	if err != nil {
		return fmt.Errorf("DIME+(sequential): %w", err)
	}
	if err := semanticDiff(want, seq); err != nil {
		return fmt.Errorf("DIME vs DIME+(sequential): %w", err)
	}
	for _, w := range workers {
		parOpts := base
		parOpts.IntraWorkers = w
		par, err := core.DIMEPlus(c.Group, parOpts)
		if err != nil {
			return fmt.Errorf("DIME+(workers=%d): %w", w, err)
		}
		if err := exactDiff(seq, par); err != nil {
			return fmt.Errorf("DIME+(sequential) vs DIME+(workers=%d): %w", w, err)
		}
	}
	return nil
}

// semanticDiff compares the algorithm-independent output of two runs:
// partitions, pivot, levels, and marked partitions with their marking rules.
func semanticDiff(a, b *core.Result) error {
	if !reflect.DeepEqual(a.Partitions, b.Partitions) {
		return fmt.Errorf("partitions differ:\n  a: %v\n  b: %v", a.Partitions, b.Partitions)
	}
	if a.Pivot != b.Pivot {
		return fmt.Errorf("pivot differs: %d vs %d", a.Pivot, b.Pivot)
	}
	if !reflect.DeepEqual(a.Levels, b.Levels) {
		return fmt.Errorf("levels differ:\n  a: %+v\n  b: %+v", a.Levels, b.Levels)
	}
	for _, pi := range markedOf(a) {
		aw, bw := a.Witnesses[pi], b.Witnesses[pi]
		if aw.Rule != bw.Rule {
			return fmt.Errorf("partition %d marked by different rules: %q vs %q", pi, aw.Rule, bw.Rule)
		}
	}
	if la, lb := len(a.Witnesses), len(b.Witnesses); la != lb {
		return fmt.Errorf("witness counts differ: %d vs %d", la, lb)
	}
	return nil
}

// exactDiff requires two runs to be byte-identical, field by field so a
// failure names the diverging field instead of dumping two structs.
func exactDiff(a, b *core.Result) error {
	if err := semanticDiff(a, b); err != nil {
		return err
	}
	for _, pi := range markedOf(a) {
		if aw, bw := a.Witnesses[pi], b.Witnesses[pi]; aw != bw {
			return fmt.Errorf("witness for partition %d differs: %+v vs %+v", pi, aw, bw)
		}
	}
	if a.Stats != b.Stats {
		return fmt.Errorf("stats differ:\n  a: %+v\n  b: %+v", a.Stats, b.Stats)
	}
	return nil
}

// markedOf returns the sorted marked-partition indexes of a result.
func markedOf(r *core.Result) []int {
	out := make([]int, 0, len(r.Witnesses))
	for pi := range r.Witnesses {
		out = append(out, pi)
	}
	sort.Ints(out)
	return out
}
