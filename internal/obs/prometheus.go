package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus dumps the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric, counters and
// gauges as single samples, histograms as cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. This is what /metrics serves, so any
// Prometheus-compatible scraper (Prometheus, VictoriaMetrics, Grafana
// Agent, promtool) can ingest a running batch directly.
//
// Registry names use dots, dashes and slashes ("dime.phase.candidate-gen
// .seconds", "dime.positive-verify.verified/phi-1"); Prometheus metric
// names admit only [a-zA-Z0-9_:], so every other rune becomes an
// underscore and a leading digit gains one. Distinct registry names that
// sanitize to the same metric name are disambiguated with a _2/_3 suffix
// in sorted-name order, keeping the exposition valid and deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]named[*Counter], 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, named[*Counter]{name, c})
	}
	gauges := make([]named[*Gauge], 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, named[*Gauge]{name, g})
	}
	hists := make([]named[*Histogram], 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, named[*Histogram]{name, h})
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	// One claim table across all three kinds: a counter and a gauge whose
	// raw names collide after sanitization must still expose distinct
	// metric names.
	taken := make(map[string]bool, len(counters)+len(gauges)+len(hists))
	claim := func(raw string) string {
		name := promName(raw)
		if !taken[name] {
			taken[name] = true
			return name
		}
		for n := 2; ; n++ {
			alt := fmt.Sprintf("%s_%d", name, n)
			if !taken[alt] {
				taken[alt] = true
				return alt
			}
		}
	}

	for _, c := range counters {
		name := claim(c.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.v.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		name := claim(g.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.v.Value())); err != nil {
			return err
		}
	}
	for _, hs := range hists {
		name := claim(hs.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		bounds, counts := hs.v.Buckets()
		cum := int64(0)
		for i, n := range counts {
			cum += n
			le := "+Inf"
			if i < len(bounds) {
				le = promFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(hs.v.Sum()), name, hs.v.Count()); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a registry name into a valid Prometheus metric name:
// runes outside [a-zA-Z0-9_:] become underscores, and a leading digit is
// prefixed with one.
func promName(raw string) string {
	var b strings.Builder
	b.Grow(len(raw) + 1)
	for i, r := range raw {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float sample value in the shortest exact form.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
