// Package obs is the runtime observability layer: phase tracing, a
// process-wide metrics registry, structured logging helpers, and a debug
// HTTP server. The paper's evaluation (Section VI) is entirely about where
// time goes — filter vs. verify cost, candidates pruned by signatures,
// benefit-order savings — and this package makes those quantities visible on
// live runs instead of only as end-of-run counters.
//
// The core abstraction is the Probe: discovery runs open a span per pipeline
// phase (record compilation, signature build, candidate generation, positive
// verify, negative filter, negative verify) and attach counters to it. A nil
// probe is the fast path — core code calls Start, which returns a shared
// no-op span, so an uninstrumented run pays a nil check per phase boundary
// and nothing per pair.
//
// Four probe implementations ship here:
//
//   - Trace records a span tree with monotonic timings, exportable as JSON
//     (`dime -trace out.json`) and diffable across commits;
//   - Observer feeds span durations and counters into a Registry of
//     counters, gauges and fixed-bucket latency histograms with
//     interpolated p50/p90/p99 quantiles, exported via expvar and in
//     Prometheus text format at the /metrics endpoint of ServeDebug;
//   - FlightRecorder keeps the most recent slow runs in a sharded
//     lock-free ring with tail-based retention (dumped at /debug/flight
//     and by `dime -flight-out`), optionally attributing heap-allocation
//     deltas to every span;
//   - Logged emits one slog record per completed span.
//
// Multi fans a run out to several probes at once. All wall-clock and
// runtime-counter reads in the module go through clock.go's Now/Since and
// HeapCounters, the single detersafe-absorbed nondeterminism point.
package obs

// Phase names used by the discovery pipeline. Core opens exactly these spans
// so traces from different commits line up.
const (
	// PhaseRecordCompile covers rules.Config.NewRecords / NewRecord.
	PhaseRecordCompile = "record-compile"
	// PhaseSignatureBuild covers signature.NewContext and the per-rule
	// positive index builds (one child span per rule).
	PhaseSignatureBuild = "signature-build"
	// PhaseCandidateGen covers candidate enumeration off the inverted
	// indexes (in streaming mode verification interleaves here; the
	// verified counters still land on the positive-verify span).
	PhaseCandidateGen = "candidate-gen"
	// PhasePositiveVerify covers benefit-sorted positive verification.
	PhasePositiveVerify = "positive-verify"
	// PhaseNegativeFilter covers BuildNegative plus the partition-level
	// signature disjointness sweep, one span per negative rule.
	PhaseNegativeFilter = "negative-filter"
	// PhaseNegativeVerify covers per-entity probing and benefit-ordered
	// negative verification, one span per negative rule.
	PhaseNegativeVerify = "negative-verify"
)

// Attr is one key=value annotation on a span (group name, rule name, ...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Probe receives spans from instrumented code. Implementations must be safe
// for concurrent use: batch runs share one probe across worker goroutines,
// each opening its own root span. Individual spans are only used from the
// goroutine that started them.
type Probe interface {
	// StartRun opens a root span for one unit of work (a discovery run, a
	// batch, a rule-generation pass).
	StartRun(name string, attrs ...Attr) Span
}

// Span is one timed phase. End must be called exactly once; counters attach
// work quantities (pairs considered, pairs verified, partitions filtered).
// Per-rule counters use the "<name>/<rule>" naming convention so they
// aggregate cleanly next to their totals.
type Span interface {
	// StartSpan opens a child span.
	StartSpan(phase string, attrs ...Attr) Span
	// Count adds delta to a named counter on this span.
	Count(name string, delta int64)
	// End closes the span, fixing its duration.
	End()
}

// Start is the nil-safe entry point instrumented code uses: a nil probe
// yields the shared no-op span, so the uninstrumented path costs one branch.
func Start(p Probe, name string, attrs ...Attr) Span {
	if p == nil {
		return NopSpan
	}
	return p.StartRun(name, attrs...)
}

// NopSpan is the no-op span returned for nil probes. Its children are
// itself, so a whole uninstrumented span tree is this one value.
var NopSpan Span = nopSpan{}

type nopSpan struct{}

func (nopSpan) StartSpan(string, ...Attr) Span { return NopSpan }
func (nopSpan) Count(string, int64)            {}
func (nopSpan) End()                           {}

// Multi fans spans out to several probes. Nil entries are dropped; with no
// live probes it returns nil, which Start treats as uninstrumented.
func Multi(probes ...Probe) Probe {
	live := make([]Probe, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiProbe(live)
}

type multiProbe []Probe

func (m multiProbe) StartRun(name string, attrs ...Attr) Span {
	spans := make(multiSpan, len(m))
	for i, p := range m {
		spans[i] = p.StartRun(name, attrs...)
	}
	return spans
}

type multiSpan []Span

func (m multiSpan) StartSpan(phase string, attrs ...Attr) Span {
	spans := make(multiSpan, len(m))
	for i, s := range m {
		spans[i] = s.StartSpan(phase, attrs...)
	}
	return spans
}

func (m multiSpan) Count(name string, delta int64) {
	for _, s := range m {
		s.Count(name, delta)
	}
}

func (m multiSpan) End() {
	for _, s := range m {
		s.End()
	}
}
