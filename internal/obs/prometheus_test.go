package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("dime.positive-verify.verified").Add(27)
	r.Gauge("dime.workers").Set(4)
	h := r.Histogram("dime.phase.candidate-gen.seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dime_positive_verify_verified counter
dime_positive_verify_verified 27
# TYPE dime_workers gauge
dime_workers 4
# TYPE dime_phase_candidate_gen_seconds histogram
dime_phase_candidate_gen_seconds_bucket{le="0.001"} 1
dime_phase_candidate_gen_seconds_bucket{le="0.01"} 3
dime_phase_candidate_gen_seconds_bucket{le="0.1"} 3
dime_phase_candidate_gen_seconds_bucket{le="+Inf"} 4
dime_phase_candidate_gen_seconds_sum 5.0105
dime_phase_candidate_gen_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"dime.phase.candidate-gen.seconds", "dime_phase_candidate_gen_seconds"},
		{"dime.positive-verify.verified/phi-1", "dime_positive_verify_verified_phi_1"},
		{"already_fine:name", "already_fine:name"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"", "_"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWritePrometheusCollisionDisambiguation(t *testing.T) {
	// Three distinct registry names sanitize to the same metric name; the
	// exposition must stay valid (unique names) and deterministic (suffixes
	// assigned in sorted raw-name order).
	r := NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a-b").Add(2)
	r.Counter("a/b").Add(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	// Sorted raw names: "a-b" < "a.b" < "a/b".
	want := `# TYPE a_b counter
a_b 2
# TYPE a_b_2 counter
a_b_2 1
# TYPE a_b_3 counter
a_b_3 3
`
	if got := sb.String(); got != want {
		t.Errorf("collision handling mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Determinism across calls.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Error("repeated expositions diverged")
	}
}

func TestWritePrometheusCrossKindCollision(t *testing.T) {
	// A counter and a gauge colliding after sanitization still get distinct
	// metric names (one claim table across kinds).
	r := NewRegistry()
	r.Counter("x.y").Add(1)
	r.Gauge("x-y").Set(9)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE x_y counter\nx_y 1\n") ||
		!strings.Contains(out, "# TYPE x_y_2 gauge\nx_y_2 9\n") {
		t.Errorf("cross-kind collision mishandled:\n%s", out)
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Errorf("empty registry exposition = %q", sb.String())
	}
}
