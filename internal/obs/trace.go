package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace is a recording probe: it builds one span tree per StartRun with
// monotonic timings and per-span counters, and exports the whole thing as
// JSON — the `dime -trace out.json` format, stable enough to diff across
// commits (timings aside). Safe for concurrent use; spans lock the trace
// only at phase boundaries.
type Trace struct {
	mu   sync.Mutex
	base time.Time
	runs []*TraceSpan
}

// NewTrace returns an empty trace whose span offsets are measured from now.
func NewTrace() *Trace { return &Trace{base: Now()} }

// TraceSpan is one recorded span. StartNS is the monotonic offset from trace
// creation; DurNS is the span duration. Both are nanoseconds.
type TraceSpan struct {
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	StartNS  int64             `json:"start_ns"`
	DurNS    int64             `json:"dur_ns"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Children []*TraceSpan      `json:"children,omitempty"`
}

// Find returns the first child (depth-first, pre-order) named name, or nil.
func (s *TraceSpan) Find(name string) *TraceSpan {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindAll returns every descendant named name in pre-order.
func (s *TraceSpan) FindAll(name string) []*TraceSpan {
	var out []*TraceSpan
	for _, c := range s.Children {
		if c.Name == name {
			out = append(out, c)
		}
		out = append(out, c.FindAll(name)...)
	}
	return out
}

// Counter returns the named counter summed over this span and every
// descendant.
func (s *TraceSpan) Counter(name string) int64 {
	total := s.Counters[name]
	for _, c := range s.Children {
		total += c.Counter(name)
	}
	return total
}

// StartRun implements Probe.
func (t *Trace) StartRun(name string, attrs ...Attr) Span {
	return t.newSpan(nil, name, attrs)
}

func (t *Trace) newSpan(parent *TraceSpan, name string, attrs []Attr) Span {
	now := Now()
	node := &TraceSpan{Name: name, StartNS: now.Sub(t.base).Nanoseconds()}
	if len(attrs) > 0 {
		node.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			node.Attrs[a.Key] = a.Value
		}
	}
	t.mu.Lock()
	if parent == nil {
		t.runs = append(t.runs, node)
	} else {
		parent.Children = append(parent.Children, node)
	}
	t.mu.Unlock()
	return &traceSpan{t: t, node: node, start: now}
}

type traceSpan struct {
	t     *Trace
	node  *TraceSpan
	start time.Time
	ended bool
}

func (s *traceSpan) StartSpan(phase string, attrs ...Attr) Span {
	return s.t.newSpan(s.node, phase, attrs)
}

func (s *traceSpan) Count(name string, delta int64) {
	s.t.mu.Lock()
	if s.node.Counters == nil {
		s.node.Counters = make(map[string]int64)
	}
	s.node.Counters[name] += delta
	s.t.mu.Unlock()
}

func (s *traceSpan) End() {
	if s.ended {
		return
	}
	s.ended = true
	s.t.mu.Lock()
	s.node.DurNS = Since(s.start).Nanoseconds()
	s.t.mu.Unlock()
}

// TraceExport is the JSON document a trace marshals to: the span trees plus
// a counter snapshot aggregated over every span, keyed by counter name.
type TraceExport struct {
	Version  int              `json:"version"`
	Tool     string           `json:"tool"`
	Runs     []*TraceSpan     `json:"runs"`
	Counters map[string]int64 `json:"counters"`
}

// Export snapshots the trace. The returned spans are the live nodes; export
// after the instrumented work has finished.
func (t *Trace) Export() *TraceExport {
	t.mu.Lock()
	defer t.mu.Unlock()
	ex := &TraceExport{Version: 1, Tool: "dime", Counters: make(map[string]int64)}
	ex.Runs = append(ex.Runs, t.runs...)
	for _, r := range t.runs {
		aggregateCounters(r, ex.Counters)
	}
	return ex
}

func aggregateCounters(s *TraceSpan, into map[string]int64) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		into[name] += s.Counters[name]
	}
	for _, c := range s.Children {
		aggregateCounters(c, into)
	}
}

// Runs returns the recorded root spans, in start order.
func (t *Trace) Runs() []*TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*TraceSpan, len(t.runs))
	copy(out, t.runs)
	return out
}

// WriteJSON writes the indented JSON export. encoding/json emits map keys
// sorted, so two traces of the same run differ only in timings.
func (t *Trace) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t.Export(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
