package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// record runs one synthetic span tree through the recorder.
func record(fr *FlightRecorder, name string) {
	run := fr.StartRun(name, A("group", name))
	sp := run.StartSpan(PhaseCandidateGen)
	sp.Count("candidates", 7)
	sp.Count("candidates", 3)
	sp.Count("verified", 1)
	inner := sp.StartSpan(PhasePositiveVerify, A("rule", "p1"))
	inner.End()
	sp.End()
	run.Count("groups", 1)
	run.End()
}

func TestFlightRecorderKeepsTraceStructure(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 8, Shards: 1})
	record(fr, "run-1")

	if fr.Kept() != 1 || fr.Dropped() != 0 {
		t.Fatalf("kept=%d dropped=%d", fr.Kept(), fr.Dropped())
	}
	traces := fr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("snapshot has %d traces", len(traces))
	}
	tr := traces[0]
	if tr.Name != "run-1" || len(tr.Attrs) != 1 || tr.Attrs[0].Key != "group" {
		t.Fatalf("trace header = %+v", tr)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("events = %+v", tr.Events)
	}
	root, cand, verify := tr.Events[0], tr.Events[1], tr.Events[2]
	if root.Name != "run-1" || root.Depth != 0 {
		t.Errorf("root = %+v", root)
	}
	if cand.Name != PhaseCandidateGen || cand.Depth != 1 {
		t.Errorf("candidate-gen = %+v", cand)
	}
	if verify.Name != PhasePositiveVerify || verify.Depth != 2 || len(verify.Attrs) != 1 {
		t.Errorf("positive-verify = %+v", verify)
	}
	// Counters merge by name in first-increment order.
	wantCounters := []FlightCounter{{Name: "candidates", Value: 10}, {Name: "verified", Value: 1}}
	if len(cand.Counters) != 2 || cand.Counters[0] != wantCounters[0] || cand.Counters[1] != wantCounters[1] {
		t.Errorf("counters = %+v, want %+v", cand.Counters, wantCounters)
	}
	if rootCs := root.Counters; len(rootCs) != 1 || rootCs[0].Name != "groups" {
		t.Errorf("root counters = %+v", rootCs)
	}
	// Durations are set and nested spans fit inside their parents.
	if root.DurNS <= 0 || tr.DurNS != root.DurNS {
		t.Errorf("root duration = %d, trace %d", root.DurNS, tr.DurNS)
	}
	if cand.StartNS < 0 || verify.StartNS < cand.StartNS {
		t.Errorf("span starts out of order: %d then %d", cand.StartNS, verify.StartNS)
	}
}

func TestFlightThresholdRetention(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 8, Threshold: time.Hour})
	record(fr, "fast")
	if fr.Kept() != 0 || fr.Dropped() != 1 || len(fr.Snapshot()) != 0 {
		t.Fatalf("fast run retained: kept=%d dropped=%d", fr.Kept(), fr.Dropped())
	}

	// A root span exceeding the threshold is kept; a 0 threshold keeps all.
	slow := NewFlightRecorder(FlightOptions{Capacity: 8, Threshold: time.Nanosecond})
	run := slow.StartRun("slow")
	time.Sleep(time.Millisecond)
	run.End()
	if slow.Kept() != 1 {
		t.Fatalf("slow run dropped: kept=%d dropped=%d", slow.Kept(), slow.Dropped())
	}
}

func TestFlightRingOverwritesOldest(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 4, Shards: 1})
	for i := 0; i < 10; i++ {
		record(fr, "run")
	}
	if fr.Kept() != 10 {
		t.Fatalf("kept = %d", fr.Kept())
	}
	traces := fr.Snapshot()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d traces, capacity 4", len(traces))
	}
	// Oldest-first ordering: starts must be non-decreasing, and the retained
	// four are the most recent commits.
	for i := 1; i < len(traces); i++ {
		if traces[i].StartNS < traces[i-1].StartNS {
			t.Fatalf("snapshot out of order at %d: %d < %d", i, traces[i].StartNS, traces[i-1].StartNS)
		}
	}
}

func TestFlightResourcesAttribution(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 4, Resources: true})
	run := fr.StartRun("alloc-run")
	sp := run.StartSpan("allocating-phase")
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	sp.End()
	run.End()

	traces := fr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("snapshot = %d traces", len(traces))
	}
	// runtime/metrics allocation counters are approximate (per-P caches can
	// lag a few objects), so assert the order of magnitude, not exact counts.
	ev := traces[0].Events[1]
	if ev.AllocObjects < 128 || ev.AllocBytes < 512*1024 {
		t.Errorf("allocation deltas too small: objects=%d bytes=%d", ev.AllocObjects, ev.AllocBytes)
	}
	// Without Resources the fields stay zero (and are omitted from JSON).
	off := NewFlightRecorder(FlightOptions{Capacity: 4})
	record(off, "no-resources")
	for _, ev := range off.Snapshot()[0].Events {
		if ev.AllocObjects != 0 || ev.AllocBytes != 0 {
			t.Errorf("resources off but deltas set: %+v", ev)
		}
	}
}

func TestFlightSpanEndIdempotent(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 4})
	run := fr.StartRun("double-end")
	run.End()
	run.End()
	if fr.Kept() != 1 {
		t.Fatalf("double End committed twice: kept=%d", fr.Kept())
	}
}

func TestFlightExportJSON(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 4, Threshold: 2 * time.Hour})
	record(fr, "dropped-run")
	var sb strings.Builder
	if err := fr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// An empty snapshot must export "traces": [] (not null) so consumers can
	// iterate without nil checks.
	if !strings.Contains(out, `"traces": []`) {
		t.Errorf("empty export traces not []:\n%s", out)
	}
	var ex FlightExport
	if err := json.Unmarshal([]byte(out), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Version != 1 || ex.Tool != "dime-flight" || ex.ThresholdNS != (2 * time.Hour).Nanoseconds() ||
		ex.Kept != 0 || ex.Dropped != 1 {
		t.Errorf("export = %+v", ex)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("export missing trailing newline")
	}
}

func TestFlightDefaultSingleton(t *testing.T) {
	a, b := DefaultFlight(), DefaultFlight()
	if a == nil || a != b {
		t.Fatalf("DefaultFlight not a singleton: %p vs %p", a, b)
	}
}

func TestFlightOptionDefaults(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{})
	if len(fr.shards) == 0 || len(fr.shards)&(len(fr.shards)-1) != 0 {
		t.Fatalf("shard count %d not a power of two", len(fr.shards))
	}
	total := 0
	for i := range fr.shards {
		total += len(fr.shards[i].slots)
	}
	if total < 256 {
		t.Fatalf("default capacity %d < 256", total)
	}
}

func TestFlightConcurrentRunsAndSnapshots(t *testing.T) {
	fr := NewFlightRecorder(FlightOptions{Capacity: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				record(fr, "worker-run")
			}
		}()
	}
	// Snapshots and JSON dumps race the commits; they must stay consistent.
	for i := 0; i < 20; i++ {
		for _, tr := range fr.Snapshot() {
			if tr.Name != "worker-run" || len(tr.Events) != 3 {
				t.Errorf("inconsistent trace observed: %+v", tr)
			}
		}
		var sb strings.Builder
		if err := fr.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if fr.Kept() != 8*50 {
		t.Fatalf("kept = %d, want %d", fr.Kept(), 8*50)
	}
	if got := len(fr.Snapshot()); got > 32 {
		t.Fatalf("snapshot %d traces, capacity 32", got)
	}
}
