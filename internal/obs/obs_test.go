package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestStartNilProbeIsNop(t *testing.T) {
	sp := Start(nil, "run", A("group", "g"))
	if sp != NopSpan {
		t.Fatalf("Start(nil) = %v, want NopSpan", sp)
	}
	child := sp.StartSpan("phase")
	if child != NopSpan {
		t.Fatalf("nop child = %v, want NopSpan", child)
	}
	child.Count("n", 1) // must not panic
	child.End()
	sp.End()
}

func TestMultiFansOut(t *testing.T) {
	t1, t2 := NewTrace(), NewTrace()
	p := Multi(nil, t1, nil, t2)
	run := Start(p, "run")
	run.StartSpan("phase").End()
	run.Count("n", 3)
	run.End()
	for i, tr := range []*Trace{t1, t2} {
		runs := tr.Runs()
		if len(runs) != 1 || runs[0].Name != "run" {
			t.Fatalf("trace %d: runs = %+v", i, runs)
		}
		if len(runs[0].Children) != 1 || runs[0].Children[0].Name != "phase" {
			t.Fatalf("trace %d: children = %+v", i, runs[0].Children)
		}
		if runs[0].Counters["n"] != 3 {
			t.Fatalf("trace %d: counter = %d", i, runs[0].Counters["n"])
		}
	}
}

func TestMultiCollapses(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi with no live probes must be nil")
	}
	tr := NewTrace()
	if got := Multi(nil, tr); got != Probe(tr) {
		t.Fatalf("Multi with one live probe should return it, got %v", got)
	}
}

func TestLoggedEmitsSpans(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelDebug)
	p := Logged(l, slog.LevelInfo)
	run := Start(p, "run", A("group", "g1"))
	sp := run.StartSpan("candidate-gen")
	sp.Count("candidates", 42)
	sp.End()
	run.End()
	out := buf.String()
	for _, want := range []string{"msg=run", "group=g1", "msg=candidate-gen", "candidates=42", "dur="} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	if Logged(nil, slog.LevelInfo) != nil {
		t.Fatal("Logged(nil) must be nil")
	}
}

func TestWithRunScopesAttrs(t *testing.T) {
	var buf bytes.Buffer
	l := WithRun(NewLogger(&buf, slog.LevelInfo), "dime+", "page-1")
	l.Info("hello")
	out := buf.String()
	for _, want := range []string{"run=", "algo=dime+", "group=page-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("scoped log missing %q:\n%s", want, out)
		}
	}
}
