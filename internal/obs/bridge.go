package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Observer returns a probe that feeds a Registry: every span's duration
// lands in a latency histogram keyed by phase ("dime.phase.<phase>.seconds",
// and "dime.rule.<rule>.<phase>.seconds" when the span carries a rule attr —
// the per-rule histograms the cost/benefit tuning loops read), and every
// span counter increments "dime.<phase>.<name>". A nil registry uses
// Default().
func Observer(r *Registry) Probe {
	if r == nil {
		r = Default()
	}
	return observerProbe{r: r}
}

type observerProbe struct{ r *Registry }

func (p observerProbe) StartRun(name string, attrs ...Attr) Span {
	return observerSpan{r: p.r, phase: name, rule: ruleOf(attrs), start: Now()}
}

type observerSpan struct {
	r     *Registry
	phase string
	rule  string
	start time.Time
}

func ruleOf(attrs []Attr) string {
	for _, a := range attrs {
		if a.Key == "rule" {
			return a.Value
		}
	}
	return ""
}

func (s observerSpan) StartSpan(phase string, attrs ...Attr) Span {
	return observerSpan{r: s.r, phase: phase, rule: ruleOf(attrs), start: Now()}
}

func (s observerSpan) Count(name string, delta int64) {
	s.r.Counter("dime." + s.phase + "." + name).Add(delta)
}

func (s observerSpan) End() {
	secs := Since(s.start).Seconds()
	s.r.Histogram("dime.phase."+s.phase+".seconds", nil).Observe(secs)
	if s.rule != "" {
		s.r.Histogram("dime.rule."+s.rule+"."+s.phase+".seconds", nil).Observe(secs)
	}
}

// Logged returns a probe that emits one slog record per completed span at
// the given level: span name, duration, attrs and counters. Useful with
// level debug to watch where a long batch run spends its time.
func Logged(l *slog.Logger, level slog.Level) Probe {
	if l == nil {
		return nil
	}
	return logProbe{l: l, level: level}
}

type logProbe struct {
	l     *slog.Logger
	level slog.Level
}

func (p logProbe) StartRun(name string, attrs ...Attr) Span {
	return p.newSpan(name, attrs)
}

func (p logProbe) newSpan(name string, attrs []Attr) *logSpan {
	s := &logSpan{p: p, name: name, start: Now()}
	for _, a := range attrs {
		s.attrs = append(s.attrs, slog.String(a.Key, a.Value))
	}
	return s
}

type logSpan struct {
	p     logProbe
	name  string
	start time.Time
	attrs []slog.Attr
}

func (s *logSpan) StartSpan(phase string, attrs ...Attr) Span {
	return s.p.newSpan(phase, attrs)
}

func (s *logSpan) Count(name string, delta int64) {
	s.attrs = append(s.attrs, slog.Int64(name, delta))
}

func (s *logSpan) End() {
	attrs := append([]slog.Attr{slog.Duration("dur", Since(s.start))}, s.attrs...)
	//lint:ignore ctxflow the span outlives any request scope by design: End fires during teardown, and slog's handler only consults the ctx for trace decoration this bridge does not use
	s.p.l.LogAttrs(context.Background(), s.p.level, s.name, attrs...)
}

// NewLogger builds a text slog.Logger writing to w at the given level, the
// logger the CLI tools pass to Logged and to WithRun.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

var runSeq atomic.Int64

// WithRun scopes a logger to one discovery run: a process-unique run id plus
// the algorithm and group names, so interleaved batch-worker lines group
// cleanly.
func WithRun(l *slog.Logger, algo, group string) *slog.Logger {
	return l.With(
		slog.Int64("run", runSeq.Add(1)),
		slog.String("algo", algo),
		slog.String("group", group),
	)
}
