package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5060.5) > 1e-9 {
		t.Fatalf("hist sum = %g", h.Sum())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets = %v / %v", bounds, counts)
	}
	want := []int64{1, 2, 1, 1} // ≤1, ≤10, ≤100, overflow
	for i, n := range want {
		if counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], n, counts)
		}
	}
	// Same name returns the same histogram; first bounds win.
	if r.Histogram("h", []float64{7}) != h {
		t.Fatal("histogram not deduplicated by name")
	}
}

func TestRegistryDefaultBucketsAndUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	bounds, _ := h.Buckets()
	if len(bounds) != len(LatencyBuckets) {
		t.Fatalf("default bounds = %v", bounds)
	}
	h2 := r.Histogram("rev", []float64{10, 1})
	bounds2, _ := h2.Buckets()
	if bounds2[0] > bounds2[1] {
		t.Fatalf("bounds not sorted: %v", bounds2)
	}
}

func TestRegistryWriteTextSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(9)
	r.Counter("a.count").Add(1)
	r.Gauge("m.gauge").Set(3)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	r.Histogram("lat", nil).Observe(2)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	wantLines := []string{
		"a.count 1",
		"z.count 9",
		"m.gauge 3",
		"lat.count 2",
		"lat.sum 2.5",
		"lat.le.1 1",
		"lat.le.+Inf 2",
	}
	for i, want := range wantLines {
		if lines[i] != want {
			t.Fatalf("line %d = %q, want %q\nfull dump:\n%s", i, lines[i], want, out)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != int64(7) {
		t.Fatalf("snapshot c = %v", snap["c"])
	}
	g, ok := snap["g"].(float64)
	if !ok || math.Abs(g-1.5) > 1e-12 {
		t.Fatalf("snapshot g = %v", snap["g"])
	}
	hm, ok := snap["h"].(map[string]any)
	if !ok || hm["count"] != int64(1) {
		t.Fatalf("snapshot h = %v", snap["h"])
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Add(1)
				r.Histogram("h", nil).Observe(0.001)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("c = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", nil).Count(); got != 8*500 {
		t.Fatalf("h count = %d, want %d", got, 8*500)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 100 observations uniform over (0, 100] with bounds every 10: the
	// interpolated quantiles land exactly on q*100, and every estimate must
	// stay inside its bucket's (lower, upper] interval.
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.9, 90}, {0.99, 99}, {0.1, 10}, {1, 100},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Bucket-bound error guarantee: for any q the estimate lies within the
	// bucket holding the target rank, i.e. within one bucket width (10) of
	// the true value.
	for q := 0.01; q < 1; q += 0.01 {
		got := h.Quantile(q)
		true_ := math.Ceil(q * 100)
		if math.Abs(got-true_) > 10 {
			t.Errorf("Quantile(%g) = %g, true %g: outside bucket-bound error", q, got, true_)
		}
	}
	// The first bucket interpolates from lower bound 0.
	if got := h.Quantile(0.001); got <= 0 || got > 10 {
		t.Errorf("tiny quantile = %g, want in (0, 10]", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(-1); math.Abs(got-h.Quantile(0)) > 1e-12 {
		t.Errorf("Quantile(-1) = %g, want clamp to Quantile(0) = %g", got, h.Quantile(0))
	}
	if got := h.Quantile(2); math.Abs(got-h.Quantile(1)) > 1e-12 {
		t.Errorf("Quantile(2) = %g, want clamp to Quantile(1) = %g", got, h.Quantile(1))
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P90 != 0 || s.P99 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	// The empty quantiles must stay JSON-encodable (no NaN) through Snapshot.
	r := NewRegistry()
	r.Histogram("empty", nil)
	if _, err := json.Marshal(r.Snapshot()); err != nil {
		t.Errorf("empty-histogram snapshot not marshalable: %v", err)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	// Every observation beyond the last finite bound: quantiles saturate at
	// that bound instead of inventing values past the grid.
	h := NewHistogram([]float64{1, 10})
	for i := 0; i < 5; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); math.Abs(got-10) > 1e-12 {
			t.Errorf("all-overflow Quantile(%g) = %g, want 10", q, got)
		}
	}
	if s := h.Summary(); math.Abs(s.P50-10) > 1e-12 || math.Abs(s.P99-10) > 1e-12 || s.Count != 5 {
		t.Errorf("all-overflow summary = %+v", s)
	}
}

func TestHistogramSummariesDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z.seconds", "a.seconds", "m.seconds"} {
		r.Histogram(name, nil).Observe(0.01)
	}
	sums := r.HistogramSummaries()
	want := []string{"a.seconds", "m.seconds", "z.seconds"}
	if len(sums) != len(want) {
		t.Fatalf("summaries = %+v", sums)
	}
	for i, s := range sums {
		if s.Name != want[i] {
			t.Errorf("summary %d = %q, want %q", i, s.Name, want[i])
		}
		if s.Count != 1 || s.P50 <= 0 {
			t.Errorf("summary %q = %+v", s.Name, s.LatencySummary)
		}
	}
}

func TestSnapshotJSONByteIdentical(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Gauge("g").Set(2.5)
	r.Histogram("h", []float64{1, 10}).Observe(0.5)
	r.Histogram("h", nil).Observe(3)
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("snapshot marshal %d diverged:\n%s\nvs\n%s", i, first, again)
		}
	}
	// The histogram entry carries the quantiles the expvar consumers read.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(first, &snap); err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Count int64   `json:"count"`
		P50   float64 `json:"p50"`
		P90   float64 `json:"p90"`
		P99   float64 `json:"p99"`
	}
	if err := json.Unmarshal(snap["h"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 2 || hist.P50 <= 0 {
		t.Errorf("snapshot histogram = %+v", hist)
	}
}

func TestNewHistogramStandalone(t *testing.T) {
	h := NewHistogram(nil)
	bounds, _ := h.Buckets()
	if len(bounds) != len(LatencyBuckets) {
		t.Fatalf("default bounds = %v", bounds)
	}
	h2 := NewHistogram([]float64{5, 1, 3})
	bounds2, _ := h2.Buckets()
	for i := 1; i < len(bounds2); i++ {
		if bounds2[i-1] > bounds2[i] {
			t.Fatalf("bounds not sorted: %v", bounds2)
		}
	}
}

func TestObserverFeedsRegistry(t *testing.T) {
	r := NewRegistry()
	p := Observer(r)
	run := Start(p, "dime+", A("group", "g"))
	sp := run.StartSpan(PhaseCandidateGen)
	sp.Count("candidates", 11)
	sp.End()
	rsp := run.StartSpan(PhaseNegativeVerify, A("rule", "n1"))
	rsp.Count("verified", 4)
	rsp.End()
	run.End()

	if got := r.Counter("dime." + PhaseCandidateGen + ".candidates").Value(); got != 11 {
		t.Fatalf("candidates counter = %d", got)
	}
	if got := r.Counter("dime." + PhaseNegativeVerify + ".verified").Value(); got != 4 {
		t.Fatalf("verified counter = %d", got)
	}
	if got := r.Histogram("dime.phase."+PhaseCandidateGen+".seconds", nil).Count(); got != 1 {
		t.Fatalf("phase histogram count = %d", got)
	}
	if got := r.Histogram("dime.rule.n1."+PhaseNegativeVerify+".seconds", nil).Count(); got != 1 {
		t.Fatalf("per-rule histogram count = %d", got)
	}
	if got := r.Histogram("dime.phase.dime+.seconds", nil).Count(); got != 1 {
		t.Fatalf("run histogram count = %d", got)
	}
}
