package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Counter("c").Add(3)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(2.5)
	if got := r.Gauge("g").Value(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5060.5) > 1e-9 {
		t.Fatalf("hist sum = %g", h.Sum())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets = %v / %v", bounds, counts)
	}
	want := []int64{1, 2, 1, 1} // ≤1, ≤10, ≤100, overflow
	for i, n := range want {
		if counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], n, counts)
		}
	}
	// Same name returns the same histogram; first bounds win.
	if r.Histogram("h", []float64{7}) != h {
		t.Fatal("histogram not deduplicated by name")
	}
}

func TestRegistryDefaultBucketsAndUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	bounds, _ := h.Buckets()
	if len(bounds) != len(LatencyBuckets) {
		t.Fatalf("default bounds = %v", bounds)
	}
	h2 := r.Histogram("rev", []float64{10, 1})
	bounds2, _ := h2.Buckets()
	if bounds2[0] > bounds2[1] {
		t.Fatalf("bounds not sorted: %v", bounds2)
	}
}

func TestRegistryWriteTextSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(9)
	r.Counter("a.count").Add(1)
	r.Gauge("m.gauge").Set(3)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	r.Histogram("lat", nil).Observe(2)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	wantLines := []string{
		"a.count 1",
		"z.count 9",
		"m.gauge 3",
		"lat.count 2",
		"lat.sum 2.5",
		"lat.le.1 1",
		"lat.le.+Inf 2",
	}
	for i, want := range wantLines {
		if lines[i] != want {
			t.Fatalf("line %d = %q, want %q\nfull dump:\n%s", i, lines[i], want, out)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != int64(7) {
		t.Fatalf("snapshot c = %v", snap["c"])
	}
	g, ok := snap["g"].(float64)
	if !ok || math.Abs(g-1.5) > 1e-12 {
		t.Fatalf("snapshot g = %v", snap["g"])
	}
	hm, ok := snap["h"].(map[string]any)
	if !ok || hm["count"] != int64(1) {
		t.Fatalf("snapshot h = %v", snap["h"])
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Add(1)
				r.Histogram("h", nil).Observe(0.001)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	var sb strings.Builder
	for i := 0; i < 20; i++ {
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("c = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", nil).Count(); got != 8*500 {
		t.Fatalf("h count = %d, want %d", got, 8*500)
	}
}

func TestObserverFeedsRegistry(t *testing.T) {
	r := NewRegistry()
	p := Observer(r)
	run := Start(p, "dime+", A("group", "g"))
	sp := run.StartSpan(PhaseCandidateGen)
	sp.Count("candidates", 11)
	sp.End()
	rsp := run.StartSpan(PhaseNegativeVerify, A("rule", "n1"))
	rsp.Count("verified", 4)
	rsp.End()
	run.End()

	if got := r.Counter("dime." + PhaseCandidateGen + ".candidates").Value(); got != 11 {
		t.Fatalf("candidates counter = %d", got)
	}
	if got := r.Counter("dime." + PhaseNegativeVerify + ".verified").Value(); got != 4 {
		t.Fatalf("verified counter = %d", got)
	}
	if got := r.Histogram("dime.phase."+PhaseCandidateGen+".seconds", nil).Count(); got != 1 {
		t.Fatalf("phase histogram count = %d", got)
	}
	if got := r.Histogram("dime.rule.n1."+PhaseNegativeVerify+".seconds", nil).Count(); got != 1 {
		t.Fatalf("per-rule histogram count = %d", got)
	}
	if got := r.Histogram("dime.phase.dime+.seconds", nil).Count(); got != 1 {
		t.Fatalf("run histogram count = %d", got)
	}
}
