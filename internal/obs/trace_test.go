package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace()
	run := tr.StartRun("run", A("group", "g"))
	a := run.StartSpan("a")
	a.Count("pairs", 10)
	a.Count("pairs", 5)
	aa := a.StartSpan("aa", A("rule", "r1"))
	aa.Count("verified", 7)
	aa.End()
	a.End()
	b := run.StartSpan("b")
	b.End()
	run.End()

	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	root := runs[0]
	if root.Name != "run" || root.Attrs["group"] != "g" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "a" || root.Children[1].Name != "b" {
		t.Fatalf("children = %+v", root.Children)
	}
	if root.Children[0].Counters["pairs"] != 15 {
		t.Fatalf("pairs = %d, want 15", root.Children[0].Counters["pairs"])
	}
	if got := root.Find("aa"); got == nil || got.Attrs["rule"] != "r1" {
		t.Fatalf("Find(aa) = %+v", got)
	}
	if got := root.Counter("verified"); got != 7 {
		t.Fatalf("Counter(verified) = %d, want 7", got)
	}
	if root.DurNS <= 0 {
		t.Fatal("run duration not recorded")
	}
	if root.Children[0].StartNS > root.Children[0].Children[0].StartNS+1 {
		t.Fatal("child started before parent")
	}
}

func TestTraceExportAggregatesCounters(t *testing.T) {
	tr := NewTrace()
	r1 := tr.StartRun("run")
	r1.Count("verified", 3)
	s := r1.StartSpan("phase")
	s.Count("verified", 4)
	s.End()
	r1.End()
	r2 := tr.StartRun("run")
	r2.Count("verified", 5)
	r2.End()

	ex := tr.Export()
	if len(ex.Runs) != 2 {
		t.Fatalf("exported runs = %d, want 2", len(ex.Runs))
	}
	if ex.Counters["verified"] != 12 {
		t.Fatalf("aggregated verified = %d, want 12", ex.Counters["verified"])
	}
	if ex.Version != 1 {
		t.Fatalf("version = %d", ex.Version)
	}
}

func TestTraceWriteJSONRoundTrips(t *testing.T) {
	tr := NewTrace()
	run := tr.StartRun("run", A("group", "g"))
	run.StartSpan("phase").End()
	run.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back TraceExport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(back.Runs) != 1 || back.Runs[0].Name != "run" ||
		len(back.Runs[0].Children) != 1 || back.Runs[0].Children[0].Name != "phase" {
		t.Fatalf("round-tripped trace = %+v", back.Runs)
	}
}

func TestTraceConcurrentRuns(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := tr.StartRun("run")
			for j := 0; j < 50; j++ {
				sp := run.StartSpan("phase")
				sp.Count("n", 1)
				sp.End()
			}
			run.End()
		}()
	}
	wg.Wait()
	ex := tr.Export()
	if len(ex.Runs) != 16 {
		t.Fatalf("runs = %d, want 16", len(ex.Runs))
	}
	if ex.Counters["n"] != 16*50 {
		t.Fatalf("n = %d, want %d", ex.Counters["n"], 16*50)
	}
}
