package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// FlightRecorder is the always-on probe: a fixed-size, sharded, lock-free
// ring buffer of recent span traces, cheap enough to leave attached in
// production. Every StartRun builds a compact flattened trace (pre-order
// events with depth, timing, counters and — opt-in — heap-allocation
// deltas) on the running goroutine with no locks; when the root span ends,
// tail-based retention decides whether the trace is worth keeping: roots at
// or above Threshold are committed to the ring with two atomic stores,
// faster roots are counted and dropped. The ring overwrites oldest-first
// per shard, so a dump always shows the most recent slow operations — the
// "what did the last N slow runs actually do" question the expvar counters
// cannot answer.
//
// Concurrency: StartRun is safe for concurrent use (batch runs share one
// recorder); each span tree is built by the goroutine that started the run,
// per the Probe contract. Snapshot and WriteJSON are lock-free reads that
// may run concurrently with commits — each slot holds an immutable
// committed trace behind an atomic pointer, so readers see a consistent
// recent subset without stalling writers.
type FlightRecorder struct {
	threshold int64 // ns; roots shorter than this are dropped
	resources bool
	shards    []flightShard
	mask      uint64
	base      time.Time
	kept      atomic.Int64
	dropped   atomic.Int64
}

// flightShard is one ring segment. The pad keeps neighbouring shards'
// sequence counters off one cache line so concurrent commits don't false-
// share.
type flightShard struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[FlightTrace]
	_     [40]byte
}

// FlightOptions configures a recorder; the zero value selects the defaults.
type FlightOptions struct {
	// Capacity is the total number of retained traces across all shards
	// (rounded up to a multiple of the shard count); 0 means 256.
	Capacity int
	// Shards is the number of independent ring segments (rounded up to a
	// power of two); 0 means the next power of two ≥ GOMAXPROCS, capped at
	// 64.
	Shards int
	// Threshold is the tail-retention latency bound: a run whose root span
	// is shorter is dropped (counted, not stored). 0 keeps every run.
	Threshold time.Duration
	// Resources attaches per-span heap-allocation deltas (objects and
	// bytes, from runtime/metrics) to every event. The counters are
	// process-global, so spans running concurrently with other goroutines
	// over-attribute; see heapSample.HeapCounters. Costs two runtime metric
	// reads per span.
	Resources bool
}

// NewFlightRecorder builds a recorder with the given options.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards > 64 {
			shards = 64
		}
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	shards = pow
	perShard := (capacity + shards - 1) / shards
	fr := &FlightRecorder{
		threshold: opts.Threshold.Nanoseconds(),
		resources: opts.Resources,
		shards:    make([]flightShard, shards),
		mask:      uint64(shards - 1),
		base:      Now(),
	}
	for i := range fr.shards {
		fr.shards[i].slots = make([]atomic.Pointer[FlightTrace], perShard)
	}
	return fr
}

var defaultFlight atomic.Pointer[FlightRecorder]

// DefaultFlight returns the shared process-wide recorder (created on first
// use with default options) — the one DebugMux serves at /debug/flight when
// given no recorder, and the one the CLI tools attach.
func DefaultFlight() *FlightRecorder {
	if fr := defaultFlight.Load(); fr != nil {
		return fr
	}
	fr := NewFlightRecorder(FlightOptions{})
	if defaultFlight.CompareAndSwap(nil, fr) {
		return fr
	}
	return defaultFlight.Load()
}

// FlightTrace is one retained run: its root name and attributes plus the
// flattened pre-order event list (Events[0] is the root; Depth gives the
// nesting). StartNS is the offset from recorder creation.
type FlightTrace struct {
	Name    string        `json:"name"`
	Attrs   []Attr        `json:"attrs,omitempty"`
	StartNS int64         `json:"start_ns"`
	DurNS   int64         `json:"dur_ns"`
	Events  []FlightEvent `json:"events"`
}

// FlightEvent is one span of a retained trace. StartNS is relative to the
// trace root. AllocObjects/AllocBytes are the heap-allocation deltas across
// the span when resource attribution is on (process-global counters: exact
// for single-goroutine phases, an upper bound under concurrency).
type FlightEvent struct {
	Name         string          `json:"name"`
	Attrs        []Attr          `json:"attrs,omitempty"`
	Depth        int             `json:"depth"`
	StartNS      int64           `json:"start_ns"`
	DurNS        int64           `json:"dur_ns"`
	Counters     []FlightCounter `json:"counters,omitempty"`
	AllocObjects uint64          `json:"alloc_objects,omitempty"`
	AllocBytes   uint64          `json:"alloc_bytes,omitempty"`
}

// FlightCounter is one span counter (kept as a small slice, not a map, so
// recording stays allocation-light and dumps stay deterministically
// ordered by first increment).
type FlightCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Kept returns the number of traces committed to the ring so far.
func (fr *FlightRecorder) Kept() int64 { return fr.kept.Load() }

// Dropped returns the number of runs discarded by tail retention.
func (fr *FlightRecorder) Dropped() int64 { return fr.dropped.Load() }

// StartRun implements Probe.
func (fr *FlightRecorder) StartRun(name string, attrs ...Attr) Span {
	b := &flightBuild{fr: fr, start: Now()}
	b.trace.Name = name
	b.trace.StartNS = b.start.Sub(fr.base).Nanoseconds()
	if len(attrs) > 0 {
		b.trace.Attrs = append([]Attr(nil), attrs...)
	}
	b.trace.Events = make([]FlightEvent, 1, 16)
	root := &b.trace.Events[0]
	root.Name = name
	root.Attrs = b.trace.Attrs
	if fr.resources {
		root.AllocObjects, root.AllocBytes = b.heap.HeapCounters()
	}
	return &flightSpan{b: b, idx: 0, depth: 0, start: b.start}
}

// flightBuild is the per-run recording state, owned by the goroutine that
// started the run.
type flightBuild struct {
	fr    *FlightRecorder
	trace FlightTrace
	start time.Time
	heap  heapSample
}

// flightSpan is one open span; idx addresses its event in the build's
// flattened list (indices stay valid across slice growth because End
// re-addresses through the build).
type flightSpan struct {
	b     *flightBuild
	idx   int
	depth int
	start time.Time
	ended bool
}

func (s *flightSpan) StartSpan(phase string, attrs ...Attr) Span {
	b := s.b
	now := Now()
	ev := FlightEvent{
		Name:    phase,
		Depth:   s.depth + 1,
		StartNS: now.Sub(b.start).Nanoseconds(),
	}
	if len(attrs) > 0 {
		ev.Attrs = append([]Attr(nil), attrs...)
	}
	if b.fr.resources {
		ev.AllocObjects, ev.AllocBytes = b.heap.HeapCounters()
	}
	b.trace.Events = append(b.trace.Events, ev)
	return &flightSpan{b: b, idx: len(b.trace.Events) - 1, depth: s.depth + 1, start: now}
}

func (s *flightSpan) Count(name string, delta int64) {
	cs := s.b.trace.Events[s.idx].Counters
	for i := range cs {
		if cs[i].Name == name {
			cs[i].Value += delta
			return
		}
	}
	s.b.trace.Events[s.idx].Counters = append(cs, FlightCounter{Name: name, Value: delta})
}

func (s *flightSpan) End() {
	if s.ended {
		return
	}
	s.ended = true
	b := s.b
	ev := &b.trace.Events[s.idx]
	ev.DurNS = Since(s.start).Nanoseconds()
	if b.fr.resources {
		objs, bytes := b.heap.HeapCounters()
		ev.AllocObjects = objs - ev.AllocObjects
		ev.AllocBytes = bytes - ev.AllocBytes
	}
	if s.idx == 0 {
		b.trace.DurNS = ev.DurNS
		b.fr.finish(&b.trace)
	}
}

// finish applies tail retention and commits a kept trace into its shard.
func (fr *FlightRecorder) finish(tr *FlightTrace) {
	if tr.DurNS < fr.threshold {
		fr.dropped.Add(1)
		return
	}
	// Shard by the run's start offset: runs starting in different
	// microseconds land in different shards without any shared counter.
	sh := &fr.shards[uint64(tr.StartNS>>10)&fr.mask]
	i := sh.seq.Add(1) - 1
	sh.slots[i%uint64(len(sh.slots))].Store(tr)
	fr.kept.Add(1)
}

// Snapshot returns the retained traces, oldest first (by root start
// offset). It never blocks recording; traces committed while the snapshot
// runs may or may not appear.
func (fr *FlightRecorder) Snapshot() []*FlightTrace {
	var out []*FlightTrace
	for si := range fr.shards {
		sh := &fr.shards[si]
		for i := range sh.slots {
			if tr := sh.slots[i].Load(); tr != nil {
				out = append(out, tr)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FlightExport is the JSON document a flight dump marshals to.
type FlightExport struct {
	Version     int            `json:"version"`
	Tool        string         `json:"tool"`
	ThresholdNS int64          `json:"threshold_ns"`
	Kept        int64          `json:"kept"`
	Dropped     int64          `json:"dropped"`
	Traces      []*FlightTrace `json:"traces"`
}

// Export snapshots the recorder into its JSON document form.
func (fr *FlightRecorder) Export() *FlightExport {
	traces := fr.Snapshot()
	if traces == nil {
		traces = []*FlightTrace{}
	}
	return &FlightExport{
		Version:     1,
		Tool:        "dime-flight",
		ThresholdNS: fr.threshold,
		Kept:        fr.Kept(),
		Dropped:     fr.Dropped(),
		Traces:      traces,
	}
}

// WriteJSON writes the indented JSON export — the `dime -flight-out` format,
// also served at /debug/flight.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(fr.Export(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
