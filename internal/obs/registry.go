package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a process-wide metrics store: named counters, gauges and
// fixed-bucket histograms, all updated with atomics so hot paths never take
// a lock. It snapshots to expvar (PublishExpvar) and dumps as sorted
// plaintext for the /metrics endpoint of ServeDebug.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	published bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var std = NewRegistry()

// named pairs a metric with its registry name for sorted dumps.
type named[T any] struct {
	name string
	v    T
}

// Default returns the shared process-wide registry the CLI tools publish.
func Default() *Registry { return std }

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64 (worker counts, queue depths, last run sizes).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: counts per upper bound plus an
// overflow bucket, a total count and a value sum. Observations are atomic.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// LatencyBuckets is the default bound set for phase latencies, in seconds:
// a microsecond to a minute on a roughly logarithmic grid.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewHistogram returns a standalone histogram (not attached to a registry)
// over the given bucket upper bounds; nil or empty bounds fall back to
// LatencyBuckets. The bounds are copied and sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the (non-cumulative) per-bucket
// counts; the final count is the overflow bucket (+Inf).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	bounds = append(bounds, h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values by
// linear interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes, so dashboards and this
// method agree. Guarantees and edge cases:
//
//   - an empty histogram returns 0;
//   - q is clamped to [0, 1];
//   - within a finite bucket the true quantile lies in (lower, upper], and
//     the estimate is bounded by the same interval;
//   - rank mass landing in the overflow (+Inf) bucket returns the highest
//     finite bound — the estimate saturates rather than inventing a value.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1 // the quantile of the smallest observation lives in its bucket
	}
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if h.bounds[0] < 0 {
				lower = h.bounds[0] // all-negative grids have no natural zero floor
			}
			upper := h.bounds[i]
			return lower + (upper-lower)*((rank-float64(cum))/float64(n))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencySummary is a compact histogram view: observation count, value sum
// and the interpolated p50/p90/p99 quantiles. The zero value means "no
// observations".
type LatencySummary struct {
	// Count is the number of observations.
	Count int64
	// Sum is the sum of observed values.
	Sum float64
	// P50, P90 and P99 are Quantile(0.5/0.9/0.99) estimates (0 when empty).
	P50, P90, P99 float64
}

// Summary snapshots the histogram into a LatencySummary.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// NamedSummary pairs a histogram name with its summary for sorted listings.
type NamedSummary struct {
	Name string
	LatencySummary
}

// HistogramSummaries returns every registered histogram's summary, sorted by
// name — the deterministic listing `dime -stats` renders.
func (r *Registry) HistogramSummaries() []NamedSummary {
	r.mu.Lock()
	hists := make([]named[*Histogram], 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, named[*Histogram]{name, h})
	}
	r.mu.Unlock()
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	out := make([]NamedSummary, len(hists))
	for i, nh := range hists {
		out[i] = NamedSummary{Name: nh.name, LatencySummary: nh.v.Summary()}
	}
	return out
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. The bounds
// of the first creation win; they are copied and sorted ascending. Nil or
// empty bounds fall back to LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = LatencyBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a flat name → value view: counters as int64, gauges as
// float64, histograms as {count, sum, p50, p90, p99, buckets} maps. This is
// what expvar publishes. Marshaling the snapshot is deterministic for a
// fixed registry state: encoding/json sorts map keys, quantiles are
// interpolated (never NaN — empty histograms report 0), and repeated calls
// over an idle registry yield byte-identical JSON.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		buckets := make(map[string]int64, len(counts))
		for i, n := range counts {
			le := "+Inf"
			if i < len(bounds) {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			buckets[le] = n
		}
		out[name] = map[string]any{
			"count": h.Count(), "sum": h.Sum(),
			"p50": h.Quantile(0.50), "p90": h.Quantile(0.90), "p99": h.Quantile(0.99),
			"buckets": buckets,
		}
	}
	return out
}

// WriteText dumps the registry as sorted plaintext, one metric per line:
// counters and gauges as `name value`, histograms as `name.count`,
// `name.sum` and cumulative `name.le.<bound>` lines. The format is for
// humans and scrapers of the /metrics endpoint; it is not a stable API.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	counters := make([]named[*Counter], 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, named[*Counter]{name, c})
	}
	gauges := make([]named[*Gauge], 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, named[*Gauge]{name, g})
	}
	hists := make([]named[*Histogram], 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, named[*Histogram]{name, h})
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.v.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "%s %g\n", g.name, g.v.Value()); err != nil {
			return err
		}
	}
	for _, hs := range hists {
		bounds, counts := hs.v.Buckets()
		if _, err := fmt.Fprintf(w, "%s.count %d\n%s.sum %g\n", hs.name, hs.v.Count(), hs.name, hs.v.Sum()); err != nil {
			return err
		}
		cum := int64(0)
		for i, n := range counts {
			cum += n
			le := "+Inf"
			if i < len(bounds) {
				le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s.le.%s %d\n", hs.name, le, cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// PublishExpvar publishes the registry under the given expvar name (once;
// later calls with any name are no-ops for this registry). The snapshot is
// computed on demand by the expvar handler.
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published
	r.published = true
	r.mu.Unlock()
	if already || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
