package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugRoutes lists the route patterns RegisterDebug mounts. Every server
// that embeds the debug surface (obs.ServeDebug, internal/serve) mounts
// exactly these paths through RegisterDebug, so a parity test can assert the
// surfaces cannot drift apart.
func DebugRoutes() []string {
	return []string{
		"/debug/pprof/",
		"/debug/vars",
		"/debug/flight",
		"/metrics",
	}
}

// RegisterDebug mounts the debug surface onto an existing mux:
//
//	/debug/pprof/   CPU, heap, goroutine, ... profiles (net/http/pprof)
//	/debug/vars     expvar JSON (includes the registry snapshot with
//	                per-histogram p50/p90/p99 once published)
//	/debug/flight   flight-recorder dump: the most recent retained traces
//	/metrics        Prometheus text exposition of the registry
//
// It is the single construction path for these routes — DebugMux and any
// API server wanting the same surface call it — and it publishes the
// registry to expvar under "dime" so /debug/vars carries the same numbers
// as /metrics. A nil registry uses Default(); a nil recorder uses
// DefaultFlight().
func RegisterDebug(mux *http.ServeMux, r *Registry, fr *FlightRecorder) {
	if r == nil {
		r = Default()
	}
	if fr == nil {
		fr = DefaultFlight()
	}
	r.PublishExpvar("dime")
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := fr.WriteJSON(w); err != nil {
			// The connection died mid-dump; nothing useful left to do.
			return
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The connection died mid-dump; nothing useful left to do.
			return
		}
	})
}

// DebugMux returns an http.ServeMux exposing the RegisterDebug surface plus
// a plain index at /. A nil registry uses Default(); a nil recorder uses
// DefaultFlight().
func DebugMux(r *Registry, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, r, fr)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "dime debug server")
		fmt.Fprintln(w, "  /debug/pprof/   profiles")
		fmt.Fprintln(w, "  /debug/vars     expvar JSON (registry snapshot with quantiles)")
		fmt.Fprintln(w, "  /debug/flight   flight-recorder dump (recent retained traces)")
		fmt.Fprintln(w, "  /metrics        Prometheus text exposition")
	})
	return mux
}

// DebugServer is a running debug HTTP server; Close shuts it down.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *DebugServer) Close() error { return s.srv.Close() }

// ServeDebug binds addr (e.g. ":6060", "127.0.0.1:0") and serves DebugMux in
// a background goroutine, so long batch and experiment runs can be profiled
// live. It publishes the registry to expvar under "dime" first, so
// /debug/vars carries the same numbers as /metrics. A nil registry uses
// Default(); a nil recorder uses DefaultFlight().
func ServeDebug(addr string, r *Registry, fr *FlightRecorder) (*DebugServer, error) {
	if r == nil {
		r = Default()
	}
	r.PublishExpvar("dime")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(r, fr)}
	go func() {
		// Serve returns ErrServerClosed on Close; other errors have no
		// receiver once we are detached.
		_ = srv.Serve(ln)
	}()
	return &DebugServer{srv: srv, ln: ln}, nil
}
