package obs

import (
	"runtime/metrics"
	"time"
)

// This file is the module's single point of contact with the wall clock and
// the runtime's resource counters. Span timings, batch wall times and
// per-span allocation deltas are *metadata about* a run — they never feed
// result content — so the detersafe analyzer accepts exactly one absorbed
// clock read here instead of a reasoned //lint:ignore at every timing site.

// Now returns the current time (with its monotonic reading). Every timing
// site in the module — span starts, span durations, BatchStats.Wall — must
// read the clock through Now or Since so the nondeterminism stays confined
// to this one audited function.
func Now() time.Time {
	//lint:ignore detersafe the module's single absorbed clock read; timings are run metadata, never result content
	return time.Now()
}

// Since returns the time elapsed since t, using the monotonic clock via Now.
func Since(t time.Time) time.Duration { return Now().Sub(t) }

// heapSample is the reusable buffer HeapCounters fills; callers own one each
// (a zero value is ready to use) so the hot path never allocates.
type heapSample [2]metrics.Sample

// HeapCounters reads the runtime's cumulative heap allocation counters:
// objects and bytes allocated since process start. The counters are
// process-global — a delta taken across a span includes allocations from
// every concurrently running goroutine — so per-span attribution is exact
// for single-goroutine phases and an upper bound under concurrency. The
// buffer is reinitialized lazily so the zero value works.
func (buf *heapSample) HeapCounters() (objects, bytes uint64) {
	if buf[0].Name == "" {
		buf[0].Name = "/gc/heap/allocs:objects"
		buf[1].Name = "/gc/heap/allocs:bytes"
	}
	metrics.Read(buf[:])
	return buf[0].Value.Uint64(), buf[1].Value.Uint64()
}
