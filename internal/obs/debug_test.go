package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebugEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("dime.test.hits").Add(3)
	fr := NewFlightRecorder(FlightOptions{Capacity: 8})
	s := fr.StartRun("debug-test-run")
	s.Count("events", 2)
	s.End()
	srv, err := ServeDebug("127.0.0.1:0", r, fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ → %d, body %.80q", code, body)
	}
	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars → %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	dime, ok := vars["dime"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing published registry: %v", vars)
	}
	if fmt.Sprint(dime["dime.test.hits"]) != "3" {
		t.Errorf("published counter = %v", dime["dime.test.hits"])
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "# TYPE dime_test_hits counter") ||
		!strings.Contains(body, "dime_test_hits 3") {
		t.Errorf("/metrics → %d, body %q", code, body)
	}
	code, body = get("/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight → %d", code)
	}
	var export FlightExport
	if err := json.Unmarshal([]byte(body), &export); err != nil {
		t.Fatalf("/debug/flight is not JSON: %v", err)
	}
	if export.Tool != "dime-flight" || export.Kept != 1 || len(export.Traces) != 1 ||
		export.Traces[0].Name != "debug-test-run" {
		t.Errorf("/debug/flight export = %+v", export)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "dime debug server") {
		t.Errorf("/ → %d, body %q", code, body)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope → %d, want 404", code)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.256.256.256:99999", NewRegistry(), nil); err == nil {
		t.Fatal("expected listen error")
	}
}
