package entity

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadGroupCSV loads a group from CSV. The first row is the header and
// becomes the schema; the first column is the entity ID unless idColumn
// names another header. Cells split into multiple values on multiSep (e.g.
// "a; b; c" with multiSep "; "); an empty multiSep keeps cells single-valued.
//
// A trailing boolean column named "mis_categorized" (case-insensitive) is
// consumed as ground truth instead of becoming an attribute.
func ReadGroupCSV(r io.Reader, name, idColumn, multiSep string) (*Group, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("entity: reading CSV header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("entity: CSV needs an ID column and at least one attribute")
	}

	idIdx := 0
	if idColumn != "" {
		idIdx = -1
		for i, h := range header {
			if h == idColumn {
				idIdx = i
				break
			}
		}
		if idIdx < 0 {
			return nil, fmt.Errorf("entity: CSV has no column %q", idColumn)
		}
	}
	truthIdx := -1
	var attrs []string
	attrCols := make([]int, 0, len(header))
	for i, h := range header {
		if i == idIdx {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(h), "mis_categorized") {
			truthIdx = i
			continue
		}
		attrs = append(attrs, h)
		attrCols = append(attrCols, i)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("entity: CSV has no attribute columns")
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	g := NewGroup(name, schema)

	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("entity: CSV line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("entity: CSV line %d has %d fields, header has %d", line, len(row), len(header))
		}
		values := make([][]string, len(attrCols))
		for k, col := range attrCols {
			cell := row[col]
			if multiSep != "" && strings.Contains(cell, multiSep) {
				parts := strings.Split(cell, multiSep)
				vals := parts[:0]
				for _, p := range parts {
					if p = strings.TrimSpace(p); p != "" {
						vals = append(vals, p)
					}
				}
				values[k] = vals
			} else if cell == "" {
				values[k] = nil
			} else {
				values[k] = []string{cell}
			}
		}
		e, err := NewEntity(schema, row[idIdx], values)
		if err != nil {
			return nil, fmt.Errorf("entity: CSV line %d: %w", line, err)
		}
		if err := g.Add(e); err != nil {
			return nil, fmt.Errorf("entity: CSV line %d: %w", line, err)
		}
		if truthIdx >= 0 {
			switch strings.ToLower(strings.TrimSpace(row[truthIdx])) {
			case "true", "1", "yes", "y":
				g.MarkMisCategorized(e.ID)
			case "", "false", "0", "no", "n":
			default:
				return nil, fmt.Errorf("entity: CSV line %d: bad mis_categorized value %q", line, row[truthIdx])
			}
		}
	}
	return g, nil
}

// WriteGroups writes groups as JSON lines (one serialized group per line),
// the corpus format cmd tools exchange.
func WriteGroups(w io.Writer, groups []*Group) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, g := range groups {
		if err := enc.Encode(g); err != nil {
			return fmt.Errorf("entity: encoding group %q: %w", g.Name, err)
		}
	}
	return bw.Flush()
}

// ReadGroups reads a JSON-lines corpus written by WriteGroups. It also
// accepts a single plain JSON group (non-lines), for convenience.
func ReadGroups(r io.Reader) ([]*Group, error) {
	dec := json.NewDecoder(r)
	var groups []*Group
	for {
		g := &Group{}
		if err := dec.Decode(g); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("entity: decoding corpus: %w", err)
		}
		groups = append(groups, g)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("entity: corpus contains no groups")
	}
	return groups, nil
}
