package entity

import (
	"encoding/json"
	"testing"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("Title", "Authors", "Venue")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if i, ok := s.Index("Authors"); !ok || i != 1 {
		t.Fatalf("Index(Authors) = %d, %v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Fatal("Index(Nope) should not exist")
	}
	if s.Name(2) != "Venue" {
		t.Fatalf("Name(2) = %q", s.Name(2))
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema should fail")
	}
	if _, err := NewSchema("A", "A"); err == nil {
		t.Fatal("duplicate attribute should fail")
	}
	if _, err := NewSchema("A", ""); err == nil {
		t.Fatal("empty attribute name should fail")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on bad input")
		}
	}()
	MustSchema()
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema("X", "Y")
	b := MustSchema("X", "Y")
	c := MustSchema("Y", "X")
	if !a.Equal(b) {
		t.Fatal("identical schemas should be equal")
	}
	if a.Equal(c) {
		t.Fatal("order matters")
	}
	if a.Equal(nil) {
		t.Fatal("nil should not equal")
	}
}

func TestNewEntity(t *testing.T) {
	s := MustSchema("Title", "Authors")
	e, err := NewEntity(s, "e1", [][]string{{"Some Title"}, {"A", "B"}})
	if err != nil {
		t.Fatalf("NewEntity: %v", err)
	}
	if got := e.Joined(1); got != "A B" {
		t.Fatalf("Joined(1) = %q", got)
	}
	if e.Value(5) != nil {
		t.Fatal("out of range Value should be nil")
	}
	if _, err := NewEntity(s, "bad", [][]string{{"x"}}); err == nil {
		t.Fatal("wrong arity should fail")
	}
}

func TestEntityClone(t *testing.T) {
	s := MustSchema("A")
	e, _ := NewEntity(s, "e", [][]string{{"v1", "v2"}})
	c := e.Clone()
	c.Values[0][0] = "mutated"
	if e.Values[0][0] != "v1" {
		t.Fatal("Clone should deep-copy values")
	}
}

func TestGroupAddAndTruth(t *testing.T) {
	s := MustSchema("A")
	g := NewGroup("g", s)
	e1, _ := NewEntity(s, "e1", [][]string{{"x"}})
	e2, _ := NewEntity(s, "e2", [][]string{{"y"}})
	if err := g.Add(e1); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(e2); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(e1); err == nil {
		t.Fatal("duplicate ID should fail")
	}
	if g.Size() != 2 {
		t.Fatalf("Size = %d", g.Size())
	}
	g.MarkMisCategorized("e2")
	ids := g.MisCategorizedIDs()
	if len(ids) != 1 || ids[0] != "e2" {
		t.Fatalf("MisCategorizedIDs = %v", ids)
	}
	if g.ByID("e1") != e1 || g.ByID("zz") != nil {
		t.Fatal("ByID lookup broken")
	}
}

func TestGroupJSONRoundTrip(t *testing.T) {
	s := MustSchema("Title", "Authors")
	g := NewGroup("page", s)
	e, _ := NewEntity(s, "e1", [][]string{{"T"}, {"A", "B"}})
	g.MustAdd(e)
	g.MarkMisCategorized("e1")

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Group
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != "page" || back.Size() != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if !back.Schema.Equal(s) {
		t.Fatal("schema lost")
	}
	if !back.Truth["e1"] {
		t.Fatal("truth lost")
	}
	if back.Entities[0].Joined(1) != "A B" {
		t.Fatal("values lost")
	}
}

func TestPairCanonical(t *testing.T) {
	if (Pair{3, 1}).Canonical() != (Pair{1, 3}) {
		t.Fatal("Canonical should order I < J")
	}
	if (Pair{1, 3}).Canonical() != (Pair{1, 3}) {
		t.Fatal("Canonical should keep ordered pairs")
	}
}
