package entity

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

const sampleCSV = `id,Title,Authors,Venue,mis_categorized
e1,KATARA,Xu Chu; Nan Tang,SIGMOD,false
e2,NADEEF,Ihab Ilyas; Nan Tang,VLDB,
e3,Oil Chemistry,Jianlong Wang; Nan Tang,RSC Advances,true
`

func TestReadGroupCSV(t *testing.T) {
	g, err := ReadGroupCSV(strings.NewReader(sampleCSV), "page", "", "; ")
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("size = %d", g.Size())
	}
	if !reflect.DeepEqual(g.Schema.Attributes, []string{"Title", "Authors", "Venue"}) {
		t.Fatalf("schema = %v", g.Schema.Attributes)
	}
	e1 := g.ByID("e1")
	ai, _ := g.Schema.Index("Authors")
	if !reflect.DeepEqual(e1.Value(ai), []string{"Xu Chu", "Nan Tang"}) {
		t.Fatalf("authors = %v", e1.Value(ai))
	}
	if got := g.MisCategorizedIDs(); !reflect.DeepEqual(got, []string{"e3"}) {
		t.Fatalf("truth = %v", got)
	}
}

func TestReadGroupCSVCustomIDColumn(t *testing.T) {
	csvData := "Title,key,Tags\nSome Title,k1,a|b\n"
	g, err := ReadGroupCSV(strings.NewReader(csvData), "g", "key", "|")
	if err != nil {
		t.Fatal(err)
	}
	if g.Entities[0].ID != "k1" {
		t.Fatalf("ID = %q", g.Entities[0].ID)
	}
	ti, _ := g.Schema.Index("Tags")
	if !reflect.DeepEqual(g.Entities[0].Value(ti), []string{"a", "b"}) {
		t.Fatalf("tags = %v", g.Entities[0].Value(ti))
	}
}

func TestReadGroupCSVErrors(t *testing.T) {
	cases := []struct {
		name, csv, idCol string
	}{
		{"no attrs", "id\ne1\n", ""},
		{"missing id column", "a,b\n1,2\n", "zzz"},
		{"ragged row", "id,A\ne1,x,extra\n", ""},
		{"dup id", "id,A\ne1,x\ne1,y\n", ""},
		{"bad truth", "id,A,mis_categorized\ne1,x,maybe\n", ""},
		{"empty", "", ""},
	}
	for _, c := range cases {
		if _, err := ReadGroupCSV(strings.NewReader(c.csv), "g", c.idCol, ""); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestGroupsJSONLinesRoundTrip(t *testing.T) {
	s := MustSchema("A", "B")
	var groups []*Group
	for _, name := range []string{"g1", "g2", "g3"} {
		g := NewGroup(name, s)
		e, _ := NewEntity(s, name+"-e", [][]string{{"x"}, {"y", "z"}})
		g.MustAdd(e)
		g.MarkMisCategorized(e.ID)
		groups = append(groups, g)
	}
	var buf bytes.Buffer
	if err := WriteGroups(&buf, groups); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGroups(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("groups = %d", len(back))
	}
	for i, g := range back {
		if g.Name != groups[i].Name || g.Size() != 1 {
			t.Fatalf("group %d: %q size %d", i, g.Name, g.Size())
		}
		if !g.Truth[g.Entities[0].ID] {
			t.Fatalf("group %d lost truth", i)
		}
	}
}

func TestReadGroupsSinglePlainJSON(t *testing.T) {
	s := MustSchema("A")
	g := NewGroup("solo", s)
	e, _ := NewEntity(s, "e", [][]string{{"v"}})
	g.MustAdd(e)
	var buf bytes.Buffer
	if err := WriteGroups(&buf, []*Group{g}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGroups(&buf)
	if err != nil || len(back) != 1 {
		t.Fatalf("%v %v", back, err)
	}
	if _, err := ReadGroups(strings.NewReader("")); err == nil {
		t.Fatal("empty corpus should fail")
	}
	if _, err := ReadGroups(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken corpus should fail")
	}
}
