// Package entity defines the data model used throughout DIME: multi-valued
// relations, entities, and groups of entities that some upstream categorizer
// placed together.
//
// An entity is defined over a multi-valued relation R(A1, ..., Am): each
// attribute holds a list of string values (for example, the Authors attribute
// of a publication holds one value per author). A group is a set of entities
// that were categorized together and that DIME inspects for mis-categorized
// members.
package entity

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Schema describes the multi-valued relation R(A1, ..., Am) the entities of a
// group are defined over. Attribute order is significant: it fixes attribute
// indexes used by rules and signatures.
type Schema struct {
	// Attributes holds the attribute names in declaration order.
	Attributes []string

	index map[string]int
}

// NewSchema builds a schema over the given attribute names. Names must be
// non-empty and unique.
func NewSchema(attributes ...string) (*Schema, error) {
	if len(attributes) == 0 {
		return nil, fmt.Errorf("entity: schema needs at least one attribute")
	}
	s := &Schema{
		Attributes: append([]string(nil), attributes...),
		index:      make(map[string]int, len(attributes)),
	}
	for i, a := range attributes {
		if a == "" {
			return nil, fmt.Errorf("entity: attribute %d has empty name", i)
		}
		if _, dup := s.index[a]; dup {
			return nil, fmt.Errorf("entity: duplicate attribute %q", a)
		}
		s.index[a] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for statically
// known schemas (tests, generators, presets).
func MustSchema(attributes ...string) *Schema {
	s, err := NewSchema(attributes...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the number of attributes in the schema.
func (s *Schema) Len() int { return len(s.Attributes) }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(attribute string) (int, bool) {
	i, ok := s.index[attribute]
	return i, ok
}

// Name returns the attribute name at position i.
func (s *Schema) Name(i int) string { return s.Attributes[i] }

// Equal reports whether two schemas declare the same attributes in the same
// order.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.Attributes) != len(o.Attributes) {
		return false
	}
	for i := range s.Attributes {
		if s.Attributes[i] != o.Attributes[i] {
			return false
		}
	}
	return true
}

// Entity is a single record over a schema. Values[i] holds the (possibly
// multi-valued) content of attribute i. The zero ID is valid but IDs should be
// unique within a group; DIME uses them to report results and to key caches.
type Entity struct {
	// ID uniquely identifies the entity within its group.
	ID string
	// Values holds one value list per schema attribute.
	Values [][]string
}

// NewEntity creates an entity with the given ID over a schema, copying the
// provided value lists. values must have exactly schema.Len() entries.
func NewEntity(schema *Schema, id string, values [][]string) (*Entity, error) {
	if len(values) != schema.Len() {
		return nil, fmt.Errorf("entity %q: got %d value lists, schema has %d attributes",
			id, len(values), schema.Len())
	}
	e := &Entity{ID: id, Values: make([][]string, len(values))}
	for i, vs := range values {
		e.Values[i] = append([]string(nil), vs...)
	}
	return e, nil
}

// MustNewEntity is NewEntity that panics on error, for generators, fixtures
// and tests whose inputs are statically shaped.
func MustNewEntity(schema *Schema, id string, values [][]string) *Entity {
	e, err := NewEntity(schema, id, values)
	if err != nil {
		panic(err)
	}
	return e
}

// Value returns the value list of attribute i. Out-of-range indexes yield nil.
func (e *Entity) Value(i int) []string {
	if i < 0 || i >= len(e.Values) {
		return nil
	}
	return e.Values[i]
}

// Joined returns the values of attribute i joined by a single space. It is
// the canonical "string view" used by character-based similarity functions.
func (e *Entity) Joined(i int) string {
	return strings.Join(e.Value(i), " ")
}

// Clone returns a deep copy of the entity.
func (e *Entity) Clone() *Entity {
	c := &Entity{ID: e.ID, Values: make([][]string, len(e.Values))}
	for i, vs := range e.Values {
		c.Values[i] = append([]string(nil), vs...)
	}
	return c
}

// String renders a compact one-line description, mainly for debugging.
func (e *Entity) String() string {
	var b strings.Builder
	b.WriteString(e.ID)
	b.WriteString("{")
	for i, vs := range e.Values {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(strings.Join(vs, ","))
	}
	b.WriteString("}")
	return b.String()
}

// Group is a set of entities that were categorized together by an upstream
// process. Truth optionally records ground-truth labels for evaluation:
// Truth[id] is true when the entity with that ID is mis-categorized.
type Group struct {
	// Name identifies the group (e.g. a Scholar page owner or a product
	// category).
	Name string
	// Schema is the relation all entities are defined over.
	Schema *Schema
	// Entities holds the group members.
	Entities []*Entity
	// Truth maps entity ID -> true when the entity is mis-categorized.
	// It may be nil when ground truth is unknown.
	Truth map[string]bool
}

// NewGroup creates an empty group over the given schema.
func NewGroup(name string, schema *Schema) *Group {
	return &Group{Name: name, Schema: schema}
}

// Add appends an entity to the group. The entity must match the group schema
// width; it returns an error otherwise or when the ID duplicates an existing
// member.
func (g *Group) Add(e *Entity) error {
	if len(e.Values) != g.Schema.Len() {
		return fmt.Errorf("entity %q: %d value lists, schema has %d attributes",
			e.ID, len(e.Values), g.Schema.Len())
	}
	for _, x := range g.Entities {
		if x.ID == e.ID {
			return fmt.Errorf("entity %q: duplicate ID in group %q", e.ID, g.Name)
		}
	}
	g.Entities = append(g.Entities, e)
	return nil
}

// MustAdd is Add that panics on error, for generators and tests.
func (g *Group) MustAdd(e *Entity) {
	if err := g.Add(e); err != nil {
		panic(err)
	}
}

// Size reports the number of entities in the group.
func (g *Group) Size() int { return len(g.Entities) }

// MarkMisCategorized records ground truth for an entity ID.
func (g *Group) MarkMisCategorized(id string) {
	if g.Truth == nil {
		g.Truth = make(map[string]bool)
	}
	g.Truth[id] = true
}

// MisCategorizedIDs returns the sorted IDs of entities marked mis-categorized
// in the ground truth.
func (g *Group) MisCategorizedIDs() []string {
	ids := make([]string, 0, len(g.Truth))
	for id, bad := range g.Truth {
		if bad {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// ByID returns the entity with the given ID, or nil when absent.
func (g *Group) ByID(id string) *Entity {
	for _, e := range g.Entities {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// jsonGroup is the serialized form of a Group.
type jsonGroup struct {
	Name       string              `json:"name"`
	Attributes []string            `json:"attributes"`
	Entities   []jsonEntity        `json:"entities"`
	Truth      map[string]bool     `json:"truth,omitempty"`
	Extra      map[string][]string `json:"-"`
}

type jsonEntity struct {
	ID     string     `json:"id"`
	Values [][]string `json:"values"`
}

// MarshalJSON serializes the group including schema and ground truth.
func (g *Group) MarshalJSON() ([]byte, error) {
	jg := jsonGroup{Name: g.Name, Attributes: g.Schema.Attributes, Truth: g.Truth}
	for _, e := range g.Entities {
		jg.Entities = append(jg.Entities, jsonEntity{ID: e.ID, Values: e.Values})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON restores a group serialized by MarshalJSON.
func (g *Group) UnmarshalJSON(data []byte) error {
	var jg jsonGroup
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	schema, err := NewSchema(jg.Attributes...)
	if err != nil {
		return err
	}
	g.Name = jg.Name
	g.Schema = schema
	g.Truth = jg.Truth
	g.Entities = g.Entities[:0]
	for _, je := range jg.Entities {
		e, err := NewEntity(schema, je.ID, je.Values)
		if err != nil {
			return err
		}
		if err := g.Add(e); err != nil {
			return err
		}
	}
	return nil
}

// Pair identifies an unordered pair of entities by position within a group.
type Pair struct {
	I, J int
}

// Canonical returns the pair with I < J.
func (p Pair) Canonical() Pair {
	if p.I > p.J {
		return Pair{p.J, p.I}
	}
	return p
}
