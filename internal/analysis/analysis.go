// Package analysis profiles a group before rules exist: per-attribute
// statistics (coverage, multi-valuedness, token shape, distinctness),
// suggested token modes, and — when ground truth is present — a
// separability score per attribute that estimates how well that attribute's
// similarity distinguishes correct pairs from mis-categorized ones. The
// profile is where rule writing (or rule generation) starts on a new domain.
package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dime/internal/entity"
	"dime/internal/rules"
	"dime/internal/sim"
	"dime/internal/tokenize"
)

// AttributeProfile summarizes one attribute of a group.
type AttributeProfile struct {
	// Name is the attribute name.
	Name string
	// Coverage is the fraction of entities with at least one value.
	Coverage float64
	// MultiValued is the fraction of entities with more than one value.
	MultiValued float64
	// AvgValues is the mean value-list length over covered entities.
	AvgValues float64
	// AvgWords is the mean word count per value over covered entities.
	AvgWords float64
	// DistinctRatio is distinct(normalized joined values) / covered — near 1
	// for identifier-like attributes, near 0 for categorical ones.
	DistinctRatio float64
	// SuggestedMode is the token mode a rule config should use: Elements for
	// genuinely multi-valued attributes, WordsMode for free text.
	SuggestedMode rules.TokenMode
	// MeanPairSim is the mean pairwise Jaccard over the sampled pairs
	// (under the suggested token mode).
	MeanPairSim float64
	// Separability is mean sim(correct, correct) − mean sim(correct,
	// mis-categorized) over the sampled pairs; NaN when the group carries no
	// ground truth. Attributes with high separability are where positive and
	// negative rules should look first.
	Separability float64
}

// Options tunes profiling.
type Options struct {
	// SamplePairs bounds the sampled entity pairs per statistic; 0 means 2000.
	SamplePairs int
	// Seed drives sampling.
	Seed int64
}

// Profile computes per-attribute statistics for a group.
func Profile(g *entity.Group, opts Options) ([]AttributeProfile, error) {
	if g == nil || g.Schema == nil {
		return nil, fmt.Errorf("analysis: nil group or schema")
	}
	if g.Size() == 0 {
		return nil, fmt.Errorf("analysis: empty group")
	}
	if opts.SamplePairs == 0 {
		opts.SamplePairs = 2000
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := g.Size()

	profiles := make([]AttributeProfile, g.Schema.Len())
	for ai := 0; ai < g.Schema.Len(); ai++ {
		p := AttributeProfile{Name: g.Schema.Name(ai), Separability: math.NaN()}
		covered := 0
		multi := 0
		totalValues := 0
		totalWords := 0
		distinct := map[string]struct{}{}
		for _, e := range g.Entities {
			vs := e.Value(ai)
			if len(vs) == 0 || (len(vs) == 1 && vs[0] == "") {
				continue
			}
			covered++
			totalValues += len(vs)
			if len(vs) > 1 {
				multi++
			}
			for _, v := range vs {
				totalWords += len(tokenize.Words(v))
			}
			distinct[normalizeJoined(vs)] = struct{}{}
		}
		if covered > 0 {
			p.Coverage = float64(covered) / float64(n)
			p.MultiValued = float64(multi) / float64(covered)
			p.AvgValues = float64(totalValues) / float64(covered)
			p.AvgWords = float64(totalWords) / float64(totalValues)
			p.DistinctRatio = float64(len(distinct)) / float64(covered)
		}
		p.SuggestedMode = suggestMode(p)

		// Pairwise statistics under the suggested mode.
		tokensOf := func(e *entity.Entity) []string {
			if p.SuggestedMode == rules.WordsMode {
				return tokenize.Set(e.Joined(ai))
			}
			vs := e.Value(ai)
			out := make([]string, 0, len(vs))
			for _, v := range vs {
				out = append(out, normalizeValue(v))
			}
			return tokenize.Dedup(out)
		}
		var all, pos, neg []float64
		for k := 0; k < opts.SamplePairs && n >= 2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			a, b := g.Entities[i], g.Entities[j]
			s := sim.Jaccard(tokensOf(a), tokensOf(b))
			all = append(all, s)
			if g.Truth != nil {
				badA, badB := g.Truth[a.ID], g.Truth[b.ID]
				switch {
				case !badA && !badB:
					pos = append(pos, s)
				case badA != badB:
					neg = append(neg, s)
				}
			}
		}
		p.MeanPairSim = mean(all)
		if len(pos) >= 10 && len(neg) >= 10 {
			p.Separability = mean(pos) - mean(neg)
		}
		profiles[ai] = p
	}
	return profiles, nil
}

// SuggestConfig builds a rule config from a profile: token modes set per
// attribute. Ontology trees cannot be inferred and stay unset.
func SuggestConfig(g *entity.Group, profiles []AttributeProfile) *rules.Config {
	cfg := rules.NewConfig(g.Schema)
	for _, p := range profiles {
		cfg.WithTokenMode(p.Name, p.SuggestedMode)
	}
	return cfg
}

// RankBySeparability returns the profiles ordered most-discriminative first
// (NaN separability sorts last); ties break by name.
func RankBySeparability(profiles []AttributeProfile) []AttributeProfile {
	out := append([]AttributeProfile(nil), profiles...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].Separability, out[j].Separability
		switch {
		case math.IsNaN(si) && math.IsNaN(sj):
			return out[i].Name < out[j].Name
		case math.IsNaN(si):
			return false
		case math.IsNaN(sj):
			return true
		//lint:ignore float-threshold sort comparators need a strict weak order; epsilon equality is not transitive
		case si != sj:
			return si > sj
		default:
			return out[i].Name < out[j].Name
		}
	})
	return out
}

// suggestMode picks Elements for genuinely multi-valued attributes and for
// short categorical values; WordsMode for longer free text.
func suggestMode(p AttributeProfile) rules.TokenMode {
	if p.MultiValued > 0.2 {
		return rules.Elements
	}
	if p.AvgWords >= 3 {
		return rules.WordsMode
	}
	return rules.Elements
}

func normalizeJoined(vs []string) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += "\x1f"
		}
		out += normalizeValue(v)
	}
	return out
}

func normalizeValue(v string) string {
	ws := tokenize.Words(v)
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
