package analysis

import (
	"math"
	"testing"

	"dime/internal/datagen"
	"dime/internal/fixtures"
	"dime/internal/rules"
	"dime/internal/sim"
)

func TestProfileFigure1(t *testing.T) {
	g := fixtures.Figure1Group()
	profiles, err := Profile(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	byName := map[string]AttributeProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	authors := byName["Authors"]
	if authors.SuggestedMode != rules.Elements {
		t.Fatal("Authors should suggest element tokens")
	}
	if authors.MultiValued < 0.9 {
		t.Fatalf("Authors multi-valued = %v", authors.MultiValued)
	}
	title := byName["Title"]
	if title.SuggestedMode != rules.WordsMode {
		t.Fatal("Title should suggest word tokens")
	}
	if !sim.Eq(title.DistinctRatio, 1) {
		t.Fatalf("titles are unique; distinct ratio = %v", title.DistinctRatio)
	}
	venue := byName["Venue"]
	if !sim.Eq(venue.Coverage, 1) {
		t.Fatalf("venue coverage = %v", venue.Coverage)
	}
}

// TestSeparabilityOrdersAttributes: on a generated Scholar page, Authors
// must be (near) the most separating attribute and noise attributes like
// Date near the bottom — the insight the paper's rule choices encode.
func TestSeparabilityOrdersAttributes(t *testing.T) {
	g := datagen.Scholar(datagen.ScholarOptions{NumPubs: 150, ErrorRate: 0.15, Seed: 4})
	profiles, err := Profile(g, Options{SamplePairs: 6000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankBySeparability(profiles)
	top2 := []string{ranked[0].Name, ranked[1].Name}
	foundAuthors := false
	for _, n := range top2 {
		if n == "Authors" {
			foundAuthors = true
		}
	}
	if !foundAuthors {
		t.Fatalf("Authors should rank in the top 2 separating attributes, got %v", top2)
	}
	// Date must not be the most separating attribute.
	if ranked[0].Name == "Date" {
		t.Fatal("Date ranked first; separability is broken")
	}
	for _, p := range profiles {
		if !math.IsNaN(p.Separability) && (p.Separability < -1 || p.Separability > 1) {
			t.Fatalf("%s separability out of range: %v", p.Name, p.Separability)
		}
	}
}

func TestProfileWithoutTruth(t *testing.T) {
	g := fixtures.Figure1Group()
	g.Truth = nil
	profiles, err := Profile(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if !math.IsNaN(p.Separability) {
			t.Fatalf("%s: separability should be NaN without truth", p.Name)
		}
	}
}

func TestSuggestConfigCompiles(t *testing.T) {
	g := fixtures.Figure1Group()
	profiles, err := Profile(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SuggestConfig(g, profiles)
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != g.Size() {
		t.Fatal("records missing")
	}
	// Title must be word-tokenized under the suggested config.
	ti, _ := g.Schema.Index("Title")
	if len(recs[0].Tokens[ti]) < 3 {
		t.Fatalf("title tokens = %v", recs[0].Tokens[ti])
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := Profile(nil, Options{}); err == nil {
		t.Fatal("nil group should fail")
	}
	g := fixtures.Figure1Group()
	g.Entities = nil
	if _, err := Profile(g, Options{}); err == nil {
		t.Fatal("empty group should fail")
	}
}
