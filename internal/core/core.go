// Package core implements the paper's primary contribution: the rule-based
// framework DIME (Algorithm 1) and its signature-accelerated variant DIME+
// (Algorithm 2) for discovering mis-categorized entities in a group.
//
// Both algorithms run the same three steps:
//
//  1. apply the positive rules as a disjunction, with transitivity, to
//     compute disjoint partitions of the group;
//  2. take the largest partition as the pivot partition P*;
//  3. apply the negative rules in sequence (φ−1, then φ−1 ∨ φ−2, ...) to mark
//     non-pivot partitions whose entities are provably dissimilar from P*.
//
// The per-prefix outputs form a monotone "scrollbar" (Figure 3): each level
// is a superset of the previous one, so a user can slide between conservative
// and aggressive suggestions.
package core

import (
	"fmt"
	"sort"

	"dime/internal/entity"
	"dime/internal/obs"
	"dime/internal/rules"
)

// Options configures a discovery run. Config and Rules are required; the
// Disable* switches exist for the ablation benchmarks and default to off.
type Options struct {
	// Config compiles entities into records (token modes, ontology trees).
	Config *rules.Config
	// Rules holds the positive and negative rules.
	Rules rules.RuleSet
	// DisableTransitivitySkip makes DIME+ verify candidate pairs even when
	// union–find already places them in one partition (ablation).
	DisableTransitivitySkip bool
	// DisableBenefitOrder makes DIME+ process candidates in arrival order
	// instead of benefit order (ablation).
	DisableBenefitOrder bool
	// BenefitSortLimit caps the candidate count DIME+ sorts globally by
	// benefit; larger candidate sets are verified streaming (transitivity
	// still skips the bulk, and the results are identical). Zero and
	// negative values both select the default of 32768; use a small
	// positive limit (e.g. 1) to force streaming verification.
	BenefitSortLimit int
	// IntraWorkers bounds the worker goroutines DIME+ uses *within* one
	// discovery run: positive-phase candidates are evaluated speculatively
	// in parallel chunks and replayed in deterministic order, and
	// independent non-pivot partitions are verified concurrently in the
	// negative phase. 0 (the default) uses GOMAXPROCS; 1 forces the
	// historical sequential path; values above GOMAXPROCS are honored so
	// the parallel path can be exercised anywhere. Every setting produces
	// byte-identical Results — partitions, pivot, levels, witnesses, and
	// Stats — which the differential harness (internal/difftest) and the
	// repository's race-enabled tests enforce.
	//
	// Concurrency contract: with IntraWorkers != 1, rule evaluation and
	// signature probes run on multiple goroutines. All inputs are safe for
	// that by construction — Records, Rules and ontology trees are
	// immutable after compilation, and signature contexts/indexes are
	// read-only after construction for every predicate of the rule set
	// (see signature.NewContext) — but a non-nil Probe must be safe for
	// concurrent use (all probes in internal/obs are), and custom
	// rules.NodeMapper implementations must not mutate shared state during
	// record compilation.
	IntraWorkers int
	// Probe receives phase spans (record compilation, signature build,
	// candidate generation, positive verify, negative filter, negative
	// verify) and work counters for observability. Nil — the default —
	// disables instrumentation on a no-op fast path. A probe shared across
	// goroutines (DiscoverAll, or any run with IntraWorkers != 1) must be
	// safe for concurrent use; the probes in internal/obs all are.
	Probe obs.Probe
}

// Level is one scrollbar position: the cumulative output of the negative
// rule prefix φ−1 ∨ ... ∨ φ−k.
type Level struct {
	// RuleName names the rule that was added at this level.
	RuleName string
	// PartitionIndexes lists the partitions (by index into Result.Partitions)
	// marked mis-categorized at this level, cumulatively, ascending.
	PartitionIndexes []int
	// EntityIDs lists the discovered mis-categorized entity IDs at this
	// level, cumulatively, sorted.
	EntityIDs []string
}

// Witness explains why a partition was marked mis-categorized: which
// negative rule fired for which (partition entity, pivot entity) pair — the
// evidence a review UI shows next to each suggestion. A partition proven by
// signature disjointness alone carries the rule name with empty IDs (every
// pair is a witness in that case).
type Witness struct {
	// Rule is the negative rule that matched.
	Rule string
	// EntityID is the partition member of the witnessing pair ("" when the
	// whole partition was proven by signatures).
	EntityID string
	// PivotID is the pivot member of the witnessing pair ("" when proven by
	// signatures).
	PivotID string
}

// Stats counts the work a run performed; the ablation benches compare them.
type Stats struct {
	// PositivePairsConsidered counts (pair, rule) combinations examined.
	PositivePairsConsidered int64
	// PositiveVerified counts positive-rule predicate evaluations on pairs.
	PositiveVerified int64
	// PositiveSkippedByTransitivity counts candidates skipped because
	// union–find already had them together.
	PositiveSkippedByTransitivity int64
	// NegativeVerified counts negative-rule evaluations on pairs.
	NegativeVerified int64
	// PartitionsFilteredBySignature counts partitions proven mis-categorized
	// by signature disjointness alone (no verification).
	PartitionsFilteredBySignature int64
	// CertainPairsBySignature counts probes that proved a pair dissimilar
	// without verification.
	CertainPairsBySignature int64
}

// Add accumulates other into s field-wise; batch callers use it to fold
// per-group stats into one aggregate.
func (s *Stats) Add(other Stats) {
	s.PositivePairsConsidered += other.PositivePairsConsidered
	s.PositiveVerified += other.PositiveVerified
	s.PositiveSkippedByTransitivity += other.PositiveSkippedByTransitivity
	s.NegativeVerified += other.NegativeVerified
	s.PartitionsFilteredBySignature += other.PartitionsFilteredBySignature
	s.CertainPairsBySignature += other.CertainPairsBySignature
}

// Result is the output of a discovery run.
type Result struct {
	// Group is the analyzed group.
	Group *entity.Group
	// Partitions holds the disjoint partitions as entity indexes into
	// Group.Entities; partitions are ordered by smallest member.
	Partitions [][]int
	// Pivot is the index into Partitions of the pivot partition.
	Pivot int
	// Levels holds the scrollbar levels, one per negative rule, in
	// application order.
	Levels []Level
	// Witnesses maps a marked partition's index to the evidence that marked
	// it. The witnessing pair may differ between DIME and DIME+ (they verify
	// in different orders); the marked set never does.
	Witnesses map[int]Witness
	// Stats describes the work performed.
	Stats Stats
}

// WitnessOf returns the evidence for a marked partition and whether the
// partition was marked at all.
func (r *Result) WitnessOf(partition int) (Witness, bool) {
	w, ok := r.Witnesses[partition]
	return w, ok
}

// MisCategorizedIDs returns the entity IDs discovered at scrollbar level
// `level` (0-based). Out-of-range levels clamp to the deepest one; a result
// with no levels yields nil.
func (r *Result) MisCategorizedIDs(level int) []string {
	if len(r.Levels) == 0 {
		return nil
	}
	if level < 0 {
		level = 0
	}
	if level >= len(r.Levels) {
		level = len(r.Levels) - 1
	}
	return r.Levels[level].EntityIDs
}

// Final returns the deepest level's discovered IDs (all negative rules
// applied).
func (r *Result) Final() []string { return r.MisCategorizedIDs(len(r.Levels) - 1) }

// PivotSize returns the size of the pivot partition (0 for empty results).
func (r *Result) PivotSize() int {
	if r.Pivot < 0 || r.Pivot >= len(r.Partitions) {
		return 0
	}
	return len(r.Partitions[r.Pivot])
}

// validate checks options before a run.
func (o *Options) validate(g *entity.Group) error {
	if o.Config == nil {
		return fmt.Errorf("core: options need a rules.Config")
	}
	if g == nil || g.Schema == nil {
		return fmt.Errorf("core: group is nil or has no schema")
	}
	if err := o.Rules.Validate(g.Schema); err != nil {
		return err
	}
	if len(o.Rules.Positive) == 0 {
		return fmt.Errorf("core: at least one positive rule is required")
	}
	if len(o.Rules.Negative) == 0 {
		return fmt.Errorf("core: at least one negative rule is required")
	}
	return nil
}

// pivotOf returns the index of the largest partition; ties break toward the
// partition with the smallest member index so results are deterministic.
func pivotOf(partitions [][]int) int {
	best, bestLen := -1, -1
	for i, p := range partitions {
		if len(p) > bestLen {
			best, bestLen = i, len(p)
		}
	}
	return best
}

// levelFrom builds a cumulative Level from the marked-partition set.
func levelFrom(g *entity.Group, partitions [][]int, marked map[int]bool, ruleName string) Level {
	lv := Level{RuleName: ruleName}
	for pi := range partitions {
		if marked[pi] {
			lv.PartitionIndexes = append(lv.PartitionIndexes, pi)
		}
	}
	sort.Ints(lv.PartitionIndexes)
	for _, pi := range lv.PartitionIndexes {
		for _, ei := range partitions[pi] {
			lv.EntityIDs = append(lv.EntityIDs, g.Entities[ei].ID)
		}
	}
	sort.Strings(lv.EntityIDs)
	return lv
}
