package core

import (
	"dime/internal/entity"
	"dime/internal/obs"
	"dime/internal/partition"
	"dime/internal/rules"
)

// DIME runs the basic rule-based framework (Algorithm 1): it enumerates
// every entity pair against every positive rule to build the partition
// graph, picks the largest connected component as the pivot partition, and
// then enumerates pivot × other pairs against the negative rules in
// sequence to discover mis-categorized partitions. Having no signature
// machinery, it emits only the record-compile, positive-verify, and
// negative-verify phases to the probe.
func DIME(g *entity.Group, opts Options) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	run := obs.Start(opts.Probe, "dime", obs.A("group", g.Name))
	defer run.End()
	sp := run.StartSpan(obs.PhaseRecordCompile)
	recs, err := opts.Config.NewRecords(g)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Count("records", int64(len(recs)))
	sp.End()
	res := &Result{Group: g, Pivot: -1}
	n := len(recs)
	if n == 0 {
		return res, nil
	}

	// Step 1: compute disjoint partitions with the positive-rule disjunction
	// plus transitivity (connected components via union–find).
	pv := run.StartSpan(obs.PhasePositiveVerify)
	uf := partition.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, r := range opts.Rules.Positive {
				res.Stats.PositivePairsConsidered++
				res.Stats.PositiveVerified++
				if r.Eval(recs[i], recs[j]) {
					uf.Union(i, j)
					break // the disjunction is satisfied; other rules add nothing
				}
			}
		}
	}
	pv.Count("verified", res.Stats.PositiveVerified)
	pv.End()
	res.Partitions = uf.Sets()

	// Step 2: the pivot partition is the largest one.
	res.Pivot = pivotOf(res.Partitions)

	// Step 3: apply negative rules in sequence; each level accumulates the
	// partitions marked by the growing disjunction φ−1 ∨ ... ∨ φ−k.
	pivot := res.Partitions[res.Pivot]
	marked := make(map[int]bool)
	res.Witnesses = make(map[int]Witness)
	for _, neg := range opts.Rules.Negative {
		vsp := run.StartSpan(obs.PhaseNegativeVerify, obs.A("rule", neg.Name))
		verifiedBefore := res.Stats.NegativeVerified
		for pi, part := range res.Partitions {
			if pi == res.Pivot || marked[pi] {
				continue
			}
		partLoop:
			for _, ei := range part {
				for _, pj := range pivot {
					res.Stats.NegativeVerified++
					if neg.Eval(recs[ei], recs[pj]) {
						marked[pi] = true
						res.Witnesses[pi] = Witness{
							Rule:     neg.Name,
							EntityID: g.Entities[ei].ID,
							PivotID:  g.Entities[pj].ID,
						}
						break partLoop
					}
				}
			}
		}
		vsp.Count("verified", res.Stats.NegativeVerified-verifiedBefore)
		vsp.End()
		res.Levels = append(res.Levels, levelFrom(g, res.Partitions, marked, neg.Name))
	}
	return res, nil
}

// EvalPositiveAny reports whether any positive rule of the set matches the
// pair; exported for baselines and tests that need raw rule semantics.
func EvalPositiveAny(rs rules.RuleSet, a, b *rules.Record) bool {
	for _, r := range rs.Positive {
		if r.Eval(a, b) {
			return true
		}
	}
	return false
}

// EvalNegativePrefix reports whether any of the first k negative rules
// matches the pair.
func EvalNegativePrefix(rs rules.RuleSet, k int, a, b *rules.Record) bool {
	if k > len(rs.Negative) {
		k = len(rs.Negative)
	}
	for _, r := range rs.Negative[:k] {
		if r.Eval(a, b) {
			return true
		}
	}
	return false
}
