package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dime/internal/entity"
	"dime/internal/obs"
)

// BatchStats aggregates one DiscoverAll run: the per-group work counters
// summed field-wise plus batch-level wall time and parallelism.
type BatchStats struct {
	// Groups is the number of groups processed.
	Groups int
	// Workers is the worker-goroutine count actually used (after clamping
	// to GOMAXPROCS and the group count).
	Workers int
	// Wall is the end-to-end wall-clock duration of the batch.
	Wall time.Duration
	// GroupLatency summarizes the per-group DIMEPlus wall times (seconds):
	// count, sum, and interpolated p50/p90/p99 from a fixed-bucket
	// histogram, so a batch report shows the latency distribution across
	// groups, not just the aggregate wall.
	GroupLatency obs.LatencySummary
	// Stats sums the per-group Stats.
	Stats Stats
}

// DiscoverAll runs DIMEPlus over many groups concurrently with a bounded
// worker pool and returns one result per group, in input order. Each group
// is processed independently (signature contexts and orderings are
// per-group), so results are identical to sequential runs. workers ≤ 0 uses
// GOMAXPROCS. On error the failure of the lowest-indexed failed group is
// returned and the batch result is discarded.
func DiscoverAll(groups []*entity.Group, opts Options, workers int) ([]*Result, error) {
	results, _, err := DiscoverAllStats(groups, opts, workers)
	return results, err
}

// DiscoverAllStats is DiscoverAll plus a BatchStats aggregate. A non-nil
// opts.Probe is shared by all workers — each group still gets its own root
// span — and additionally receives a "batch" run recording group and worker
// counts over the whole batch's duration.
//
// An empty corpus returns an empty (non-nil) result slice and a zero-valued
// BatchStats — Workers stays 0 because no pool is spawned, and Wall stays 0
// because no timing run starts.
//
// When opts.IntraWorkers is left at its default, the batch divides GOMAXPROCS
// between the group-level pool and each group's intra-group workers so the
// two layers of parallelism don't oversubscribe the machine; an explicit
// IntraWorkers setting is passed through untouched.
func DiscoverAllStats(groups []*entity.Group, opts Options, workers int) ([]*Result, BatchStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	results := make([]*Result, len(groups))
	if len(groups) == 0 {
		return results, BatchStats{}, nil
	}
	if opts.IntraWorkers <= 0 {
		if opts.IntraWorkers = runtime.GOMAXPROCS(0) / workers; opts.IntraWorkers < 1 {
			opts.IntraWorkers = 1
		}
	}

	start := obs.Now()
	latency := obs.NewHistogram(nil)
	run := obs.Start(opts.Probe, "batch")
	run.Count("groups", int64(len(groups)))
	run.Count("workers", int64(workers))
	var (
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	// Errors land in per-index slots (like results) and are folded in input
	// order below, so the reported error does not depend on goroutine
	// scheduling when several groups fail.
	errs := make([]error, len(groups))
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if failed.Load() {
					continue // drain remaining jobs after a failure
				}
				groupStart := obs.Now()
				res, err := DIMEPlus(groups[idx], opts)
				latency.Observe(obs.Since(groupStart).Seconds())
				if err != nil {
					failed.Store(true)
					errs[idx] = fmt.Errorf("group %q: %w", groups[idx].Name, err)
					continue
				}
				results[idx] = res
			}
		}()
	}
	for i := range groups {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	run.End()
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, BatchStats{}, err
			}
		}
	}
	bs := BatchStats{
		Groups:       len(groups),
		Workers:      workers,
		Wall:         obs.Since(start),
		GroupLatency: latency.Summary(),
	}
	for _, r := range results {
		bs.Stats.Add(r.Stats)
	}
	return results, bs, nil
}
