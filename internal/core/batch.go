package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dime/internal/entity"
)

// DiscoverAll runs DIMEPlus over many groups concurrently with a bounded
// worker pool and returns one result per group, in input order. Each group
// is processed independently (signature contexts and orderings are
// per-group), so results are identical to sequential runs. workers ≤ 0 uses
// GOMAXPROCS. On error the first failure is returned and the batch result is
// discarded.
func DiscoverAll(groups []*entity.Group, opts Options, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	results := make([]*Result, len(groups))
	if len(groups) == 0 {
		return results, nil
	}

	var (
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if failed.Load() {
					continue // drain remaining jobs after a failure
				}
				res, err := DIMEPlus(groups[idx], opts)
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						errMu.Lock()
						firstErr = fmt.Errorf("group %q: %w", groups[idx].Name, err)
						errMu.Unlock()
					}
					continue
				}
				results[idx] = res
			}
		}()
	}
	for i := range groups {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if failed.Load() {
		errMu.Lock()
		defer errMu.Unlock()
		return nil, firstErr
	}
	return results, nil
}
