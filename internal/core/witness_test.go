package core

import (
	"testing"

	"dime/internal/fixtures"
)

// TestWitnessesExplainMarks: every marked partition carries a witness whose
// pair (when concrete) actually satisfies the named rule.
func TestWitnessesExplainMarks(t *testing.T) {
	g := fixtures.Figure1Group()
	cfg := fixtures.ScholarConfig()
	rs := fixtures.PaperRules(cfg)
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]int{}
	for i, e := range g.Entities {
		byID[e.ID] = i
	}
	ruleByName := map[string]int{}
	for i, r := range rs.Negative {
		ruleByName[r.Name] = i
	}

	for _, algo := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"DIME", func() (*Result, error) { return DIME(g, paperOptions()) }},
		{"DIMEPlus", func() (*Result, error) { return DIMEPlus(g, paperOptions()) }},
	} {
		res, err := algo.run()
		if err != nil {
			t.Fatal(err)
		}
		final := res.Levels[len(res.Levels)-1]
		for _, pi := range final.PartitionIndexes {
			w, ok := res.WitnessOf(pi)
			if !ok {
				t.Errorf("%s: partition %d marked but has no witness", algo.name, pi)
				continue
			}
			ri, known := ruleByName[w.Rule]
			if !known {
				t.Errorf("%s: witness names unknown rule %q", algo.name, w.Rule)
				continue
			}
			if w.EntityID == "" {
				continue // proven by signature disjointness: all pairs satisfy
			}
			a, b := recs[byID[w.EntityID]], recs[byID[w.PivotID]]
			if !rs.Negative[ri].Eval(a, b) {
				t.Errorf("%s: witness (%s, %s) does not satisfy %s",
					algo.name, w.EntityID, w.PivotID, w.Rule)
			}
		}
		// Unmarked partitions must have no witness.
		markedSet := map[int]bool{}
		for _, pi := range final.PartitionIndexes {
			markedSet[pi] = true
		}
		for pi := range res.Witnesses {
			if !markedSet[pi] {
				t.Errorf("%s: witness for unmarked partition %d", algo.name, pi)
			}
		}
	}
}

// TestWitnessPaperExample: e4's partition is witnessed by φ−1 and e6's by
// φ−2 under the naive algorithm (deterministic verification order).
func TestWitnessPaperExample(t *testing.T) {
	g := fixtures.Figure1Group()
	res, err := DIME(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]string{} // entity -> rule
	for pi, w := range res.Witnesses {
		for _, ei := range res.Partitions[pi] {
			found[g.Entities[ei].ID] = w.Rule
		}
	}
	if found["e4"] != "phi-1" {
		t.Errorf("e4 witnessed by %q, want phi-1", found["e4"])
	}
	if found["e6"] != "phi-2" {
		t.Errorf("e6 witnessed by %q, want phi-2", found["e6"])
	}
}
