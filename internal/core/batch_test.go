package core

import (
	"reflect"
	"testing"

	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/presets"
)

func TestDiscoverAllMatchesSequential(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(9, 40, 0.08, 77)

	batch, err := DiscoverAll(groups, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(groups) {
		t.Fatalf("results = %d", len(batch))
	}
	for i, g := range groups {
		seq, err := DIMEPlus(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Final(), batch[i].Final()) {
			t.Fatalf("group %d: batch %v vs sequential %v", i, batch[i].Final(), seq.Final())
		}
		if batch[i].PivotSize() != seq.PivotSize() {
			t.Fatalf("group %d: pivot sizes differ", i)
		}
	}
}

func TestDiscoverAllEmptyAndWorkerClamp(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	res, err := DiscoverAll(nil, opts, 8)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	groups := datagen.ScholarPages(2, 30, 0.1, 5)
	res, err = DiscoverAll(groups, opts, 100) // workers > groups
	if err != nil || len(res) != 2 {
		t.Fatalf("clamped batch: %v, %v", res, err)
	}
	res, err = DiscoverAll(groups, opts, 0) // default workers
	if err != nil || res[0] == nil || res[1] == nil {
		t.Fatalf("default workers: %v, %v", res, err)
	}
}

func TestDiscoverAllStatsAggregates(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(5, 30, 0.08, 41)

	results, bs, err := DiscoverAllStats(groups, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Groups != len(groups) || bs.Workers != 3 {
		t.Fatalf("batch stats = %+v", bs)
	}
	if bs.Wall <= 0 {
		t.Fatalf("wall time = %v", bs.Wall)
	}
	var want Stats
	for _, r := range results {
		want.Add(r.Stats)
	}
	if bs.Stats != want {
		t.Fatalf("aggregate stats = %+v, want %+v", bs.Stats, want)
	}

	// Worker clamping is reflected in the reported stats.
	_, bs, err = DiscoverAllStats(groups, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Workers != len(groups) {
		t.Fatalf("clamped workers = %d, want %d", bs.Workers, len(groups))
	}
	_, bs, err = DiscoverAllStats(nil, opts, 4)
	if err != nil || bs != (BatchStats{}) {
		t.Fatalf("empty batch stats = %+v, err %v", bs, err)
	}
}

// TestStatsAddFieldComplete fills every Stats field with a distinct value
// via reflection before folding, so adding a field to Stats without
// extending Add fails here instead of silently dropping counts from batch
// aggregates.
func TestStatsAddFieldComplete(t *testing.T) {
	var a, b Stats
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(100 * (i + 1)))
	}
	a.Add(b)
	for i := 0; i < av.NumField(); i++ {
		want := int64(i+1) + int64(100*(i+1))
		if got := av.Field(i).Int(); got != want {
			t.Errorf("after Add, field %s = %d, want %d (is Stats.Add missing it?)",
				av.Type().Field(i).Name, got, want)
		}
	}
	// The zero value is Add's identity in both directions.
	before := a
	a.Add(Stats{})
	if a != before {
		t.Fatalf("adding zero Stats changed the receiver: %+v vs %+v", a, before)
	}
	var zero Stats
	zero.Add(before)
	if zero != before {
		t.Fatalf("adding into zero Stats = %+v, want %+v", zero, before)
	}
}

// TestDiscoverAllStatsEdges pins the zero-group and single-group boundary
// behaviour: an empty corpus — nil or empty slice — returns an empty result
// slice and a zero BatchStats without spawning a pool, and a one-group batch
// clamps every worker request to a single worker whose aggregate equals that
// group's own stats.
func TestDiscoverAllStatsEdges(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}

	for _, corpus := range [][]*entity.Group{nil, {}} {
		results, bs, err := DiscoverAllStats(corpus, opts, 8)
		if err != nil {
			t.Fatal(err)
		}
		if results == nil || len(results) != 0 {
			t.Fatalf("empty corpus results = %#v, want empty non-nil slice", results)
		}
		if bs != (BatchStats{}) {
			t.Fatalf("empty corpus batch stats = %+v, want zero value", bs)
		}
	}

	single := datagen.ScholarPages(1, 30, 0.1, 13)
	for _, workers := range []int{-1, 0, 1, 64} {
		results, bs, err := DiscoverAllStats(single, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if bs.Workers != 1 {
			t.Fatalf("workers=%d: reported %d pool workers, want 1", workers, bs.Workers)
		}
		if bs.Groups != 1 || bs.Wall <= 0 {
			t.Fatalf("workers=%d: batch stats = %+v", workers, bs)
		}
		if bs.Stats != results[0].Stats {
			t.Fatalf("workers=%d: aggregate %+v != single group %+v",
				workers, bs.Stats, results[0].Stats)
		}
	}
}

func TestDiscoverAllPropagatesErrors(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(3, 20, 0.1, 9)
	// Poison one group with a mismatched schema.
	bad := entity.NewGroup("bad", entity.MustSchema("X"))
	e, _ := entity.NewEntity(bad.Schema, "e", [][]string{{"v"}})
	bad.MustAdd(e)
	groups = append(groups, bad)

	if _, err := DiscoverAll(groups, opts, 2); err == nil {
		t.Fatal("schema mismatch should surface")
	}
}
