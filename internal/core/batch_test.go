package core

import (
	"reflect"
	"testing"

	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/presets"
)

func TestDiscoverAllMatchesSequential(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(9, 40, 0.08, 77)

	batch, err := DiscoverAll(groups, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(groups) {
		t.Fatalf("results = %d", len(batch))
	}
	for i, g := range groups {
		seq, err := DIMEPlus(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Final(), batch[i].Final()) {
			t.Fatalf("group %d: batch %v vs sequential %v", i, batch[i].Final(), seq.Final())
		}
		if batch[i].PivotSize() != seq.PivotSize() {
			t.Fatalf("group %d: pivot sizes differ", i)
		}
	}
}

func TestDiscoverAllEmptyAndWorkerClamp(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	res, err := DiscoverAll(nil, opts, 8)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	groups := datagen.ScholarPages(2, 30, 0.1, 5)
	res, err = DiscoverAll(groups, opts, 100) // workers > groups
	if err != nil || len(res) != 2 {
		t.Fatalf("clamped batch: %v, %v", res, err)
	}
	res, err = DiscoverAll(groups, opts, 0) // default workers
	if err != nil || res[0] == nil || res[1] == nil {
		t.Fatalf("default workers: %v, %v", res, err)
	}
}

func TestDiscoverAllStatsAggregates(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(5, 30, 0.08, 41)

	results, bs, err := DiscoverAllStats(groups, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Groups != len(groups) || bs.Workers != 3 {
		t.Fatalf("batch stats = %+v", bs)
	}
	if bs.Wall <= 0 {
		t.Fatalf("wall time = %v", bs.Wall)
	}
	var want Stats
	for _, r := range results {
		want.Add(r.Stats)
	}
	if bs.Stats != want {
		t.Fatalf("aggregate stats = %+v, want %+v", bs.Stats, want)
	}

	// Worker clamping is reflected in the reported stats.
	_, bs, err = DiscoverAllStats(groups, opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Workers != len(groups) {
		t.Fatalf("clamped workers = %d, want %d", bs.Workers, len(groups))
	}
	_, bs, err = DiscoverAllStats(nil, opts, 4)
	if err != nil || bs != (BatchStats{}) {
		t.Fatalf("empty batch stats = %+v, err %v", bs, err)
	}
}

func TestDiscoverAllPropagatesErrors(t *testing.T) {
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	groups := datagen.ScholarPages(3, 20, 0.1, 9)
	// Poison one group with a mismatched schema.
	bad := entity.NewGroup("bad", entity.MustSchema("X"))
	e, _ := entity.NewEntity(bad.Schema, "e", [][]string{{"v"}})
	bad.MustAdd(e)
	groups = append(groups, bad)

	if _, err := DiscoverAll(groups, opts, 2); err == nil {
		t.Fatal("schema mismatch should surface")
	}
}
