package core

import (
	"fmt"
	"slices"

	"dime/internal/entity"
	"dime/internal/obs"
	"dime/internal/partition"
	"dime/internal/rules"
	"dime/internal/signature"
)

// Session maintains DIME+ state incrementally as a group grows — the
// natural mode for the paper's motivating applications, where a Scholar
// page or a product category gains entities over time. Step 1 (the
// partitioning) is maintained per added entity: only the new entity's
// candidate pairs are verified against the existing union–find. Steps 2 and
// 3 (pivot selection and negative rules) depend on global partition sizes,
// so Result recomputes them on demand.
//
// Correctness note: the signature context freezes its token/gram orderings
// and ontology depth floors at construction. Orderings stay valid for any
// addition (they remain one consistent global order); the depth floors can
// be invalidated by nodes shallower than anything seen before, in which
// case the session transparently rebuilds from scratch (Add reports whether
// it did).
type Session struct {
	opts    Options
	group   *entity.Group
	recs    []*rules.Record
	ctx     *signature.Context
	indexes []*signature.PosIndex
	uf      *partition.UnionFind
	stats   Stats
}

// NewSession runs the initial partitioning over the group and returns a
// session ready for Add calls. The group is referenced, not copied; do not
// mutate it except through Add.
func NewSession(g *entity.Group, opts Options) (*Session, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	s := &Session{opts: opts, group: g}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuild constructs the full step-1 state from the current group contents.
func (s *Session) rebuild() error {
	run := obs.Start(s.opts.Probe, "session-rebuild", obs.A("group", s.group.Name))
	defer run.End()
	sp := run.StartSpan(obs.PhaseRecordCompile)
	recs, err := s.opts.Config.NewRecords(s.group)
	if err != nil {
		sp.End()
		return err
	}
	sp.Count("records", int64(len(recs)))
	sp.End()
	s.recs = recs
	sb := run.StartSpan(obs.PhaseSignatureBuild)
	s.ctx = signature.NewContext(s.opts.Config, recs, s.opts.Rules)
	s.uf = partition.New(len(recs))
	s.indexes = make([]*signature.PosIndex, len(s.opts.Rules.Positive))
	for ri, rule := range s.opts.Rules.Positive {
		rsp := sb.StartSpan(obs.PhaseSignatureBuild, obs.A("rule", rule.Name))
		s.indexes[ri] = signature.BuildPositive(s.ctx, rule, recs)
		rsp.End()
	}
	sb.End()
	// The session always verifies streaming, so verification interleaves
	// with candidate generation here; verified counters land on the
	// positive-verify span for consistency with DIMEPlus.
	before := s.stats
	cg := run.StartSpan(obs.PhaseCandidateGen)
	for ri := range s.indexes {
		s.indexes[ri].ForEach(func(c signature.Candidate) {
			s.verify(c.I, c.J, ri)
		})
	}
	cg.Count("candidates", s.stats.PositivePairsConsidered-before.PositivePairsConsidered)
	cg.End()
	pv := run.StartSpan(obs.PhasePositiveVerify)
	pv.Count("verified", s.stats.PositiveVerified-before.PositiveVerified)
	pv.Count("skipped-transitivity", s.stats.PositiveSkippedByTransitivity-before.PositiveSkippedByTransitivity)
	pv.End()
	return nil
}

// verify checks one candidate pair under one positive rule with the
// transitivity skip.
func (s *Session) verify(i, j, rule int) {
	s.stats.PositivePairsConsidered++
	if s.uf.Same(i, j) {
		s.stats.PositiveSkippedByTransitivity++
		return
	}
	s.stats.PositiveVerified++
	if s.opts.Rules.Positive[rule].Eval(s.recs[i], s.recs[j]) {
		s.uf.Union(i, j)
	}
}

// Add appends one entity to the group and folds it into the partitioning.
// It returns true when the addition forced a full rebuild (a new ontology
// node undercut the frozen signature depth floors) and false on the normal
// incremental path. The resulting partitions are identical either way.
func (s *Session) Add(e *entity.Entity) (rebuilt bool, err error) {
	if err := s.group.Add(e); err != nil {
		return false, err
	}
	run := obs.Start(s.opts.Probe, "session-add", obs.A("group", s.group.Name), obs.A("entity", e.ID))
	defer run.End()
	sp := run.StartSpan(obs.PhaseRecordCompile)
	rec, err := s.opts.Config.NewRecord(e)
	if err != nil {
		sp.End()
		// Roll the group back so the session stays consistent.
		s.group.Entities = s.group.Entities[:len(s.group.Entities)-1]
		return false, fmt.Errorf("core: compiling %q: %w", e.ID, err)
	}
	sp.End()
	if !s.ctx.Accepts(rec, s.opts.Rules) {
		run.Count("rebuilds", 1)
		return true, s.rebuild()
	}
	rec.Index = len(s.recs)
	s.recs = append(s.recs, rec)
	sb := run.StartSpan(obs.PhaseSignatureBuild)
	s.ctx.Append(rec)
	sb.End()
	if got := s.uf.Grow(); got != rec.Index {
		return false, fmt.Errorf("core: union-find index %d out of sync with record %d", got, rec.Index)
	}
	before := s.stats
	cg := run.StartSpan(obs.PhaseCandidateGen)
	for ri, ix := range s.indexes {
		for _, c := range ix.Add(s.ctx, rec) {
			s.verify(c.I, c.J, ri)
		}
	}
	cg.Count("candidates", s.stats.PositivePairsConsidered-before.PositivePairsConsidered)
	cg.End()
	pv := run.StartSpan(obs.PhasePositiveVerify)
	pv.Count("verified", s.stats.PositiveVerified-before.PositiveVerified)
	pv.Count("skipped-transitivity", s.stats.PositiveSkippedByTransitivity-before.PositiveSkippedByTransitivity)
	pv.End()
	return false, nil
}

// Size returns the current entity count.
func (s *Session) Size() int { return len(s.recs) }

// Result runs pivot selection and the negative rules over the current
// partitions and returns a full Result, identical to what DIMEPlus would
// produce on the group from scratch.
func (s *Session) Result() (*Result, error) {
	run := obs.Start(s.opts.Probe, "session-result", obs.A("group", s.group.Name))
	defer run.End()
	res := &Result{Group: s.group, Pivot: -1, Stats: s.stats}
	if len(s.recs) == 0 {
		return res, nil
	}
	res.Partitions = s.uf.Sets()
	applyNegativeRules(res, run, s.ctx, s.recs, s.opts)
	s.stats = res.Stats
	return res, nil
}

// Partitions returns the current partitions without running the negative
// phase (cheap; useful for monitoring as entities stream in).
func (s *Session) Partitions() [][]int {
	if s.uf == nil {
		return nil
	}
	return slices.Clone(s.uf.Sets())
}
