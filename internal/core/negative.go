package core

import (
	"fmt"
	"sync"

	"dime/internal/obs"
	"dime/internal/rules"
	"dime/internal/signature"
)

// survivor is one non-pivot partition that outlived the signature filter of
// the current negative rule and must be verified.
type survivor struct {
	pi   int
	recs []*rules.Record
}

// applyNegativeRules runs pivot selection and the negative-rule sequence
// (steps 2–3 of Algorithm 2) over res.Partitions; DIMEPlus and
// Session.Result share it. For each negative rule the partition-level
// signature filter sweeps first (negative-filter phase: partitions whose
// signature unions are provably disjoint from the pivot's are marked without
// any verification), then the surviving partitions are probed and verified
// in benefit order (negative-verify phase). The two sub-passes touch
// disjoint partitions, so splitting them per rule changes neither the marked
// set nor the stats relative to the historical interleaved loop.
//
// With Options.IntraWorkers != 1 the verify sub-pass fans the surviving
// partitions out to worker goroutines: partitions are independent — each
// verification is a pure function of (partition, pivot, rule) — so marking
// them concurrently and folding the per-partition outcomes back in
// partition order reproduces the sequential marked set, witnesses and
// stats exactly.
func applyNegativeRules(res *Result, run obs.Span, ctx *signature.Context, recs []*rules.Record, opts Options) {
	res.Pivot = pivotOf(res.Partitions)
	pivotIdx := res.Partitions[res.Pivot]
	pivotRecs := make([]*rules.Record, len(pivotIdx))
	for k, ei := range pivotIdx {
		pivotRecs[k] = recs[ei]
	}

	// Resolve each non-pivot partition's record slice once; the per-rule
	// passes below only read them.
	partRecs := make([][]*rules.Record, len(res.Partitions))
	for pi, part := range res.Partitions {
		if pi == res.Pivot {
			continue
		}
		rs := make([]*rules.Record, len(part))
		for k, ei := range part {
			rs[k] = recs[ei]
		}
		partRecs[pi] = rs
	}

	marked := make(map[int]bool)
	res.Witnesses = make(map[int]Witness)
	for _, neg := range opts.Rules.Negative {
		fsp := run.StartSpan(obs.PhaseNegativeFilter, obs.A("rule", neg.Name))
		nf := signature.BuildNegative(ctx, neg, pivotRecs)
		filteredBefore := res.Stats.PartitionsFilteredBySignature
		var survivors []survivor
		for pi := range res.Partitions {
			if pi == res.Pivot || marked[pi] {
				continue
			}
			if nf.PartitionMustSatisfy(partRecs[pi]) {
				marked[pi] = true
				res.Stats.PartitionsFilteredBySignature++
				res.Witnesses[pi] = Witness{Rule: neg.Name}
				continue
			}
			survivors = append(survivors, survivor{pi: pi, recs: partRecs[pi]})
		}
		fsp.Count("partitions-filtered", res.Stats.PartitionsFilteredBySignature-filteredBefore)
		fsp.End()

		vsp := run.StartSpan(obs.PhaseNegativeVerify, obs.A("rule", neg.Name))
		verifiedBefore := res.Stats.NegativeVerified
		certainBefore := res.Stats.CertainPairsBySignature
		markSurvivors(res, vsp, nf, neg, survivors, pivotRecs, opts, marked)
		vsp.Count("verified", res.Stats.NegativeVerified-verifiedBefore)
		vsp.Count("certain-pairs", res.Stats.CertainPairsBySignature-certainBefore)
		vsp.End()
		res.Levels = append(res.Levels, levelFrom(res.Group, res.Partitions, marked, neg.Name))
	}
}

// markSurvivors verifies the surviving partitions of one negative rule,
// sequentially or across opts.IntraWorkers goroutines. Workers are assigned
// partitions by striding (worker w takes survivors w, w+wk, ...) so the
// per-worker span counters are as deterministic as the totals; outcomes are
// folded back in survivor order, making marked set, witnesses and stats
// byte-identical to the sequential loop.
func markSurvivors(res *Result, vsp obs.Span, nf *signature.NegFilter, neg rules.Rule,
	survivors []survivor, pivotRecs []*rules.Record, opts Options, marked map[int]bool) {

	wk := opts.intraWorkers(len(survivors))
	if wk <= 1 {
		var sc negScratch
		for _, sv := range survivors {
			if w, ok := plusMarkPartition(&res.Stats, nf, neg, sv.recs, pivotRecs, opts, &sc); ok {
				marked[sv.pi] = true
				res.Witnesses[sv.pi] = w
			}
		}
		return
	}

	type outcome struct {
		w     Witness
		ok    bool
		stats Stats
	}
	outs := make([]outcome, len(survivors))
	perWorkerVerified := make([]int64, wk)
	var wg sync.WaitGroup
	for w := 0; w < wk; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc negScratch
			for k := w; k < len(survivors); k += wk {
				o := &outs[k]
				o.w, o.ok = plusMarkPartition(&o.stats, nf, neg, survivors[k].recs, pivotRecs, opts, &sc)
				perWorkerVerified[w] += o.stats.NegativeVerified
			}
		}(w)
	}
	wg.Wait()
	for k, o := range outs {
		res.Stats.Add(o.stats)
		if o.ok {
			marked[survivors[k].pi] = true
			res.Witnesses[survivors[k].pi] = o.w
		}
	}
	vsp.Count("workers", int64(wk))
	for w, v := range perWorkerVerified {
		vsp.Count(fmt.Sprintf("verified/w%d", w), v)
	}
}
