package core

import (
	"dime/internal/obs"
	"dime/internal/rules"
	"dime/internal/signature"
)

// applyNegativeRules runs pivot selection and the negative-rule sequence
// (steps 2–3 of Algorithm 2) over res.Partitions; DIMEPlus and
// Session.Result share it. For each negative rule the partition-level
// signature filter sweeps first (negative-filter phase: partitions whose
// signature unions are provably disjoint from the pivot's are marked without
// any verification), then the surviving partitions are probed and verified
// in benefit order (negative-verify phase). The two sub-passes touch
// disjoint partitions, so splitting them per rule changes neither the marked
// set nor the stats relative to the historical interleaved loop.
func applyNegativeRules(res *Result, run obs.Span, ctx *signature.Context, recs []*rules.Record, opts Options) {
	res.Pivot = pivotOf(res.Partitions)
	pivotIdx := res.Partitions[res.Pivot]
	pivotRecs := make([]*rules.Record, len(pivotIdx))
	for k, ei := range pivotIdx {
		pivotRecs[k] = recs[ei]
	}

	type survivor struct {
		pi   int
		recs []*rules.Record
	}
	marked := make(map[int]bool)
	res.Witnesses = make(map[int]Witness)
	for _, neg := range opts.Rules.Negative {
		fsp := run.StartSpan(obs.PhaseNegativeFilter, obs.A("rule", neg.Name))
		nf := signature.BuildNegative(ctx, neg, pivotRecs)
		filteredBefore := res.Stats.PartitionsFilteredBySignature
		var survivors []survivor
		for pi, part := range res.Partitions {
			if pi == res.Pivot || marked[pi] {
				continue
			}
			partRecs := make([]*rules.Record, len(part))
			for k, ei := range part {
				partRecs[k] = recs[ei]
			}
			if nf.PartitionMustSatisfy(partRecs) {
				marked[pi] = true
				res.Stats.PartitionsFilteredBySignature++
				res.Witnesses[pi] = Witness{Rule: neg.Name}
				continue
			}
			survivors = append(survivors, survivor{pi: pi, recs: partRecs})
		}
		fsp.Count("partitions-filtered", res.Stats.PartitionsFilteredBySignature-filteredBefore)
		fsp.End()

		vsp := run.StartSpan(obs.PhaseNegativeVerify, obs.A("rule", neg.Name))
		verifiedBefore := res.Stats.NegativeVerified
		certainBefore := res.Stats.CertainPairsBySignature
		for _, sv := range survivors {
			if w, ok := plusMarkPartition(res, nf, neg, sv.recs, pivotRecs, opts); ok {
				marked[sv.pi] = true
				res.Witnesses[sv.pi] = w
			}
		}
		vsp.Count("verified", res.Stats.NegativeVerified-verifiedBefore)
		vsp.Count("certain-pairs", res.Stats.CertainPairsBySignature-certainBefore)
		vsp.End()
		res.Levels = append(res.Levels, levelFrom(res.Group, res.Partitions, marked, neg.Name))
	}
}
