package core

import (
	"fmt"
	"runtime"
	"sync"

	"dime/internal/obs"
	"dime/internal/partition"
	"dime/internal/rules"
)

// posChunkPerWorker sizes the speculative-evaluation chunks of the parallel
// positive phase, per worker. Larger chunks amortize goroutine handoff;
// smaller chunks bound the evaluations wasted on pairs that replay discovers
// were already joined by an earlier candidate of the same chunk.
const posChunkPerWorker = 512

// posMinPerWorker is the smallest slice of a chunk worth handing to a
// goroutine; the final partial chunk of a run spawns fewer workers than the
// configured count rather than splitting a handful of pairs eight ways.
const posMinPerWorker = 32

// intraWorkers resolves Options.IntraWorkers for a phase with the given
// number of independently shardable items: ≤ 0 selects the GOMAXPROCS
// default, and the result is clamped to the item count (never below 1).
// Explicit positive values are honored beyond GOMAXPROCS so tests can
// exercise the parallel path on any machine.
func (o *Options) intraWorkers(items int) int {
	w := o.IntraWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// posCand is one candidate pair under one positive rule, with the benefit
// DIME+ sorts by (similarity probability over verification cost).
type posCand struct {
	i, j    int32
	rule    int32
	benefit float64
}

// posVerifier runs positive-phase verification. With one worker it verifies
// each candidate inline, exactly as the historical sequential loop. With
// several it buffers candidates in arrival order and, chunk by chunk,
// evaluates the rule predicates speculatively in parallel before replaying
// the chunk sequentially.
//
// The replay is what makes the parallel path provably equivalent: rule
// evaluation is a pure function of the two records, so precomputing it off
// the critical path changes nothing, and every union–find read, skip
// decision, stats increment and union happens on the replay goroutine in
// the exact arrival order the sequential loop would have used. Partitions
// and Stats are therefore byte-identical for every worker count; the only
// cost is that a pair joined by an earlier candidate of its own chunk was
// evaluated for nothing (counted as speculative-wasted on the span).
type posVerifier struct {
	opts  *Options
	recs  []*rules.Record
	uf    *partition.UnionFind
	stats *Stats

	perRuleVerified []int64
	workers         int
	buf             []posCand
	skip            []bool // per buffered candidate: joined before the chunk
	holds           []bool // per buffered candidate: speculative Eval result

	perWorkerEvals []int64 // speculative evaluations per worker index
	specWasted     int64   // speculative evaluations discarded at replay
}

// newPosVerifier builds the verifier; workers should come from
// opts.intraWorkers.
func newPosVerifier(opts *Options, recs []*rules.Record, uf *partition.UnionFind, stats *Stats, workers int) *posVerifier {
	v := &posVerifier{
		opts:            opts,
		recs:            recs,
		uf:              uf,
		stats:           stats,
		perRuleVerified: make([]int64, len(opts.Rules.Positive)),
		workers:         workers,
	}
	if workers > 1 {
		v.perWorkerEvals = make([]int64, workers)
	}
	return v
}

// add feeds one candidate in arrival order, flushing a full chunk.
func (v *posVerifier) add(c posCand) {
	if v.workers <= 1 {
		v.verifySeq(c)
		return
	}
	v.buf = append(v.buf, c)
	if len(v.buf) >= v.workers*posChunkPerWorker {
		v.flush()
	}
}

// verifySeq is the historical sequential verification step: transitivity
// skip, stats, evaluate, union.
func (v *posVerifier) verifySeq(c posCand) {
	i, j, ri := int(c.i), int(c.j), int(c.rule)
	if !v.opts.DisableTransitivitySkip && v.uf.Same(i, j) {
		v.stats.PositiveSkippedByTransitivity++
		return
	}
	v.stats.PositiveVerified++
	v.perRuleVerified[ri]++
	if v.opts.Rules.Positive[ri].Eval(v.recs[i], v.recs[j]) {
		v.uf.Union(i, j)
	}
}

// flush speculatively evaluates the buffered chunk in parallel and replays
// it sequentially. Callers must invoke it once more after the last add; it
// is a no-op on an empty buffer.
func (v *posVerifier) flush() {
	n := len(v.buf)
	if n == 0 {
		return
	}
	if cap(v.skip) < n {
		v.skip = make([]bool, n)
		v.holds = make([]bool, n)
	}
	skip, holds := v.skip[:n], v.holds[:n]
	// Pre-pass on the owning goroutine: union–find reads mutate (path
	// halving), so workers never touch it. A pair already joined here would
	// be skipped by the sequential loop too — connectivity only grows — so
	// its evaluation is never needed.
	for k, c := range v.buf {
		skip[k] = !v.opts.DisableTransitivitySkip && v.uf.Same(int(c.i), int(c.j))
		holds[k] = false
	}
	// The final partial chunk may be far smaller than a full one; shrink the
	// worker count so each goroutine has a meaningful slice. The count
	// depends only on n, keeping per-worker counters deterministic.
	wk := v.workers
	if max := (n + posMinPerWorker - 1) / posMinPerWorker; wk > max {
		wk = max
	}
	var wg sync.WaitGroup
	for w := 0; w < wk; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var evals int64
			for k := w; k < n; k += wk {
				if skip[k] {
					continue
				}
				c := v.buf[k]
				holds[k] = v.opts.Rules.Positive[c.rule].Eval(v.recs[c.i], v.recs[c.j])
				evals++
			}
			v.perWorkerEvals[w] += evals
		}(w)
	}
	wg.Wait()
	// Deterministic replay in arrival order: byte-for-byte the decisions the
	// sequential loop makes, with the expensive evaluations already in hand.
	for k, c := range v.buf {
		i, j, ri := int(c.i), int(c.j), int(c.rule)
		if !v.opts.DisableTransitivitySkip && v.uf.Same(i, j) {
			v.stats.PositiveSkippedByTransitivity++
			if !skip[k] {
				v.specWasted++ // joined mid-chunk; its evaluation was discarded
			}
			continue
		}
		v.stats.PositiveVerified++
		v.perRuleVerified[ri]++
		if holds[k] {
			v.uf.Union(i, j)
		}
	}
	v.buf = v.buf[:0]
}

// report attaches the parallel-path counters to the positive-verify span;
// it is a no-op for the sequential path so traces stay unchanged there.
func (v *posVerifier) report(sp obs.Span) {
	if v.workers <= 1 {
		return
	}
	sp.Count("workers", int64(v.workers))
	var total int64
	for w, evals := range v.perWorkerEvals {
		sp.Count(fmt.Sprintf("speculative-evals/w%d", w), evals)
		total += evals
	}
	sp.Count("speculative-evals", total)
	sp.Count("speculative-wasted", v.specWasted)
}
