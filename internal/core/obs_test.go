package core

import (
	"reflect"
	"testing"

	"dime/internal/fixtures"
	"dime/internal/obs"
)

// TestDIMEPlusProbeObservesPhases checks the tentpole contract: a recording
// probe sees all six pipeline phases under one run span, nested and ordered
// the way the algorithm executes them, with counters that agree exactly with
// the Stats the run reports — and the probe changes nothing about the result.
func TestDIMEPlusProbeObservesPhases(t *testing.T) {
	g := fixtures.Figure1Group()
	opts := paperOptions()
	base, err := DIMEPlus(fixtures.Figure1Group(), opts)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace()
	opts.Probe = tr
	res, err := DIMEPlus(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Stats, base.Stats) {
		t.Fatalf("probe changed stats: %+v vs %+v", res.Stats, base.Stats)
	}
	if !reflect.DeepEqual(partitionIDs(g, res.Partitions), partitionIDs(base.Group, base.Partitions)) {
		t.Fatalf("probe changed partitions")
	}
	if !reflect.DeepEqual(res.Levels, base.Levels) {
		t.Fatalf("probe changed levels: %+v vs %+v", res.Levels, base.Levels)
	}

	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0]
	if run.Name != "dime+" || run.Attrs["group"] != g.Name {
		t.Fatalf("run = %q attrs %v", run.Name, run.Attrs)
	}

	// Top-level phases appear in execution order: the four positive-side
	// phases once, then a filter/verify pair per negative rule.
	var wantOrder []string
	wantOrder = append(wantOrder,
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild,
		obs.PhaseCandidateGen, obs.PhasePositiveVerify)
	for range opts.Rules.Negative {
		wantOrder = append(wantOrder, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify)
	}
	var gotOrder []string
	for _, c := range run.Children {
		gotOrder = append(gotOrder, c.Name)
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatalf("phase order = %v, want %v", gotOrder, wantOrder)
	}

	// Nesting: signature-build holds one child per positive rule; the
	// negative spans carry the rule name in application order.
	sb := run.Find(obs.PhaseSignatureBuild)
	if len(sb.Children) != len(opts.Rules.Positive) {
		t.Fatalf("signature-build children = %d, want %d", len(sb.Children), len(opts.Rules.Positive))
	}
	for i, c := range sb.Children {
		if c.Attrs["rule"] != opts.Rules.Positive[i].Name {
			t.Fatalf("signature-build child %d rule = %q", i, c.Attrs["rule"])
		}
	}
	for i, span := range run.FindAll(obs.PhaseNegativeFilter) {
		if span.Attrs["rule"] != opts.Rules.Negative[i].Name {
			t.Fatalf("negative-filter %d rule = %q", i, span.Attrs["rule"])
		}
	}
	for i, span := range run.FindAll(obs.PhaseNegativeVerify) {
		if span.Attrs["rule"] != opts.Rules.Negative[i].Name {
			t.Fatalf("negative-verify %d rule = %q", i, span.Attrs["rule"])
		}
	}

	// Counters agree with Stats, both in total and per rule.
	st := res.Stats
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"candidates", run.Counter("candidates"), st.PositivePairsConsidered},
		{"verified (positive)", run.Find(obs.PhasePositiveVerify).Counter("verified"), st.PositiveVerified},
		{"skipped-transitivity", run.Counter("skipped-transitivity"), st.PositiveSkippedByTransitivity},
		{"partitions-filtered", run.Counter("partitions-filtered"), st.PartitionsFilteredBySignature},
		{"certain-pairs", run.Counter("certain-pairs"), st.CertainPairsBySignature},
		{"records", run.Counter("records"), int64(len(g.Entities))},
	}
	var negVerified int64
	for _, span := range run.FindAll(obs.PhaseNegativeVerify) {
		negVerified += span.Counters["verified"]
	}
	checks = append(checks, struct {
		name string
		got  int64
		want int64
	}{"verified (negative)", negVerified, st.NegativeVerified})
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("counter %s = %d, want %d", c.name, c.got, c.want)
		}
	}
	var perRule int64
	for _, r := range opts.Rules.Positive {
		perRule += run.Counter("verified/" + r.Name)
	}
	if perRule != st.PositiveVerified {
		t.Errorf("per-rule verified sum = %d, want %d", perRule, st.PositiveVerified)
	}
	var perRuleCands int64
	for _, r := range opts.Rules.Positive {
		perRuleCands += run.Counter("candidates/" + r.Name)
	}
	if perRuleCands != st.PositivePairsConsidered {
		t.Errorf("per-rule candidates sum = %d, want %d", perRuleCands, st.PositivePairsConsidered)
	}

	// Every recorded span was ended (duration fixed) and starts no earlier
	// than its parent.
	var walk func(p, s *obs.TraceSpan)
	walk = func(p, s *obs.TraceSpan) {
		if s.DurNS < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
		if p != nil && s.StartNS < p.StartNS {
			t.Errorf("span %s starts before parent %s", s.Name, p.Name)
		}
		for _, c := range s.Children {
			walk(s, c)
		}
	}
	walk(nil, run)
}

// TestDIMEProbeObservesPhases checks the basic algorithm's slimmer span set:
// no signature machinery, so only record-compile, positive-verify, and one
// negative-verify per rule.
func TestDIMEProbeObservesPhases(t *testing.T) {
	g := fixtures.Figure1Group()
	opts := paperOptions()
	tr := obs.NewTrace()
	opts.Probe = tr
	res, err := DIME(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := tr.Runs()
	if len(runs) != 1 || runs[0].Name != "dime" {
		t.Fatalf("runs = %+v", runs)
	}
	run := runs[0]
	wantOrder := []string{obs.PhaseRecordCompile, obs.PhasePositiveVerify}
	for range opts.Rules.Negative {
		wantOrder = append(wantOrder, obs.PhaseNegativeVerify)
	}
	var gotOrder []string
	for _, c := range run.Children {
		gotOrder = append(gotOrder, c.Name)
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatalf("phase order = %v, want %v", gotOrder, wantOrder)
	}
	if got := run.Counter("verified"); got != res.Stats.PositiveVerified+res.Stats.NegativeVerified {
		t.Errorf("verified = %d, want %d", got, res.Stats.PositiveVerified+res.Stats.NegativeVerified)
	}
}

// TestSessionProbeObservesPhases drives a session end to end with a probe
// attached: the initial rebuild, one incremental Add, and Result must emit
// their own runs, covering all six phases between them, with counters that
// match the session's final stats.
func TestSessionProbeObservesPhases(t *testing.T) {
	g := fixtures.Figure1Group()
	last := g.Entities[len(g.Entities)-1]
	g.Entities = g.Entities[:len(g.Entities)-1]

	opts := paperOptions()
	tr := obs.NewTrace()
	opts.Probe = tr
	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(last); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}

	runs := tr.Runs()
	var names []string
	for _, r := range runs {
		names = append(names, r.Name)
	}
	want := []string{"session-rebuild", "session-add", "session-result"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("runs = %v, want %v", names, want)
	}

	seen := make(map[string]bool)
	for _, r := range runs {
		var mark func(s *obs.TraceSpan)
		mark = func(s *obs.TraceSpan) {
			seen[s.Name] = true
			for _, c := range s.Children {
				mark(c)
			}
		}
		mark(r)
	}
	for _, phase := range []string{
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild, obs.PhaseCandidateGen,
		obs.PhasePositiveVerify, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify,
	} {
		if !seen[phase] {
			t.Errorf("phase %s never observed across session runs", phase)
		}
	}

	var candidates, verified int64
	for _, r := range runs {
		candidates += r.Counter("candidates")
		if pv := r.Find(obs.PhasePositiveVerify); pv != nil {
			verified += pv.Counter("verified")
		}
	}
	if candidates != res.Stats.PositivePairsConsidered {
		t.Errorf("candidates = %d, want %d", candidates, res.Stats.PositivePairsConsidered)
	}
	if verified != res.Stats.PositiveVerified {
		t.Errorf("verified = %d, want %d", verified, res.Stats.PositiveVerified)
	}
}

// TestBenefitSortLimitNonPositive checks the satellite fix: zero and negative
// BenefitSortLimit both select the default, and a tiny positive limit (forced
// streaming) still yields identical discoveries and partitions.
func TestBenefitSortLimitNonPositive(t *testing.T) {
	base, err := DIMEPlus(fixtures.Figure1Group(), paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{-1, -100, 0, 1, 1 << 20} {
		opts := paperOptions()
		opts.BenefitSortLimit = limit
		g := fixtures.Figure1Group()
		res, err := DIMEPlus(g, opts)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if !reflect.DeepEqual(res.Final(), base.Final()) {
			t.Errorf("limit %d: final = %v, want %v", limit, res.Final(), base.Final())
		}
		if !reflect.DeepEqual(partitionIDs(g, res.Partitions), partitionIDs(base.Group, base.Partitions)) {
			t.Errorf("limit %d: partitions diverged", limit)
		}
	}
}

// TestStatsAdd checks field-wise accumulation.
func TestStatsAdd(t *testing.T) {
	a := Stats{1, 2, 3, 4, 5, 6}
	a.Add(Stats{10, 20, 30, 40, 50, 60})
	if want := (Stats{11, 22, 33, 44, 55, 66}); a != want {
		t.Fatalf("sum = %+v, want %+v", a, want)
	}
}
