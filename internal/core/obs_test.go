package core

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dime/internal/datagen"
	"dime/internal/fixtures"
	"dime/internal/obs"
	"dime/internal/presets"
)

// TestDIMEPlusProbeObservesPhases checks the tentpole contract: a recording
// probe sees all six pipeline phases under one run span, nested and ordered
// the way the algorithm executes them, with counters that agree exactly with
// the Stats the run reports — and the probe changes nothing about the result.
func TestDIMEPlusProbeObservesPhases(t *testing.T) {
	g := fixtures.Figure1Group()
	opts := paperOptions()
	base, err := DIMEPlus(fixtures.Figure1Group(), opts)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTrace()
	opts.Probe = tr
	res, err := DIMEPlus(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Stats, base.Stats) {
		t.Fatalf("probe changed stats: %+v vs %+v", res.Stats, base.Stats)
	}
	if !reflect.DeepEqual(partitionIDs(g, res.Partitions), partitionIDs(base.Group, base.Partitions)) {
		t.Fatalf("probe changed partitions")
	}
	if !reflect.DeepEqual(res.Levels, base.Levels) {
		t.Fatalf("probe changed levels: %+v vs %+v", res.Levels, base.Levels)
	}

	runs := tr.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0]
	if run.Name != "dime+" || run.Attrs["group"] != g.Name {
		t.Fatalf("run = %q attrs %v", run.Name, run.Attrs)
	}

	// Top-level phases appear in execution order: the four positive-side
	// phases once, then a filter/verify pair per negative rule.
	var wantOrder []string
	wantOrder = append(wantOrder,
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild,
		obs.PhaseCandidateGen, obs.PhasePositiveVerify)
	for range opts.Rules.Negative {
		wantOrder = append(wantOrder, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify)
	}
	var gotOrder []string
	for _, c := range run.Children {
		gotOrder = append(gotOrder, c.Name)
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatalf("phase order = %v, want %v", gotOrder, wantOrder)
	}

	// Nesting: signature-build holds one child per positive rule; the
	// negative spans carry the rule name in application order.
	sb := run.Find(obs.PhaseSignatureBuild)
	if len(sb.Children) != len(opts.Rules.Positive) {
		t.Fatalf("signature-build children = %d, want %d", len(sb.Children), len(opts.Rules.Positive))
	}
	for i, c := range sb.Children {
		if c.Attrs["rule"] != opts.Rules.Positive[i].Name {
			t.Fatalf("signature-build child %d rule = %q", i, c.Attrs["rule"])
		}
	}
	for i, span := range run.FindAll(obs.PhaseNegativeFilter) {
		if span.Attrs["rule"] != opts.Rules.Negative[i].Name {
			t.Fatalf("negative-filter %d rule = %q", i, span.Attrs["rule"])
		}
	}
	for i, span := range run.FindAll(obs.PhaseNegativeVerify) {
		if span.Attrs["rule"] != opts.Rules.Negative[i].Name {
			t.Fatalf("negative-verify %d rule = %q", i, span.Attrs["rule"])
		}
	}

	// Counters agree with Stats, both in total and per rule.
	st := res.Stats
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"candidates", run.Counter("candidates"), st.PositivePairsConsidered},
		{"verified (positive)", run.Find(obs.PhasePositiveVerify).Counter("verified"), st.PositiveVerified},
		{"skipped-transitivity", run.Counter("skipped-transitivity"), st.PositiveSkippedByTransitivity},
		{"partitions-filtered", run.Counter("partitions-filtered"), st.PartitionsFilteredBySignature},
		{"certain-pairs", run.Counter("certain-pairs"), st.CertainPairsBySignature},
		{"records", run.Counter("records"), int64(len(g.Entities))},
	}
	var negVerified int64
	for _, span := range run.FindAll(obs.PhaseNegativeVerify) {
		negVerified += span.Counters["verified"]
	}
	checks = append(checks, struct {
		name string
		got  int64
		want int64
	}{"verified (negative)", negVerified, st.NegativeVerified})
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("counter %s = %d, want %d", c.name, c.got, c.want)
		}
	}
	var perRule int64
	for _, r := range opts.Rules.Positive {
		perRule += run.Counter("verified/" + r.Name)
	}
	if perRule != st.PositiveVerified {
		t.Errorf("per-rule verified sum = %d, want %d", perRule, st.PositiveVerified)
	}
	var perRuleCands int64
	for _, r := range opts.Rules.Positive {
		perRuleCands += run.Counter("candidates/" + r.Name)
	}
	if perRuleCands != st.PositivePairsConsidered {
		t.Errorf("per-rule candidates sum = %d, want %d", perRuleCands, st.PositivePairsConsidered)
	}

	// Every recorded span was ended (duration fixed) and starts no earlier
	// than its parent.
	var walk func(p, s *obs.TraceSpan)
	walk = func(p, s *obs.TraceSpan) {
		if s.DurNS < 0 {
			t.Errorf("span %s has negative duration", s.Name)
		}
		if p != nil && s.StartNS < p.StartNS {
			t.Errorf("span %s starts before parent %s", s.Name, p.Name)
		}
		for _, c := range s.Children {
			walk(s, c)
		}
	}
	walk(nil, run)
}

// TestDIMEProbeObservesPhases checks the basic algorithm's slimmer span set:
// no signature machinery, so only record-compile, positive-verify, and one
// negative-verify per rule.
func TestDIMEProbeObservesPhases(t *testing.T) {
	g := fixtures.Figure1Group()
	opts := paperOptions()
	tr := obs.NewTrace()
	opts.Probe = tr
	res, err := DIME(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := tr.Runs()
	if len(runs) != 1 || runs[0].Name != "dime" {
		t.Fatalf("runs = %+v", runs)
	}
	run := runs[0]
	wantOrder := []string{obs.PhaseRecordCompile, obs.PhasePositiveVerify}
	for range opts.Rules.Negative {
		wantOrder = append(wantOrder, obs.PhaseNegativeVerify)
	}
	var gotOrder []string
	for _, c := range run.Children {
		gotOrder = append(gotOrder, c.Name)
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatalf("phase order = %v, want %v", gotOrder, wantOrder)
	}
	if got := run.Counter("verified"); got != res.Stats.PositiveVerified+res.Stats.NegativeVerified {
		t.Errorf("verified = %d, want %d", got, res.Stats.PositiveVerified+res.Stats.NegativeVerified)
	}
}

// TestSessionProbeObservesPhases drives a session end to end with a probe
// attached: the initial rebuild, one incremental Add, and Result must emit
// their own runs, covering all six phases between them, with counters that
// match the session's final stats.
func TestSessionProbeObservesPhases(t *testing.T) {
	g := fixtures.Figure1Group()
	last := g.Entities[len(g.Entities)-1]
	g.Entities = g.Entities[:len(g.Entities)-1]

	opts := paperOptions()
	tr := obs.NewTrace()
	opts.Probe = tr
	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(last); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}

	runs := tr.Runs()
	var names []string
	for _, r := range runs {
		names = append(names, r.Name)
	}
	want := []string{"session-rebuild", "session-add", "session-result"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("runs = %v, want %v", names, want)
	}

	seen := make(map[string]bool)
	for _, r := range runs {
		var mark func(s *obs.TraceSpan)
		mark = func(s *obs.TraceSpan) {
			seen[s.Name] = true
			for _, c := range s.Children {
				mark(c)
			}
		}
		mark(r)
	}
	for _, phase := range []string{
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild, obs.PhaseCandidateGen,
		obs.PhasePositiveVerify, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify,
	} {
		if !seen[phase] {
			t.Errorf("phase %s never observed across session runs", phase)
		}
	}

	var candidates, verified int64
	for _, r := range runs {
		candidates += r.Counter("candidates")
		if pv := r.Find(obs.PhasePositiveVerify); pv != nil {
			verified += pv.Counter("verified")
		}
	}
	if candidates != res.Stats.PositivePairsConsidered {
		t.Errorf("candidates = %d, want %d", candidates, res.Stats.PositivePairsConsidered)
	}
	if verified != res.Stats.PositiveVerified {
		t.Errorf("verified = %d, want %d", verified, res.Stats.PositiveVerified)
	}
}

// TestBenefitSortLimitNonPositive checks the satellite fix: zero and negative
// BenefitSortLimit both select the default, and a tiny positive limit (forced
// streaming) still yields identical discoveries and partitions.
func TestBenefitSortLimitNonPositive(t *testing.T) {
	base, err := DIMEPlus(fixtures.Figure1Group(), paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{-1, -100, 0, 1, 1 << 20} {
		opts := paperOptions()
		opts.BenefitSortLimit = limit
		g := fixtures.Figure1Group()
		res, err := DIMEPlus(g, opts)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if !reflect.DeepEqual(res.Final(), base.Final()) {
			t.Errorf("limit %d: final = %v, want %v", limit, res.Final(), base.Final())
		}
		if !reflect.DeepEqual(partitionIDs(g, res.Partitions), partitionIDs(base.Group, base.Partitions)) {
			t.Errorf("limit %d: partitions diverged", limit)
		}
	}
}

// TestConcurrentScrapeDuringDiscoverAll races the full debug surface against
// the pipeline: /metrics, /debug/vars, and /debug/flight are scraped in a loop
// while DiscoverAll mutates the registry and commits flight traces from its
// worker pool. Run under -race this is the gate proving every read path
// (Prometheus exposition, expvar snapshot, ring snapshot) is safe against
// concurrent writers. Each response must also parse — a scrape mid-run may see
// partial counts, but never a malformed document.
func TestConcurrentScrapeDuringDiscoverAll(t *testing.T) {
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(obs.FlightOptions{Capacity: 16})
	srv, err := obs.ServeDebug("127.0.0.1:0", reg, fr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	cfg := presets.ScholarConfig()
	opts := Options{
		Config: cfg,
		Rules:  presets.ScholarRules(cfg),
		Probe:  obs.Multi(obs.Observer(reg), fr),
	}
	groups := datagen.ScholarPages(12, 40, 0.08, 99)

	done := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string, check func(t *testing.T, body []byte)) {
		defer wg.Done()
		url := "http://" + srv.Addr() + path
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("read %s: %v", path, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: status %d", path, resp.StatusCode)
				return
			}
			check(t, body)
		}
	}
	wg.Add(3)
	go scrape("/metrics", func(t *testing.T, body []byte) {
		// Every non-comment line is "name[{labels}] value"; a torn exposition
		// (e.g. a sample without its # TYPE header) would fail here.
		seenType := make(map[string]bool)
		for _, line := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
			if line == "" {
				continue
			}
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				seenType[strings.Fields(rest)[0]] = true
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Errorf("malformed sample line %q", line)
				continue
			}
			name := fields[0]
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && seenType[base] {
					name = base
					break
				}
			}
			if !seenType[name] {
				t.Errorf("sample %q has no preceding # TYPE", line)
			}
		}
	})
	go scrape("/debug/vars", func(t *testing.T, body []byte) {
		var vars map[string]json.RawMessage
		if err := json.Unmarshal(body, &vars); err != nil {
			t.Errorf("expvar not JSON: %v", err)
		}
	})
	go scrape("/debug/flight", func(t *testing.T, body []byte) {
		var ex obs.FlightExport
		if err := json.Unmarshal(body, &ex); err != nil {
			t.Errorf("flight export not JSON: %v", err)
			return
		}
		if ex.Tool != "dime-flight" {
			t.Errorf("flight export tool = %q", ex.Tool)
		}
	})

	// Several full batch runs give the scrapers sustained concurrent mutation.
	for round := 0; round < 3; round++ {
		if _, err := DiscoverAll(groups, opts, 4); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	// The registry saw every run: one dime+ histogram observation per group
	// per round, and the flight recorder committed one trace per group plus
	// one batch-root trace per DiscoverAll call.
	wantRuns := int64(3 * len(groups))
	if got := reg.Histogram("dime.phase.dime+.seconds", nil).Count(); got != wantRuns {
		t.Errorf("run histogram count = %d, want %d", got, wantRuns)
	}
	if got, want := fr.Kept(), wantRuns+3; got != want {
		t.Errorf("flight recorder kept = %d, want %d", got, want)
	}
}

// TestDIMEPlusFlightProbeResultIdentical checks that attaching the flight
// recorder as the probe leaves the discovery output byte-for-byte unchanged
// and records one trace covering all six phases.
func TestDIMEPlusFlightProbeResultIdentical(t *testing.T) {
	base, err := DIMEPlus(fixtures.Figure1Group(), paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	fr := obs.NewFlightRecorder(obs.FlightOptions{Capacity: 4, Resources: true})
	opts := paperOptions()
	opts.Probe = fr
	res, err := DIMEPlus(fixtures.Figure1Group(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Final(), base.Final()) || res.Stats != base.Stats {
		t.Fatalf("flight probe changed results: %v vs %v", res.Final(), base.Final())
	}
	traces := fr.Snapshot()
	if len(traces) != 1 || traces[0].Name != "dime+" {
		t.Fatalf("traces = %+v", traces)
	}
	seen := make(map[string]bool)
	for _, ev := range traces[0].Events {
		seen[ev.Name] = true
	}
	for _, phase := range []string{
		obs.PhaseRecordCompile, obs.PhaseSignatureBuild, obs.PhaseCandidateGen,
		obs.PhasePositiveVerify, obs.PhaseNegativeFilter, obs.PhaseNegativeVerify,
	} {
		if !seen[phase] {
			t.Errorf("phase %s missing from flight trace (have %v)", phase, seen)
		}
	}
}

// TestStatsAdd checks field-wise accumulation.
func TestStatsAdd(t *testing.T) {
	a := Stats{1, 2, 3, 4, 5, 6}
	a.Add(Stats{10, 20, 30, 40, 50, 60})
	if want := (Stats{11, 22, 33, 44, 55, 66}); a != want {
		t.Fatalf("sum = %+v, want %+v", a, want)
	}
}
