package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dime/internal/entity"
	"dime/internal/fixtures"
	"dime/internal/ontology"
	"dime/internal/rules"
)

func paperOptions() Options {
	cfg := fixtures.ScholarConfig()
	return Options{Config: cfg, Rules: fixtures.PaperRules(cfg)}
}

// partitionIDs renders partitions as sorted ID sets for comparison.
func partitionIDs(g *entity.Group, parts [][]int) []string {
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		ids := make([]string, 0, len(p))
		for _, ei := range p {
			ids = append(ids, g.Entities[ei].ID)
		}
		sort.Strings(ids)
		out = append(out, fmt.Sprint(ids))
	}
	sort.Strings(out)
	return out
}

// TestDIMEPaperExample walks Algorithm 1 through the Figure-1 group and
// checks every outcome the paper's Examples 2 and 5 state: the partitions,
// the pivot, and the two scrollbar levels.
func TestDIMEPaperExample(t *testing.T) {
	g := fixtures.Figure1Group()
	res, err := DIME(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantParts := []string{"[e1 e2 e3 e5]", "[e4]", "[e6]"}
	if got := partitionIDs(g, res.Partitions); !reflect.DeepEqual(got, wantParts) {
		t.Fatalf("partitions = %v, want %v", got, wantParts)
	}
	if res.PivotSize() != 4 {
		t.Fatalf("pivot size = %d, want 4", res.PivotSize())
	}
	if got := res.MisCategorizedIDs(0); !reflect.DeepEqual(got, []string{"e4"}) {
		t.Fatalf("level 1 (φ−1) = %v, want [e4]", got)
	}
	if got := res.MisCategorizedIDs(1); !reflect.DeepEqual(got, []string{"e4", "e6"}) {
		t.Fatalf("level 2 (φ−1∨φ−2) = %v, want [e4 e6]", got)
	}
	if got := res.Final(); !reflect.DeepEqual(got, []string{"e4", "e6"}) {
		t.Fatalf("final = %v", got)
	}
}

// TestDIMEPlusPaperExample: Algorithm 2 must produce the same results.
func TestDIMEPlusPaperExample(t *testing.T) {
	g := fixtures.Figure1Group()
	res, err := DIMEPlus(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	wantParts := []string{"[e1 e2 e3 e5]", "[e4]", "[e6]"}
	if got := partitionIDs(g, res.Partitions); !reflect.DeepEqual(got, wantParts) {
		t.Fatalf("partitions = %v, want %v", got, wantParts)
	}
	if got := res.MisCategorizedIDs(0); !reflect.DeepEqual(got, []string{"e4"}) {
		t.Fatalf("level 1 = %v", got)
	}
	if got := res.MisCategorizedIDs(1); !reflect.DeepEqual(got, []string{"e4", "e6"}) {
		t.Fatalf("level 2 = %v", got)
	}
	// The signature filter should have proven at least one partition
	// mis-categorized without verification (Example 9).
	if res.Stats.PartitionsFilteredBySignature+res.Stats.CertainPairsBySignature == 0 {
		t.Error("expected signature-only negative decisions on the paper example")
	}
}

// TestDIMEPlusDoesLessWork: on the paper example the signature algorithm
// verifies strictly fewer positive pairs than the naive enumeration.
func TestDIMEPlusDoesLessWork(t *testing.T) {
	g := fixtures.Figure1Group()
	naive, err := DIME(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DIMEPlus(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.PositiveVerified >= naive.Stats.PositiveVerified {
		t.Errorf("DIME+ verified %d pairs, naive %d — filter had no effect",
			fast.Stats.PositiveVerified, naive.Stats.PositiveVerified)
	}
}

// TestScrollbarMonotone: every level's output is a superset of the previous
// level's (the property that makes the scrollbar usable).
func TestScrollbarMonotone(t *testing.T) {
	g := fixtures.Figure1Group()
	for _, algo := range []func(*entity.Group, Options) (*Result, error){DIME, DIMEPlus} {
		res, err := algo(g, paperOptions())
		if err != nil {
			t.Fatal(err)
		}
		prev := map[string]bool{}
		for li, lv := range res.Levels {
			cur := map[string]bool{}
			for _, id := range lv.EntityIDs {
				cur[id] = true
			}
			for id := range prev {
				if !cur[id] {
					t.Fatalf("level %d dropped %s", li, id)
				}
			}
			prev = cur
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := fixtures.Figure1Group()
	if _, err := DIME(g, Options{}); err == nil {
		t.Fatal("missing config should fail")
	}
	cfg := fixtures.ScholarConfig()
	if _, err := DIME(g, Options{Config: cfg}); err == nil {
		t.Fatal("missing rules should fail")
	}
	rs := fixtures.PaperRules(cfg)
	if _, err := DIME(nil, Options{Config: cfg, Rules: rs}); err == nil {
		t.Fatal("nil group should fail")
	}
	onlyPos := rules.RuleSet{Positive: rs.Positive}
	if _, err := DIME(g, Options{Config: cfg, Rules: onlyPos}); err == nil {
		t.Fatal("missing negative rules should fail")
	}
}

func TestEmptyGroup(t *testing.T) {
	g := entity.NewGroup("empty", fixtures.ScholarSchema)
	res, err := DIME(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partitions) != 0 || res.Final() != nil {
		t.Fatalf("empty group result: %+v", res)
	}
	res2, err := DIMEPlus(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Partitions) != 0 {
		t.Fatalf("empty group DIME+ result: %+v", res2)
	}
}

func TestSingletonGroup(t *testing.T) {
	g := entity.NewGroup("one", fixtures.ScholarSchema)
	e, _ := entity.NewEntity(fixtures.ScholarSchema, "only", [][]string{{"t"}, {"a"}, {"SIGMOD"}})
	g.MustAdd(e)
	for _, algo := range []func(*entity.Group, Options) (*Result, error){DIME, DIMEPlus} {
		res, err := algo(g, paperOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Partitions) != 1 || res.PivotSize() != 1 {
			t.Fatalf("singleton partitions: %+v", res.Partitions)
		}
		if len(res.Final()) != 0 {
			t.Fatalf("singleton should have no mis-categorized entities, got %v", res.Final())
		}
	}
}

// randomGroup mirrors the one in the signature tests: random token sets,
// names and venues.
func randomGroup(rng *rand.Rand, n int) (*entity.Group, Options) {
	schema := entity.MustSchema("Name", "Tags", "Venue")
	tree := ontology.VenueTree()
	leaves := tree.Leaves()
	cfg := rules.NewConfig(schema).
		WithTokenMode("Name", rules.WordsMode).
		WithTree("Venue", tree)
	g := entity.NewGroup("rand", schema)
	words := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta", "iota", "kappa"}
	for i := 0; i < n; i++ {
		name := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		var tags []string
		for k := 0; k < 1+rng.Intn(4); k++ {
			tags = append(tags, words[rng.Intn(len(words))])
		}
		venue := leaves[rng.Intn(len(leaves))].Label
		e, err := entity.NewEntity(schema, fmt.Sprintf("r%02d", i), [][]string{{name}, tags, {venue}})
		if err != nil {
			panic(err)
		}
		g.MustAdd(e)
	}
	rs := rules.RuleSet{
		Positive: []rules.Rule{
			rules.MustParse(cfg, "p1", rules.Positive, "ov(Tags) >= 2"),
			rules.MustParse(cfg, "p2", rules.Positive, "jac(Name) >= 0.5 && on(Venue) >= 0.75"),
		},
		Negative: []rules.Rule{
			rules.MustParse(cfg, "n1", rules.Negative, "ov(Tags) = 0"),
			rules.MustParse(cfg, "n2", rules.Negative, "ov(Tags) <= 1 && on(Venue) <= 0.25"),
		},
	}
	return g, Options{Config: cfg, Rules: rs}
}

// TestEquivalenceRandomized is the central invariant: DIME and DIME+ compute
// identical partitions, pivots, and scrollbar levels on random groups. Any
// signature incompleteness or ordering bug breaks this.
func TestEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		g, opts := randomGroup(rng, 2+rng.Intn(30))
		a, err := DIME(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := DIMEPlus(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		pa, pb := partitionIDs(g, a.Partitions), partitionIDs(g, b.Partitions)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("trial %d: partitions differ\nnaive: %v\nfast:  %v", trial, pa, pb)
		}
		if len(a.Levels) != len(b.Levels) {
			t.Fatalf("trial %d: level counts differ", trial)
		}
		for li := range a.Levels {
			if !reflect.DeepEqual(a.Levels[li].EntityIDs, b.Levels[li].EntityIDs) {
				t.Fatalf("trial %d level %d: %v vs %v",
					trial, li, a.Levels[li].EntityIDs, b.Levels[li].EntityIDs)
			}
		}
	}
}

// TestAblationFlagsPreserveResults: turning off the benefit order or the
// transitivity skip changes work done, never answers.
func TestAblationFlagsPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		g, opts := randomGroup(rng, 5+rng.Intn(25))
		base, err := DIMEPlus(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Options{
			{Config: opts.Config, Rules: opts.Rules, DisableBenefitOrder: true},
			{Config: opts.Config, Rules: opts.Rules, DisableTransitivitySkip: true},
			{Config: opts.Config, Rules: opts.Rules, DisableBenefitOrder: true, DisableTransitivitySkip: true},
		} {
			got, err := DIMEPlus(g, variant)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(partitionIDs(g, base.Partitions), partitionIDs(g, got.Partitions)) {
				t.Fatalf("trial %d: ablation changed partitions", trial)
			}
			for li := range base.Levels {
				if !reflect.DeepEqual(base.Levels[li].EntityIDs, got.Levels[li].EntityIDs) {
					t.Fatalf("trial %d: ablation changed level %d", trial, li)
				}
			}
		}
	}
}

// TestTransitivitySkipSavesWork: with the skip disabled, DIME+ performs at
// least as many verifications.
func TestTransitivitySkipSavesWork(t *testing.T) {
	g := fixtures.Figure1Group()
	opts := paperOptions()
	withSkip, err := DIMEPlus(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableTransitivitySkip = true
	noSkip, err := DIMEPlus(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if noSkip.Stats.PositiveVerified < withSkip.Stats.PositiveVerified {
		t.Errorf("disabling the skip reduced verifications: %d < %d",
			noSkip.Stats.PositiveVerified, withSkip.Stats.PositiveVerified)
	}
}

func TestMisCategorizedIDsClamping(t *testing.T) {
	g := fixtures.Figure1Group()
	res, err := DIME(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MisCategorizedIDs(-5); !reflect.DeepEqual(got, res.Levels[0].EntityIDs) {
		t.Fatal("negative level should clamp to 0")
	}
	if got := res.MisCategorizedIDs(99); !reflect.DeepEqual(got, res.Final()) {
		t.Fatal("overlarge level should clamp to deepest")
	}
	empty := &Result{}
	if empty.MisCategorizedIDs(0) != nil {
		t.Fatal("no levels → nil")
	}
}

// TestEvalHelpers covers the exported rule-evaluation helpers.
func TestEvalHelpers(t *testing.T) {
	g := fixtures.Figure1Group()
	cfg := fixtures.ScholarConfig()
	rs := fixtures.PaperRules(cfg)
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	if !EvalPositiveAny(rs, recs[0], recs[2]) { // e1, e3 share two authors
		t.Fatal("e1/e3 should match a positive rule")
	}
	if EvalPositiveAny(rs, recs[0], recs[3]) {
		t.Fatal("e1/e4 should not match any positive rule")
	}
	if !EvalNegativePrefix(rs, 1, recs[0], recs[3]) {
		t.Fatal("e1/e4 should match φ−1")
	}
	if EvalNegativePrefix(rs, 1, recs[0], recs[5]) {
		t.Fatal("e1/e6 should not match φ−1 (one shared author)")
	}
	if !EvalNegativePrefix(rs, 2, recs[0], recs[5]) {
		t.Fatal("e1/e6 should match φ−2")
	}
}
