package core

import (
	"math/rand"
	"reflect"
	"testing"

	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/fixtures"
	"dime/internal/presets"
)

// TestSessionMatchesBatch is the incremental-maintenance invariant: feeding
// a group entity by entity yields exactly the partitions, levels and
// discoveries a from-scratch DIME+ run produces.
func TestSessionMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		full, opts := randomGroup(rng, 8+rng.Intn(25))

		// Seed the session with the first two entities, stream the rest.
		seed := entity.NewGroup(full.Name, full.Schema)
		for _, e := range full.Entities[:2] {
			seed.MustAdd(e.Clone())
		}
		sess, err := NewSession(seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range full.Entities[2:] {
			if _, err := sess.Add(e.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		incr, err := sess.Result()
		if err != nil {
			t.Fatal(err)
		}
		batch, err := DIMEPlus(full, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(partitionIDs(seed, incr.Partitions), partitionIDs(full, batch.Partitions)) {
			t.Fatalf("trial %d: partitions differ\nincremental: %v\nbatch:       %v",
				trial, partitionIDs(seed, incr.Partitions), partitionIDs(full, batch.Partitions))
		}
		for li := range batch.Levels {
			if !reflect.DeepEqual(incr.Levels[li].EntityIDs, batch.Levels[li].EntityIDs) {
				t.Fatalf("trial %d level %d: %v vs %v",
					trial, li, incr.Levels[li].EntityIDs, batch.Levels[li].EntityIDs)
			}
		}
	}
}

// TestSessionPaperExample streams Figure 1 and checks the paper's outcome.
func TestSessionPaperExample(t *testing.T) {
	full := fixtures.Figure1Group()
	opts := paperOptions()
	seed := entity.NewGroup(full.Name, full.Schema)
	for _, e := range full.Entities[:1] {
		seed.MustAdd(e.Clone())
	}
	sess, err := NewSession(seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range full.Entities[1:] {
		if _, err := sess.Add(e.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final(); !reflect.DeepEqual(got, []string{"e4", "e6"}) {
		t.Fatalf("final = %v", got)
	}
	if sess.Size() != 6 || len(sess.Partitions()) != 3 {
		t.Fatalf("size=%d partitions=%d", sess.Size(), len(sess.Partitions()))
	}
}

// TestSessionRebuildOnShallowNode: adding an entity that maps to a node
// shallower than anything seen forces (and survives) a full rebuild.
func TestSessionRebuildOnShallowNode(t *testing.T) {
	g := fixtures.Figure1Group()
	opts := paperOptions()
	sess, err := NewSession(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// "Database" is a depth-3 node; all Figure-1 venues sit at depth 4, so
	// the frozen floors assume depth ≥ 4 and this addition must rebuild.
	e, err := entity.NewEntity(fixtures.ScholarSchema, "e7",
		[][]string{{"survey of everything"}, {"Nan Tang"}, {"Database"}})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := sess.Add(e)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("shallow ontology node should force a rebuild")
	}
	incr, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := DIMEPlus(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incr.Final(), batch.Final()) {
		t.Fatalf("after rebuild: %v vs batch %v", incr.Final(), batch.Final())
	}
}

func TestSessionAddErrors(t *testing.T) {
	g := fixtures.Figure1Group()
	sess, err := NewSession(g, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate ID must fail and leave the session usable.
	dup, _ := entity.NewEntity(fixtures.ScholarSchema, "e1", [][]string{{"t"}, {"a"}, {"SIGMOD"}})
	if _, err := sess.Add(dup); err == nil {
		t.Fatal("duplicate ID should fail")
	}
	if sess.Size() != 6 {
		t.Fatalf("failed add changed size to %d", sess.Size())
	}
	if _, err := sess.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionStreamLargePage sanity-checks the incremental path at a
// realistic page size (and implicitly that Add stays subquadratic enough to
// finish instantly).
func TestSessionStreamLargePage(t *testing.T) {
	full := datagen.Scholar(datagen.ScholarOptions{NumPubs: 150, ErrorRate: 0.08, Seed: 3})
	cfg := presets.ScholarConfig()
	opts := Options{Config: cfg, Rules: presets.ScholarRules(cfg)}
	seed := entity.NewGroup(full.Name, full.Schema)
	for _, e := range full.Entities[:5] {
		seed.MustAdd(e.Clone())
	}
	sess, err := NewSession(seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range full.Entities[5:] {
		if _, err := sess.Add(e.Clone()); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	incr, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := DIMEPlus(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incr.Final(), batch.Final()) {
		t.Fatalf("incremental %v vs batch %v", incr.Final(), batch.Final())
	}
}
