package core

import (
	"slices"

	"dime/internal/entity"
	"dime/internal/partition"
	"dime/internal/rules"
	"dime/internal/signature"
)

// DIMEPlus runs the signature-based algorithm (Algorithm 2). The filter step
// builds per-rule inverted indexes over prefix / q-gram / ontology-node
// signatures so only candidate pairs are verified; the verify step orders
// candidates by benefit (similarity probability over verification cost for
// positive rules, its reciprocal for negative rules) and exploits
// transitivity and early exit to skip work.
func DIMEPlus(g *entity.Group, opts Options) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	recs, err := opts.Config.NewRecords(g)
	if err != nil {
		return nil, err
	}
	res := &Result{Group: g, Pivot: -1}
	n := len(recs)
	if n == 0 {
		return res, nil
	}
	ctx := signature.NewContext(opts.Config, recs, opts.Rules)

	// Step 1: candidates from the positive-rule signature indexes, verified
	// under transitivity. Small candidate sets are verified in global
	// benefit order (Algorithm 2 line 5); past the sort limit the candidates
	// are verified as they stream off the inverted lists — transitivity
	// skips the bulk either way and the resulting partitions are identical,
	// but sorting millions of candidates would cost more than it saves.
	uf := partition.New(n)
	verify := func(i, j, rule int) {
		if !opts.DisableTransitivitySkip && uf.Same(i, j) {
			res.Stats.PositiveSkippedByTransitivity++
			return
		}
		res.Stats.PositiveVerified++
		if opts.Rules.Positive[rule].Eval(recs[i], recs[j]) {
			uf.Union(i, j)
		}
	}
	sortLimit := opts.BenefitSortLimit
	if sortLimit == 0 {
		sortLimit = 1 << 15
	}
	type posCand struct {
		i, j    int32
		rule    int32
		benefit float64
	}
	indexes := make([]*signature.PosIndex, len(opts.Rules.Positive))
	for ri, rule := range opts.Rules.Positive {
		indexes[ri] = signature.BuildPositive(ctx, rule, recs)
	}
	var cands []posCand
	sorting := !opts.DisableBenefitOrder
	for ri := range indexes {
		ix := indexes[ri]
		rule := opts.Rules.Positive[ri]
		ix.ForEach(func(c signature.Candidate) {
			res.Stats.PositivePairsConsidered++
			if !sorting {
				verify(c.I, c.J, ri)
				return
			}
			avg := float64(ix.SigCount(c.I)+ix.SigCount(c.J)) / 2
			if avg < 1 {
				avg = 1
			}
			prob := float64(c.Shared) / avg
			if prob <= 0 {
				prob = 1e-6 // wildcard-only candidates still need a rank
			}
			cost := rule.Cost(recs[c.I], recs[c.J])
			if cost < 1 {
				cost = 1
			}
			cands = append(cands, posCand{
				i: int32(c.I), j: int32(c.J), rule: int32(ri), benefit: prob / cost,
			})
			if len(cands) > sortLimit {
				// Too many to sort profitably: flush what we have in
				// arrival order and fall back to streaming.
				sorting = false
				for _, pc := range cands {
					verify(int(pc.i), int(pc.j), int(pc.rule))
				}
				cands = nil
			}
		})
	}
	if sorting {
		slices.SortFunc(cands, func(a, b posCand) int {
			switch {
			case a.benefit > b.benefit:
				return -1
			case a.benefit < b.benefit:
				return 1
			case a.i != b.i:
				return int(a.i) - int(b.i)
			case a.j != b.j:
				return int(a.j) - int(b.j)
			default:
				return int(a.rule) - int(b.rule)
			}
		})
		for _, pc := range cands {
			verify(int(pc.i), int(pc.j), int(pc.rule))
		}
	}
	res.Partitions = uf.Sets()

	// Step 2: pivot partition.
	res.Pivot = pivotOf(res.Partitions)
	pivotIdx := res.Partitions[res.Pivot]
	pivotRecs := make([]*rules.Record, len(pivotIdx))
	for k, ei := range pivotIdx {
		pivotRecs[k] = recs[ei]
	}

	// Step 3: negative rules in sequence with signature filtering.
	marked := make(map[int]bool)
	res.Witnesses = make(map[int]Witness)
	for _, neg := range opts.Rules.Negative {
		nf := signature.BuildNegative(ctx, neg, pivotRecs)
		for pi, part := range res.Partitions {
			if pi == res.Pivot || marked[pi] {
				continue
			}
			partRecs := make([]*rules.Record, len(part))
			for k, ei := range part {
				partRecs[k] = recs[ei]
			}
			if nf.PartitionMustSatisfy(partRecs) {
				marked[pi] = true
				res.Stats.PartitionsFilteredBySignature++
				res.Witnesses[pi] = Witness{Rule: neg.Name}
				continue
			}
			if w, ok := plusMarkPartition(res, nf, neg, partRecs, pivotRecs, opts); ok {
				marked[pi] = true
				res.Witnesses[pi] = w
			}
		}
		res.Levels = append(res.Levels, levelFrom(g, res.Partitions, marked, neg.Name))
	}
	return res, nil
}

// plusMarkPartition probes each entity of an outside partition against the
// pivot. A probe that finds a provably dissimilar pivot record marks the
// partition at once; otherwise that entity's uncertain pairs are verified in
// benefit order 1/(C·P) — fewest shared signatures and cheapest verification
// first — with early exit on the first satisfied pair. Processing entity by
// entity keeps the memory footprint at O(|pivot|) and lets the common case
// (a genuinely mis-categorized partition) resolve after a handful of
// verifications.
func plusMarkPartition(res *Result, nf *signature.NegFilter, neg rules.Rule,
	part, pivot []*rules.Record, opts Options) (Witness, bool) {

	type negCand struct {
		p       int32
		benefit float32
	}
	cands := make([]negCand, 0, len(pivot))
	for _, e := range part {
		pr := nf.Probe(e)
		if pr.Certain >= 0 {
			res.Stats.CertainPairsBySignature++
			return Witness{
				Rule:     neg.Name,
				EntityID: e.Entity.ID,
				PivotID:  pivot[pr.Certain].Entity.ID,
			}, true
		}
		cands = cands[:0]
		for pi, p := range pivot {
			shared := pr.Shared[pi]
			prob := (float64(shared) + 0.5) / (float64(len(pr.Shared)) + 1)
			cost := neg.Cost(e, p)
			if cost < 1 {
				cost = 1
			}
			cands = append(cands, negCand{p: int32(pi), benefit: float32(1 / (cost * prob))})
		}
		if !opts.DisableBenefitOrder {
			slices.SortFunc(cands, func(a, b negCand) int {
				switch {
				case a.benefit > b.benefit:
					return -1
				case a.benefit < b.benefit:
					return 1
				default:
					return int(a.p) - int(b.p)
				}
			})
		}
		for _, c := range cands {
			res.Stats.NegativeVerified++
			if neg.Eval(e, pivot[c.p]) {
				return Witness{
					Rule:     neg.Name,
					EntityID: e.Entity.ID,
					PivotID:  pivot[c.p].Entity.ID,
				}, true
			}
		}
	}
	return Witness{}, false
}
