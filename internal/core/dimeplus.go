package core

import (
	"slices"

	"dime/internal/entity"
	"dime/internal/obs"
	"dime/internal/partition"
	"dime/internal/rules"
	"dime/internal/signature"
)

// DIMEPlus runs the signature-based algorithm (Algorithm 2). The filter step
// builds per-rule inverted indexes over prefix / q-gram / ontology-node
// signatures so only candidate pairs are verified; the verify step orders
// candidates by benefit (similarity probability over verification cost for
// positive rules, its reciprocal for negative rules) and exploits
// transitivity and early exit to skip work.
func DIMEPlus(g *entity.Group, opts Options) (*Result, error) {
	if err := opts.validate(g); err != nil {
		return nil, err
	}
	run := obs.Start(opts.Probe, "dime+", obs.A("group", g.Name))
	defer run.End()
	sp := run.StartSpan(obs.PhaseRecordCompile)
	recs, err := opts.Config.NewRecords(g)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Count("records", int64(len(recs)))
	sp.End()
	res := &Result{Group: g, Pivot: -1}
	n := len(recs)
	if n == 0 {
		return res, nil
	}

	sb := run.StartSpan(obs.PhaseSignatureBuild)
	ctx := signature.NewContext(opts.Config, recs, opts.Rules)
	indexes := make([]*signature.PosIndex, len(opts.Rules.Positive))
	for ri, rule := range opts.Rules.Positive {
		rsp := sb.StartSpan(obs.PhaseSignatureBuild, obs.A("rule", rule.Name))
		indexes[ri] = signature.BuildPositive(ctx, rule, recs)
		rsp.End()
	}
	sb.End()

	// Step 1: candidates from the positive-rule signature indexes, verified
	// under transitivity. Small candidate sets are verified in global
	// benefit order (Algorithm 2 line 5); past the sort limit the candidates
	// are verified as they stream off the inverted lists — transitivity
	// skips the bulk either way and the resulting partitions are identical,
	// but sorting millions of candidates would cost more than it saves.
	uf := partition.New(n)
	perRuleCands := make([]int64, len(opts.Rules.Positive))
	// Verification runs through posVerifier: inline for one worker, chunked
	// speculative evaluation + deterministic replay for several. Either way
	// the skip/verify/union decisions happen in arrival order, so results
	// and stats are identical for every worker count.
	pver := newPosVerifier(&opts, recs, uf, &res.Stats, opts.intraWorkers(n))
	sortLimit := opts.BenefitSortLimit
	if sortLimit <= 0 {
		sortLimit = 1 << 15
	}
	var cands []posCand
	sorting := !opts.DisableBenefitOrder
	// Candidate generation: streaming verification (no benefit sort, or the
	// sort limit overflowed) interleaves here; its verified counters still
	// land on the positive-verify span below.
	cg := run.StartSpan(obs.PhaseCandidateGen)
	for ri := range indexes {
		ix := indexes[ri]
		rule := opts.Rules.Positive[ri]
		ix.ForEach(func(c signature.Candidate) {
			res.Stats.PositivePairsConsidered++
			perRuleCands[ri]++
			if !sorting {
				pver.add(posCand{i: int32(c.I), j: int32(c.J), rule: int32(ri)})
				return
			}
			avg := float64(ix.SigCount(c.I)+ix.SigCount(c.J)) / 2
			if avg < 1 {
				avg = 1
			}
			prob := float64(c.Shared) / avg
			if prob <= 0 {
				prob = 1e-6 // wildcard-only candidates still need a rank
			}
			cost := rule.Cost(recs[c.I], recs[c.J])
			if cost < 1 {
				cost = 1
			}
			cands = append(cands, posCand{
				i: int32(c.I), j: int32(c.J), rule: int32(ri), benefit: prob / cost,
			})
			if len(cands) > sortLimit {
				// Too many to sort profitably: flush what we have in
				// arrival order and fall back to streaming.
				sorting = false
				for _, pc := range cands {
					pver.add(pc)
				}
				cands = nil
			}
		})
	}
	if !sorting {
		// Streaming verification belongs to candidate generation; drain the
		// verifier's last partial chunk before the span closes.
		pver.flush()
	}
	cg.Count("candidates", res.Stats.PositivePairsConsidered)
	for ri, rule := range opts.Rules.Positive {
		cg.Count("candidates/"+rule.Name, perRuleCands[ri])
	}
	cg.End()

	pv := run.StartSpan(obs.PhasePositiveVerify)
	if sorting {
		slices.SortFunc(cands, func(a, b posCand) int {
			switch {
			case a.benefit > b.benefit:
				return -1
			case a.benefit < b.benefit:
				return 1
			case a.i != b.i:
				return int(a.i) - int(b.i)
			case a.j != b.j:
				return int(a.j) - int(b.j)
			default:
				return int(a.rule) - int(b.rule)
			}
		})
		for _, pc := range cands {
			pver.add(pc)
		}
		pver.flush()
	}
	pv.Count("verified", res.Stats.PositiveVerified)
	pv.Count("skipped-transitivity", res.Stats.PositiveSkippedByTransitivity)
	for ri, rule := range opts.Rules.Positive {
		pv.Count("verified/"+rule.Name, pver.perRuleVerified[ri])
	}
	pver.report(pv)
	pv.End()
	res.Partitions = uf.Sets()

	// Steps 2 and 3: pivot partition, then the negative rules in sequence
	// with signature filtering (shared with Session.Result).
	applyNegativeRules(res, run, ctx, recs, opts)
	return res, nil
}

// negCand is one pivot record awaiting verification against a probed entity,
// ranked by benefit 1/(C·P).
type negCand struct {
	p       int32
	benefit float32
}

// negScratch bundles the buffers plusMarkPartition reuses across partitions:
// the signature-probe scratch and the candidate slice. One scratch per
// goroutine; the zero value is ready to use.
type negScratch struct {
	probe signature.ProbeScratch
	cands []negCand
}

// plusMarkPartition probes each entity of an outside partition against the
// pivot. A probe that finds a provably dissimilar pivot record marks the
// partition at once; otherwise that entity's uncertain pairs are verified in
// benefit order 1/(C·P) — fewest shared signatures and cheapest verification
// first — with early exit on the first satisfied pair. Processing entity by
// entity keeps the memory footprint at O(|pivot|) and lets the common case
// (a genuinely mis-categorized partition) resolve after a handful of
// verifications.
//
// The function is a pure function of (partition, pivot, rule) that records
// its work on stats — it reads only immutable records and the read-only
// negative filter — so applyNegativeRules can run independent partitions on
// concurrent workers and fold the per-partition stats back in partition
// order, reproducing the sequential counters exactly. The scratch carries
// probe and candidate buffers reused across partitions; each goroutine owns
// its own.
func plusMarkPartition(stats *Stats, nf *signature.NegFilter, neg rules.Rule,
	part, pivot []*rules.Record, opts Options, sc *negScratch) (Witness, bool) {

	cands := sc.cands[:0]
	for _, e := range part {
		certain := nf.ProbeInto(e, &sc.probe)
		if certain >= 0 {
			stats.CertainPairsBySignature++
			return Witness{
				Rule:     neg.Name,
				EntityID: e.Entity.ID,
				PivotID:  pivot[certain].Entity.ID,
			}, true
		}
		cands = cands[:0]
		// The probability estimate divides by the number of pivot records
		// sharing anything with e (the old Probe's len(Shared) map length).
		nonzero := sc.probe.NonzeroShared()
		for pi, p := range pivot {
			shared := sc.probe.SharedCount(pi)
			prob := (float64(shared) + 0.5) / (float64(nonzero) + 1)
			cost := neg.Cost(e, p)
			if cost < 1 {
				cost = 1
			}
			cands = append(cands, negCand{p: int32(pi), benefit: float32(1 / (cost * prob))})
		}
		sc.cands = cands // keep capacity growth for the next partition
		if !opts.DisableBenefitOrder {
			slices.SortFunc(cands, func(a, b negCand) int {
				switch {
				case a.benefit > b.benefit:
					return -1
				case a.benefit < b.benefit:
					return 1
				default:
					return int(a.p) - int(b.p)
				}
			})
		}
		for _, c := range cands {
			stats.NegativeVerified++
			if neg.Eval(e, pivot[c.p]) {
				return Witness{
					Rule:     neg.Name,
					EntityID: e.Entity.ID,
					PivotID:  pivot[c.p].Entity.ID,
				}, true
			}
		}
	}
	return Witness{}, false
}
