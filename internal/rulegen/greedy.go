package rulegen

import (
	"fmt"

	"dime/internal/obs"
	"dime/internal/rules"
)

// Greedy runs the greedy rule-generation algorithm of Section V-C (and V-D
// for negative rules): rules are built one predicate at a time, each rule is
// grown while the objective improves, and rules are added to the set while
// the set-level objective improves. Generated rules are named kind+index and
// returned in generation order (negative rules are applied in that order).
func Greedy(opts Options, examples []Example, kind rules.Kind) ([]rules.Rule, error) {
	opts.defaults(kind)
	run := obs.Start(opts.Probe, "rulegen", obs.A("kind", kind.String()))
	defer run.End()
	run.Count("examples", int64(len(examples)))
	csp := run.StartSpan("candidate-predicates")
	candidates, err := CandidatePredicates(opts, examples, kind)
	csp.Count("candidates", int64(len(candidates)))
	csp.End()
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("rulegen: no candidate predicates (no examples?)")
	}

	var out []rules.Rule
	remaining := append([]Example(nil), examples...)
	bestScore := 0 // the empty set covers nothing: score 0

	for len(out) < opts.MaxRules {
		rsp := run.StartSpan("greedy-rule")
		rule, ok := greedyRule(opts, candidates, remaining, kind)
		if !ok {
			rsp.End()
			break
		}
		trial := append(append([]rules.Rule(nil), out...), rule)
		score := ScoreRuleSet(trial, examples, opts.Objective)
		rsp.Count("predicates", int64(len(rule.Predicates)))
		rsp.Count("score", int64(score))
		rsp.End()
		if score <= bestScore {
			break
		}
		out = trial
		bestScore = score
		// Remove the examples the new rule covers; later rules target what
		// is still uncovered (Section V-C's S''+/S''− update).
		kept := remaining[:0]
		for _, ex := range remaining {
			if !rule.Eval(ex.A, ex.B) {
				kept = append(kept, ex)
			}
		}
		remaining = kept
		if len(remaining) == 0 {
			break
		}
	}
	run.Count("rules", int64(len(out)))
	for i := range out {
		prefix := "gen+"
		if kind == rules.Negative {
			prefix = "gen-"
		}
		out[i].Name = fmt.Sprintf("%s%d", prefix, i+1)
		out[i].Kind = kind
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rulegen: greedy produced no rule with positive objective")
	}
	return out, nil
}

// greedyRule builds one rule over the remaining examples: start from the
// best single predicate, then add predicates (one per attribute at most)
// while the rule-level objective improves.
func greedyRule(opts Options, candidates []rules.Predicate, examples []Example, kind rules.Kind) (rules.Rule, bool) {
	target := func(ex Example) bool {
		if kind == rules.Positive {
			return ex.Same
		}
		return !ex.Same
	}
	// Is there anything left to cover?
	anyTarget := false
	for _, ex := range examples {
		if target(ex) {
			anyTarget = true
			break
		}
	}
	if !anyTarget {
		return rules.Rule{}, false
	}

	var rule rules.Rule
	used := map[int]bool{} // attributes already in the rule
	bestScore := -1 << 30

	for len(rule.Predicates) < opts.MaxPredicates {
		var bestPred rules.Predicate
		improved := false
		for _, p := range candidates {
			if used[p.Attr] {
				continue
			}
			trial := rules.Rule{Predicates: append(append([]rules.Predicate(nil), rule.Predicates...), p)}
			score := ScoreRuleSet([]rules.Rule{trial}, examples, opts.Objective)
			if score > bestScore {
				bestScore = score
				bestPred = p
				improved = true
			}
		}
		if !improved {
			break
		}
		rule.Predicates = append(rule.Predicates, bestPred)
		used[bestPred.Attr] = true
		// A perfect rule cannot improve further.
		if pos, neg := coverage([]rules.Rule{rule}, examples); (kind == rules.Positive && neg == 0) ||
			(kind == rules.Negative && pos == 0) {
			break
		}
	}
	if len(rule.Predicates) == 0 || bestScore <= 0 {
		return rules.Rule{}, false
	}
	return rule, true
}

// Generate produces a full rule set (positive rules then negative rules)
// from one pool of examples, the end-to-end entry point the experiments and
// the public API use.
func Generate(opts Options, examples []Example) (rules.RuleSet, error) {
	pos, err := Greedy(opts, examples, rules.Positive)
	if err != nil {
		return rules.RuleSet{}, fmt.Errorf("rulegen: positive rules: %w", err)
	}
	neg, err := Greedy(opts, examples, rules.Negative)
	if err != nil {
		return rules.RuleSet{}, fmt.Errorf("rulegen: negative rules: %w", err)
	}
	return rules.RuleSet{Positive: pos, Negative: neg}, nil
}
