package rulegen

import (
	"fmt"

	"dime/internal/rules"
)

// Enumerate runs the exact enumeration algorithm of Section V-B: it builds
// every rule that picks at most one candidate predicate per attribute, then
// searches all subsets of those rules (up to maxSetSize rules per set) for
// the subset maximizing the objective. The search space is exponential —
// O(2^(|F|·m·|S|)) in the paper's notation — so this is only usable as an
// exactness oracle on tiny inputs; Greedy is the practical algorithm.
func Enumerate(opts Options, examples []Example, kind rules.Kind, maxSetSize int) ([]rules.Rule, error) {
	opts.defaults(kind)
	if maxSetSize <= 0 {
		maxSetSize = 2
	}
	candidates, err := CandidatePredicates(opts, examples, kind)
	if err != nil {
		return nil, err
	}
	allRules := enumerateRules(opts, candidates)
	if len(allRules) == 0 {
		return nil, fmt.Errorf("rulegen: no candidate rules")
	}
	const hardCap = 1 << 22
	if cost := setSearchCost(len(allRules), maxSetSize); cost > hardCap {
		return nil, fmt.Errorf("rulegen: enumeration space too large (%d rules, %d combinations)", len(allRules), cost)
	}

	var best []rules.Rule
	bestScore := 0
	idx := make([]int, 0, maxSetSize)
	var walk func(start int)
	walk = func(start int) {
		if len(idx) > 0 {
			set := make([]rules.Rule, len(idx))
			for i, j := range idx {
				set[i] = allRules[j]
			}
			if score := ScoreRuleSet(set, examples, opts.Objective); score > bestScore {
				bestScore = score
				best = set
			}
		}
		if len(idx) == maxSetSize {
			return
		}
		for j := start; j < len(allRules); j++ {
			idx = append(idx, j)
			walk(j + 1)
			idx = idx[:len(idx)-1]
		}
	}
	walk(0)
	if best == nil {
		return nil, fmt.Errorf("rulegen: no rule set with positive objective")
	}
	for i := range best {
		prefix := "enum+"
		if kind == rules.Negative {
			prefix = "enum-"
		}
		best[i].Name = fmt.Sprintf("%s%d", prefix, i+1)
		best[i].Kind = kind
	}
	return best, nil
}

// enumerateRules builds every rule choosing 0 or 1 predicate per attribute
// (at least one overall, at most MaxPredicates).
func enumerateRules(opts Options, candidates []rules.Predicate) []rules.Rule {
	byAttr := map[int][]rules.Predicate{}
	attrs := []int{}
	for _, p := range candidates {
		if _, seen := byAttr[p.Attr]; !seen {
			attrs = append(attrs, p.Attr)
		}
		byAttr[p.Attr] = append(byAttr[p.Attr], p)
	}
	var out []rules.Rule
	var cur []rules.Predicate
	var walk func(ai int)
	walk = func(ai int) {
		if ai == len(attrs) {
			if len(cur) > 0 && len(cur) <= opts.MaxPredicates {
				out = append(out, rules.Rule{Predicates: append([]rules.Predicate(nil), cur...)})
			}
			return
		}
		walk(ai + 1) // skip this attribute
		if len(cur) < opts.MaxPredicates {
			for _, p := range byAttr[attrs[ai]] {
				cur = append(cur, p)
				walk(ai + 1)
				cur = cur[:len(cur)-1]
			}
		}
	}
	walk(0)
	return out
}

// setSearchCost estimates Σ_{k≤max} C(n, k).
func setSearchCost(n, max int) int {
	total := 0
	term := 1
	for k := 1; k <= max; k++ {
		term = term * (n - k + 1) / k
		if term < 0 || total+term < 0 {
			return 1 << 30
		}
		total += term
	}
	return total
}
