package rulegen

import (
	"testing"

	"dime/internal/fixtures"
	"dime/internal/rules"
	"dime/internal/sim"
)

// figure1Examples builds the example pool of Example 10: all pairs among
// {e1,e2,e3,e5} are positive, pairs crossing into {e4,e6} are negative.
func figure1Examples(t *testing.T) (*rules.Config, []Example) {
	t.Helper()
	g := fixtures.Figure1Group()
	cfg := fixtures.ScholarConfig()
	recs, err := cfg.NewRecords(g)
	if err != nil {
		t.Fatal(err)
	}
	correct := map[int]bool{0: true, 1: true, 2: true, 4: true}
	var exs []Example
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if correct[i] && correct[j] {
				exs = append(exs, Example{A: recs[i], B: recs[j], Same: true})
			} else if correct[i] != correct[j] {
				exs = append(exs, Example{A: recs[i], B: recs[j], Same: false})
			}
		}
	}
	return cfg, exs
}

func TestCandidatePredicatesFinite(t *testing.T) {
	cfg, exs := figure1Examples(t)
	cands, err := CandidatePredicates(Options{Config: cfg}, exs, rules.Positive)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Thresholds must be example-induced: the author-overlap candidates can
	// only take values realized by positive examples (1 and 2 here).
	for _, p := range cands {
		if p.Fn == rules.Overlap && p.AttrName == "Authors" {
			if !sim.Eq(p.Threshold, 1) && !sim.Eq(p.Threshold, 2) {
				t.Fatalf("unexpected overlap threshold %v", p.Threshold)
			}
		}
		if p.Op != rules.GE {
			t.Fatalf("positive candidates must be GE: %v", p)
		}
	}
}

func TestCandidatePredicatesNegative(t *testing.T) {
	cfg, exs := figure1Examples(t)
	cands, err := CandidatePredicates(Options{Config: cfg}, exs, rules.Negative)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range cands {
		if p.Op != rules.LE {
			t.Fatalf("negative candidates must be LE: %v", p)
		}
	}
}

func TestGreedyRecoversPaperlikeRules(t *testing.T) {
	cfg, exs := figure1Examples(t)
	rs, err := Generate(Options{Config: cfg}, exs)
	if err != nil {
		t.Fatal(err)
	}
	// The generated positive rules must separate the example pool cleanly:
	// cover all positives and no negatives (the Figure-1 pool is separable,
	// as Example 12 shows).
	pos, neg := 0, 0
	for _, ex := range exs {
		matched := false
		for _, r := range rs.Positive {
			if r.Eval(ex.A, ex.B) {
				matched = true
				break
			}
		}
		if matched && ex.Same {
			pos++
		}
		if matched && !ex.Same {
			neg++
		}
	}
	if neg != 0 {
		t.Fatalf("positive rules cover %d negative examples", neg)
	}
	if pos < 5 { // 6 positive pairs exist; near-full coverage expected
		t.Fatalf("positive rules cover only %d positives", pos)
	}
	// Negative rules must cover the mis-categorized pairs without touching
	// positive pairs.
	covNeg, covPos := 0, 0
	for _, ex := range exs {
		for _, r := range rs.Negative {
			if r.Eval(ex.A, ex.B) {
				if ex.Same {
					covPos++
				} else {
					covNeg++
				}
				break
			}
		}
	}
	if covPos != 0 {
		t.Fatalf("negative rules cover %d positive examples", covPos)
	}
	if covNeg < 6 {
		t.Fatalf("negative rules cover only %d of the negative examples", covNeg)
	}
}

// TestGreedyFirstPredicateMatchesExample12: the first generated positive
// rule should be driven by author overlap, as the paper's Example 12 derives
// (ϕ+1 = ov(Authors) ≥ 2 maximizes the objective first).
func TestGreedyFirstPredicateMatchesExample12(t *testing.T) {
	cfg, exs := figure1Examples(t)
	rs, err := Greedy(Options{Config: cfg}, exs, rules.Positive)
	if err != nil {
		t.Fatal(err)
	}
	first := rs[0].Predicates[0]
	if first.AttrName != "Authors" {
		t.Fatalf("first rule's first predicate should be on Authors, got %v", first)
	}
}

func TestGreedyMatchesEnumerationOnTinyInput(t *testing.T) {
	cfg, exs := figure1Examples(t)
	// Restrict to a small library to keep enumeration tractable.
	opts := Options{
		Config:        cfg,
		Functions:     []rules.Func{rules.Overlap},
		MaxPredicates: 1,
		MaxRules:      2,
	}
	greedy, err := Greedy(opts, exs, rules.Positive)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Enumerate(opts, exs, rules.Positive, 2)
	if err != nil {
		t.Fatal(err)
	}
	gs := ScoreRuleSet(greedy, exs, PositiveObjective)
	es := ScoreRuleSet(exact, exs, PositiveObjective)
	if gs > es {
		t.Fatalf("greedy (%d) cannot beat exact enumeration (%d)", gs, es)
	}
	if es-gs > 1 {
		t.Fatalf("greedy (%d) far from exact (%d) on a tiny separable input", gs, es)
	}
}

func TestEnumerateRejectsHugeSpaces(t *testing.T) {
	cfg, exs := figure1Examples(t)
	_, err := Enumerate(Options{Config: cfg, MaxPredicates: 3}, exs, rules.Positive, 6)
	if err == nil {
		t.Skip("space happened to be small enough; nothing to assert")
	}
}

func TestCapThresholds(t *testing.T) {
	ths := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	got := capThresholds(ths, 3)
	if len(got) != 3 || got[0] != 0 || !sim.Eq(got[2], 1) {
		t.Fatalf("capThresholds = %v", got)
	}
	if got := capThresholds(ths, 0); len(got) != len(ths) {
		t.Fatal("max=0 keeps all")
	}
	if got := capThresholds([]float64{1, 1, 1}, 2); len(got) != 1 {
		t.Fatalf("dedup failed: %v", got)
	}
}

func TestGreedyErrors(t *testing.T) {
	cfg, _ := figure1Examples(t)
	if _, err := Greedy(Options{Config: cfg}, nil, rules.Positive); err == nil {
		t.Fatal("no examples should fail")
	}
	if _, err := Greedy(Options{}, nil, rules.Positive); err == nil {
		t.Fatal("no config should fail")
	}
}

func TestScoreRuleSet(t *testing.T) {
	cfg, exs := figure1Examples(t)
	r := rules.MustParse(cfg, "p", rules.Positive, "ov(Authors) >= 2")
	score := ScoreRuleSet([]rules.Rule{r}, exs, PositiveObjective)
	// ov≥2 holds for (e1,e3) and (e2,e5) among positives, no negatives.
	if score != 2 {
		t.Fatalf("score = %d, want 2", score)
	}
}
