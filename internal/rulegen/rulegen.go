// Package rulegen implements Section V of the paper: generating positive and
// negative rules from labelled example pairs.
//
// The key insight (Theorem 3) is that although thresholds range over a
// continuum, only the similarity values realized by the examples can change
// the objective, so the candidate-predicate space is finite. On top of that
// space the package provides the exact enumeration algorithm (Section V-B,
// exponential, used as a test oracle on tiny inputs) and the greedy
// algorithm (Section V-C) that builds rules predicate-by-predicate and rule
// sets rule-by-rule, plus negative-rule generation (Section V-D).
package rulegen

import (
	"fmt"
	"sort"

	"dime/internal/obs"
	"dime/internal/rules"
)

// Example is a labelled entity pair: Same means the two entities belong in
// the same category.
type Example struct {
	A, B *rules.Record
	Same bool
}

// Objective scores a rule set against example sets; larger is better. The
// default for positive rules is coveredPositives − coveredNegatives and the
// mirror image for negative rules.
type Objective func(coveredPos, coveredNeg int) int

// PositiveObjective is |E ∩ S+| − |E ∩ S−| (Section V-A).
func PositiveObjective(coveredPos, coveredNeg int) int { return coveredPos - coveredNeg }

// NegativeObjective is |E ∩ S−| − |E ∩ S+| (Section V-D).
func NegativeObjective(coveredPos, coveredNeg int) int { return coveredNeg - coveredPos }

// Options configures generation.
type Options struct {
	// Config supplies the schema, trees and token modes; predicates are
	// generated only for similarity functions applicable under it.
	Config *rules.Config
	// Functions restricts the similarity-function library; nil means
	// {Overlap, Jaccard, Ontology} plus EditSim for word-token attributes.
	Functions []rules.Func
	// Objective overrides the default objective.
	Objective Objective
	// MaxRules caps the generated rule count; 0 means 8.
	MaxRules int
	// MaxPredicates caps predicates per rule; 0 means 3.
	MaxPredicates int
	// MaxThresholds caps candidate thresholds kept per (attribute,
	// function); 0 keeps all example-induced values. Capping keeps the
	// greedy search fast on large example sets: the retained thresholds are
	// evenly spaced quantiles of the induced values.
	MaxThresholds int
	// Probe receives one run span per Greedy pass (candidate-predicate
	// enumeration plus one child span per accepted rule); nil disables
	// instrumentation.
	Probe obs.Probe
}

func (o *Options) defaults(kind rules.Kind) {
	if o.MaxRules == 0 {
		o.MaxRules = 8
	}
	if o.MaxPredicates == 0 {
		o.MaxPredicates = 3
	}
	if o.Objective == nil {
		if kind == rules.Positive {
			o.Objective = PositiveObjective
		} else {
			o.Objective = NegativeObjective
		}
	}
}

// CandidatePredicates generates the finite candidate-predicate sets
// C_p(A_i) of Theorem 3: for every attribute, every applicable similarity
// function, and every similarity value realized by the driving examples
// (positive examples for GE predicates, negative examples for LE).
func CandidatePredicates(opts Options, examples []Example, kind rules.Kind) ([]rules.Predicate, error) {
	if opts.Config == nil || opts.Config.Schema == nil {
		return nil, fmt.Errorf("rulegen: options need a config with schema")
	}
	schema := opts.Config.Schema
	var out []rules.Predicate
	for attr := 0; attr < schema.Len(); attr++ {
		name := schema.Name(attr)
		for _, fn := range opts.functionsFor(name) {
			p := rules.Predicate{Attr: attr, AttrName: name, Fn: fn}
			if fn == rules.Ontology {
				p.Tree = opts.Config.Tree(name)
				if p.Tree == nil {
					continue
				}
			}
			if kind == rules.Positive {
				p.Op = rules.GE
			} else {
				p.Op = rules.LE
			}
			values := map[float64]bool{}
			for _, ex := range examples {
				if (kind == rules.Positive) != ex.Same {
					continue // GE thresholds from S+, LE thresholds from S−
				}
				v := p.Similarity(ex.A, ex.B)
				if v < 0 {
					v = 0
				}
				values[v] = true
			}
			thresholds := make([]float64, 0, len(values))
			for v := range values {
				thresholds = append(thresholds, v)
			}
			sort.Float64s(thresholds)
			thresholds = capThresholds(thresholds, opts.MaxThresholds)
			for _, th := range thresholds {
				q := p
				q.Threshold = th
				out = append(out, q)
			}
		}
	}
	return out, nil
}

// capThresholds keeps at most max values, evenly spaced across the sorted
// list (always keeping the extremes).
func capThresholds(ths []float64, max int) []float64 {
	if max <= 0 || len(ths) <= max {
		return ths
	}
	out := make([]float64, 0, max)
	for i := 0; i < max; i++ {
		idx := i * (len(ths) - 1) / (max - 1)
		out = append(out, ths[idx])
	}
	// Dedup (quantiles can repeat).
	dedup := out[:0]
	for i, v := range out {
		//lint:ignore float-threshold dedup of sorted copies; only bit-identical duplicates must collapse
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// functionsFor returns the similarity-function library for an attribute.
func (o *Options) functionsFor(attr string) []rules.Func {
	if o.Functions != nil {
		return o.Functions
	}
	fns := []rules.Func{rules.Overlap, rules.Jaccard}
	if o.Config.Tree(attr) != nil {
		fns = append(fns, rules.Ontology)
	}
	return fns
}

// coverage reports how many positive and negative examples a rule set
// covers (a rule set covers an example when any rule matches the pair).
func coverage(rs []rules.Rule, examples []Example) (pos, neg int) {
	for _, ex := range examples {
		for _, r := range rs {
			if r.Eval(ex.A, ex.B) {
				if ex.Same {
					pos++
				} else {
					neg++
				}
				break
			}
		}
	}
	return pos, neg
}

// ScoreRuleSet evaluates a rule set under an objective.
func ScoreRuleSet(rs []rules.Rule, examples []Example, obj Objective) int {
	pos, neg := coverage(rs, examples)
	return obj(pos, neg)
}
