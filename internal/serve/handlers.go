package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dime/internal/obs"
)

// Handler returns the full HTTP surface of a Service: the v1 JSON API plus
// the debug routes (/metrics, /debug/vars, /debug/flight, /debug/pprof/)
// mounted through obs.RegisterDebug — the same construction path
// obs.ServeDebug uses, so the two surfaces cannot drift (a parity test walks
// obs.DebugRoutes over both).
//
//	GET    /healthz                              liveness (503 while draining)
//	GET    /v1/corpora                           list corpora + profiles
//	POST   /v1/corpora                           create a corpus
//	GET    /v1/corpora/{id}                      corpus summary
//	DELETE /v1/corpora/{id}                      delete a corpus
//	POST   /v1/corpora/{id}/entities             ingest entities
//	GET    /v1/corpora/{id}/partitions           live incremental partitions
//	POST   /v1/corpora/{id}/discover             start an async discovery job
//	GET    /v1/corpora/{id}/status/{job}         job status (?wait=true long-polls)
//	GET    /v1/corpora/{id}/results/{job}        full result of a done job
//	GET    /v1/corpora/{id}/scrollbar/{level}    one level of the latest result
//	GET    /v1/corpora/{id}/witnesses/{partition} why a partition was marked
//
// Every non-2xx response body is an ErrorJSON. Service errors map to
// status codes: ErrBadRequest 400, ErrNotFound 404, ErrConflict 409,
// ErrQueueFull 429 (with Retry-After), ErrDraining 503.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	obs.RegisterDebug(mux, s.opts.Registry, s.opts.Flight)

	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(route, h))
	}

	handle("GET /healthz", "healthz", s.handleHealthz)
	handle("GET /v1/corpora", "corpora_list", s.handleListCorpora)
	handle("POST /v1/corpora", "corpora_create", s.handleCreateCorpus)
	handle("GET /v1/corpora/{id}", "corpus_get", s.handleGetCorpus)
	handle("DELETE /v1/corpora/{id}", "corpus_delete", s.handleDeleteCorpus)
	handle("POST /v1/corpora/{id}/entities", "ingest", s.handleIngest)
	handle("GET /v1/corpora/{id}/partitions", "partitions", s.handlePartitions)
	handle("POST /v1/corpora/{id}/discover", "discover", s.handleDiscover)
	handle("GET /v1/corpora/{id}/status/{job}", "status", s.handleJobStatus)
	handle("GET /v1/corpora/{id}/results/{job}", "results", s.handleJobResult)
	handle("GET /v1/corpora/{id}/scrollbar/{level}", "scrollbar", s.handleScrollbar)
	handle("GET /v1/corpora/{id}/witnesses/{partition}", "witnesses", s.handleWitness)

	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "dimed — DIME discovery service")
		fmt.Fprintln(w, "  /healthz, /v1/corpora[/{id}[/entities|/partitions|/discover|/status/{job}|/results/{job}|/scrollbar/{level}|/witnesses/{partition}]]")
		fmt.Fprintln(w, "  /metrics, /debug/vars, /debug/flight, /debug/pprof/")
	})
	return mux
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The connection died mid-body; nothing useful left to do.
	_ = enc.Encode(v)
}

// writeError maps err onto an ErrorJSON body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorJSON{Error: err.Error()})
}

// statusOf maps a service error to its HTTP status code.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// fail writes the mapped error response. Backpressure and draining answers
// (429/503) carry a Retry-After derived from the current job backlog and the
// observed job latency, so clients pace their retries to the server's actual
// drain rate instead of a fixed guess.
func (s *Service) fail(w http.ResponseWriter, err error) {
	code := statusOf(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeError(w, code, err)
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(req *http.Request, v any) error {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: invalid JSON body: %v", ErrBadRequest, err)
	}
	return nil
}

// pathInt parses an integer path segment.
func pathInt(req *http.Request, name string) (int, error) {
	v, err := strconv.Atoi(req.PathValue(name))
	if err != nil {
		return 0, fmt.Errorf("%w: %s %q is not an integer", ErrBadRequest, name, req.PathValue(name))
	}
	return v, nil
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleListCorpora(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ListCorpora())
}

func (s *Service) handleCreateCorpus(w http.ResponseWriter, req *http.Request) {
	var body CreateCorpusRequest
	if err := decodeBody(req, &body); err != nil {
		s.fail(w, err)
		return
	}
	info, err := s.CreateCorpus(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleGetCorpus(w http.ResponseWriter, req *http.Request) {
	info, err := s.GetCorpus(req.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleDeleteCorpus(w http.ResponseWriter, req *http.Request) {
	if err := s.DeleteCorpus(req.PathValue("id")); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleIngest(w http.ResponseWriter, req *http.Request) {
	var body IngestRequest
	if err := decodeBody(req, &body); err != nil {
		s.fail(w, err)
		return
	}
	resp, err := s.Ingest(req.PathValue("id"), body)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handlePartitions(w http.ResponseWriter, req *http.Request) {
	resp, err := s.Partitions(req.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleDiscover(w http.ResponseWriter, req *http.Request) {
	body := DiscoverRequest{}
	if req.ContentLength != 0 {
		if err := decodeBody(req, &body); err != nil {
			s.fail(w, err)
			return
		}
	}
	job, err := s.StartDiscover(req.PathValue("id"), body, req.Header.Get("Idempotency-Key"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Service) handleJobStatus(w http.ResponseWriter, req *http.Request) {
	wait := false
	switch v := req.URL.Query().Get("wait"); v {
	case "", "false", "0":
	case "true", "1":
		wait = true
	default:
		s.fail(w, fmt.Errorf("%w: wait=%q (want true or false)", ErrBadRequest, v))
		return
	}
	status, err := s.JobStatus(req.Context(), req.PathValue("id"), req.PathValue("job"), wait)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Service) handleJobResult(w http.ResponseWriter, req *http.Request) {
	res, err := s.JobResult(req.PathValue("id"), req.PathValue("job"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleScrollbar(w http.ResponseWriter, req *http.Request) {
	level, err := pathInt(req, "level")
	if err != nil {
		s.fail(w, err)
		return
	}
	resp, err := s.Scrollbar(req.PathValue("id"), level)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleWitness(w http.ResponseWriter, req *http.Request) {
	partition, err := pathInt(req, "partition")
	if err != nil {
		s.fail(w, err)
		return
	}
	resp, err := s.Witness(req.PathValue("id"), partition)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
