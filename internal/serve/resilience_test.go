package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestLongPollGoroutineHygiene pins long-poll cancellation: N clients start
// ?wait=true long-polls against a gated job and abandon them (context
// cancellation); once the connections die, the server's goroutine count must
// return to its pre-poll baseline — a leaked goroutine per abandoned poll
// would show up immediately at N=25.
func TestLongPollGoroutineHygiene(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Options{
		Workers:        1,
		RequestTimeout: time.Minute, // long-polls end by cancellation, not timeout
		BeforeJob:      func(string, string) { <-release },
	})
	mkCorpus(t, ts.URL, "g", "scholar")
	code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	if code != http.StatusAccepted {
		t.Fatalf("discover: status %d: %s", code, body)
	}
	var job JobJSON
	if err := json.Unmarshal([]byte(body), &job); err != nil {
		t.Fatal(err)
	}

	// Separate client without keep-alives so abandoned polls do not linger
	// as idle pooled connections (each closed conn's goroutines must exit).
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	baseline := runtime.NumGoroutine()

	const polls = 25
	var wg sync.WaitGroup
	for i := 0; i < polls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				ts.URL+"/v1/corpora/g/status/"+job.Job+"?wait=true", nil)
			if err != nil {
				return
			}
			go func() {
				// Abandon the poll shortly after it starts blocking.
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			resp, err := hc.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// Cancellation propagation is asynchronous; poll the goroutine count
	// until it settles back to the baseline (with slack for runtime and
	// net/http housekeeping goroutines that are not per-request).
	const slack = 5
	deadlineTicks := 500 // 500 × 10ms = 5s budget
	for tick := 0; ; tick++ {
		runtime.GC() // nudge finalizer-driven conn cleanup
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			break
		}
		if tick >= deadlineTicks {
			t.Fatalf("goroutines after %d abandoned long-polls: %d, baseline %d (+%d slack) — long-poll leak",
				polls, n, baseline, slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitDrainRace pins the Submit/Drain race under -race: submitters
// hammering a pool while Drain closes it must observe only clean outcomes —
// accepted, ErrQueueFull (transient backpressure), or ErrDraining — never a
// send-on-closed-channel panic; and once Drain returns, Submit must always
// answer ErrDraining.
func TestSubmitDrainRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		p := NewPool(2, 4)
		const submitters = 8
		start := make(chan struct{})
		badErr := make([]error, submitters) // per-index slots: no shared writes
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for {
					err := p.Submit(func() {})
					switch {
					case err == nil, errors.Is(err, ErrQueueFull):
						continue // keep racing the drain
					case errors.Is(err, ErrDraining):
						return // clean loss of the race
					default:
						badErr[g] = err
						return
					}
				}
			}(g)
		}
		drainErr := make(chan error, 1)
		go func() {
			<-start
			drainErr <- p.Drain(context.Background())
		}()
		close(start)
		if err := <-drainErr; err != nil {
			t.Fatalf("round %d: drain: %v", round, err)
		}
		wg.Wait()
		for g, err := range badErr {
			if err != nil {
				t.Fatalf("round %d: submitter %d got unexpected error: %v", round, g, err)
			}
		}
		if err := p.Submit(func() {}); !errors.Is(err, ErrDraining) {
			t.Fatalf("round %d: post-drain Submit = %v, want ErrDraining", round, err)
		}
	}
}

// TestRetryAfterDerived pins the Retry-After derivation: once jobs have
// completed (the latency EWMA has samples) and the pool is saturated, a 429
// must carry a Retry-After computed from backlog × observed latency — still
// a sane integer in [1, 60] — and a draining 503 must carry one too.
func TestRetryAfterDerived(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: -1})
	mkCorpus(t, ts.URL, "g", "scholar")
	if code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/entities", ingestBody(t, scholarGroup())); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, body)
	}
	// Feed the EWMA a synthetic slow-job sample so derivation has signal
	// (real jobs on this corpus are too fast to move a seconds-granularity
	// header).
	svc.observeJobDuration(30 * time.Second)

	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	svc.opts.BeforeJob = func(string, string) { close(entered); <-release }
	for {
		code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
		if code == http.StatusAccepted {
			break
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("discover: status %d: %s", code, body)
		}
	}
	<-entered

	code, _, hdr := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("discover on saturated pool: status %d, want 429", code)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("429 Retry-After %q is not an integer: %v", hdr.Get("Retry-After"), err)
	}
	// One running job + the new submission over one worker at ~30s/job
	// derives 2×30s, clamped to 60 — far from the old fixed "1".
	if ra < 30 || ra > 60 {
		t.Fatalf("derived Retry-After = %d, want within [30, 60] for a 30s-EWMA backlog", ra)
	}

	release <- struct{}{} // let the gated job finish so Drain can complete
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, _, hdr = doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", code)
	}
	if _, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil {
		t.Fatalf("draining 503 Retry-After %q is not an integer: %v", hdr.Get("Retry-After"), err)
	}
	code, _, hdr = doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("discover while draining: status %d, want 503", code)
	}
	if _, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil {
		t.Fatalf("draining discover 503 Retry-After %q is not an integer: %v", hdr.Get("Retry-After"), err)
	}
}

// TestIdempotencyKeyDedupes pins the discover dedupe at the HTTP surface: a
// replayed Idempotency-Key returns the original job (same ID, 202) without
// growing the corpus job count; a different key enqueues a fresh job.
func TestIdempotencyKeyDedupes(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	mkCorpus(t, ts.URL, "g", "scholar")
	if code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/entities", ingestBody(t, scholarGroup())); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, body)
	}
	discover := func(key string) JobJSON {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("discover (key %q): status %d", key, resp.StatusCode)
		}
		var job JobJSON
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		return job
	}

	first := discover("k1")
	replay := discover("k1")
	if replay.Job != first.Job {
		t.Fatalf("replayed key produced job %q, want original %q", replay.Job, first.Job)
	}
	other := discover("k2")
	if other.Job == first.Job {
		t.Fatal("distinct key reused the original job")
	}
	unkeyed := discover("")
	if unkeyed.Job == first.Job || unkeyed.Job == other.Job {
		t.Fatalf("unkeyed discover reused existing job %q", unkeyed.Job)
	}
	info, err := svc.GetCorpus("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Jobs != 3 {
		t.Fatalf("corpus job count = %d, want 3 (replay deduped)", info.Jobs)
	}
}
