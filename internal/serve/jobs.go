package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Pool errors returned by Submit; handlers map them to 429 and 503.
var (
	// ErrQueueFull reports that the bounded job queue is at capacity —
	// backpressure, the caller should retry later.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining reports that the pool stopped accepting work because
	// shutdown began.
	ErrDraining = errors.New("serve: draining, not accepting new jobs")
)

// Pool runs submitted tasks on a fixed set of worker goroutines with a
// bounded queue. Submit never blocks: when every worker is busy and the
// queue is full it fails fast with ErrQueueFull so the HTTP layer can
// translate load into 429 instead of unbounded buffering. Drain stops
// intake and waits for queued and running tasks to finish — the graceful
// half of shutdown.
type Pool struct {
	queue chan func()

	mu       sync.Mutex
	draining bool

	running atomic.Int64
	wg      sync.WaitGroup
}

// NewPool starts workers goroutines consuming a queue of depth queueDepth.
// workers < 1 is clamped to 1; queueDepth < 0 is clamped to 0 (a zero-depth
// queue accepts a task only when a worker is idle and ready to receive it).
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool{queue: make(chan func(), queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.running.Add(1)
				fn()
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// Submit enqueues fn without blocking. It returns ErrDraining after Drain
// began and ErrQueueFull when the queue is at capacity.
//
// With a zero-depth queue, a task is accepted only while an idle worker is
// already receiving; to avoid a thundering-herd race where an idle pool
// still rejects (the worker has not yet reached its receive), zero-depth
// pools are only constructed in tests.
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.queue <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// Queued returns the number of accepted tasks not yet picked up by a worker.
// Together with Running it sizes the backlog behind a 429's Retry-After.
func (p *Pool) Queued() int { return len(p.queue) }

// Running returns the number of tasks currently executing on workers.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Drain stops intake and waits for every queued and running task to finish,
// or for ctx to expire. It is idempotent; later Submits fail with
// ErrDraining either way.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	p.mu.Unlock()
	if !already {
		// No sender can be in flight: Submit sends while holding p.mu and
		// checks draining first, so closing here is safe.
		close(p.queue)
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
