package serve

// Concurrent-clients stress test: N clients each drive their own corpus
// through interleaved ingest batches and discovery jobs while scraping the
// observability surface (/metrics, /debug/vars, /debug/flight) on a shared
// service — the -race run of this test is the data-race gate for the serving
// layer. At the end every corpus must be coherent: the final result served
// over HTTP must equal, field for field, an in-process DIME+ run on the same
// entities.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"dime/internal/core"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/presets"
)

func TestConcurrentClientsStress(t *testing.T) {
	const clients = 8
	svc, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 256})
	_ = svc

	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) { errc <- stressClient(t, ts.URL, i) }(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errc; err != nil {
			t.Error(err)
		}
	}

	// The shared observability surface survived the onslaught and still
	// renders.
	for _, route := range []string{"/metrics", "/debug/vars", "/debug/flight"} {
		if code, body, _ := doReq(t, http.MethodGet, ts.URL+route, nil); code != http.StatusOK {
			t.Errorf("final GET %s: status %d: %s", route, code, body)
		}
	}
}

// stressClient runs one client's full lifecycle against its own corpus and
// verifies the final served result against an in-process run.
func stressClient(t *testing.T, base string, i int) error {
	id := fmt.Sprintf("stress-%d", i)
	g := datagen.Scholar(datagen.ScholarOptions{
		NumPubs: 25 + 5*i, ErrorRate: 0.1, Seed: int64(1000 + i),
	})
	body := mustMarshal(t, CreateCorpusRequest{ID: id, Profile: "scholar", Name: g.Name})
	if code, resp, _ := doReq(t, http.MethodPost, base+"/v1/corpora", body); code != http.StatusCreated {
		return fmt.Errorf("client %d: create: status %d: %s", i, code, resp)
	}

	// Ingest in batches, firing fire-and-forget discoveries and read/scrape
	// traffic between them.
	const batch = 10
	for lo := 0; lo < len(g.Entities); lo += batch {
		hi := min(lo+batch, len(g.Entities))
		req := IngestRequest{}
		for _, e := range g.Entities[lo:hi] {
			req.Entities = append(req.Entities, EntityJSON{ID: e.ID, Values: e.Values})
		}
		if code, resp, _ := doReq(t, http.MethodPost, base+"/v1/corpora/"+id+"/entities", mustMarshal(t, req)); code != http.StatusOK {
			return fmt.Errorf("client %d: ingest [%d:%d]: status %d: %s", i, lo, hi, code, resp)
		}
		// Mid-stream discovery; 429 under load is a legitimate answer.
		if code, resp, _ := doReq(t, http.MethodPost, base+"/v1/corpora/"+id+"/discover", nil); code != http.StatusAccepted && code != http.StatusTooManyRequests {
			return fmt.Errorf("client %d: mid discover: status %d: %s", i, code, resp)
		}
		// Reads against whatever result exists so far; 404 before the first
		// completed discovery is a legitimate answer.
		if code, resp, _ := doReq(t, http.MethodGet, base+"/v1/corpora/"+id+"/scrollbar/0", nil); code != http.StatusOK && code != http.StatusNotFound {
			return fmt.Errorf("client %d: scrollbar: status %d: %s", i, code, resp)
		}
		if code, resp, _ := doReq(t, http.MethodGet, base+"/v1/corpora/"+id+"/witnesses/0", nil); code != http.StatusOK && code != http.StatusNotFound {
			return fmt.Errorf("client %d: witnesses: status %d: %s", i, code, resp)
		}
		if code, resp, _ := doReq(t, http.MethodGet, base+"/v1/corpora/"+id+"/partitions", nil); code != http.StatusOK {
			return fmt.Errorf("client %d: partitions: status %d: %s", i, code, resp)
		}
		for _, route := range []string{"/metrics", "/debug/vars", "/debug/flight"} {
			if code, resp, _ := doReq(t, http.MethodGet, base+route, nil); code != http.StatusOK {
				return fmt.Errorf("client %d: scrape %s: status %d: %s", i, route, code, resp)
			}
		}
	}

	// Final coherence: discover everything, retrying through backpressure,
	// and demand equality with the in-process run.
	var job JobJSON
	for {
		code, resp, _ := doReq(t, http.MethodPost, base+"/v1/corpora/"+id+"/discover",
			mustMarshal(t, DiscoverRequest{IntraWorkers: 1 + i%3}))
		if code == http.StatusAccepted {
			if err := json.Unmarshal([]byte(resp), &job); err != nil {
				return fmt.Errorf("client %d: decode job: %v", i, err)
			}
			break
		}
		if code != http.StatusTooManyRequests {
			return fmt.Errorf("client %d: final discover: status %d: %s", i, code, resp)
		}
	}
	code, resp, _ := doReq(t, http.MethodGet, base+"/v1/corpora/"+id+"/status/"+job.Job+"?wait=true", nil)
	if code != http.StatusOK {
		return fmt.Errorf("client %d: wait: status %d: %s", i, code, resp)
	}
	var status JobJSON
	if err := json.Unmarshal([]byte(resp), &status); err != nil {
		return err
	}
	if status.State != JobDone {
		return fmt.Errorf("client %d: final job state %q (error %q)", i, status.State, status.Error)
	}
	code, resp, _ = doReq(t, http.MethodGet, base+"/v1/corpora/"+id+"/results/"+job.Job, nil)
	if code != http.StatusOK {
		return fmt.Errorf("client %d: results: status %d: %s", i, code, resp)
	}
	var wire ResultJSON
	if err := json.Unmarshal([]byte(resp), &wire); err != nil {
		return err
	}
	// Rebuild the reference group so the comparison shares no state with the
	// server-side snapshot.
	ref := &entity.Group{Name: g.Name, Schema: g.Schema, Entities: g.Entities}
	got, err := wire.Core(ref)
	if err != nil {
		return err
	}
	cfg := presets.ScholarConfig()
	want, err := core.DIMEPlus(ref, core.Options{Config: cfg, Rules: presets.ScholarRules(cfg), IntraWorkers: 1})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(want, got) {
		return fmt.Errorf("client %d: final HTTP result diverges from in-process DIME+:\n  got  %+v\n  want %+v", i, got, want)
	}
	return nil
}
