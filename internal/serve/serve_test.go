package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/obs"
)

// scholarGroup returns the deterministic 33-entity Scholar group the golden
// and lifecycle tests use (same generator call as cmd/dime's golden tests).
func scholarGroup() *entity.Group {
	return datagen.Scholar(datagen.ScholarOptions{NumPubs: 30, ErrorRate: 0.1, Seed: 7})
}

// ingestBody renders the group's entities as an IngestRequest body.
func ingestBody(t *testing.T, g *entity.Group) []byte {
	t.Helper()
	req := IngestRequest{}
	for _, e := range g.Entities {
		req.Entities = append(req.Entities, EntityJSON{ID: e.ID, Values: e.Values})
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newTestServer starts an httptest server over a fresh service with its own
// registry and flight recorder (so metric and trace assertions are isolated).
func newTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	if opts.Flight == nil {
		opts.Flight = obs.NewFlightRecorder(obs.FlightOptions{})
	}
	svc := NewService(opts)
	ts := httptest.NewServer(Handler(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

// doReq performs one request and returns (status, body, header).
func doReq(t *testing.T, method, url string, body []byte) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw), resp.Header
}

// mkCorpus creates a corpus over HTTP and fails the test on any error.
func mkCorpus(t *testing.T, base, id, profile string) {
	t.Helper()
	body, _ := json.Marshal(CreateCorpusRequest{ID: id, Profile: profile})
	code, resp, _ := doReq(t, http.MethodPost, base+"/v1/corpora", body)
	if code != http.StatusCreated {
		t.Fatalf("create corpus %s: status %d: %s", id, code, resp)
	}
}

// TestDebugRouteParity pins the shared-construction invariant: every route
// obs.DebugRoutes lists must answer 200 on both the standalone debug mux
// (obs.ServeDebug's surface) and the API server's Handler — the two surfaces
// are built by the same obs.RegisterDebug call and must not drift.
func TestDebugRouteParity(t *testing.T) {
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(obs.FlightOptions{})
	reg.Counter("dime.parity.probe").Add(1)

	debug := httptest.NewServer(obs.DebugMux(reg, fr))
	defer debug.Close()
	_, api := newTestServer(t, Options{Registry: reg, Flight: fr})

	for _, route := range obs.DebugRoutes() {
		for name, base := range map[string]string{"debug-mux": debug.URL, "api-server": api.URL} {
			code, body, _ := doReq(t, http.MethodGet, base+route, nil)
			if code != http.StatusOK {
				t.Errorf("%s: GET %s: status %d", name, route, code)
			}
			if route == "/metrics" && !strings.Contains(body, "dime_parity_probe") {
				t.Errorf("%s: /metrics does not expose the shared registry:\n%s", name, body)
			}
		}
	}
}

// TestBackpressure429 drives the pool to capacity — one worker held by a
// gated job, zero queue depth — and requires the next discover request to be
// rejected with 429 and a Retry-After header rather than buffered or blocked.
func TestBackpressure429(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	svc, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: -1, // zero-depth queue: full the instant the worker is busy
		BeforeJob: func(corpusID, jobID string) {
			if corpusID == "blocker" {
				close(entered)
				<-release
			}
		},
	})
	_ = svc
	mkCorpus(t, ts.URL, "blocker", "scholar")
	mkCorpus(t, ts.URL, "g", "scholar")

	// A zero-depth queue accepts only while the worker is parked on its
	// receive; retry the gated job until it lands, as a client would on 429.
	for {
		code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/blocker/discover", nil)
		if code == http.StatusAccepted {
			break
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("discover blocker: status %d: %s", code, body)
		}
	}
	<-entered

	code, body, hdr := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("discover on saturated pool: status %d, want 429: %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	var e ErrorJSON
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Errorf("429 body is not an ErrorJSON: %q (%v)", body, err)
	}
	close(release)
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDraining503 verifies the shutdown contract at the HTTP surface: once
// the service drains, health, corpus creation, ingest and discover all
// answer 503 while read paths keep working.
func TestDraining503(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	mkCorpus(t, ts.URL, "g", "scholar")
	g := scholarGroup()
	if code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/entities", ingestBody(t, g)); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, body)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	checks := []struct {
		method, path string
		body         []byte
	}{
		{http.MethodGet, "/healthz", nil},
		{http.MethodPost, "/v1/corpora", mustMarshal(t, CreateCorpusRequest{ID: "h", Profile: "scholar"})},
		{http.MethodDelete, "/v1/corpora/g", nil},
		{http.MethodPost, "/v1/corpora/g/entities", ingestBody(t, g)},
		{http.MethodPost, "/v1/corpora/g/discover", nil},
	}
	for _, c := range checks {
		if code, body, _ := doReq(t, c.method, ts.URL+c.path, c.body); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s while draining: status %d, want 503: %s", c.method, c.path, code, body)
		}
	}
	// Reads survive the drain: the corpus is still inspectable.
	if code, body, _ := doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g", nil); code != http.StatusOK {
		t.Errorf("GET corpus while draining: status %d: %s", code, body)
	}
	if code, body, _ := doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/partitions", nil); code != http.StatusOK {
		t.Errorf("GET partitions while draining: status %d: %s", code, body)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerGracefulShutdown runs the full drain path on a real listener: a
// discovery job is held in flight by the BeforeJob gate while Shutdown is
// called; Shutdown must wait for the job, which must complete and record its
// result, and post-drain submissions must be refused.
func TestServerGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := NewServer(Options{
		Workers:  1,
		Registry: obs.NewRegistry(),
		Flight:   obs.NewFlightRecorder(obs.FlightOptions{}),
		BeforeJob: func(corpusID, jobID string) {
			close(entered)
			<-release
		},
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	base := "http://" + srv.Addr()

	mkCorpus(t, base, "g", "scholar")
	if code, body, _ := doReq(t, http.MethodPost, base+"/v1/corpora/g/entities", ingestBody(t, scholarGroup())); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, body)
	}
	code, body, _ := doReq(t, http.MethodPost, base+"/v1/corpora/g/discover", nil)
	if code != http.StatusAccepted {
		t.Fatalf("discover: status %d: %s", code, body)
	}
	var job JobJSON
	if err := json.Unmarshal([]byte(body), &job); err != nil {
		t.Fatal(err)
	}
	<-entered // the job is now running, gated

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Draining flips before the pool wait completes; release the job and the
	// shutdown must then finish cleanly.
	for !srv.Service().Draining() {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The gated job was drained to completion, not abandoned.
	status, err := srv.Service().JobStatus(context.Background(), "g", job.Job, false)
	if err != nil {
		t.Fatalf("job status after shutdown: %v", err)
	}
	if status.State != JobDone {
		t.Fatalf("job state after shutdown = %q, want %q", status.State, JobDone)
	}
	if _, err := srv.Service().JobResult("g", job.Job); err != nil {
		t.Fatalf("job result after shutdown: %v", err)
	}
	// New work is refused.
	if _, err := srv.Service().StartDiscover("g", DiscoverRequest{}, ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("discover after shutdown: %v, want ErrDraining", err)
	}
	// The listener is closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after Shutdown")
	}
}

// TestRequestTimeoutBoundsLongPoll pins the ?wait=true contract: when the
// request deadline expires before the job finishes, the long-poll returns the
// still-pending state with 200 rather than an error.
func TestRequestTimeoutBoundsLongPoll(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	svc, ts := newTestServer(t, Options{
		Workers:        1,
		RequestTimeout: 50 * time.Millisecond,
		BeforeJob:      func(string, string) { <-release },
	})
	_ = svc
	mkCorpus(t, ts.URL, "g", "scholar")
	code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	if code != http.StatusAccepted {
		t.Fatalf("discover: status %d: %s", code, body)
	}
	var job JobJSON
	if err := json.Unmarshal([]byte(body), &job); err != nil {
		t.Fatal(err)
	}
	code, body, _ = doReq(t, http.MethodGet,
		fmt.Sprintf("%s/v1/corpora/g/status/%s?wait=true", ts.URL, job.Job), nil)
	if code != http.StatusOK {
		t.Fatalf("long-poll past deadline: status %d: %s", code, body)
	}
	var status JobJSON
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.State == JobDone || status.State == JobFailed {
		t.Fatalf("long-poll reported terminal state %q while the job was gated", status.State)
	}
}
