package serve

import (
	"context"
	"fmt"
	"net/http"

	"dime/internal/obs"
)

// statusWriter records the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with the serving middleware stack:
//
//   - a request deadline (Options.RequestTimeout) on the request context,
//     which also caps ?wait=true long-polls;
//   - per-endpoint observability: a latency histogram
//     ("dime.http.<route>.seconds"), request and per-status-class counters,
//     and an in-flight gauge in the registry, plus one flight-recorder run
//     per request ("http" with route/method/status attrs) so slow requests
//     are retained and inspectable at /debug/flight;
//   - panic recovery: a panicking handler yields 500 and a
//     "dime.http.panics" counter instead of tearing the connection down.
func (s *Service) instrument(route string, h http.HandlerFunc) http.Handler {
	reg := s.opts.Registry
	hist := reg.Histogram("dime.http."+route+".seconds", nil)
	requests := reg.Counter("dime.http." + route + ".requests")
	inflight := reg.Counter("dime.http.inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ctx, cancel := context.WithTimeout(req.Context(), s.opts.RequestTimeout)
		defer cancel()
		req = req.WithContext(ctx)

		start := obs.Now()
		requests.Add(1)
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		run := obs.Start(s.opts.Flight, "http",
			obs.A("route", route), obs.A("method", req.Method), obs.A("path", req.URL.Path))
		defer func() {
			if v := recover(); v != nil {
				reg.Counter("dime.http.panics").Add(1)
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError,
						fmt.Errorf("internal error handling %s", route))
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			run.Count(fmt.Sprintf("status-%d", sw.status), 1)
			run.End()
			hist.Observe(obs.Since(start).Seconds())
			reg.Counter(fmt.Sprintf("dime.http.%s.status.%dxx", route, sw.status/100)).Add(1)
			inflight.Add(-1)
		}()
		h(sw, req)
	})
}
