// Package serve is the long-lived HTTP serving layer over the discovery
// engine: per-corpus incremental state on the Session core, a JSON API to
// create corpora, stream entities in, trigger discovery as asynchronous jobs
// on a concurrency-limited worker pool, and query the scrollbar, witnesses
// and live partitions — plus the repository's full observability surface
// (/metrics, /debug/vars, /debug/flight, /debug/pprof/) mounted through the
// same construction path as obs.ServeDebug, so the two debug surfaces cannot
// drift.
//
// The package splits along the handler/service seam: Service owns corpus
// state, profiles and the job pool and knows nothing about HTTP; Handler
// (handlers.go) is the thin JSON layer that maps service errors onto status
// codes; Server (server.go) binds a listener and owns graceful shutdown.
//
// # Determinism contract
//
// Every discovery result served over HTTP is produced by core.DIMEPlus on a
// snapshot of the corpus group, under the corpus profile's Config and Rules.
// Because DIME+ is byte-identical at every IntraWorkers setting and depends
// only on (group, config, rules), a result fetched over the API is exactly —
// partitions, pivot, levels, witnesses and Stats — what an in-process
// Discover/DiscoverAll call on the same entities produces. The HTTP-backed
// differential runner in internal/difftest and the conformance suite at the
// repository root enforce this byte-identity over the seeded 210-group
// corpus at several worker counts.
//
// Ingestion is incremental: each accepted entity folds into the corpus
// Session, so GET partitions stays cheap while entities stream in; discovery
// jobs run the full pipeline from scratch for reproducible results (a
// Session's work counters depend on arrival order, which would leak
// ingestion history into the served Stats).
//
// # Workflow
//
// Discovery is an asynchronous discover → status → result workflow:
//
//	POST /v1/corpora/{id}/discover        → 202 {"job": "job-1"}
//	GET  /v1/corpora/{id}/status/{job}    → {"state": "queued|running|done|failed"}
//	GET  /v1/corpora/{id}/results/{job}   → the full result, once done
//
// Jobs are executed by a fixed worker pool with a bounded queue: a full
// queue rejects the discover request with 429 (backpressure, not buffering),
// and shutdown drains queued and running jobs before the listener closes
// while new mutations get 503.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"dime/internal/datagen"
	"dime/internal/presets"
	"dime/internal/rules"
)

// Profile bundles the record configuration and rule set a corpus discovers
// under. Profiles are registered programmatically (configs carry ontology
// trees and node-mapper functions, which do not serialize); HTTP clients
// select one by name at corpus creation.
type Profile struct {
	// Config compiles entities into records; its Schema defines the corpus
	// relation.
	Config *rules.Config
	// Rules holds the positive and negative rules.
	Rules rules.RuleSet
}

// validate checks a profile is usable for discovery.
func (p Profile) validate() error {
	if p.Config == nil || p.Config.Schema == nil {
		return fmt.Errorf("profile needs a config with a schema")
	}
	if len(p.Rules.Positive) == 0 || len(p.Rules.Negative) == 0 {
		return fmt.Errorf("profile needs at least one positive and one negative rule")
	}
	return nil
}

// BuiltinProfiles returns the three paper presets keyed by name: "scholar",
// "amazon" (corpus-independent true description tree, as cmd/dime's preset
// resolution uses) and "dbgen".
func BuiltinProfiles() map[string]Profile {
	scholar := presets.ScholarConfig()
	dbgen := presets.DBGenConfig()
	amazonCorpus := datagen.Amazon(datagen.AmazonOptions{ProductsPerCategory: 1, Seed: 1})
	amazon := presets.AmazonConfig(amazonCorpus.TrueTree, amazonCorpus.TrueMapper())
	return map[string]Profile{
		"scholar": {Config: scholar, Rules: presets.ScholarRules(scholar)},
		"amazon":  {Config: amazon, Rules: presets.AmazonRules(amazon)},
		"dbgen":   {Config: dbgen, Rules: presets.DBGenRules(dbgen)},
	}
}

// profileSet is the Service's named-profile registry.
type profileSet struct {
	mu sync.RWMutex
	m  map[string]Profile
}

func newProfileSet(seed map[string]Profile) *profileSet {
	ps := &profileSet{m: make(map[string]Profile, len(seed))}
	for name, p := range seed {
		ps.m[name] = p
	}
	return ps
}

func (ps *profileSet) get(name string) (Profile, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	p, ok := ps.m[name]
	return p, ok
}

func (ps *profileSet) register(name string, p Profile) error {
	if name == "" {
		return fmt.Errorf("serve: profile name must not be empty")
	}
	if err := p.validate(); err != nil {
		return fmt.Errorf("serve: profile %q: %w", name, err)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, dup := ps.m[name]; dup {
		return fmt.Errorf("serve: profile %q already registered", name)
	}
	ps.m[name] = p
	return nil
}

func (ps *profileSet) names() []string {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	out := make([]string, 0, len(ps.m))
	for name := range ps.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
