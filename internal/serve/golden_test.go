package serve

// Golden tests for the v1 JSON API: every endpoint's success body and every
// error shape (400 malformed body, 400 invalid entity, 404 unknown
// corpus/job/level, 409 results-before-done, 429 queue full, 503 draining)
// is pinned byte-for-byte. The corpus is the deterministic Scholar group
// cmd/dime's golden tests use, and job IDs are sequential per corpus, so
// the bodies are stable across runs and platforms. Job states are made
// deterministic the same way the backpressure tests do it: a gated job on a
// single-worker pool holds the pool, so a freshly submitted job is
// observably "queued" and a full queue observably 429s.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// golden asserts an exact (status, body) pair.
func golden(t *testing.T, label string, gotCode int, gotBody string, wantCode int, wantBody string) {
	t.Helper()
	if gotCode != wantCode {
		t.Errorf("%s: status %d, want %d (body %s)", label, gotCode, wantCode, gotBody)
		return
	}
	if gotBody != wantBody {
		t.Errorf("%s: body mismatch:\n--- got ---\n%s--- want ---\n%s", label, gotBody, wantBody)
	}
}

func TestGoldenEndpoints(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	svc, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 1,
		BeforeJob: func(corpusID, jobID string) {
			if corpusID == "blocker" {
				close(entered)
				<-release
			}
		},
	})

	code, body, _ := doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	golden(t, "healthz", code, body, http.StatusOK, "{\n  \"status\": \"ok\"\n}\n")

	b := mustMarshal(t, CreateCorpusRequest{ID: "g", Profile: "scholar", Name: "Lei Zhou"})
	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora", b)
	golden(t, "create corpus", code, body, http.StatusCreated, `{
  "id": "g",
  "name": "Lei Zhou",
  "profile": "scholar",
  "entities": 0,
  "partitions": 0,
  "jobs": 0
}
`)

	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora", b)
	golden(t, "duplicate corpus", code, body, http.StatusConflict, `{
  "error": "serve: conflict: corpus \"g\" already exists"
}
`)

	mkCorpus(t, ts.URL, "blocker", "scholar")

	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/entities", ingestBody(t, scholarGroup()))
	golden(t, "ingest", code, body, http.StatusOK, "{\n  \"added\": 33,\n  \"size\": 33,\n  \"rebuilds\": 0\n}\n")

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora", nil)
	golden(t, "list corpora", code, body, http.StatusOK, `{
  "corpora": [
    {
      "id": "blocker",
      "name": "blocker",
      "profile": "scholar",
      "entities": 0,
      "partitions": 0,
      "jobs": 0
    },
    {
      "id": "g",
      "name": "Lei Zhou",
      "profile": "scholar",
      "entities": 33,
      "partitions": 6,
      "jobs": 0
    }
  ],
  "profiles": [
    "amazon",
    "dbgen",
    "scholar"
  ]
}
`)

	// Hold the single worker with the gated blocker job so the next job on
	// "g" is deterministically queued. A zero-depth receive race means the
	// gated submit may 429 until the worker parks; retry as a client would.
	for {
		code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora/blocker/discover", nil)
		if code == http.StatusAccepted {
			break
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("discover blocker: status %d: %s", code, body)
		}
	}
	<-entered

	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	golden(t, "discover (queued)", code, body, http.StatusAccepted, `{
  "job": "job-1",
  "corpus": "g",
  "state": "queued",
  "intra_workers": 0
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/results/job-1", nil)
	golden(t, "results before done", code, body, http.StatusConflict, `{
  "error": "serve: conflict: job \"job-1\" is queued; results exist once it is done"
}
`)

	// Worker busy + queue of one full: backpressure.
	code, body, hdr := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	golden(t, "discover (queue full)", code, body, http.StatusTooManyRequests, "{\n  \"error\": \"serve: job queue full\"\n}\n")
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Errorf("429 Retry-After = %q, want \"1\"", got)
	}

	close(release)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/status/job-1?wait=true", nil)
	golden(t, "status (done)", code, body, http.StatusOK, `{
  "job": "job-1",
  "corpus": "g",
  "state": "done",
  "intra_workers": 0
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/scrollbar/0", nil)
	golden(t, "scrollbar level 0", code, body, http.StatusOK, `{
  "corpus": "g",
  "job": "job-1",
  "level": 0,
  "levels": 3,
  "rule": "phi-1",
  "entity_ids": [
    "p0031",
    "p0032"
  ],
  "partition_indexes": [
    3,
    4
  ]
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/scrollbar/2", nil)
	golden(t, "scrollbar level 2", code, body, http.StatusOK, `{
  "corpus": "g",
  "job": "job-1",
  "level": 2,
  "levels": 3,
  "rule": "phi-3",
  "entity_ids": [
    "p0001",
    "p0002",
    "p0003",
    "p0031",
    "p0032",
    "p0033"
  ],
  "partition_indexes": [
    0,
    1,
    3,
    4,
    5
  ]
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/witnesses/0", nil)
	golden(t, "witness report", code, body, http.StatusOK, `{
  "corpus": "g",
  "job": "job-1",
  "partition": 0,
  "marked": true,
  "witness": {
    "rule": "phi-3",
    "entity_id": "p0001",
    "pivot_id": "p0005"
  },
  "entity_ids": [
    "p0001"
  ]
}
`)

	// Error shapes.
	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora", []byte("{nope"))
	golden(t, "400 malformed body", code, body, http.StatusBadRequest, `{
  "error": "serve: bad request: invalid JSON body: invalid character 'n' looking for beginning of object key string"
}
`)

	b = mustMarshal(t, IngestRequest{Entities: []EntityJSON{{ID: "x", Values: [][]string{{"only-one"}}}}})
	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/entities", b)
	golden(t, "400 invalid entity", code, body, http.StatusBadRequest, `{
  "error": "serve: bad request: entity \"x\": got 1 value lists, schema has 8 attributes"
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/nope", nil)
	golden(t, "404 unknown corpus", code, body, http.StatusNotFound, "{\n  \"error\": \"serve: not found: corpus \\\"nope\\\"\"\n}\n")

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/status/job-9", nil)
	golden(t, "404 unknown job", code, body, http.StatusNotFound, `{
  "error": "serve: not found: job \"job-9\" on corpus \"g\""
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/scrollbar/99", nil)
	golden(t, "404 level out of range", code, body, http.StatusNotFound, `{
  "error": "serve: not found: level 99 (have levels 0..2)"
}
`)

	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/status/job-1?wait=banana", nil)
	golden(t, "400 bad wait value", code, body, http.StatusBadRequest, `{
  "error": "serve: bad request: wait=\"banana\" (want true or false)"
}
`)

	// Draining shapes.
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, body, _ = doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	golden(t, "healthz draining", code, body, http.StatusServiceUnavailable, "{\n  \"status\": \"draining\"\n}\n")

	code, body, _ = doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover", nil)
	golden(t, "503 discover while draining", code, body, http.StatusServiceUnavailable, `{
  "error": "serve: draining, not accepting new jobs"
}
`)
}

// TestGoldenDiscoverEchoesIntraWorkers pins the request-body round trip: the
// job echoes the requested worker bound, and the result is still served.
func TestGoldenDiscoverEchoesIntraWorkers(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	mkCorpus(t, ts.URL, "g", "scholar")
	if code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/entities", ingestBody(t, scholarGroup())); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, body)
	}
	code, body, _ := doReq(t, http.MethodPost, ts.URL+"/v1/corpora/g/discover",
		mustMarshal(t, DiscoverRequest{IntraWorkers: 4}))
	if code != http.StatusAccepted {
		t.Fatalf("discover: status %d: %s", code, body)
	}
	var job JobJSON
	if err := json.Unmarshal([]byte(body), &job); err != nil {
		t.Fatal(err)
	}
	if job.IntraWorkers != 4 {
		t.Fatalf("job echoed intra_workers %d, want 4", job.IntraWorkers)
	}
	code, body, _ = doReq(t, http.MethodGet,
		fmt.Sprintf("%s/v1/corpora/g/status/%s?wait=true", ts.URL, job.Job), nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, body)
	}
	var done JobJSON
	if err := json.Unmarshal([]byte(body), &done); err != nil {
		t.Fatal(err)
	}
	if done.State != JobDone || done.IntraWorkers != 4 {
		t.Fatalf("status = %+v, want done with intra_workers 4", done)
	}
	code, _, _ = doReq(t, http.MethodGet, ts.URL+"/v1/corpora/g/results/"+job.Job, nil)
	if code != http.StatusOK {
		t.Fatalf("results: status %d", code)
	}
}
