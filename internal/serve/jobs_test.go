package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		// Backpressure is expected when the loop outruns the workers; retry
		// as an HTTP client would on 429.
		for {
			err := p.Submit(func() { ran.Add(1); wg.Done() })
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d tasks, want 20", got)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	entered := make(chan struct{})
	// Occupy the single worker...
	if err := p.Submit(func() { close(entered); <-release }); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-entered
	// ...fill the queue...
	if err := p.Submit(func() {}); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	// ...and the next submit must fail fast, not block.
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit on full queue: %v, want ErrQueueFull", err)
	}
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestPoolDrainWaitsForQueuedAndRunning(t *testing.T) {
	p := NewPool(1, 4)
	release := make(chan struct{})
	entered := make(chan struct{})
	var ran atomic.Int64
	if err := p.Submit(func() { close(entered); <-release; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	<-entered
	for i := 0; i < 3; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}

	// Flip the pool into draining without waiting (dead context); Drain is
	// idempotent, so the real wait happens below.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Drain(dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with dead context: %v", err)
	}
	// Submissions fail immediately once draining, even while the worker is
	// still blocked.
	if err := p.Submit(func() {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("drain finished with %d/4 tasks run", got)
	}
}

func TestPoolDrainContextExpiry(t *testing.T) {
	p := NewPool(1, 0)
	release := make(chan struct{})
	entered := make(chan struct{})
	// A zero-depth queue only accepts once the worker is parked on its
	// receive; retry until it is.
	for {
		err := p.Submit(func() { close(entered); <-release })
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit blocker: %v", err)
		}
	}
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with dead context: %v, want context.Canceled", err)
	}
	// A later unbounded drain still completes once the worker is released.
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestPoolClampsDegenerateSizes(t *testing.T) {
	p := NewPool(0, -5)
	done := make(chan struct{})
	// A zero-depth queue still accepts work once its (single, clamped)
	// worker is parked on the channel receive.
	for {
		err := p.Submit(func() { close(done) })
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit: %v", err)
		}
	}
	<-done
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
