package serve

import (
	"fmt"
	"strconv"

	"dime/internal/core"
	"dime/internal/entity"
)

// Wire types of the v1 JSON API. Result encoding is lossless with respect to
// the fields the determinism contract covers — partitions, pivot, levels,
// witnesses and stats round-trip exactly (ResultFromCore then ResultJSON.Core
// reproduces the core.Result field for field, nil-ness of slices included),
// which the HTTP-backed differential runner relies on.

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	// Error is a human-readable description of what was wrong.
	Error string `json:"error"`
}

// CreateCorpusRequest creates a corpus.
type CreateCorpusRequest struct {
	// ID is the corpus identifier used in every later request path.
	ID string `json:"id"`
	// Profile names the registered rule profile the corpus discovers under.
	Profile string `json:"profile"`
	// Name optionally names the underlying group (defaults to ID). Group
	// names appear in results and flight traces.
	Name string `json:"name,omitempty"`
}

// CorpusJSON describes one corpus.
type CorpusJSON struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Profile string `json:"profile"`
	// Entities is the current entity count.
	Entities int `json:"entities"`
	// Partitions is the current partition count of the incremental session.
	Partitions int `json:"partitions"`
	// Jobs is the number of discovery jobs ever created on this corpus.
	Jobs int `json:"jobs"`
}

// CorporaJSON lists corpora and the registered profile names.
type CorporaJSON struct {
	Corpora  []CorpusJSON `json:"corpora"`
	Profiles []string     `json:"profiles"`
}

// EntityJSON is one entity on the wire: one value list per schema attribute.
type EntityJSON struct {
	ID     string     `json:"id"`
	Values [][]string `json:"values"`
}

// IngestRequest appends entities to a corpus, in order.
type IngestRequest struct {
	Entities []EntityJSON `json:"entities"`
}

// IngestResponse reports an ingest. Ingestion is per-entity: on a mid-batch
// error the earlier entities stay added and Added reports how many.
type IngestResponse struct {
	// Added is the number of entities appended by this request.
	Added int `json:"added"`
	// Size is the corpus entity count after the request.
	Size int `json:"size"`
	// Rebuilds counts additions that forced a full session rebuild (an
	// ontology node undercut the frozen signature depth floors).
	Rebuilds int `json:"rebuilds"`
}

// DiscoverRequest triggers an asynchronous discovery job.
type DiscoverRequest struct {
	// IntraWorkers bounds the worker goroutines within the DIME+ run
	// (0 = GOMAXPROCS, 1 = sequential). Results are byte-identical at every
	// setting.
	IntraWorkers int `json:"intra_workers,omitempty"`
}

// JobJSON is the status of a discovery job.
type JobJSON struct {
	// Job is the job identifier ("job-1", "job-2", ... per corpus).
	Job string `json:"job"`
	// Corpus is the owning corpus ID.
	Corpus string `json:"corpus"`
	// State is one of "queued", "running", "done", "failed".
	State string `json:"state"`
	// IntraWorkers echoes the requested worker bound.
	IntraWorkers int `json:"intra_workers"`
	// Error describes the failure when State is "failed".
	Error string `json:"error,omitempty"`
}

// LevelJSON is one scrollbar level.
type LevelJSON struct {
	// Rule names the negative rule added at this level.
	Rule string `json:"rule"`
	// PartitionIndexes lists the partitions marked at this level,
	// cumulatively, ascending.
	PartitionIndexes []int `json:"partition_indexes"`
	// EntityIDs lists the discovered entity IDs, cumulatively, sorted.
	EntityIDs []string `json:"entity_ids"`
}

// WitnessJSON explains why a partition was marked.
type WitnessJSON struct {
	// Rule is the negative rule that matched.
	Rule string `json:"rule"`
	// EntityID / PivotID form the witnessing pair; both are empty when the
	// whole partition was proven dissimilar by signatures alone.
	EntityID string `json:"entity_id"`
	PivotID  string `json:"pivot_id"`
}

// ResultJSON is a full discovery result on the wire.
type ResultJSON struct {
	Corpus string `json:"corpus"`
	Job    string `json:"job"`
	// Group is the group name the result was computed over.
	Group string `json:"group"`
	// Partitions holds entity indexes into the corpus at discovery time.
	Partitions [][]int `json:"partitions"`
	// Pivot indexes Partitions (-1 for an empty corpus).
	Pivot int `json:"pivot"`
	// Levels holds the scrollbar, one level per negative rule.
	Levels []LevelJSON `json:"levels"`
	// Witnesses maps marked partition indexes (as decimal strings — JSON
	// object keys) to their evidence.
	Witnesses map[string]WitnessJSON `json:"witnesses,omitempty"`
	// Stats counts the work the discovery run performed.
	Stats core.Stats `json:"stats"`
}

// ScrollbarJSON is one scrollbar level of the latest completed discovery.
type ScrollbarJSON struct {
	Corpus string `json:"corpus"`
	// Job identifies the discovery run the level comes from.
	Job string `json:"job"`
	// Level is the 0-based scrollbar position served.
	Level int `json:"level"`
	// Levels is the total number of levels available.
	Levels int       `json:"levels"`
	Rule   string    `json:"rule"`
	// EntityIDs lists the mis-categorized entity IDs at this level.
	EntityIDs []string `json:"entity_ids"`
	// PartitionIndexes lists the marked partitions at this level.
	PartitionIndexes []int `json:"partition_indexes"`
}

// WitnessReportJSON answers "why was partition P marked?".
type WitnessReportJSON struct {
	Corpus    string `json:"corpus"`
	Job       string `json:"job"`
	Partition int    `json:"partition"`
	// Marked reports whether the partition was marked mis-categorized.
	Marked bool `json:"marked"`
	// Witness carries the evidence when Marked.
	Witness *WitnessJSON `json:"witness,omitempty"`
	// EntityIDs lists the partition's members.
	EntityIDs []string `json:"entity_ids"`
}

// PartitionsJSON is the live view of the incremental session.
type PartitionsJSON struct {
	Corpus string `json:"corpus"`
	// Entities is the current entity count.
	Entities int `json:"entities"`
	// Partitions holds the current partitions as entity indexes.
	Partitions [][]int `json:"partitions"`
}

// ResultFromCore encodes a core result losslessly.
func ResultFromCore(corpusID, jobID string, r *core.Result) *ResultJSON {
	out := &ResultJSON{
		Corpus:     corpusID,
		Job:        jobID,
		Partitions: r.Partitions,
		Pivot:      r.Pivot,
		Stats:      r.Stats,
	}
	if r.Group != nil {
		out.Group = r.Group.Name
	}
	if r.Levels != nil {
		out.Levels = make([]LevelJSON, len(r.Levels))
		for i, lv := range r.Levels {
			out.Levels[i] = LevelJSON{
				Rule:             lv.RuleName,
				PartitionIndexes: lv.PartitionIndexes,
				EntityIDs:        lv.EntityIDs,
			}
		}
	}
	if len(r.Witnesses) > 0 {
		out.Witnesses = make(map[string]WitnessJSON, len(r.Witnesses))
		for pi, w := range r.Witnesses {
			out.Witnesses[strconv.Itoa(pi)] = WitnessJSON{
				Rule: w.Rule, EntityID: w.EntityID, PivotID: w.PivotID,
			}
		}
	}
	return out
}

// Core decodes the wire result back into a core.Result over the given group.
// It inverts ResultFromCore exactly: partitions, pivot, levels, witnesses
// and stats — including the nil-ness of slices and maps — reproduce the
// original, so differential comparisons over the HTTP boundary can demand
// byte-identity.
func (r *ResultJSON) Core(g *entity.Group) (*core.Result, error) {
	out := &core.Result{
		Group:      g,
		Partitions: r.Partitions,
		Pivot:      r.Pivot,
		Stats:      r.Stats,
	}
	if r.Levels != nil {
		out.Levels = make([]core.Level, len(r.Levels))
		for i, lv := range r.Levels {
			out.Levels[i] = core.Level{
				RuleName:         lv.Rule,
				PartitionIndexes: lv.PartitionIndexes,
				EntityIDs:        lv.EntityIDs,
			}
		}
	}
	if len(r.Witnesses) > 0 {
		out.Witnesses = make(map[int]core.Witness, len(r.Witnesses))
		for key, w := range r.Witnesses {
			pi, err := strconv.Atoi(key)
			if err != nil {
				return nil, fmt.Errorf("serve: witness key %q is not a partition index: %w", key, err)
			}
			out.Witnesses[pi] = core.Witness{Rule: w.Rule, EntityID: w.EntityID, PivotID: w.PivotID}
		}
	}
	return out, nil
}
