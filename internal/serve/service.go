package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dime/internal/core"
	"dime/internal/entity"
	"dime/internal/obs"
)

// Service errors; handlers map them onto HTTP status codes.
var (
	// ErrNotFound reports an unknown corpus, job, level or partition (404).
	ErrNotFound = errors.New("serve: not found")
	// ErrBadRequest reports an invalid payload (400).
	ErrBadRequest = errors.New("serve: bad request")
	// ErrConflict reports a duplicate corpus ID or a result requested from
	// an unfinished job (409).
	ErrConflict = errors.New("serve: conflict")
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Options configures a Service (and the Server wrapping it).
type Options struct {
	// Workers is the discovery worker-goroutine count (< 1 uses 2).
	Workers int
	// QueueDepth bounds the queued-but-not-running discovery jobs; a full
	// queue rejects discover requests with 429. Zero uses 64; negative
	// means a zero-depth queue (tests).
	QueueDepth int
	// RequestTimeout caps synchronous request handling and the ?wait=true
	// long-poll on job status. Zero uses 30s.
	RequestTimeout time.Duration
	// Profiles seeds the named profile registry; nil uses BuiltinProfiles().
	Profiles map[string]Profile
	// Registry receives per-endpoint latency histograms and request
	// counters, and serves /metrics; nil uses obs.Default().
	Registry *obs.Registry
	// Flight is the flight recorder behind /debug/flight; request and
	// discovery spans land in it. Nil uses obs.DefaultFlight().
	Flight *obs.FlightRecorder
	// BeforeJob, when non-nil, runs at the start of every discovery job on
	// the worker goroutine — a test hook for making pool occupancy
	// deterministic in backpressure and shutdown tests.
	BeforeJob func(corpusID, jobID string)
}

// withDefaults fills the zero values in.
func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = 64
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.Profiles == nil {
		o.Profiles = BuiltinProfiles()
	}
	if o.Registry == nil {
		o.Registry = obs.Default()
	}
	if o.Flight == nil {
		o.Flight = obs.DefaultFlight()
	}
	return o
}

// Job is one asynchronous discovery run.
type Job struct {
	// ID is unique within the corpus ("job-1", "job-2", ... in submission
	// order, so API output is deterministic).
	ID string
	// IntraWorkers is the requested worker bound for the run.
	IntraWorkers int

	mu     sync.Mutex
	state  string
	errMsg string
	result *core.Result
	done   chan struct{}
}

// Snapshot returns the job's current (state, error).
func (j *Job) Snapshot() (state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Result returns the job result once done (nil before that, or on failure).
func (j *Job) Result() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

func (j *Job) finish(res *core.Result, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)
}

// corpus is the per-corpus state: the incremental session plus job history.
type corpus struct {
	mu      sync.Mutex
	id      string
	profile string
	prof    Profile
	group   *entity.Group
	sess    *core.Session
	jobSeq  int
	jobs    map[string]*Job
	// idem maps Idempotency-Key values to the job each first created, so a
	// retried discover submission returns the original job instead of
	// enqueueing a duplicate.
	idem map[string]string
	// last is the most recent successfully completed discovery (and the job
	// that produced it); the scrollbar and witness endpoints serve it.
	last    *core.Result
	lastJob string
}

// Service owns corpora, profiles and the discovery job pool. It is safe for
// concurrent use; it knows nothing about HTTP.
type Service struct {
	opts     Options
	profiles *profileSet
	pool     *Pool
	probe    obs.Probe

	mu       sync.RWMutex
	corpora  map[string]*corpus
	draining bool

	// latMu guards the EWMA of observed job wall-clock durations feeding
	// Retry-After derivation.
	latMu      sync.Mutex
	avgJobSecs float64
	jobSamples int
}

// NewService builds a Service and starts its worker pool.
func NewService(opts Options) *Service {
	opts = opts.withDefaults()
	return &Service{
		opts:     opts,
		profiles: newProfileSet(opts.Profiles),
		pool:     NewPool(opts.Workers, opts.QueueDepth),
		probe:    obs.Multi(obs.Observer(opts.Registry), opts.Flight),
		corpora:  make(map[string]*corpus),
	}
}

// RegisterProfile adds a named profile (tests and embedders; built-ins come
// from Options.Profiles).
func (s *Service) RegisterProfile(name string, p Profile) error {
	return s.profiles.register(name, p)
}

// Draining reports whether shutdown began.
func (s *Service) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drain stops accepting mutations and waits for queued and running jobs.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	return s.pool.Drain(ctx)
}

// lookup returns the corpus for id.
func (s *Service) lookup(id string) (*corpus, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.corpora[id]
	if !ok {
		return nil, fmt.Errorf("%w: corpus %q", ErrNotFound, id)
	}
	return c, nil
}

// CreateCorpus creates an empty corpus under a registered profile.
func (s *Service) CreateCorpus(req CreateCorpusRequest) (CorpusJSON, error) {
	if req.ID == "" {
		return CorpusJSON{}, fmt.Errorf("%w: corpus id must not be empty", ErrBadRequest)
	}
	prof, ok := s.profiles.get(req.Profile)
	if !ok {
		return CorpusJSON{}, fmt.Errorf("%w: unknown profile %q (have %v)",
			ErrBadRequest, req.Profile, s.profiles.names())
	}
	name := req.Name
	if name == "" {
		name = req.ID
	}
	g := entity.NewGroup(name, prof.Config.Schema)
	sess, err := core.NewSession(g, core.Options{Config: prof.Config, Rules: prof.Rules, Probe: s.probe})
	if err != nil {
		return CorpusJSON{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	c := &corpus{
		id: req.ID, profile: req.Profile, prof: prof,
		group: g, sess: sess, jobs: make(map[string]*Job),
		idem: make(map[string]string),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return CorpusJSON{}, ErrDraining
	}
	if _, dup := s.corpora[req.ID]; dup {
		return CorpusJSON{}, fmt.Errorf("%w: corpus %q already exists", ErrConflict, req.ID)
	}
	s.corpora[req.ID] = c
	return c.info(), nil
}

// info renders the corpus summary; callers must not hold c.mu.
func (c *corpus) info() CorpusJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CorpusJSON{
		ID:         c.id,
		Name:       c.group.Name,
		Profile:    c.profile,
		Entities:   c.sess.Size(),
		Partitions: len(c.sess.Partitions()),
		Jobs:       c.jobSeq,
	}
}

// DeleteCorpus removes a corpus. Jobs already running keep their snapshot
// and finish; their results become unreachable.
func (s *Service) DeleteCorpus(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if _, ok := s.corpora[id]; !ok {
		return fmt.Errorf("%w: corpus %q", ErrNotFound, id)
	}
	delete(s.corpora, id)
	return nil
}

// ListCorpora returns every corpus summary, sorted by ID, plus the
// registered profile names.
func (s *Service) ListCorpora() CorporaJSON {
	s.mu.RLock()
	ids := make([]string, 0, len(s.corpora))
	byID := make(map[string]*corpus, len(s.corpora))
	for id, c := range s.corpora {
		ids = append(ids, id)
		byID[id] = c
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	out := CorporaJSON{Corpora: make([]CorpusJSON, 0, len(ids)), Profiles: s.profiles.names()}
	for _, id := range ids {
		out.Corpora = append(out.Corpora, byID[id].info())
	}
	return out
}

// GetCorpus returns one corpus summary.
func (s *Service) GetCorpus(id string) (CorpusJSON, error) {
	c, err := s.lookup(id)
	if err != nil {
		return CorpusJSON{}, err
	}
	return c.info(), nil
}

// Ingest appends entities to the corpus in request order, folding each into
// the incremental session. The first invalid entity aborts the batch with
// ErrBadRequest; earlier entities stay (the response's Added counts them).
func (s *Service) Ingest(id string, req IngestRequest) (IngestResponse, error) {
	if s.Draining() {
		return IngestResponse{}, ErrDraining
	}
	c, err := s.lookup(id)
	if err != nil {
		return IngestResponse{}, err
	}
	if len(req.Entities) == 0 {
		return IngestResponse{}, fmt.Errorf("%w: ingest needs at least one entity", ErrBadRequest)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := IngestResponse{}
	for _, je := range req.Entities {
		e, err := entity.NewEntity(c.group.Schema, je.ID, je.Values)
		if err != nil {
			// NewEntity errors already name the entity.
			resp.Size = c.sess.Size()
			return resp, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		rebuilt, err := c.sess.Add(e)
		if err != nil {
			resp.Size = c.sess.Size()
			return resp, fmt.Errorf("%w: entity %q: %v", ErrBadRequest, je.ID, err)
		}
		if rebuilt {
			resp.Rebuilds++
		}
		resp.Added++
	}
	resp.Size = c.sess.Size()
	return resp, nil
}

// Partitions returns the live partitions of the incremental session.
func (s *Service) Partitions(id string) (PartitionsJSON, error) {
	c, err := s.lookup(id)
	if err != nil {
		return PartitionsJSON{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return PartitionsJSON{
		Corpus:     c.id,
		Entities:   c.sess.Size(),
		Partitions: c.sess.Partitions(),
	}, nil
}

// StartDiscover submits an asynchronous discovery job for the corpus and
// returns its status. The job runs core.DIMEPlus on a snapshot of the
// current entities, so a result is reproducible from the (entities, profile)
// pair alone — byte-identical to an in-process Discover call — regardless of
// what is ingested while it runs. Pool backpressure surfaces as
// ErrQueueFull, shutdown as ErrDraining.
//
// A non-empty idemKey makes the submission idempotent: the first request
// under a key enqueues a job and records the binding; any replay of the same
// key on this corpus returns that original job's current status instead of
// enqueueing again. That lets a client retry a discover POST through
// timeouts, resets and truncated responses without ever duplicating work.
func (s *Service) StartDiscover(id string, req DiscoverRequest, idemKey string) (JobJSON, error) {
	if s.Draining() {
		return JobJSON{}, ErrDraining
	}
	if req.IntraWorkers < 0 {
		return JobJSON{}, fmt.Errorf("%w: intra_workers must be >= 0", ErrBadRequest)
	}
	c, err := s.lookup(id)
	if err != nil {
		return JobJSON{}, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if idemKey != "" {
		if jid, seen := c.idem[idemKey]; seen {
			return jobJSON(c.id, c.jobs[jid]), nil
		}
	}
	job := &Job{
		ID:           fmt.Sprintf("job-%d", c.jobSeq+1),
		IntraWorkers: req.IntraWorkers,
		state:        JobQueued,
		done:         make(chan struct{}),
	}
	// Snapshot the entity window now, under the corpus lock, so the job is
	// pinned to the corpus state at submission time: entities are immutable
	// once ingested, and DIMEPlus never mutates the group, so the shallow
	// copy is race-free against concurrent ingests.
	snapshot := &entity.Group{
		Name:     c.group.Name,
		Schema:   c.group.Schema,
		Entities: append([]*entity.Entity(nil), c.group.Entities...),
	}
	opts := core.Options{
		Config:       c.prof.Config,
		Rules:        c.prof.Rules,
		IntraWorkers: req.IntraWorkers,
		Probe:        s.probe,
	}
	hook := s.opts.BeforeJob
	task := func() {
		job.setRunning()
		if hook != nil {
			hook(c.id, job.ID)
		}
		start := obs.Now()
		res, err := core.DIMEPlus(snapshot, opts)
		s.observeJobDuration(obs.Since(start))
		job.finish(res, err)
		if err == nil {
			c.mu.Lock()
			c.last = res
			c.lastJob = job.ID
			c.mu.Unlock()
		}
	}
	if err := s.pool.Submit(task); err != nil {
		return JobJSON{}, err
	}
	c.jobSeq++
	c.jobs[job.ID] = job
	if idemKey != "" {
		c.idem[idemKey] = job.ID
	}
	return jobJSON(c.id, job), nil
}

// observeJobDuration folds one completed job's wall-clock duration into the
// EWMA behind Retry-After derivation (0.8 history, 0.2 new sample; the first
// sample seeds the average).
func (s *Service) observeJobDuration(d time.Duration) {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	secs := d.Seconds()
	if s.jobSamples == 0 {
		s.avgJobSecs = secs
	} else {
		s.avgJobSecs = 0.8*s.avgJobSecs + 0.2*secs
	}
	s.jobSamples++
}

// retryAfterSeconds derives the Retry-After value for 429/503 responses from
// the observed backlog: with q queued and r running jobs, a new submission
// waits roughly avgJob * (q + r + 1) / workers seconds for a slot. The value
// is clamped to [1, 60] — before any job has completed (average unknown, 0)
// it reports the floor, matching the previous fixed behavior.
func (s *Service) retryAfterSeconds() int {
	s.latMu.Lock()
	avg := s.avgJobSecs
	s.latMu.Unlock()
	pending := s.pool.Queued() + s.pool.Running()
	secs := int(math.Ceil(avg * float64(pending+1) / float64(s.opts.Workers)))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// jobJSON renders a job status.
func jobJSON(corpusID string, j *Job) JobJSON {
	state, errMsg := j.Snapshot()
	return JobJSON{
		Job:          j.ID,
		Corpus:       corpusID,
		State:        state,
		IntraWorkers: j.IntraWorkers,
		Error:        errMsg,
	}
}

// job returns a corpus job by ID.
func (s *Service) job(corpusID, jobID string) (*corpus, *Job, error) {
	c, err := s.lookup(corpusID)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	j, ok := c.jobs[jobID]
	c.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: job %q on corpus %q", ErrNotFound, jobID, corpusID)
	}
	return c, j, nil
}

// JobStatus returns a job's status. With wait, it blocks until the job
// reaches a terminal state or ctx expires — whichever comes first — and
// returns the status at that moment (waiting out the deadline is not an
// error; the caller sees the still-pending state).
func (s *Service) JobStatus(ctx context.Context, corpusID, jobID string, wait bool) (JobJSON, error) {
	c, j, err := s.job(corpusID, jobID)
	if err != nil {
		return JobJSON{}, err
	}
	if wait {
		select {
		case <-j.Done():
		case <-ctx.Done():
		}
	}
	return jobJSON(c.id, j), nil
}

// JobResult returns the full result of a completed job. An unfinished job
// yields ErrConflict; a failed one ErrConflict with the failure message.
func (s *Service) JobResult(corpusID, jobID string) (*ResultJSON, error) {
	c, j, err := s.job(corpusID, jobID)
	if err != nil {
		return nil, err
	}
	state, errMsg := j.Snapshot()
	switch state {
	case JobDone:
		return ResultFromCore(c.id, j.ID, j.Result()), nil
	case JobFailed:
		return nil, fmt.Errorf("%w: job %q failed: %s", ErrConflict, jobID, errMsg)
	default:
		return nil, fmt.Errorf("%w: job %q is %s; results exist once it is done", ErrConflict, jobID, state)
	}
}

// latest returns the corpus's most recent completed discovery.
func (c *corpus) latest() (*core.Result, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last == nil {
		return nil, "", fmt.Errorf("%w: corpus %q has no completed discovery yet", ErrNotFound, c.id)
	}
	return c.last, c.lastJob, nil
}

// Scrollbar serves one level of the latest completed discovery.
func (s *Service) Scrollbar(corpusID string, level int) (ScrollbarJSON, error) {
	c, err := s.lookup(corpusID)
	if err != nil {
		return ScrollbarJSON{}, err
	}
	res, jobID, err := c.latest()
	if err != nil {
		return ScrollbarJSON{}, err
	}
	if level < 0 || level >= len(res.Levels) {
		return ScrollbarJSON{}, fmt.Errorf("%w: level %d (have levels 0..%d)",
			ErrNotFound, level, len(res.Levels)-1)
	}
	lv := res.Levels[level]
	return ScrollbarJSON{
		Corpus:           corpusID,
		Job:              jobID,
		Level:            level,
		Levels:           len(res.Levels),
		Rule:             lv.RuleName,
		EntityIDs:        lv.EntityIDs,
		PartitionIndexes: lv.PartitionIndexes,
	}, nil
}

// Witness explains one partition of the latest completed discovery.
func (s *Service) Witness(corpusID string, partition int) (WitnessReportJSON, error) {
	c, err := s.lookup(corpusID)
	if err != nil {
		return WitnessReportJSON{}, err
	}
	res, jobID, err := c.latest()
	if err != nil {
		return WitnessReportJSON{}, err
	}
	if partition < 0 || partition >= len(res.Partitions) {
		return WitnessReportJSON{}, fmt.Errorf("%w: partition %d (have 0..%d)",
			ErrNotFound, partition, len(res.Partitions)-1)
	}
	out := WitnessReportJSON{
		Corpus:    corpusID,
		Job:       jobID,
		Partition: partition,
	}
	for _, ei := range res.Partitions[partition] {
		out.EntityIDs = append(out.EntityIDs, res.Group.Entities[ei].ID)
	}
	if w, ok := res.WitnessOf(partition); ok {
		out.Marked = true
		out.Witness = &WitnessJSON{Rule: w.Rule, EntityID: w.EntityID, PivotID: w.PivotID}
	}
	return out, nil
}
