package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server binds the Handler surface to a listener and owns graceful
// shutdown: Shutdown first drains the discovery pool (queued and running
// jobs complete; new mutations get 503), then closes the HTTP listener
// waiting out in-flight requests.
type Server struct {
	svc *Service
	srv *http.Server
	ln  net.Listener
}

// NewServer builds the service and its HTTP server (unbound; call Start).
func NewServer(opts Options) *Server {
	svc := NewService(opts)
	return &Server{
		svc: svc,
		srv: &http.Server{
			Handler:           Handler(svc),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
}

// Service returns the underlying service (profile registration, tests).
func (s *Server) Service() *Service { return s.svc }

// WrapHandler installs mw around the server's full HTTP surface. It must be
// called before Start. cmd/dimed uses it to mount the opt-in chaos
// middleware (internal/fault) in front of the API.
func (s *Server) WrapHandler(mw func(http.Handler) http.Handler) {
	s.srv.Handler = mw(s.srv.Handler)
}

// Start binds addr (e.g. ":8080", "127.0.0.1:0") and serves in a background
// goroutine.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	go func() {
		// Serve returns ErrServerClosed on Shutdown; other errors have no
		// receiver once we are detached.
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: the service flips to draining
// (healthz and mutations report 503), the job pool finishes queued and
// running discoveries, and the HTTP server stops accepting connections and
// waits for in-flight requests — all bounded by ctx. The first error wins,
// but both phases always run.
func (s *Server) Shutdown(ctx context.Context) error {
	drainErr := s.svc.Drain(ctx)
	httpErr := s.srv.Shutdown(ctx)
	if drainErr != nil {
		return drainErr
	}
	return httpErr
}

// Close force-closes the listener and connections (tests, error paths).
func (s *Server) Close() error { return s.srv.Close() }
