package experiments

import (
	"fmt"
	"math/rand"

	"dime/internal/baselines/dtree"
	"dime/internal/baselines/sifi"
	"dime/internal/metrics"
	"dime/internal/rulegen"
	"dime/internal/rules"
)

// Exp6 reproduces Figure 10 (rule generation quality): k-fold cross
// validation on the training example pool, comparing the greedy DIME-Rule
// generator against SIFI (expert structure + threshold search) and a
// depth-4 DecisionTree. The reported value is the F-measure of classifying
// held-out example pairs as same-category, for fold counts 2–10, on both
// datasets.
func Exp6(opts Options) ([]Table, error) {
	opts.defaults()
	var tables []Table

	// --- Figure 10(a): Scholar ---
	sc := newScholarSetup(opts)
	exsS, err := pairExamples(sc.cfg, sc.pages[:min(6, len(sc.pages))], 229, 201, opts.Seed+11)
	if err != nil {
		return nil, err
	}
	authorsIdx, _ := sc.cfg.Schema.Index("Authors")
	venueIdx, _ := sc.cfg.Schema.Index("Venue")
	titleIdx, _ := sc.cfg.Schema.Index("Title")
	scholarStructures := []sifi.Structure{
		{Predicates: []rules.Predicate{{Attr: authorsIdx, AttrName: "Authors", Fn: rules.Overlap}}},
		{Predicates: []rules.Predicate{
			{Attr: authorsIdx, AttrName: "Authors", Fn: rules.Overlap},
			{Attr: venueIdx, AttrName: "Venue", Fn: rules.Ontology},
		}},
		{Predicates: []rules.Predicate{
			{Attr: authorsIdx, AttrName: "Authors", Fn: rules.Overlap},
			{Attr: titleIdx, AttrName: "Title", Fn: rules.Jaccard},
		}},
	}
	rowsS, err := crossValidate(sc.cfg, exsS, scholarStructures)
	if err != nil {
		return nil, err
	}
	tables = append(tables, Table{
		ID:     "Fig 10(a)",
		Title:  "Rule-generation F-measure vs #folds on Google Scholar",
		Header: []string{"#Folds", "DIME-Rule", "SIFI", "DecisionTree"},
		Rows:   rowsS,
		Notes:  fmt.Sprintf("%d examples; F over held-out pair classification", len(exsS)),
	})

	// --- Figure 10(b): Amazon ---
	setup, err := newAmazonSetup(opts, 0.20)
	if err != nil {
		return nil, err
	}
	exsA, err := pairExamples(setup.cfg, setup.corpus.Groups[:min(8, len(setup.corpus.Groups))], 247, 245, opts.Seed+13)
	if err != nil {
		return nil, err
	}
	abIdx, _ := setup.cfg.Schema.Index("Also_bought")
	avIdx, _ := setup.cfg.Schema.Index("Also_viewed")
	descIdx, _ := setup.cfg.Schema.Index("Description")
	amazonStructures := []sifi.Structure{
		{Predicates: []rules.Predicate{
			{Attr: abIdx, AttrName: "Also_bought", Fn: rules.Overlap},
			{Attr: avIdx, AttrName: "Also_viewed", Fn: rules.Overlap},
		}},
		{Predicates: []rules.Predicate{
			{Attr: abIdx, AttrName: "Also_bought", Fn: rules.Overlap},
			{Attr: descIdx, AttrName: "Description", Fn: rules.Ontology},
		}},
	}
	rowsA, err := crossValidate(setup.cfg, exsA, amazonStructures)
	if err != nil {
		return nil, err
	}
	tables = append(tables, Table{
		ID:     "Fig 10(b)",
		Title:  "Rule-generation F-measure vs #folds on Amazon",
		Header: []string{"#Folds", "DIME-Rule", "SIFI", "DecisionTree"},
		Rows:   rowsA,
		Notes:  fmt.Sprintf("%d examples; description ontology learned with LDA", len(exsA)),
	})
	return tables, nil
}

// crossValidate runs k-fold CV for k in 2..10 over the example pool,
// evaluating each method's held-out F-measure, averaged over folds.
func crossValidate(cfg *rules.Config, examples []rulegen.Example, structures []sifi.Structure) ([][]string, error) {
	// Shuffle deterministically so contiguous folds are class-mixed (the
	// example pool arrives positives-first).
	examples = append([]rulegen.Example(nil), examples...)
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(examples), func(i, j int) { examples[i], examples[j] = examples[j], examples[i] })

	var rows [][]string
	for k := 2; k <= 10; k++ {
		folds, err := metrics.Folds(len(examples), k)
		if err != nil {
			return nil, err
		}
		var ours, sifis, trees []metrics.PRF
		for _, fold := range folds {
			trainIdx, testIdx := metrics.TrainTest(len(examples), fold)
			train := subset(examples, trainIdx)
			test := subset(examples, testIdx)
			if !bothClasses(train) || len(test) == 0 {
				continue
			}

			// DIME-Rule (greedy generator).
			if rs, err := rulegen.Greedy(rulegen.Options{Config: cfg, MaxThresholds: 24}, train, rules.Positive); err == nil {
				ours = append(ours, classifyF(rs, test))
			}
			// SIFI with the expert structures.
			if rs, err := sifi.Fit(sifi.Options{Config: cfg}, structures, train, rules.Positive); err == nil {
				sifis = append(sifis, classifyF(rs, test))
			}
			// DecisionTree (depth 4, the paper's setting).
			if tr, err := dtree.Train(dtree.Options{Config: cfg}, toDtreeExamples(train)); err == nil {
				trees = append(trees, classifyTreeF(tr, test))
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", k),
			f2(metrics.Average(ours).F1),
			f2(metrics.Average(sifis).F1),
			f2(metrics.Average(trees).F1),
		})
	}
	return rows, nil
}

// classifyF scores positive-rule classification of held-out pairs: predict
// Same when any rule matches.
func classifyF(rs []rules.Rule, test []rulegen.Example) metrics.PRF {
	var tp, fp, fn int
	for _, ex := range test {
		pred := false
		for _, r := range rs {
			if r.Eval(ex.A, ex.B) {
				pred = true
				break
			}
		}
		switch {
		case pred && ex.Same:
			tp++
		case pred && !ex.Same:
			fp++
		case !pred && ex.Same:
			fn++
		}
	}
	return metrics.FromCounts(tp, fp, fn)
}

func classifyTreeF(tr *dtree.Tree, test []rulegen.Example) metrics.PRF {
	var tp, fp, fn int
	for _, ex := range test {
		pred := tr.Predict(ex.A, ex.B)
		switch {
		case pred && ex.Same:
			tp++
		case pred && !ex.Same:
			fp++
		case !pred && ex.Same:
			fn++
		}
	}
	return metrics.FromCounts(tp, fp, fn)
}

func subset(exs []rulegen.Example, idx []int) []rulegen.Example {
	out := make([]rulegen.Example, len(idx))
	for i, j := range idx {
		out[i] = exs[j]
	}
	return out
}

func bothClasses(exs []rulegen.Example) bool {
	var pos, neg bool
	for _, ex := range exs {
		if ex.Same {
			pos = true
		} else {
			neg = true
		}
	}
	return pos && neg
}

func toDtreeExamples(exs []rulegen.Example) []dtree.Example {
	out := make([]dtree.Example, len(exs))
	for i, ex := range exs {
		out[i] = dtree.Example{A: ex.A, B: ex.B, Same: ex.Same}
	}
	return out
}
