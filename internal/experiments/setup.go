package experiments

import (
	"fmt"
	"math/rand"

	"dime/internal/baselines/svm"
	"dime/internal/core"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/lda"
	"dime/internal/metrics"
	"dime/internal/presets"
	"dime/internal/rulegen"
	"dime/internal/rules"
)

// Options scales the experiment suite. The zero value (after defaults) is
// the "quick" configuration that finishes in minutes; Full reproduces the
// paper's corpus sizes.
type Options struct {
	// Pages is the number of Scholar pages (paper: 200); 0 means 40.
	Pages int
	// PubsPerPage is the page size (paper: avg 340); 0 means 150.
	PubsPerPage int
	// AmazonPerCategory is the native product count per category; 0 means 60.
	AmazonPerCategory int
	// Seed drives all generation.
	Seed int64
	// Full switches the efficiency experiments to the paper's sizes
	// (Scholar to 3000, Amazon to 10000, DBGen to 100k with naive DIME);
	// off, they run a scaled-down sweep that preserves the comparison.
	Full bool
}

func (o *Options) defaults() {
	if o.Pages == 0 {
		o.Pages = 40
	}
	if o.PubsPerPage == 0 {
		o.PubsPerPage = 150
	}
	if o.AmazonPerCategory == 0 {
		o.AmazonPerCategory = 60
	}
	if o.Seed == 0 {
		o.Seed = 2018
	}
}

// scholarSetup bundles the Scholar corpus with its config and rule set.
type scholarSetup struct {
	pages []*entity.Group
	cfg   *rules.Config
	rs    rules.RuleSet
}

func newScholarSetup(opts Options) *scholarSetup {
	cfg := presets.ScholarConfig()
	return &scholarSetup{
		pages: datagen.ScholarPages(opts.Pages, opts.PubsPerPage, 0.06, opts.Seed),
		cfg:   cfg,
		rs:    presets.ScholarRules(cfg),
	}
}

// amazonSetup bundles an Amazon corpus at one error rate with the learned
// LDA description hierarchy, the config and the rule set.
type amazonSetup struct {
	corpus *datagen.AmazonCorpus
	cfg    *rules.Config
	rs     rules.RuleSet
	hier   *lda.Hierarchy
}

// newAmazonSetup generates the corpus at the given error rate and learns the
// description theme hierarchy with LDA (K = number of categories, grouped
// into the theme count), exactly the substitution the paper describes for
// attributes without a published ontology.
func newAmazonSetup(opts Options, errorRate float64) (*amazonSetup, error) {
	corpus := datagen.Amazon(datagen.AmazonOptions{
		ProductsPerCategory: opts.AmazonPerCategory,
		ErrorRate:           errorRate,
		Seed:                opts.Seed + int64(errorRate*1000),
	})
	nCats := len(corpus.Groups)
	themes := map[string]bool{}
	for _, t := range corpus.ThemeOf {
		themes[t] = true
	}
	model, err := lda.Train(corpus.Descriptions(), lda.Options{
		K:          nCats,
		Alpha:      0.1, // descriptions are single-topic documents
		Iterations: 150,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: training LDA: %w", err)
	}
	hier := lda.BuildHierarchy(model, len(themes))
	cfg := presets.AmazonConfig(hier.Tree, hier.Mapper())
	return &amazonSetup{
		corpus: corpus,
		cfg:    cfg,
		rs:     presets.AmazonRules(cfg),
		hier:   hier,
	}, nil
}

// bestLevelScore runs DIME+ on a group and returns the per-level scores and
// the best-F level ("the best result our approach can provide when the user
// drags the scrollbar", Exp-1).
func bestLevelScore(g *entity.Group, cfg *rules.Config, rs rules.RuleSet) ([]metrics.PRF, metrics.PRF, error) {
	res, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs})
	if err != nil {
		return nil, metrics.PRF{}, err
	}
	truth := g.MisCategorizedIDs()
	perLevel := make([]metrics.PRF, len(res.Levels))
	best := metrics.PRF{}
	for li := range res.Levels {
		perLevel[li] = metrics.Score(res.MisCategorizedIDs(li), truth)
		if perLevel[li].F1 > best.F1 {
			best = perLevel[li]
		}
	}
	return perLevel, best, nil
}

// pairExamples samples labelled pairs (correct×correct → Same,
// correct×mis-categorized → not Same) from groups, up to nPos/nNeg of each —
// the example pools of Section VI-A (229/201 for Scholar, 247/245 Amazon).
func pairExamples(cfg *rules.Config, groups []*entity.Group, nPos, nNeg int, seed int64) ([]rulegen.Example, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("experiments: no groups to sample examples from")
	}
	rng := rand.New(rand.NewSource(seed))
	posQuota := nPos/len(groups) + 1
	negQuota := nNeg/len(groups) + 1
	var pos, neg []rulegen.Example
	for _, g := range groups {
		recs, err := cfg.NewRecords(g)
		if err != nil {
			return nil, err
		}
		var good, bad []*rules.Record
		for _, r := range recs {
			if g.Truth[r.Entity.ID] {
				bad = append(bad, r)
			} else {
				good = append(good, r)
			}
		}
		if len(good) >= 2 {
			for k := 0; k < posQuota && len(pos) < nPos; k++ {
				i, j := rng.Intn(len(good)), rng.Intn(len(good))
				if i == j {
					j = (j + 1) % len(good)
				}
				pos = append(pos, rulegen.Example{A: good[i], B: good[j], Same: true})
			}
		}
		if len(good) >= 1 && len(bad) >= 1 {
			for k := 0; k < negQuota && len(neg) < nNeg; k++ {
				neg = append(neg, rulegen.Example{
					A:    good[rng.Intn(len(good))],
					B:    bad[rng.Intn(len(bad))],
					Same: false,
				})
			}
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return nil, fmt.Errorf("experiments: sampled %d positive and %d negative examples", len(pos), len(neg))
	}
	return append(pos, neg...), nil
}

// toSVMExamples converts rulegen examples for the SVM baseline.
func toSVMExamples(exs []rulegen.Example) []svm.Example {
	out := make([]svm.Example, len(exs))
	for i, ex := range exs {
		out[i] = svm.Example{A: ex.A, B: ex.B, Same: ex.Same}
	}
	return out
}
