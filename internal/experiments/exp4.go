package experiments

import (
	"fmt"

	"dime/internal/core"
	"dime/internal/presets"
)

// Exp4 reproduces Table I (effect of positive rules): for each of the 20
// named Scholar pages, the histogram of partition sizes after step 1 —
// bucketed into [1,10), [10,100) and [100,1000) — with the number of
// partitions, entities and mis-categorized entities per bucket. The paper's
// observation to verify: mis-categorized entities concentrate in small
// partitions, while the large buckets are (almost) clean.
func Exp4(opts Options) ([]Table, error) {
	opts.defaults()
	cfg := presets.ScholarConfig()
	rs := presets.ScholarRules(cfg)

	buckets := [][2]int{{1, 10}, {10, 100}, {100, 1000}}
	var rows [][]string
	for _, p := range fig8Pages(opts) {
		res, err := core.DIMEPlus(p.group, core.Options{Config: cfg, Rules: rs})
		if err != nil {
			return nil, err
		}
		type agg struct{ groups, entities, errors int }
		stats := make([]agg, len(buckets))
		for _, part := range res.Partitions {
			bi := -1
			for b, rng := range buckets {
				if len(part) >= rng[0] && len(part) < rng[1] {
					bi = b
					break
				}
			}
			if bi < 0 {
				continue
			}
			stats[bi].groups++
			stats[bi].entities += len(part)
			for _, ei := range part {
				if p.group.Truth[p.group.Entities[ei].ID] {
					stats[bi].errors++
				}
			}
		}
		row := []string{p.owner}
		for _, s := range stats {
			row = append(row,
				fmt.Sprintf("%d", s.groups),
				fmt.Sprintf("%d", s.entities),
				fmt.Sprintf("%d", s.errors))
		}
		rows = append(rows, row)
	}
	return []Table{{
		ID:    "Table I",
		Title: "Partition-size statistics after applying positive rules (step 1)",
		Header: []string{
			"Page",
			"[1,10):grp", "[1,10):ent", "[1,10):err",
			"[10,100):grp", "[10,100):ent", "[10,100):err",
			"[100,1000):grp", "[100,1000):ent", "[100,1000):err",
		},
		Rows:  rows,
		Notes: "err columns count ground-truth mis-categorized entities in the bucket",
	}}, nil
}
