package experiments

import (
	"fmt"
	"time"

	"dime/internal/baselines/cr"
	"dime/internal/core"
	"dime/internal/datagen"
	"dime/internal/entity"
	"dime/internal/presets"
	"dime/internal/rules"
)

// Exp5 reproduces Figure 9 (efficiency): wall-clock runtime of DIME, DIME+,
// CR and SVM as the group size grows, on Scholar pages and on Amazon
// categories (error rate 40%). Without opts.Full the sweep runs scaled-down
// sizes that preserve the comparison shape; with Full it runs the paper's
// 500–3000 (Scholar) and 2000–10000 (Amazon).
func Exp5(opts Options) ([]Table, error) {
	opts.defaults()
	var tables []Table

	scholarSizes := []int{200, 400, 600, 800, 1000}
	amazonSizes := []int{400, 800, 1200, 1600, 2000}
	if opts.Full {
		scholarSizes = []int{500, 1000, 1500, 2000, 2500, 3000}
		amazonSizes = []int{2000, 4000, 6000, 8000, 10000}
	}

	// --- Figure 9(a): Scholar ---
	sCfg := presets.ScholarConfig()
	sRules := presets.ScholarRules(sCfg)
	trainPage := datagen.Scholar(datagen.ScholarOptions{NumPubs: 120, ErrorRate: 0.1, Seed: opts.Seed + 7})
	svmModel, err := trainSVMOn(sCfg, []*entity.Group{trainPage}, 229, 201, opts.Seed)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, size := range scholarSizes {
		g := datagen.Scholar(datagen.ScholarOptions{
			NumPubs:   int(float64(size) * 0.94),
			ErrorRate: 0.06,
			Seed:      opts.Seed + int64(size),
		})
		row, err := timeMethods(g, sCfg, sRules, scholarCRAttrs, svmModel.Discover)
		if err != nil {
			return nil, err
		}
		rows = append(rows, append([]string{fmt.Sprintf("%d", g.Size())}, row...))
	}
	tables = append(tables, Table{
		ID:     "Fig 9(a)",
		Title:  "Runtime vs group size on Google Scholar (seconds)",
		Header: []string{"#Tuples", "DIME", "DIME+", "CR", "SVM"},
		Rows:   rows,
		Notes:  scaleNote(opts),
	})

	// --- Figure 9(b): Amazon at 40% error rate ---
	setup, err := newAmazonSetup(opts, 0.40)
	if err != nil {
		return nil, err
	}
	trainA, _ := splitGroups(setup.corpus.Groups, 4)
	svmA, err := trainSVMOn(setup.cfg, trainA, 247, 245, opts.Seed+2)
	if err != nil {
		return nil, err
	}
	rows = nil
	for _, size := range amazonSizes {
		big := datagen.Amazon(datagen.AmazonOptions{
			ProductsPerCategory: int(float64(size) * 0.6),
			NearShare:           0.2,
			ErrorRate:           0.40,
			Seed:                opts.Seed + int64(size),
			Categories:          []string{"Router", "Adapter", "Blender", "Puzzle"},
		})
		g := big.Groups[0]
		row, err := timeMethods(g, setup.cfg, setup.rs, amazonCRAttrs, svmA.Discover)
		if err != nil {
			return nil, err
		}
		rows = append(rows, append([]string{fmt.Sprintf("%d", g.Size())}, row...))
	}
	tables = append(tables, Table{
		ID:     "Fig 9(b)",
		Title:  "Runtime vs group size on Amazon, e=40% (seconds)",
		Header: []string{"#Tuples", "DIME", "DIME+", "CR", "SVM"},
		Rows:   rows,
		Notes:  scaleNote(opts),
	})
	return tables, nil
}

func scaleNote(opts Options) string {
	if opts.Full {
		return "paper-scale sweep (use -full=false for the quick version)"
	}
	return "scaled-down sweep preserving the comparison shape; run with -full for paper sizes"
}

// timeMethods times DIME, DIME+, CR (threshold 0.6, as the paper's
// efficiency figures report EM_0.6) and the SVM discoverer on one group.
func timeMethods(g *entity.Group, cfg *rules.Config, rs rules.RuleSet, crAttrs []string, svmDiscover func(*entity.Group) ([]string, error)) ([]string, error) {
	t0 := time.Now()
	if _, err := core.DIME(g, core.Options{Config: cfg, Rules: rs}); err != nil {
		return nil, err
	}
	tDIME := time.Since(t0).Seconds()

	t0 = time.Now()
	if _, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs}); err != nil {
		return nil, err
	}
	tPlus := time.Since(t0).Seconds()

	t0 = time.Now()
	if _, err := cr.New(cr.Options{Config: cfg, Threshold: 0.6, Attributes: crAttrs}).Discover(g); err != nil {
		return nil, err
	}
	tCR := time.Since(t0).Seconds()

	t0 = time.Now()
	if _, err := svmDiscover(g); err != nil {
		return nil, err
	}
	tSVM := time.Since(t0).Seconds()

	return []string{f1s(tDIME), f1s(tPlus), f1s(tCR), f1s(tSVM)}, nil
}

// Exp5Large reproduces the Gen(20k)–Gen(100k) table: DIME vs DIME+ runtimes
// on DBGen-style groups with two positive and two negative entity-matching
// rules. Without Full the sweep is 5k–25k and naive DIME is skipped above
// 10k (its quadratic cost is the point of the table; the shape shows
// regardless); Full runs 20k–100k including naive DIME throughout.
func Exp5Large(opts Options) ([]Table, error) {
	opts.defaults()
	sizes := []int{5000, 10000, 15000, 20000, 25000}
	naiveCap := 10000
	if opts.Full {
		sizes = []int{20000, 40000, 60000, 80000, 100000}
		naiveCap = 1 << 30
	}
	cfg := presets.DBGenConfig()
	rs := presets.DBGenRules(cfg)

	var rows [][]string
	for _, size := range sizes {
		g := datagen.DBGen(datagen.DBGenOptions{
			NumEntities: size,
			ErrorRate:   0.10,
			Seed:        opts.Seed + int64(size),
		})
		naive := "-"
		if size <= naiveCap {
			t0 := time.Now()
			if _, err := core.DIME(g, core.Options{Config: cfg, Rules: rs}); err != nil {
				return nil, err
			}
			naive = f1s(time.Since(t0).Seconds())
		}
		t0 := time.Now()
		if _, err := core.DIMEPlus(g, core.Options{Config: cfg, Rules: rs}); err != nil {
			return nil, err
		}
		fast := f1s(time.Since(t0).Seconds())
		rows = append(rows, []string{fmt.Sprintf("Gen(%dk)", size/1000), naive, fast})
	}
	return []Table{{
		ID:     "Gen table",
		Title:  "DIME vs DIME+ on DBGen-style large groups (seconds)",
		Header: []string{"Dataset", "DIME", "DIME+"},
		Rows:   rows,
		Notes:  scaleNote(opts),
	}}, nil
}
