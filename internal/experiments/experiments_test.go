package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps the experiment tests fast.
var tinyOpts = Options{
	Pages:             6,
	PubsPerPage:       60,
	AmazonPerCategory: 24,
	Seed:              7,
}

// cell parses a table cell as float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestExp1ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	tables, err := Exp1(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	// Figure 6(a): DIME's F-measure must beat both baselines.
	fig6a := tables[0]
	var dimeF, crF, svmF float64
	for _, row := range fig6a.Rows {
		switch row[0] {
		case "DIME":
			dimeF = cell(t, row[3])
		case "CR":
			crF = cell(t, row[3])
		case "SVM":
			svmF = cell(t, row[3])
		}
	}
	if dimeF <= crF || dimeF <= svmF {
		t.Errorf("Fig 6(a): DIME F=%.2f should beat CR %.2f and SVM %.2f", dimeF, crF, svmF)
	}
	// Figure 6(b-d): averaged across error rates, DIME at least matches CR
	// (single rates can flip on the tiny test corpora).
	var dSum, cSum float64
	for _, row := range tables[1].Rows {
		dSum += cell(t, row[3])
		cSum += cell(t, row[6])
	}
	if dSum < cSum-0.05*float64(len(tables[1].Rows)) {
		t.Errorf("Fig 6(b-d): DIME mean F %.3f well below CR mean F %.3f",
			dSum/float64(len(tables[1].Rows)), cSum/float64(len(tables[1].Rows)))
	}
}

func TestExp3ScrollbarShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	tables, err := Exp3(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	fig7a := tables[0]
	if len(fig7a.Rows) != 3 {
		t.Fatalf("Fig 7(a) rows = %d", len(fig7a.Rows))
	}
	// Recall must be non-decreasing and precision non-increasing across
	// levels (the scrollbar trade-off).
	for i := 1; i < len(fig7a.Rows); i++ {
		prevP, prevR := cell(t, fig7a.Rows[i-1][1]), cell(t, fig7a.Rows[i-1][2])
		curP, curR := cell(t, fig7a.Rows[i][1]), cell(t, fig7a.Rows[i][2])
		if curR+1e-9 < prevR {
			t.Errorf("Fig 7(a): recall decreased at level %d (%.2f → %.2f)", i+1, prevR, curR)
		}
		if curP-1e-9 > prevP+0.05 {
			t.Errorf("Fig 7(a): precision rose sharply at level %d (%.2f → %.2f)", i+1, prevP, curP)
		}
	}
	// Figure 7(b-d): NR2 recall ≥ NR1 recall at every error rate.
	for _, row := range tables[1].Rows {
		if cell(t, row[5])+1e-9 < cell(t, row[2]) {
			t.Errorf("Fig 7(b-d) %s: NR2 recall below NR1", row[0])
		}
	}
}

func TestExp3DetailCoversAllPages(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	tables, err := Exp3Detail(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(fig8Owners) {
		t.Fatalf("Fig 8 rows = %d, want %d", len(tables[0].Rows), len(fig8Owners))
	}
	for i, row := range tables[0].Rows {
		if row[0] != fig8Owners[i] {
			t.Fatalf("row %d is %q, want %q", i, row[0], fig8Owners[i])
		}
		// NR3 recall ≥ NR1 recall per page.
		if cell(t, row[6])+1e-9 < cell(t, row[2]) {
			t.Errorf("page %s: NR3 recall below NR1", row[0])
		}
	}
}

func TestExp4ErrorsConcentrateInSmallPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	tables, err := Exp4(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	var smallErr, bigErr, bigEnt float64
	for _, row := range tables[0].Rows {
		smallErr += cell(t, row[3])
		bigEnt += cell(t, row[8])
		bigErr += cell(t, row[9])
	}
	if smallErr == 0 {
		t.Error("Table I: no errors in small partitions at all")
	}
	if bigEnt > 0 && bigErr/bigEnt > 0.1 {
		t.Errorf("Table I: big partitions contain %.0f errors of %.0f entities — too dirty", bigErr, bigEnt)
	}
}

func TestExp5SmallSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	small := tinyOpts
	tables, err := Exp5(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s has no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			for _, c := range row[1:] {
				if v := cell(t, c); v < 0 {
					t.Fatalf("%s: negative runtime %q", tb.ID, c)
				}
			}
		}
	}
}

func TestExp6RuleGenBeatsOrMatchesBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	tables, err := Exp6(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if len(tb.Rows) != 9 { // folds 2..10
			t.Fatalf("%s rows = %d", tb.ID, len(tb.Rows))
		}
		for _, row := range tb.Rows {
			ours := cell(t, row[1])
			if ours < 0.5 {
				t.Errorf("%s folds=%s: DIME-Rule F=%.2f is implausibly low", tb.ID, row[0], ours)
			}
		}
	}
}

func TestTableFprint(t *testing.T) {
	tb := Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"A", "Blong"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "22"}},
		Notes:  "a note",
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T — demo ==", "A     Blong", "yyyy  22", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPairExamplesBalanced(t *testing.T) {
	sc := newScholarSetup(Options{Pages: 3, PubsPerPage: 50, Seed: 3})
	exs, err := pairExamples(sc.cfg, sc.pages, 40, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg int
	for _, ex := range exs {
		if ex.Same {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("pos=%d neg=%d", pos, neg)
	}
	if pos > 40 || neg > 30 {
		t.Fatalf("quota overflow: pos=%d neg=%d", pos, neg)
	}
	if _, err := pairExamples(sc.cfg, nil, 10, 10, 1); err == nil {
		t.Fatal("no groups should fail")
	}
}

func TestAblationIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness; skipped in -short")
	}
	tables, err := Ablation(tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 6 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	// Every variant must discover the same number of entities (the Found
	// column), and the signature filter must slash verifications versus
	// naive DIME.
	found := rows[0][5]
	for _, row := range rows {
		if row[5] != found {
			t.Fatalf("variant %q found %s, baseline found %s", row[0], row[5], found)
		}
	}
	plusVerified := cell(t, rows[0][2])
	naiveVerified := cell(t, rows[len(rows)-1][2])
	if plusVerified*3 > naiveVerified {
		t.Fatalf("signature filter saved too little: %v vs %v", plusVerified, naiveVerified)
	}
}

func TestFprintChart(t *testing.T) {
	tb := Table{
		ID:     "C",
		Title:  "chart demo",
		Header: []string{"Row", "Metric", "Text"},
		Rows:   [][]string{{"a", "0.5", "x"}, {"b", "1.0", "y"}},
	}
	var buf bytes.Buffer
	tb.FprintChart(&buf)
	out := buf.String()
	if !strings.Contains(out, "Metric") {
		t.Fatalf("chart missing numeric column:\n%s", out)
	}
	if strings.Contains(out, "Text\n") {
		t.Fatalf("chart rendered non-numeric column:\n%s", out)
	}
	// Bar for 1.0 must be longer than for 0.5.
	lines := strings.Split(out, "\n")
	var aBar, bBar int
	for _, l := range lines {
		if strings.Contains(l, "a ") && strings.Contains(l, "█") {
			aBar = strings.Count(l, "█")
		}
		if strings.Contains(l, "b ") && strings.Contains(l, "█") {
			bBar = strings.Count(l, "█")
		}
	}
	if bBar <= aBar || aBar == 0 {
		t.Fatalf("bars not scaled: a=%d b=%d", aBar, bBar)
	}
}
