package experiments

import (
	"fmt"

	"dime/internal/baselines"
	"dime/internal/baselines/cr"
	"dime/internal/baselines/svm"
	"dime/internal/entity"
	"dime/internal/metrics"
	"dime/internal/rules"
)

// Exp1 reproduces Figure 6 (Exp-1 and Exp-2): DIME vs the collective
// relational EM baseline CR (best of thresholds {0.5, 0.6, 0.7}) and the
// pairwise-feature linear SVM, on Scholar (fixed dirt) and on Amazon with
// error rates 10–40%.
func Exp1(opts Options) ([]Table, error) {
	opts.defaults()
	var tables []Table

	// --- Figure 6(a): Scholar ---
	sc := newScholarSetup(opts)
	train, test := splitGroups(sc.pages, 4)
	svmModel, err := trainSVMOn(sc.cfg, train, 229, 201, opts.Seed)
	if err != nil {
		return nil, err
	}
	dime, crBest, svmScore, err := compareMethods(sc.cfg, sc.rs, scholarCRAttrs, test, svmModel)
	if err != nil {
		return nil, err
	}
	tables = append(tables, Table{
		ID:     "Fig 6(a)",
		Title:  "DIME vs CR vs SVM on Google Scholar (average over pages)",
		Header: []string{"Method", "Precision", "Recall", "F-measure"},
		Rows: [][]string{
			{"DIME", f2(dime.Precision), f2(dime.Recall), f2(dime.F1)},
			{"CR", f2(crBest.Precision), f2(crBest.Recall), f2(crBest.F1)},
			{"SVM", f2(svmScore.Precision), f2(svmScore.Recall), f2(svmScore.F1)},
		},
		Notes: fmt.Sprintf("%d test pages of ~%d entities; DIME reports the best scrollbar level; CR reports its best termination threshold", len(test), opts.PubsPerPage),
	})

	// --- Figure 6(b–d): Amazon, error rate sweep ---
	header := []string{"ErrorRate", "DIME-P", "DIME-R", "DIME-F", "CR-P", "CR-R", "CR-F", "SVM-P", "SVM-R", "SVM-F"}
	var rows [][]string
	for _, e := range []float64{0.10, 0.20, 0.30, 0.40} {
		setup, err := newAmazonSetup(opts, e)
		if err != nil {
			return nil, err
		}
		trainA, testA := splitGroups(setup.corpus.Groups, 4)
		svmA, err := trainSVMOn(setup.cfg, trainA, 247, 245, opts.Seed+1)
		if err != nil {
			return nil, err
		}
		d, c, s, err := compareMethods(setup.cfg, setup.rs, amazonCRAttrs, testA, svmA)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", e*100),
			f2(d.Precision), f2(d.Recall), f2(d.F1),
			f2(c.Precision), f2(c.Recall), f2(c.F1),
			f2(s.Precision), f2(s.Recall), f2(s.F1),
		})
	}
	tables = append(tables, Table{
		ID:     "Fig 6(b-d)",
		Title:  "Precision / Recall / F-measure vs error rate on Amazon",
		Header: header,
		Rows:   rows,
		Notes:  "description ontology learned with LDA; CR best of thresholds {0.5,0.6,0.7}",
	})
	return tables, nil
}

// splitGroups holds out the first nTrain groups for training.
func splitGroups(groups []*entity.Group, nTrain int) (train, test []*entity.Group) {
	if nTrain >= len(groups) {
		nTrain = len(groups) / 2
	}
	if nTrain < 1 {
		nTrain = 1
	}
	return groups[:nTrain], groups[nTrain:]
}

// trainSVMOn samples example pairs from the training groups and fits the
// SVM baseline.
func trainSVMOn(cfg *rules.Config, train []*entity.Group, nPos, nNeg int, seed int64) (*svm.Model, error) {
	exs, err := pairExamples(cfg, train, nPos, nNeg, seed)
	if err != nil {
		return nil, err
	}
	return svm.Train(svm.Options{Config: cfg, Seed: seed}, toSVMExamples(exs))
}

// compareMethods scores DIME (best scrollbar level), CR (best threshold)
// and the SVM on the test groups, macro-averaged.
func compareMethods(cfg *rules.Config, rs rules.RuleSet, crAttrs []string, test []*entity.Group, svmModel *svm.Model) (dime, crBest, svmScore metrics.PRF, err error) {
	var dimeScores, svmScores []metrics.PRF
	crScores := map[float64][]metrics.PRF{}
	thresholds := []float64{0.5, 0.6, 0.7}
	for _, g := range test {
		truth := g.MisCategorizedIDs()
		_, best, derr := bestLevelScore(g, cfg, rs)
		if derr != nil {
			return dime, crBest, svmScore, derr
		}
		dimeScores = append(dimeScores, best)

		for _, th := range thresholds {
			found, cerr := cr.New(cr.Options{Config: cfg, Threshold: th, Attributes: crAttrs}).Discover(g)
			if cerr != nil {
				return dime, crBest, svmScore, cerr
			}
			crScores[th] = append(crScores[th], metrics.Score(found, truth))
		}

		found, serr := svmModel.Discover(g)
		if serr != nil {
			return dime, crBest, svmScore, serr
		}
		svmScores = append(svmScores, metrics.Score(found, truth))
	}
	dime = metrics.Average(dimeScores)
	for _, th := range thresholds {
		if avg := metrics.Average(crScores[th]); avg.F1 > crBest.F1 {
			crBest = avg
		}
	}
	svmScore = metrics.Average(svmScores)
	return dime, crBest, svmScore, nil
}

// scholarCRAttrs and amazonCRAttrs are the informative attributes the CR
// baseline's distance is configured with (an operator-level choice, like its
// termination thresholds).
var (
	scholarCRAttrs = []string{"Title", "Authors", "Venue"}
	amazonCRAttrs  = []string{"Title", "Also_bought", "Also_viewed", "Bought_together", "Description"}
)

// Discoverers returns the baselines Exp-1 uses, handy for the CLI.
var _ = []baselines.Discoverer{(*cr.CR)(nil), (*svm.Model)(nil)}
