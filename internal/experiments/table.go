// Package experiments implements Exp-1 through Exp-6 of Section VI: each
// experiment regenerates the rows/series of one or more of the paper's
// tables and figures on the synthetic datasets (see DESIGN.md for the
// substitution map and EXPERIMENTS.md for paper-vs-measured results).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced artifact (a figure's data series or a table).
type Table struct {
	// ID names the paper artifact, e.g. "Fig 6(a)".
	ID string
	// Title describes the artifact.
	Title string
	// Header holds column names.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes records caveats (scaled sizes, substitutions).
	Notes string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f1s formats seconds with adaptive precision.
func f1s(sec float64) string {
	switch {
	case sec < 0.01:
		return fmt.Sprintf("%.4f", sec)
	case sec < 1:
		return fmt.Sprintf("%.3f", sec)
	default:
		return fmt.Sprintf("%.1f", sec)
	}
}
